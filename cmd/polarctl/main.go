// polarctl is an interactive demonstration of a PolarDB Serverless
// deployment: it launches a simulated cluster and walks through the
// serverless lifecycle — traffic, memory scaling, a planned RW migration,
// and an unplanned crash with CM-driven recovery — printing what each
// resource pool is doing.
//
// `polarctl stats` instead runs a short mixed workload and dumps every
// per-node metric registry (fabric verbs, remote-memory traffic, engine
// page sourcing, ...) as an aligned table — the observability surface
// described in DESIGN.md's "Observability" section.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	"polardb/internal/retry"
	"polardb/internal/stat"
	"polardb/pkg/polar"
)

func main() {
	replicas := flag.Int("replicas", 2, "read replicas")
	slabs := flag.Int("slabs", 4, "initial remote memory slabs (256 pages each)")
	latency := flag.Bool("latency", true, "simulate RDMA/storage latency")
	flag.Parse()

	if flag.Arg(0) == "stats" {
		if err := runStats(*replicas, *slabs, *latency); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Println("launching PolarDB Serverless: 3 storage nodes (ParallelRaft),")
	fmt.Printf("1 memory node (%d slabs), 1 RW + %d RO nodes, proxy, CM\n\n", *slabs, *replicas)
	db, err := polar.Open(polar.Options{
		ReadReplicas:      *replicas,
		MemorySlabs:       *slabs,
		LocalCachePages:   128,
		SimulateLatency:   *latency,
		HeartbeatInterval: 25 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable("orders"); err != nil {
		log.Fatal(err)
	}

	// Continuous traffic through one session.
	var ops atomic.Uint64
	stop := make(chan struct{})
	go func() {
		s := db.Session()
		defer s.Close()
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := uint64(rng.Intn(5000))
			if rng.Intn(3) == 0 {
				if err := s.Exec("orders", polar.OpPut, k, []byte("order-payload")); err != nil {
					continue
				}
			} else if _, _, err := s.Get("orders", k); err != nil {
				continue
			}
			ops.Add(1)
		}
	}()
	status := func(phase string) {
		//polarvet:allow nosleep demo pacing: let the workload run before sampling stats
		time.Sleep(400 * time.Millisecond)
		st := db.Stats()
		fmt.Printf("%-32s ops=%7d  pool=%4d/%4d pages  remote_reads=%6d  storage_reads=%6d\n",
			phase, ops.Load(), st.MemoryUsed, st.MemoryPages, st.RemoteReads, st.StorageReads)
	}

	status("steady state")

	fmt.Println("\n--> scaling remote memory out x3 (pay-as-you-go peak)")
	if _, err := db.GrowMemory(*slabs * 2); err != nil {
		log.Fatal(err)
	}
	status("after scale-out")

	fmt.Println("\n--> planned RW switch (e.g. version upgrade); sessions keep running")
	if err := db.SwitchOver(); err != nil {
		log.Fatal(err)
	}
	status("after planned switch")

	fmt.Println("\n--> crashing the RW; cluster manager promotes a replica")
	before := ops.Load()
	t0 := time.Now()
	if err := db.Failover(); err != nil {
		log.Fatal(err)
	}
	b := retry.NewBackoff(5*time.Millisecond, 30*time.Second)
	for ops.Load() == before && b.Sleep() {
	}
	fmt.Printf("    service resumed %v after the crash\n", time.Since(t0).Round(time.Millisecond))
	status("after unplanned failover")

	fmt.Println("\n--> scaling remote memory back in")
	if _, err := db.ShrinkMemory(*slabs * 256); err != nil {
		log.Fatal(err)
	}
	status("after scale-in")

	close(stop)
	fmt.Printf("\ndone: %d client operations, zero dropped sessions\n", ops.Load())
}

// runStats launches a small deployment, drives a brief mixed workload,
// and prints every node's metric registry plus the cluster-wide totals.
func runStats(replicas, slabs int, latency bool) error {
	db, err := polar.Open(polar.Options{
		ReadReplicas:      replicas,
		MemorySlabs:       slabs,
		LocalCachePages:   64, // small on purpose: force remote-memory traffic
		SimulateLatency:   latency,
		HeartbeatInterval: 25 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer db.Close()
	if err := db.CreateTable("orders"); err != nil {
		return err
	}
	s := db.Session()
	defer s.Close()
	rng := rand.New(rand.NewSource(1))
	const ops = 3000
	for i := 0; i < ops; i++ {
		k := uint64(rng.Intn(2000))
		if rng.Intn(3) == 0 {
			if err := s.Exec("orders", polar.OpPut, k, []byte("order-payload")); err != nil {
				return err
			}
		} else if _, _, err := s.Get("orders", k); err != nil {
			return err
		}
	}

	nodes := db.Metrics().Snapshot()
	fmt.Printf("per-node metrics after %d mixed operations (%d RO, %d slabs):\n\n", ops, replicas, slabs)
	stat.WriteTable(os.Stdout, nodes)
	fmt.Println("\ncluster-wide totals:")
	stat.WriteTable(os.Stdout, map[string]stat.Snapshot{"total": stat.Total(nodes)})
	return nil
}
