// polarbench regenerates the figures of the paper's evaluation section
// (§6). Each figure gets its own harness in internal/bench; this command
// runs one or all of them and prints the same series the paper plots.
//
// Usage:
//
//	polarbench -fig 9            # one figure (8, 9, 10a, 10b, 11..15)
//	polarbench -all              # every figure
//	polarbench -all -full        # larger datasets (closer to paper ratios)
//	polarbench -all -out .       # also write BENCH_<id>.json per figure
//	polarbench -report           # regenerate EXPERIMENTS.md measured
//	                             # sections from BENCH_*.json (no runs)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"polardb/internal/bench"
)

var figures = []struct {
	id  string
	fn  func(bench.Scale) (*bench.Result, error)
	doc string
}{
	{"8", bench.Fig08, "elasticity: QPS while scaling remote memory 8->80->48->128 GBeq"},
	{"9", bench.Fig09, "failover: recovery timelines across four regimes"},
	{"10a", bench.Fig10a, "TPC-C tpmC: Serverless vs PolarDB, three memory configs"},
	{"10b", bench.Fig10b, "TPC-H latency: Serverless vs PolarDB"},
	{"11", bench.Fig11, "mixed r/w QPS + pages swapped vs local memory size"},
	{"12", bench.Fig12, "TPC-H latency vs local cache size"},
	{"13", bench.Fig13, "TPC-H latency vs remote memory size"},
	{"14", bench.Fig14, "optimistic vs pessimistic PL locking"},
	{"15", bench.Fig15, "BKP prefetching on remote memory / storage"},
}

func main() {
	fig := flag.String("fig", "", "figure to regenerate (8, 9, 10a, 10b, 11, 12, 13, 14, 15)")
	all := flag.Bool("all", false, "run every figure")
	full := flag.Bool("full", false, "full scale (slower, closer to the paper's ratios)")
	out := flag.String("out", "", "directory to write BENCH_<id>.json run records into")
	report := flag.Bool("report", false, "re-render EXPERIMENTS.md measured sections from BENCH_*.json; runs nothing")
	experiments := flag.String("experiments", "EXPERIMENTS.md", "experiments file updated by -report")
	flag.Parse()

	if *report {
		dir := *out
		if dir == "" {
			dir = "."
		}
		ids, err := bench.Report(dir, *experiments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "polarbench -report: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "updated %s from %s\n", *experiments, strings.Join(ids, ", "))
		return
	}

	sc := bench.Scale{Small: !*full}
	scale := "small"
	if *full {
		scale = "full"
	}
	if !*all && *fig == "" {
		fmt.Fprintln(os.Stderr, "usage: polarbench -fig <id> | -all [-full] [-out dir] | -report")
		fmt.Fprintln(os.Stderr, "figures:")
		for _, f := range figures {
			fmt.Fprintf(os.Stderr, "  %-4s %s\n", f.id, f.doc)
		}
		os.Exit(2)
	}
	failed := false
	for _, f := range figures {
		if !*all && f.id != *fig {
			continue
		}
		fmt.Fprintf(os.Stderr, "running figure %s (%s)...\n", f.id, f.doc)
		t0 := time.Now()
		r, err := f.fn(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s failed: %v\n", f.id, err)
			failed = true
			continue
		}
		fmt.Fprintf(os.Stderr, "figure %s done in %v\n", f.id, time.Since(t0).Round(time.Millisecond))
		r.Print(os.Stdout)
		if *out != "" {
			run := &bench.Run{
				Schema: bench.RunSchema,
				Fig:    f.id,
				Date:   time.Now().Format("2006-01-02"),
				Scale:  scale,
				Result: r,
			}
			path := filepath.Join(*out, bench.RunFilename(r.ID))
			if err := bench.WriteRun(path, run); err != nil {
				fmt.Fprintf(os.Stderr, "figure %s: write %s: %v\n", f.id, path, err)
				failed = true
				continue
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	if failed {
		os.Exit(1)
	}
}
