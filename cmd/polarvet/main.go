// Command polarvet runs the repository's architectural static analyzers
// (internal/lint) over the module: nosleep, layering, lockheld, errdrop,
// pairing, regionescape, verbdeadline, lockorder, fabriccost.
//
// Usage:
//
//	go run ./cmd/polarvet ./...
//	go run ./cmd/polarvet ./internal/engine ./internal/cluster/...
//	go run ./cmd/polarvet -json findings.json ./...
//	go run ./cmd/polarvet -github -lockgraph lockgraph.dot ./...
//	go run ./cmd/polarvet -fabricreport fabric.json -fabricgraph fabric.dot ./...
//
// Exit status: 0 clean, 1 findings, 2 load/usage failure. -json FILE
// writes findings as a JSON array (machine-readable, stable order; "-"
// means stdout); -github prints GitHub Actions workflow annotations so
// findings appear inline on pull-request diffs; -lockgraph FILE dumps
// the module's lock classes and observed acquisition orderings as
// Graphviz DOT ("-" means stdout); -fabricreport FILE dumps every
// fabric-issuing function's round-trip cost summary (verbs, loop
// multiplicity, declared budget) as JSON, and -fabricgraph FILE the
// same call graph as Graphviz DOT. All requested outputs are written
// before the process exits, findings or not. Suppress an individual
// finding with an adjacent
//
//	//polarvet:allow <analyzer> <reason>
//
// comment; the reason is mandatory and should say why the invariant is
// safe to break at that site.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"polardb/internal/lint"
)

// jsonFinding is the machine-readable shape of one finding. File is
// module-root-relative when the finding is inside the module.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	root := flag.String("C", ".", "module root (directory containing go.mod)")
	only := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
	jsonOut := flag.String("json", "", "write findings as a JSON array to `file` (\"-\" = stdout)")
	asGitHub := flag.Bool("github", false, "print findings as GitHub Actions annotations")
	lockgraph := flag.String("lockgraph", "", "write the lock acquisition-order graph as Graphviz DOT to `file` (\"-\" = stdout)")
	fabricreport := flag.String("fabricreport", "", "write per-function fabric-cost summaries as JSON to `file` (\"-\" = stdout)")
	fabricgraph := flag.String("fabricgraph", "", "write the fabric-cost call graph as Graphviz DOT to `file` (\"-\" = stdout)")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	mod, err := lint.LoadModule(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polarvet:", err)
		os.Exit(2)
	}
	analyzers := lint.Analyzers()
	if *only != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var sel []lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name()] {
				sel = append(sel, a)
				delete(want, a.Name())
			}
		}
		if len(want) > 0 || len(sel) == 0 {
			fmt.Fprintf(os.Stderr, "polarvet: unknown analyzers in -analyzers=%s\n", *only)
			os.Exit(2)
		}
		analyzers = sel
	}
	findings, err := lint.Run(mod, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polarvet:", err)
		os.Exit(2)
	}

	absRoot, err := filepath.Abs(*root)
	if err != nil {
		absRoot = *root
	}

	// Requested outputs are written before the findings-driven exit so a
	// failing CI run still produces its artifacts.
	if *lockgraph != "" {
		g, err := lint.BuildLockGraph(mod, patterns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "polarvet:", err)
			os.Exit(2)
		}
		if err := writeOutput(*lockgraph, []byte(g.DOT())); err != nil {
			fmt.Fprintln(os.Stderr, "polarvet:", err)
			os.Exit(2)
		}
	}
	if *fabricreport != "" || *fabricgraph != "" {
		rep, err := lint.BuildFabricReport(mod, patterns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "polarvet:", err)
			os.Exit(2)
		}
		if *fabricreport != "" {
			buf, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "polarvet:", err)
				os.Exit(2)
			}
			if err := writeOutput(*fabricreport, append(buf, '\n')); err != nil {
				fmt.Fprintln(os.Stderr, "polarvet:", err)
				os.Exit(2)
			}
		}
		if *fabricgraph != "" {
			if err := writeOutput(*fabricgraph, []byte(rep.DOT())); err != nil {
				fmt.Fprintln(os.Stderr, "polarvet:", err)
				os.Exit(2)
			}
		}
	}
	if *jsonOut != "" {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Analyzer: f.Analyzer,
				File:     relToRoot(absRoot, f.Pos.Filename),
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Message:  f.Message,
			})
		}
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "polarvet:", err)
			os.Exit(2)
		}
		if err := writeOutput(*jsonOut, append(buf, '\n')); err != nil {
			fmt.Fprintln(os.Stderr, "polarvet:", err)
			os.Exit(2)
		}
	}
	switch {
	case *asGitHub:
		for _, f := range findings {
			// https://docs.github.com/actions/reference/workflow-commands:
			// newlines and a few metacharacters must be percent-escaped.
			fmt.Printf("::error file=%s,line=%d,col=%d,title=polarvet %s::%s\n",
				relToRoot(absRoot, f.Pos.Filename), f.Pos.Line, f.Pos.Column,
				f.Analyzer, githubEscape(f.Message))
		}
	case *jsonOut != "":
		// The JSON output already carries the findings; keep stdout quiet
		// unless it was the JSON destination itself.
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "polarvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// writeOutput writes data to the named file, or stdout for "-".
func writeOutput(name string, data []byte) error {
	if name == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(name, data, 0o644)
}

// relToRoot rewrites filename relative to the module root so annotations
// and JSON match repository paths regardless of where polarvet ran.
func relToRoot(root, filename string) string {
	rel, err := filepath.Rel(root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return filepath.ToSlash(rel)
}

// githubEscape encodes the characters the workflow-command parser treats
// specially in annotation messages.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
