// Command polarvet runs the repository's architectural static analyzers
// (internal/lint) over the module: nosleep, layering, lockheld, errdrop.
//
// Usage:
//
//	go run ./cmd/polarvet ./...
//	go run ./cmd/polarvet ./internal/engine ./internal/cluster/...
//
// Exit status: 0 clean, 1 findings, 2 load/usage failure. Suppress an
// individual finding with an adjacent
//
//	//polarvet:allow <analyzer> <reason>
//
// comment; the reason is mandatory and should say why the invariant is
// safe to break at that site.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"polardb/internal/lint"
)

func main() {
	root := flag.String("C", ".", "module root (directory containing go.mod)")
	only := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	mod, err := lint.LoadModule(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polarvet:", err)
		os.Exit(2)
	}
	analyzers := lint.Analyzers()
	if *only != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var sel []lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name()] {
				sel = append(sel, a)
				delete(want, a.Name())
			}
		}
		if len(want) > 0 || len(sel) == 0 {
			fmt.Fprintf(os.Stderr, "polarvet: unknown analyzers in -analyzers=%s\n", *only)
			os.Exit(2)
		}
		analyzers = sel
	}
	findings, err := lint.Run(mod, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polarvet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "polarvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
