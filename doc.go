// Package polardb is a from-scratch Go reproduction of "PolarDB
// Serverless: A Cloud Native Database for Disaggregated Data Centers"
// (Cao et al., SIGMOD 2021).
//
// Use pkg/polar for the public API; see README.md for the architecture,
// DESIGN.md for the system inventory, experiment index and metric
// inventory ("Observability"), and EXPERIMENTS.md for paper-vs-measured
// results (measured sections regenerated from BENCH_*.json by
// cmd/polarbench -report). The root-level bench_test.go exposes one
// testing.B benchmark per paper figure; docdrift_test.go pins the
// Observability table to the metrics the code registers.
package polardb
