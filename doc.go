// Package polardb is a from-scratch Go reproduction of "PolarDB
// Serverless: A Cloud Native Database for Disaggregated Data Centers"
// (Cao et al., SIGMOD 2021).
//
// Use pkg/polar for the public API; see README.md for the architecture,
// DESIGN.md for the system inventory and experiment index, and
// EXPERIMENTS.md for paper-vs-measured results. The root-level
// bench_test.go exposes one testing.B benchmark per paper figure.
package polardb
