// Quickstart: launch a PolarDB Serverless deployment in-process, create a
// table, run transactions through the proxy, and read from a replica.
package main

import (
	"fmt"
	"log"
	"time"

	"polardb/pkg/polar"
)

func main() {
	db, err := polar.Open(polar.Options{
		ReadReplicas:      2,
		HeartbeatInterval: time.Hour, // no auto-failover in this demo
	})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	defer db.Close()

	if err := db.CreateTable("accounts"); err != nil {
		log.Fatalf("create table: %v", err)
	}

	s := db.Session()
	defer s.Close()

	// Autocommit writes.
	for id := uint64(1); id <= 5; id++ {
		if err := s.Exec("accounts", polar.OpPut, id, []byte(fmt.Sprintf("balance=%d", id*100))); err != nil {
			log.Fatalf("put: %v", err)
		}
	}

	// A multi-statement transaction: transfer between accounts.
	if err := s.Begin(); err != nil {
		log.Fatal(err)
	}
	if err := s.Exec("accounts", polar.OpUpdate, 1, []byte("balance=50")); err != nil {
		log.Fatal(err)
	}
	if err := s.Exec("accounts", polar.OpUpdate, 2, []byte("balance=250")); err != nil {
		log.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		log.Fatal(err)
	}

	// Reads are routed to read replicas; the data came through the shared
	// remote memory pool, not a per-replica copy.
	fmt.Println("accounts after transfer:")
	if err := s.Scan("accounts", 0, 100, func(id uint64, v []byte) bool {
		fmt.Printf("  account %d: %s\n", id, v)
		return true
	}); err != nil {
		log.Fatal(err)
	}

	st := db.Stats()
	fmt.Printf("\ncluster stats: commits=%d remote_memory=%d/%d pages, remote_reads=%d storage_reads=%d\n",
		st.Commits, st.MemoryUsed, st.MemoryPages, st.RemoteReads, st.StorageReads)
}
