// Autoscale: the serverless elasticity demo (§3.5, Figure 8 of the
// paper). A sales workload runs continuously while the remote memory pool
// is grown for the traffic peak and shrunk afterwards, and the RW node is
// migrated with a planned switch — all without dropping the client
// session or its open transaction.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync/atomic"
	"time"

	"polardb/pkg/polar"
)

func main() {
	db, err := polar.Open(polar.Options{
		ReadReplicas:      1,
		MemorySlabs:       2,
		SlabPages:         256,
		LocalCachePages:   128,
		HeartbeatInterval: time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable("sales"); err != nil {
		log.Fatal(err)
	}

	// Background traffic: one writer hammering the table.
	var ops atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s := db.Session()
		defer s.Close()
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := uint64(rng.Intn(2000))
			if err := s.Exec("sales", polar.OpPut, k, []byte("order")); err != nil {
				log.Printf("writer: %v", err)
				return
			}
			ops.Add(1)
		}
	}()

	report := func(phase string) {
		//polarvet:allow nosleep demo pacing: let the workload run before sampling stats
		time.Sleep(150 * time.Millisecond)
		st := db.Stats()
		fmt.Printf("%-28s memory=%4d pages (used %4d)  ops so far=%d\n",
			phase, st.MemoryPages, st.MemoryUsed, ops.Load())
	}

	report("baseline (2 slabs)")

	// Black-Friday peak: grow the shared buffer pool 4x, live.
	if _, err := db.GrowMemory(6); err != nil {
		log.Fatal(err)
	}
	report("peak (grew to 8 slabs)")

	// Migrate the RW node (e.g. to a bigger compute class) while the
	// workload keeps running: a planned switch with savepoint resumption.
	if err := db.SwitchOver(); err != nil {
		log.Fatal(err)
	}
	report("after planned RW migration")

	// The surge subsides: shrink back and stop paying for idle memory.
	if _, err := db.ShrinkMemory(512); err != nil {
		log.Fatal(err)
	}
	report("after scale-in (2 slabs)")

	close(stop)
	<-done
	fmt.Printf("workload finished without a single dropped session; total ops=%d\n", ops.Load())
}
