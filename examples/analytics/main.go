// Analytics: offload analytical queries to a read replica while OLTP
// traffic hits the RW node — the HTAP pattern the shared remote memory
// pool enables without per-replica buffer copies. Also demonstrates
// Batched Key PrePare (BKP) prefetching on an indexed equi-join (§4.2).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"polardb/internal/workload"
	"polardb/pkg/polar"
)

func main() {
	db, err := polar.Open(polar.Options{
		ReadReplicas:      1,
		MemorySlabs:       8,
		LocalCachePages:   128, // small local tier: most pages are remote
		HeartbeatInterval: time.Hour,
		SimulateLatency:   true, // make prefetching visible
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	c := db.Cluster()

	// Load a small TPC-H-style schema.
	tpch := &workload.TPCH{SF: 1}
	fmt.Println("loading TPC-H-lite (SF=1)...")
	if err := tpch.Load(c); err != nil {
		log.Fatal(err)
	}

	s := db.Session()
	defer s.Close()

	// OLTP keeps running on the RW while analytics go to the replica.
	go func() {
		oltp := db.Session()
		defer oltp.Close()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 500; i++ {
			k := uint64(1 + rng.Intn(tpch.Customers()))
			_ = oltp.Exec(workload.HCustomer, polar.OpPut, k, make([]byte, 96))
		}
	}()

	// The same indexed equi-join (orders ⋈ customer), without and with
	// BKP prefetching of the join buffer's inner keys. The replica's local
	// cache is dropped before each run so both start cold and pay remote
	// memory latency — which BKP hides by fetching batches in parallel.
	roEngine := c.ROs[0].Engine
	coldCache := func() { roEngine.Cache().EvictAll() }
	for _, q := range []string{"Q3", "Q10"} {
		coldCache()
		t0 := time.Now()
		rows, err := tpch.Run(q, s, workload.QueryOpts{})
		if err != nil {
			log.Fatal(err)
		}
		plain := time.Since(t0)

		coldCache()
		t0 = time.Now()
		rowsBKP, err := tpch.Run(q, s, workload.QueryOpts{BKP: true, Engine: roEngine})
		if err != nil {
			log.Fatal(err)
		}
		withBKP := time.Since(t0)
		fmt.Printf("%s: %5d rows  cold plain=%8v  cold with BKP=%8v\n", q, rows,
			plain.Round(time.Millisecond), withBKP.Round(time.Millisecond))
		if rows != rowsBKP {
			log.Fatalf("BKP changed the result: %d vs %d", rows, rowsBKP)
		}
	}

	st := db.Stats()
	fmt.Printf("\nremote memory pool: %d/%d pages in use — the replica reads the\n",
		st.MemoryUsed, st.MemoryPages)
	fmt.Println("same shared pages the RW populated; no redundant in-memory copy.")
	fmt.Println("(BKP's effect is modest when the inner pages sit in remote memory;")
	fmt.Println(" run `go run ./cmd/polarbench -fig 15` for the storage-tier effect.)")
}
