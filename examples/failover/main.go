// Failover: crash the RW node mid-workload and watch the cluster manager
// promote a read replica (§5.1). Because the hot working set lives in the
// shared remote memory pool — not in the dead node's RAM — the new RW
// starts warm, which is the paper's 5.3x recovery headline.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"polardb/pkg/polar"
)

func main() {
	db, err := polar.Open(polar.Options{
		ReadReplicas:      2,
		MemorySlabs:       8,
		LocalCachePages:   64,                    // small local tier: hot pages live in the pool
		HeartbeatInterval: 20 * time.Millisecond, // CM heartbeat (paper: 1 Hz)
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable("kv"); err != nil {
		log.Fatal(err)
	}

	s := db.Session()
	defer s.Close()
	for k := uint64(0); k < 500; k++ {
		if err := s.Exec("kv", polar.OpPut, k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			log.Fatal(err)
		}
	}
	// Leave an uncommitted transaction hanging: it must be rolled back.
	dirty := db.Session()
	if err := dirty.Begin(); err != nil {
		log.Fatal(err)
	}
	if err := dirty.Exec("kv", polar.OpUpdate, 7, []byte("UNCOMMITTED")); err != nil {
		log.Fatal(err)
	}

	fmt.Println("crashing the RW node...")
	start := time.Now()
	db.Cluster().Proxy.RWNodeKill()

	// The session keeps working: autocommit ops transparently retry while
	// the CM detects the failure and promotes a replica.
	if err := s.Exec("kv", polar.OpPut, 9999, []byte("written-after-crash")); err != nil {
		log.Fatalf("write after crash: %v", err)
	}
	fmt.Printf("first write served %v after the crash (detection + promotion + recovery)\n",
		time.Since(start).Round(time.Millisecond))

	// Committed data survived; the uncommitted update did not.
	v, ok, err := s.Get("kv", 7)
	if err != nil || !ok {
		log.Fatalf("get: %v %v", ok, err)
	}
	fmt.Printf("key 7 after failover: %q (uncommitted update rolled back)\n", v)

	// The dirty session's transaction is reported lost, as it must be.
	err = dirty.Exec("kv", polar.OpPut, 8, []byte("x"))
	if errors.Is(err, polar.ErrTxnLost) {
		fmt.Println("open transaction correctly reported lost:", err)
	} else {
		log.Fatalf("expected ErrTxnLost, got %v", err)
	}
	dirty.Close()

	// Read the working set again: the shared remote memory pool survived
	// the crash, so pages come from remote memory, not storage.
	c := db.Cluster()
	c.RW.Engine.Cache().EvictAll() // start the new RW's local tier cold
	for k := uint64(0); k < 200; k++ {
		if _, _, err := s.Get("kv", k); err != nil {
			log.Fatal(err)
		}
	}
	var remote, storage uint64
	remote += c.RW.Engine.Stats().RemoteReads.Load()
	storage += c.RW.Engine.Stats().StorageReads.Load()
	for _, ro := range c.ROs {
		remote += ro.Engine.Stats().RemoteReads.Load()
		storage += ro.Engine.Stats().StorageReads.Load()
	}
	fmt.Printf("warm restart: %d page reads served by the surviving remote memory pool, %d by storage\n",
		remote, storage)
}
