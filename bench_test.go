package polardb_test

import (
	"testing"

	"polardb/internal/bench"
)

// One benchmark per figure of the paper's evaluation section. Each runs
// the figure's full harness once per b.N iteration (they are macro
// benchmarks: a run builds a cluster, loads a workload, measures, and
// tears down) and reports the figure's headline metric. cmd/polarbench
// prints the complete series.

func runFigure(b *testing.B, fn func(bench.Scale) (*bench.Result, error)) *bench.Result {
	b.Helper()
	var last *bench.Result
	for i := 0; i < b.N; i++ {
		r, err := fn(bench.Scale{Small: true})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	return last
}

// firstLast reports a series' first and last Y values as benchmark metrics.
func report(b *testing.B, r *bench.Result, metric string, v float64) {
	b.ReportMetric(v, metric)
	b.Logf("%s", r.Summary())
}

// BenchmarkFig08Elasticity regenerates Figure 8 (throughput while the
// remote memory pool scales 8->80->48->128 GBeq live).
func BenchmarkFig08Elasticity(b *testing.B) {
	r := runFigure(b, bench.Fig08)
	qps := r.Series[0].Points
	report(b, r, "final_qps", qps[len(qps)-1].Y)
}

// BenchmarkFig09Failover regenerates Figure 9 (recovery timelines:
// planned switch / remote memory / page-mat only / no page-mat).
func BenchmarkFig09Failover(b *testing.B) {
	r := runFigure(b, bench.Fig09)
	report(b, r, "variants", float64(len(r.Series)))
	for _, n := range r.Notes {
		b.Log(n)
	}
}

// BenchmarkFig10aTPCC regenerates Figure 10(a) (TPC-C tpmC, Serverless vs
// PolarDB under three memory configurations).
func BenchmarkFig10aTPCC(b *testing.B) {
	r := runFigure(b, bench.Fig10a)
	report(b, r, "serverless_cfg2_tpmC", r.Series[0].Points[1].Y)
}

// BenchmarkFig10bTPCH regenerates Figure 10(b) (TPC-H latency,
// Serverless vs PolarDB).
func BenchmarkFig10bTPCH(b *testing.B) {
	r := runFigure(b, bench.Fig10b)
	report(b, r, "series", float64(len(r.Series)))
}

// BenchmarkFig11LocalMemorySweep regenerates Figure 11 (throughput and
// pages swapped vs local memory size; uniform, skewed, TPC-C panels).
func BenchmarkFig11LocalMemorySweep(b *testing.B) {
	r := runFigure(b, bench.Fig11)
	report(b, r, "panels", float64(len(r.Series))/2)
}

// BenchmarkFig12LocalCacheTPCH regenerates Figure 12 (TPC-H latency vs
// local cache size).
func BenchmarkFig12LocalCacheTPCH(b *testing.B) {
	r := runFigure(b, bench.Fig12)
	report(b, r, "cache_sizes", float64(len(r.Series)))
}

// BenchmarkFig13RemoteMemoryTPCH regenerates Figure 13 (TPC-H latency vs
// remote memory size).
func BenchmarkFig13RemoteMemoryTPCH(b *testing.B) {
	r := runFigure(b, bench.Fig13)
	report(b, r, "pool_sizes", float64(len(r.Series)))
}

// BenchmarkFig14OptimisticLocking regenerates Figure 14 (Olock vs Plock
// read throughput under growing concurrency).
func BenchmarkFig14OptimisticLocking(b *testing.B) {
	r := runFigure(b, bench.Fig14)
	report(b, r, "series", float64(len(r.Series)))
}

// BenchmarkFig15BKPPrefetch regenerates Figure 15 (Batched Key PrePare
// prefetching on remote memory and on storage).
func BenchmarkFig15BKPPrefetch(b *testing.B) {
	r := runFigure(b, bench.Fig15)
	report(b, r, "series", float64(len(r.Series)))
}
