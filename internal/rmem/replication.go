package rmem

import (
	"polardb/internal/rdma"
	"polardb/internal/types"
	"polardb/internal/wire"
)

// Home-node metadata replication (§5.2): because the home's control
// metadata (PAT, PIB, PRD) is essential for cross-node consistency, every
// mutation is mirrored synchronously to a slave home replica. The slave
// keeps the same page->slab-slot mapping (the data itself lives on slab
// nodes and survives a home crash), so after Promote the pool's contents
// are still addressable.
//
// Two pieces of state are deliberately NOT replicated:
//   - PL latch words: latches die with the master; RW-node recovery
//     releases them all anyway (step 6 of §5.1).
//   - PIB clears: the RW clears PIB bits with one-sided writes the master
//     never observes, so the slave marks everything stale at promotion and
//     database nodes re-validate against storage on first touch.

const (
	replOpRegister = iota + 1
	replOpAddRef
	replOpUnref
	replOpEvict
	replOpInvalidate
	replOpAddSlab
	replOpFreeSlab
)

func replHeader(op uint8, page types.PageID) *wire.Writer {
	w := wire.NewWriter(64)
	w.U8(op)
	w.U32(uint32(page.Space))
	w.U32(uint32(page.No))
	return w
}

func replRegister(page types.PageID, slab slabKey, slot int, ref rdma.NodeID) []byte {
	w := replHeader(replOpRegister, page)
	w.String(string(slab.node))
	w.U32(slab.region)
	w.U32(uint32(slot))
	w.String(string(ref))
	return w.Bytes()
}

func replAddRef(page types.PageID, ref rdma.NodeID) []byte {
	w := replHeader(replOpAddRef, page)
	w.String(string(ref))
	return w.Bytes()
}

func replUnref(page types.PageID, ref rdma.NodeID) []byte {
	w := replHeader(replOpUnref, page)
	w.String(string(ref))
	return w.Bytes()
}

func replEvict(page types.PageID) []byte {
	return replHeader(replOpEvict, page).Bytes()
}

func replInvalidate(page types.PageID) []byte {
	return replHeader(replOpInvalidate, page).Bytes()
}

func replAddSlab(node rdma.NodeID, region uint32, pages int) []byte {
	w := replHeader(replOpAddSlab, types.PageID{})
	w.String(string(node))
	w.U32(region)
	w.U32(uint32(pages))
	return w.Bytes()
}

func replFreeSlab(node rdma.NodeID, region uint32) []byte {
	w := replHeader(replOpFreeSlab, types.PageID{})
	w.String(string(node))
	w.U32(region)
	return w.Bytes()
}

// replicate enqueues a metadata mutation for mirroring to the slave home,
// if configured. The fabric call itself happens on the replication sender
// goroutine with no Home lock held — the enqueue is what call sites under
// h.mu perform, so home metadata operations never serialize behind slave
// fabric latency (and can never deadlock against a slave calling back).
// Call sites that must not reply before the slave is current follow up
// with flushReplication once h.mu is released. Queue order is mutation
// order: every mutating call site enqueues while still holding h.mu.
func (h *Home) replicate(op []byte) {
	h.slaveMu.Lock()
	slave := h.slave
	h.slaveMu.Unlock()
	if slave == "" {
		return
	}
	h.replMu.Lock()
	h.replQ = append(h.replQ, op)
	h.replSeq++
	h.replCond.Broadcast()
	h.replMu.Unlock()
}

// flushReplication blocks until every previously enqueued mutation has
// been sent (or dropped with its dead slave). Must be called WITHOUT
// h.mu held — the wait spans a fabric round trip per queued op.
func (h *Home) flushReplication() {
	h.replMu.Lock()
	target := h.replSeq
	for h.replDone < target && !h.replStop {
		h.replCond.Wait()
	}
	h.replMu.Unlock()
}

// replSender is the single goroutine draining the replication queue, so
// mirrored mutations reach the slave in exactly the order the master
// applied them.
func (h *Home) replSender() {
	defer h.wg.Done()
	for {
		h.replMu.Lock()
		for len(h.replQ) == 0 && !h.replStop {
			h.replCond.Wait()
		}
		if len(h.replQ) == 0 {
			h.replMu.Unlock()
			return
		}
		op := h.replQ[0]
		h.replQ = h.replQ[1:]
		h.replMu.Unlock()
		h.sendReplicate(op)
		h.replMu.Lock()
		h.replDone++
		h.replCond.Broadcast()
		h.replMu.Unlock()
	}
}

// sendReplicate performs the actual mirror call. Failure is tolerated
// (the slave is then stale; the DBaaS would replace it); the master
// never blocks on a dead slave beyond the call timeout.
func (h *Home) sendReplicate(op []byte) {
	h.slaveMu.Lock()
	slave := h.slave
	h.slaveMu.Unlock()
	if slave == "" {
		return
	}
	if _, err := h.ep.CallTimeout(slave, h.cfg.method("repl"), op, h.cfg.InvalidateTimeout); err != nil {
		h.slaveMu.Lock()
		h.slave = "" // drop the dead slave
		h.slaveMu.Unlock()
	}
}

// handleReplicate applies a mirrored mutation on the slave home.
func (h *Home) handleReplicate(from rdma.NodeID, req []byte) ([]byte, error) {
	rd := wire.NewReader(req)
	op := rd.U8()
	page := types.PageID{Space: types.SpaceID(rd.U32()), No: types.PageNo(rd.U32())}
	h.mu.Lock()
	defer h.mu.Unlock()
	switch op {
	case replOpRegister:
		slab := slabKey{node: rdma.NodeID(rd.String()), region: rd.U32()}
		slot := int(rd.U32())
		ref := rdma.NodeID(rd.String())
		if err := rd.Err(); err != nil {
			return nil, err
		}
		if len(h.metaFree) == 0 {
			return nil, ErrMetaFull
		}
		slotOff := h.metaFree[len(h.metaFree)-1]
		h.metaFree = h.metaFree[:len(h.metaFree)-1]
		h.pat[page.Key()] = &patEntry{page: page, slab: slab, slot: slot,
			slotOff: slotOff, refs: map[rdma.NodeID]bool{ref: true}}
		if sl, ok := h.slabs[slab]; ok {
			for i, s := range sl.free {
				if s == slot {
					sl.free = append(sl.free[:i], sl.free[i+1:]...)
					break
				}
			}
		}
		h.meta.MustStore64Local(slotOff, 0)
		h.meta.MustStore64Local(slotOff+8, pibStale)
	case replOpAddRef:
		ref := rdma.NodeID(rd.String())
		if e, ok := h.pat[page.Key()]; ok {
			e.refs[ref] = true
			if e.lruElem != nil {
				h.lru.Remove(e.lruElem)
				e.lruElem = nil
			}
		}
	case replOpUnref:
		ref := rdma.NodeID(rd.String())
		if e, ok := h.pat[page.Key()]; ok {
			delete(e.refs, ref)
			if len(e.refs) == 0 && e.lruElem == nil {
				e.lruElem = h.lru.PushBack(e)
			}
		}
	case replOpEvict:
		if e, ok := h.pat[page.Key()]; ok {
			if e.lruElem != nil {
				h.lru.Remove(e.lruElem)
				e.lruElem = nil
			}
			delete(h.pat, page.Key())
			if sl, ok := h.slabs[e.slab]; ok {
				sl.free = append(sl.free, e.slot)
			}
			h.metaFree = append(h.metaFree, e.slotOff)
		}
	case replOpInvalidate:
		if e, ok := h.pat[page.Key()]; ok {
			h.meta.MustStore64Local(e.slotOff+8, pibStale)
		}
	case replOpAddSlab:
		node := rdma.NodeID(rd.String())
		region := rd.U32()
		pages := int(rd.U32())
		h.addSlabLocked(slabKey{node, region}, pages)
	case replOpFreeSlab:
		node := rdma.NodeID(rd.String())
		region := rd.U32()
		key := slabKey{node, region}
		delete(h.slabs, key)
		for i, sl := range h.slabList {
			if sl.key == key {
				h.slabList = append(h.slabList[:i], h.slabList[i+1:]...)
				break
			}
		}
	}
	return nil, rd.Err()
}
