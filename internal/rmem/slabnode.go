package rmem

import (
	"sync"

	"polardb/internal/rdma"
	"polardb/internal/types"
	"polardb/internal/wire"
)

// SlabNode serves slabs: contiguous Page Arrays registered with the RDMA
// NIC at boot so database nodes can read and write cached pages with
// one-sided verbs, never involving this node's CPU on the data path.
type SlabNode struct {
	ep  *rdma.Endpoint
	cfg Config

	mu    sync.Mutex
	slabs map[uint32]*rdma.Region
}

// NewSlabNode starts the slab service on ep. The home node calls its
// create/free RPCs when the pool grows or shrinks.
func NewSlabNode(ep *rdma.Endpoint, cfg Config) *SlabNode {
	cfg.applyDefaults()
	n := &SlabNode{ep: ep, cfg: cfg, slabs: make(map[uint32]*rdma.Region)}
	ep.RegisterHandler(cfg.method("slab.create"), n.handleCreate)
	ep.RegisterHandler(cfg.method("slab.free"), n.handleFree)
	ep.RegisterHandler(cfg.method("slab.ping"), func(rdma.NodeID, []byte) ([]byte, error) {
		return []byte{1}, nil
	})
	return n
}

// Endpoint returns the node's fabric endpoint.
func (n *SlabNode) Endpoint() *rdma.Endpoint { return n.ep }

// SlabCount returns the number of slabs currently hosted.
func (n *SlabNode) SlabCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.slabs)
}

// handleCreate allocates a Page Array of the requested page count and
// registers it with the NIC; the response carries the region id.
func (n *SlabNode) handleCreate(from rdma.NodeID, req []byte) ([]byte, error) {
	rd := wire.NewReader(req)
	pages := int(rd.U32())
	if err := rd.Err(); err != nil {
		return nil, err
	}
	if pages <= 0 {
		pages = n.cfg.SlabPages
	}
	r := n.ep.RegisterRegion(pages * types.PageSize)
	n.mu.Lock()
	n.slabs[r.ID()] = r
	n.mu.Unlock()
	w := wire.NewWriter(8)
	w.U32(r.ID())
	w.U32(uint32(pages))
	return w.Bytes(), nil
}

// handleFree releases a slab's memory and deregisters it from the NIC.
func (n *SlabNode) handleFree(from rdma.NodeID, req []byte) ([]byte, error) {
	rd := wire.NewReader(req)
	id := rd.U32()
	if err := rd.Err(); err != nil {
		return nil, err
	}
	n.mu.Lock()
	delete(n.slabs, id)
	n.mu.Unlock()
	n.ep.DeregisterRegion(id)
	return nil, nil
}
