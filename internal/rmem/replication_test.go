package rmem

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"polardb/internal/rdma"
)

// TestReplicationStallDoesNotBlockHomeMetadata is the regression test for
// the replication queue: mirroring a metadata mutation to the slave home
// must never happen while h.mu is held. A stalled (or slow) slave then
// delays only the caller waiting on its flush barrier — every other home
// metadata operation keeps serving at local-latch speed. Before the queue
// existed, the mirror call ran inside the h.mu critical section and a
// stalled slave froze the whole home for the call timeout.
func TestReplicationStallDoesNotBlockHomeMetadata(t *testing.T) {
	fabric := rdma.NewFabric(rdma.TestConfig())
	cfg := Config{InvalidateTimeout: 3 * time.Second, LatchTimeout: time.Second}
	cfg.applyDefaults()

	masterEP := fabric.MustAttach("home")
	NewSlabNode(masterEP, cfg)

	// A stand-in slave whose repl handler records each mirrored op and can
	// be stalled on demand.
	slaveEP := fabric.MustAttach("home2")
	var stall atomic.Bool
	release := make(chan struct{})
	ops := make(chan []byte, 16)
	slaveEP.RegisterHandler(cfg.method("repl"), func(from rdma.NodeID, req []byte) ([]byte, error) {
		ops <- req
		if stall.Load() {
			<-release
		}
		return nil, nil
	})

	master := NewHome(masterEP, cfg, "home2")
	defer master.Close()
	if _, err := master.AddSlab("home", 8); err != nil {
		t.Fatal(err)
	}
	<-ops // the AddSlab mirror, sent unstalled

	stall.Store(true)
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	defer unblock()

	rw, err := NewPool(fabric.MustAttach("rw"), cfg, "home")
	if err != nil {
		t.Fatal(err)
	}
	regDone := make(chan error, 1)
	go func() {
		_, err := rw.Register(pid(1))
		regDone <- err
	}()
	var regOp []byte
	select {
	case regOp = <-ops:
	case <-time.After(2 * time.Second):
		t.Fatal("replicated register op never reached the slave")
	}
	if regOp[0] != replOpRegister {
		t.Fatalf("first mirrored op = %d, want replOpRegister", regOp[0])
	}
	// The register reply is fenced behind the mirror: it must still be
	// waiting on its flush barrier while the slave stalls.
	select {
	case err := <-regDone:
		t.Fatalf("Register returned (err=%v) before the slave applied the mirror", err)
	default:
	}

	// The regression: a home metadata read (h.mu) must not queue behind
	// the stalled send.
	start := time.Now()
	_ = master.Scan()
	if d := time.Since(start); d > time.Second {
		t.Fatalf("Scan blocked %v behind a stalled replication send; h.mu is being held across the mirror call", d)
	}

	unblock()
	if err := <-regDone; err != nil {
		t.Fatalf("register after slave release: %v", err)
	}
}
