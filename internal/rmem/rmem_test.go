package rmem

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"polardb/internal/rdma"
	"polardb/internal/types"
)

// testPool wires one home (also a slab node), optional extra slab nodes,
// and database-node pools.
type testPool struct {
	fabric *rdma.Fabric
	cfg    Config
	home   *Home
	slabs  map[rdma.NodeID]*SlabNode
}

func newTestPool(t *testing.T, cfg Config, slabPages int) *testPool {
	t.Helper()
	if cfg.InvalidateTimeout == 0 {
		cfg.InvalidateTimeout = 200 * time.Millisecond
	}
	if cfg.LatchTimeout == 0 {
		cfg.LatchTimeout = 2 * time.Second
	}
	tp := &testPool{
		fabric: rdma.NewFabric(rdma.TestConfig()),
		cfg:    cfg,
		slabs:  make(map[rdma.NodeID]*SlabNode),
	}
	homeEP := tp.fabric.MustAttach("home")
	tp.slabs["home"] = NewSlabNode(homeEP, cfg)
	tp.home = NewHome(homeEP, cfg, "")
	t.Cleanup(tp.home.Close)
	if slabPages > 0 {
		if _, err := tp.home.AddSlab("home", slabPages); err != nil {
			t.Fatalf("add slab: %v", err)
		}
	}
	return tp
}

func (tp *testPool) addSlabNode(t *testing.T, id rdma.NodeID, pages int) {
	t.Helper()
	ep := tp.fabric.MustAttach(id)
	tp.slabs[id] = NewSlabNode(ep, tp.cfg)
	if _, err := tp.home.AddSlab(id, pages); err != nil {
		t.Fatalf("add slab on %s: %v", id, err)
	}
}

func (tp *testPool) client(t *testing.T, id rdma.NodeID) *Pool {
	t.Helper()
	ep := tp.fabric.MustAttach(id)
	p, err := NewPool(ep, tp.cfg, "home")
	if err != nil {
		t.Fatalf("new pool client %s: %v", id, err)
	}
	return p
}

func pid(n uint32) types.PageID { return types.PageID{Space: 1, No: types.PageNo(n)} }

func TestRegisterReadWrite(t *testing.T) {
	tp := newTestPool(t, Config{}, 16)
	rw := tp.client(t, "rw")

	res, err := rw.Register(pid(1))
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if res.Exists {
		t.Fatal("fresh page reported as existing")
	}
	page := bytes.Repeat([]byte{0xAB}, types.PageSize)
	if err := rw.WritePage(res.Data, page, res.PIB); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, types.PageSize)
	if err := rw.ReadPage(res.Data, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, page) {
		t.Fatal("page data mismatch")
	}
	// Second register (another node) sees it existing, same address.
	ro := tp.client(t, "ro")
	res2, err := ro.Register(pid(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Exists || res2.Data != res.Data {
		t.Fatalf("second register: exists=%v addr=%v want %v", res2.Exists, res2.Data, res.Data)
	}
}

func TestPIBLifecycle(t *testing.T) {
	tp := newTestPool(t, Config{}, 16)
	rw := tp.client(t, "rw")
	res, _ := rw.Register(pid(1))

	// Fresh allocation: stale until first write-back.
	stale, err := rw.PIBStale(res.PIB)
	if err != nil || !stale {
		t.Fatalf("new page PIB stale=%v err=%v, want true", stale, err)
	}
	if err := rw.WritePage(res.Data, make([]byte, types.PageSize), res.PIB); err != nil {
		t.Fatal(err)
	}
	stale, _ = rw.PIBStale(res.PIB)
	if stale {
		t.Fatal("PIB still stale after write-back")
	}
	if err := rw.Invalidate(pid(1)); err != nil {
		t.Fatal(err)
	}
	stale, _ = rw.PIBStale(res.PIB)
	if !stale {
		t.Fatal("PIB not stale after invalidate")
	}
}

func TestInvalidationFanOut(t *testing.T) {
	tp := newTestPool(t, Config{}, 16)
	rw := tp.client(t, "rw")
	ro1 := tp.client(t, "ro1")
	ro2 := tp.client(t, "ro2")
	ro3 := tp.client(t, "ro3")

	var mu sync.Mutex
	got := map[string][]types.PageID{}
	for name, c := range map[string]*Pool{"ro1": ro1, "ro2": ro2, "ro3": ro3} {
		name := name
		c.OnInvalidate(func(p types.PageID) {
			mu.Lock()
			got[name] = append(got[name], p)
			mu.Unlock()
		})
	}
	// ro1 and ro2 hold references; ro3 does not.
	if _, err := rw.Register(pid(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := ro1.Register(pid(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := ro2.Register(pid(7)); err != nil {
		t.Fatal(err)
	}
	if err := rw.Invalidate(pid(7)); err != nil {
		t.Fatalf("invalidate: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got["ro1"]) != 1 || got["ro1"][0] != pid(7) {
		t.Fatalf("ro1 callbacks = %v", got["ro1"])
	}
	if len(got["ro2"]) != 1 {
		t.Fatalf("ro2 callbacks = %v", got["ro2"])
	}
	if len(got["ro3"]) != 0 {
		t.Fatalf("ro3 (no reference) got invalidation: %v", got["ro3"])
	}
}

func TestInvalidateBatchSingleRoundTrip(t *testing.T) {
	tp := newTestPool(t, Config{}, 16)
	rw := tp.client(t, "rw")
	ro1 := tp.client(t, "ro1")
	ro2 := tp.client(t, "ro2")

	var mu sync.Mutex
	got := map[string][]types.PageID{}
	for name, c := range map[string]*Pool{"ro1": ro1, "ro2": ro2} {
		name := name
		c.OnInvalidate(func(p types.PageID) {
			mu.Lock()
			got[name] = append(got[name], p)
			mu.Unlock()
		})
	}
	const n = 5
	pages := make([]types.PageID, 0, n)
	for i := uint32(0); i < n; i++ {
		pages = append(pages, pid(i))
		for _, c := range []*Pool{rw, ro1, ro2} {
			if _, err := c.Register(pid(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The whole MTR-sized batch must cost one page_invalidate round trip
	// and one callback per distinct holder — not one per (page, holder).
	if err := rw.InvalidateBatch(pages); err != nil {
		t.Fatalf("invalidate batch: %v", err)
	}
	met := rw.ep.Metrics()
	if sent := met.Counter("rmem.invalidate.sent").Load(); sent != 1 {
		t.Fatalf("invalidate.sent = %d, want 1 round trip for the whole batch", sent)
	}
	if sp := met.Counter("rmem.invalidate.sent_pages").Load(); sp != n {
		t.Fatalf("invalidate.sent_pages = %d, want %d", sp, n)
	}
	homeMet := tp.home.ep.Metrics()
	if fan := homeMet.Counter("rmem.home.inv_fanout").Load(); fan != 2 {
		t.Fatalf("home.inv_fanout = %d, want 2 (one callback per distinct holder)", fan)
	}
	if inv := homeMet.Counter("rmem.home.invalidations").Load(); inv != n {
		t.Fatalf("home.invalidations = %d, want %d (one per page)", inv, n)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, name := range []string{"ro1", "ro2"} {
		if len(got[name]) != n {
			t.Fatalf("%s received %d invalidations, want %d", name, len(got[name]), n)
		}
	}
	for _, c := range []*Pool{ro1, ro2} {
		if recv := c.ep.Metrics().Counter("rmem.invalidate.recv").Load(); recv != 1 {
			t.Fatalf("invalidate.recv = %d, want 1 batched callback", recv)
		}
	}
}

func TestInvalidateKicksUnresponsiveNode(t *testing.T) {
	var kicked []rdma.NodeID
	var mu sync.Mutex
	cfg := Config{
		InvalidateTimeout: 50 * time.Millisecond,
		OnUnresponsive: func(n rdma.NodeID) {
			mu.Lock()
			kicked = append(kicked, n)
			mu.Unlock()
		},
	}
	tp := newTestPool(t, cfg, 16)
	rw := tp.client(t, "rw")
	ro := tp.client(t, "ro")
	if _, err := rw.Register(pid(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := ro.Register(pid(1)); err != nil {
		t.Fatal(err)
	}
	// RO dies; invalidation must still succeed and the node be reported.
	ro.ep.Kill()
	if err := rw.Invalidate(pid(1)); err != nil {
		t.Fatalf("invalidate with dead RO: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(kicked) != 1 || kicked[0] != "ro" {
		t.Fatalf("kicked = %v, want [ro]", kicked)
	}
}

func TestUnregisterMakesPageEvictable(t *testing.T) {
	tp := newTestPool(t, Config{}, 4)
	rw := tp.client(t, "rw")
	// Fill the pool with 4 referenced pages.
	for i := uint32(0); i < 4; i++ {
		if _, err := rw.Register(pid(i)); err != nil {
			t.Fatal(err)
		}
	}
	// A 5th registration fails: everything is referenced.
	if _, err := rw.Register(pid(99)); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	// Dropping one reference frees a slot via LRU eviction.
	if err := rw.Unregister(pid(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := rw.Register(pid(99)); err != nil {
		t.Fatalf("register after unregister: %v", err)
	}
	s := tp.home.Stats()
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	tp := newTestPool(t, Config{}, 2)
	rw := tp.client(t, "rw")
	// Register and release pages 1, 2 (LRU order 1 then 2).
	for _, n := range []uint32{1, 2} {
		if _, err := rw.Register(pid(n)); err != nil {
			t.Fatal(err)
		}
		if err := rw.Unregister(pid(n)); err != nil {
			t.Fatal(err)
		}
	}
	// Page 3 evicts page 1 (oldest).
	if _, err := rw.Register(pid(3)); err != nil {
		t.Fatal(err)
	}
	res1, err := rw.Register(pid(1))
	if err != nil {
		t.Fatal(err)
	}
	if res1.Exists {
		t.Fatal("page 1 should have been evicted")
	}
	_ = res1
}

func TestElasticGrowShrink(t *testing.T) {
	tp := newTestPool(t, Config{}, 8)
	tp.addSlabNode(t, "slab1", 8)
	if got := tp.home.TotalSlots(); got != 16 {
		t.Fatalf("slots after grow = %d, want 16", got)
	}
	rw := tp.client(t, "rw")
	for i := uint32(0); i < 12; i++ {
		if _, err := rw.Register(pid(i)); err != nil {
			t.Fatal(err)
		}
		if err := rw.Unregister(pid(i)); err != nil {
			t.Fatal(err)
		}
	}
	total, err := tp.home.Shrink(8)
	if err != nil {
		t.Fatal(err)
	}
	if total != 8 {
		t.Fatalf("slots after shrink = %d, want 8", total)
	}
	// Pool still functions after shrink.
	if _, err := rw.Register(pid(100)); err != nil {
		t.Fatalf("register after shrink: %v", err)
	}
}

func TestShrinkKeepsReferencedPages(t *testing.T) {
	tp := newTestPool(t, Config{}, 8)
	tp.addSlabNode(t, "slab1", 8)
	rw := tp.client(t, "rw")
	var addrs []rdma.Addr
	for i := uint32(0); i < 10; i++ {
		res, err := rw.Register(pid(i))
		if err != nil {
			t.Fatal(err)
		}
		buf := bytes.Repeat([]byte{byte(i)}, types.PageSize)
		if err := rw.WritePage(res.Data, buf, res.PIB); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, res.Data)
	}
	_, err := tp.home.Shrink(8)
	if err != nil {
		t.Fatal(err)
	}
	// All referenced pages still readable with correct contents.
	for i, a := range addrs {
		got := make([]byte, types.PageSize)
		if err := rw.ReadPage(a, got); err != nil {
			t.Fatalf("page %d unreadable after shrink: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("page %d content = %d", i, got[0])
		}
	}
}

func TestPLFastPathXAndS(t *testing.T) {
	tp := newTestPool(t, Config{}, 16)
	rw := tp.client(t, "rw")
	ro := tp.client(t, "ro")
	res, _ := rw.Register(pid(1))
	if _, err := ro.Register(pid(1)); err != nil {
		t.Fatal(err)
	}

	if err := rw.PL().LockX(pid(1), res.PL); err != nil {
		t.Fatalf("lockX: %v", err)
	}
	// Non-sticky unlock releases immediately; RO can then S-lock fast.
	if err := rw.PL().UnlockX(pid(1), false); err != nil {
		t.Fatal(err)
	}
	if err := ro.PL().LockS(pid(1), res.PL); err != nil {
		t.Fatalf("lockS: %v", err)
	}
	if err := ro.PL().UnlockS(pid(1)); err != nil {
		t.Fatal(err)
	}
	st := rw.PL().Stats()
	if st.FastPath != 1 || st.SlowPath != 0 {
		t.Fatalf("rw stats = %+v, want 1 fast, 0 slow", st)
	}
}

func TestPLStickyRevocation(t *testing.T) {
	tp := newTestPool(t, Config{}, 16)
	rw := tp.client(t, "rw")
	ro := tp.client(t, "ro")
	res, _ := rw.Register(pid(1))
	if _, err := ro.Register(pid(1)); err != nil {
		t.Fatal(err)
	}

	// RW takes X and releases sticky: the word stays X-held.
	if err := rw.PL().LockX(pid(1), res.PL); err != nil {
		t.Fatal(err)
	}
	if err := rw.PL().UnlockX(pid(1), true); err != nil {
		t.Fatal(err)
	}
	if rw.PL().HeldCount() != 1 {
		t.Fatal("sticky latch not retained")
	}
	// Re-locking is free (sticky hit, no network).
	if err := rw.PL().LockX(pid(1), res.PL); err != nil {
		t.Fatal(err)
	}
	if err := rw.PL().UnlockX(pid(1), true); err != nil {
		t.Fatal(err)
	}
	if st := rw.PL().Stats(); st.StickyHit != 1 {
		t.Fatalf("sticky hits = %d, want 1", st.StickyHit)
	}
	// RO's S-lock goes slow path: home revokes the sticky X from RW.
	if err := ro.PL().LockS(pid(1), res.PL); err != nil {
		t.Fatalf("lockS with sticky X held: %v", err)
	}
	if rw.PL().HeldCount() != 0 {
		t.Fatal("sticky latch not revoked")
	}
	if st := rw.PL().Stats(); st.Revokes != 1 {
		t.Fatalf("revokes = %d, want 1", st.Revokes)
	}
	if err := ro.PL().UnlockS(pid(1)); err != nil {
		t.Fatal(err)
	}
}

func TestPLXWaitsForSDrain(t *testing.T) {
	tp := newTestPool(t, Config{}, 16)
	rw := tp.client(t, "rw")
	ro := tp.client(t, "ro")
	res, _ := rw.Register(pid(1))
	if _, err := ro.Register(pid(1)); err != nil {
		t.Fatal(err)
	}

	if err := ro.PL().LockS(pid(1), res.PL); err != nil {
		t.Fatal(err)
	}
	xAcquired := make(chan error, 1)
	go func() { xAcquired <- rw.PL().LockX(pid(1), res.PL) }()
	select {
	case err := <-xAcquired:
		t.Fatalf("X granted while S held (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := ro.PL().UnlockS(pid(1)); err != nil {
		t.Fatal(err)
	}
	if err := <-xAcquired; err != nil {
		t.Fatalf("X after S drain: %v", err)
	}
	if err := rw.PL().UnlockX(pid(1), false); err != nil {
		t.Fatal(err)
	}
}

func TestPLPinnedXBlocksRevokeUntilUnpin(t *testing.T) {
	tp := newTestPool(t, Config{}, 16)
	rw := tp.client(t, "rw")
	ro := tp.client(t, "ro")
	res, _ := rw.Register(pid(1))
	if _, err := ro.Register(pid(1)); err != nil {
		t.Fatal(err)
	}

	if err := rw.PL().LockX(pid(1), res.PL); err != nil {
		t.Fatal(err)
	}
	sAcquired := make(chan error, 1)
	go func() { sAcquired <- ro.PL().LockS(pid(1), res.PL) }()
	select {
	case err := <-sAcquired:
		t.Fatalf("S granted while X pinned (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := rw.PL().UnlockX(pid(1), true); err != nil { // sticky, but revoke pending
		t.Fatal(err)
	}
	if err := <-sAcquired; err != nil {
		t.Fatalf("S after X unpin: %v", err)
	}
	if err := ro.PL().UnlockS(pid(1)); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseNodeLatches(t *testing.T) {
	tp := newTestPool(t, Config{}, 16)
	rw := tp.client(t, "rw")
	ro := tp.client(t, "ro")
	res, _ := rw.Register(pid(1))
	if _, err := ro.Register(pid(1)); err != nil {
		t.Fatal(err)
	}
	if err := rw.PL().LockX(pid(1), res.PL); err != nil {
		t.Fatal(err)
	}
	// RW crashes; recovery force-releases its latches.
	rw.ep.Kill()
	if err := ro.ReleaseNodeLatches("rw"); err != nil {
		t.Fatal(err)
	}
	if err := ro.PL().LockS(pid(1), res.PL); err != nil {
		t.Fatalf("S after force release: %v", err)
	}
}

func TestSlabNodeFailure(t *testing.T) {
	tp := newTestPool(t, Config{}, 4)
	tp.addSlabNode(t, "slab1", 4)
	rw := tp.client(t, "rw")

	var lostMu sync.Mutex
	var lost []types.PageID
	rw.OnSlabFailure(func(pages []types.PageID) {
		lostMu.Lock()
		lost = append(lost, pages...)
		lostMu.Unlock()
	})
	// Fill both slabs.
	onSlab1 := 0
	for i := uint32(0); i < 8; i++ {
		res, err := rw.Register(pid(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Data.Node == "slab1" {
			onSlab1++
		}
	}
	if onSlab1 == 0 {
		t.Fatal("no pages placed on slab1; test cannot proceed")
	}
	tp.fabric.Detach("slab1")
	tp.home.HandleSlabFailure("slab1")
	lostMu.Lock()
	nLost := len(lost)
	lostMu.Unlock()
	if nLost != onSlab1 {
		t.Fatalf("lost callbacks = %d, want %d", nLost, onSlab1)
	}
	// Pool shrank but keeps serving from the surviving slab.
	if tp.home.TotalSlots() != 4 {
		t.Fatalf("slots = %d, want 4", tp.home.TotalSlots())
	}
	// Lost pages can be re-registered (fresh) into the surviving slab after
	// freeing references (the failed pages' refs were dropped with them).
	for i := uint32(0); i < 8; i++ {
		_ = rw.Unregister(pid(i))
	}
	res, err := rw.Register(pid(0))
	if err != nil {
		t.Fatalf("re-register after slab failure: %v", err)
	}
	if res.Data.Node == "slab1" {
		t.Fatal("page placed on dead slab node")
	}
}

func TestHomeReplicationAndPromotion(t *testing.T) {
	fabric := rdma.NewFabric(rdma.TestConfig())
	cfg := Config{InvalidateTimeout: 200 * time.Millisecond, LatchTimeout: time.Second}
	cfg.applyDefaults()

	masterEP := fabric.MustAttach("home")
	slaveEP := fabric.MustAttach("home2")
	NewSlabNode(masterEP, cfg)
	slabEP := fabric.MustAttach("slab1")
	NewSlabNode(slabEP, cfg)

	slave := NewSlaveHome(slaveEP, cfg)
	defer slave.Close()
	master := NewHome(masterEP, cfg, "home2")
	defer master.Close()
	if _, err := master.AddSlab("slab1", 8); err != nil {
		t.Fatal(err)
	}

	dbEP := fabric.MustAttach("rw")
	rw, err := NewPool(dbEP, cfg, "home")
	if err != nil {
		t.Fatal(err)
	}
	res, err := rw.Register(pid(1))
	if err != nil {
		t.Fatal(err)
	}
	page := bytes.Repeat([]byte{0x42}, types.PageSize)
	if err := rw.WritePage(res.Data, page, res.PIB); err != nil {
		t.Fatal(err)
	}
	// Slave rejects clients while passive.
	ro, err2 := NewPool(fabric.MustAttach("probe"), cfg, "home2")
	if err2 == nil {
		_ = ro
		t.Fatal("passive slave accepted a client")
	}

	// Master crashes; promote the slave and switch the client over.
	masterEP.Kill()
	slave.Promote()
	rw.SwitchHome("home2")

	res2, err := rw.Register(pid(1))
	if err != nil {
		t.Fatalf("register via promoted slave: %v", err)
	}
	if !res2.Exists {
		t.Fatal("replicated PAT lost the page")
	}
	if res2.Data != res.Data {
		t.Fatalf("data address changed: %v -> %v (slot mapping not replicated)", res.Data, res2.Data)
	}
	// Data survives (it lives on the slab node, not the home).
	got := make([]byte, types.PageSize)
	if err := rw.ReadPage(res2.Data, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page) {
		t.Fatal("page data lost across home failover")
	}
	// PIB is conservatively stale after promotion.
	stale, err := rw.PIBStale(res2.PIB)
	if err != nil || !stale {
		t.Fatalf("PIB after promotion stale=%v err=%v, want true", stale, err)
	}
}

func TestConcurrentRegisterUnregister(t *testing.T) {
	tp := newTestPool(t, Config{}, 64)
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		c := tp.client(t, rdma.NodeID(rune('a'+w)))
		wg.Add(1)
		go func(c *Pool) {
			defer wg.Done()
			for i := uint32(0); i < 100; i++ {
				if _, err := c.Register(pid(i % 32)); err != nil {
					t.Errorf("register: %v", err)
					return
				}
				if err := c.Unregister(pid(i % 32)); err != nil {
					t.Errorf("unregister: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	s := tp.home.Stats()
	if s.Referenced != 0 {
		t.Fatalf("referenced = %d after all unregisters", s.Referenced)
	}
}

func TestStatsCounters(t *testing.T) {
	tp := newTestPool(t, Config{}, 16)
	rw := tp.client(t, "rw")
	if _, err := rw.Register(pid(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := rw.Register(pid(1)); err != nil {
		t.Fatal(err)
	}
	s := tp.home.Stats()
	if s.Registers != 2 || s.Hits != 1 {
		t.Fatalf("registers=%d hits=%d, want 2,1", s.Registers, s.Hits)
	}
	if s.TotalSlots != 16 || s.UsedSlots != 1 {
		t.Fatalf("slots total=%d used=%d", s.TotalSlots, s.UsedSlots)
	}
}

func TestBackgroundEvictorKeepsFreeSlots(t *testing.T) {
	cfg := Config{FreeLowWater: 0.5, EvictInterval: 5 * time.Millisecond}
	tp := newTestPool(t, cfg, 8)
	rw := tp.client(t, "rw")
	for i := uint32(0); i < 8; i++ {
		if _, err := rw.Register(pid(i)); err != nil {
			t.Fatal(err)
		}
		if err := rw.Unregister(pid(i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		s := tp.home.Stats()
		if float64(s.FreeSlots)/float64(s.TotalSlots) >= 0.5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background evictor did not run: %+v", s)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSlabHeartbeatAutoDetection(t *testing.T) {
	cfg := Config{
		SlabHeartbeat:       10 * time.Millisecond,
		SlabHeartbeatMisses: 2,
		InvalidateTimeout:   100 * time.Millisecond,
	}
	tp := newTestPool(t, cfg, 4)
	tp.addSlabNode(t, "slab1", 4)
	rw := tp.client(t, "rw")
	for i := uint32(0); i < 8; i++ {
		if _, err := rw.Register(pid(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Kill the slab node; the home's heartbeat must detect it and shrink
	// the pool without any manual HandleSlabFailure call.
	tp.fabric.Detach("slab1")
	deadline := time.Now().Add(3 * time.Second)
	for tp.home.TotalSlots() != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("slab failure not auto-detected; slots = %d", tp.home.TotalSlots())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
