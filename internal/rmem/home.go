package rmem

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"polardb/internal/rdma"
	"polardb/internal/stat"
	"polardb/internal/types"
	"polardb/internal/wire"
)

// metaSlotSize is the per-page metadata footprint in the home's registered
// region: an 8-byte PL latch word followed by an 8-byte PIB word.
const metaSlotSize = 16

// pibStale / pibFresh are the PIB word values. A stale page's remote copy
// is older than the RW node's local copy.
const (
	pibFresh = uint64(0)
	pibStale = uint64(1)
)

type slabKey struct {
	node   rdma.NodeID
	region uint32
}

type slabInfo struct {
	key   slabKey
	pages int
	free  []int // free slot indexes
}

type patEntry struct {
	page    types.PageID
	slab    slabKey
	slot    int
	slotOff uint64 // metadata slot offset in home's meta region
	refs    map[rdma.NodeID]bool
	lruElem *list.Element // non-nil while refcount == 0
}

// Home is the home node of a remote memory pool instance: the slab node
// holding the first slab plus the instance-wide metadata (PAT, PIB, PRD,
// PLT) and the control plane for growth, shrink and failure handling.
type Home struct {
	ep   *rdma.Endpoint
	cfg  Config
	meta *rdma.Region

	mu       sync.Mutex
	pat      map[uint64]*patEntry
	slabs    map[slabKey]*slabInfo
	slabList []*slabInfo
	lru      *list.List // *patEntry with refcount 0; front = oldest
	metaFree []uint64
	nodes    []rdma.NodeID // node index -> id (owner index in PL words)
	nodeIdx  map[rdma.NodeID]uint16
	kicked   map[rdma.NodeID]bool
	passive  bool // slave: no client traffic until promoted

	slaveMu sync.Mutex
	slave   rdma.NodeID

	// Replication queue (replication.go): mutations mirrored to the slave
	// are enqueued under h.mu but sent by replSender with no lock held, so
	// the control plane never stalls behind slave fabric latency.
	replMu   sync.Mutex
	replCond *sync.Cond
	replQ    [][]byte
	replSeq  uint64 // ops enqueued
	replDone uint64 // ops sent (or dropped)
	replStop bool

	stats   Stats
	met     homeMetrics
	closeCh chan struct{}
	wg      sync.WaitGroup
}

// homeMetrics are the home node's pool-side counters (one per paper
// mechanism: §3.1 registration/coherency, eviction pressure).
type homeMetrics struct {
	registers     *stat.Counter // page_register requests served
	hits          *stat.Counter // registers that found the page pooled (remote hits)
	misses        *stat.Counter // registers that found nothing pooled
	evictions     *stat.Counter // pages evicted from the pool
	invalidations *stat.Counter // page_invalidate requests served
	invFanout     *stat.Counter // per-holder invalidation callbacks sent
}

func newHomeMetrics(r *stat.Registry) homeMetrics {
	return homeMetrics{
		registers:     r.Counter("rmem.home.registers"),
		hits:          r.Counter("rmem.home.hits"),
		misses:        r.Counter("rmem.home.misses"),
		evictions:     r.Counter("rmem.home.evictions"),
		invalidations: r.Counter("rmem.home.invalidations"),
		invFanout:     r.Counter("rmem.home.inv_fanout"),
	}
}

// NewHome starts a home node on ep. slave, if non-empty, names a passive
// replica home that receives every metadata mutation synchronously.
func NewHome(ep *rdma.Endpoint, cfg Config, slave rdma.NodeID) *Home {
	cfg.applyDefaults()
	h := &Home{
		ep:      ep,
		cfg:     cfg,
		meta:    ep.RegisterRegion(cfg.MetaSlots * metaSlotSize),
		pat:     make(map[uint64]*patEntry),
		slabs:   make(map[slabKey]*slabInfo),
		lru:     list.New(),
		nodeIdx: make(map[rdma.NodeID]uint16),
		kicked:  make(map[rdma.NodeID]bool),
		slave:   slave,
		met:     newHomeMetrics(ep.Metrics()),
		closeCh: make(chan struct{}),
	}
	h.replCond = sync.NewCond(&h.replMu)
	for i := cfg.MetaSlots - 1; i >= 0; i-- {
		h.metaFree = append(h.metaFree, uint64(i*metaSlotSize))
	}
	ep.RegisterHandler(cfg.method("hello"), h.handleHello)
	ep.RegisterHandler(cfg.method("reg"), h.handleRegister)
	ep.RegisterHandler(cfg.method("unreg"), h.handleUnregister)
	ep.RegisterHandler(cfg.method("inv"), h.handleInvalidate)
	ep.RegisterHandler(cfg.method("pl.slow"), h.handlePLSlow)
	ep.RegisterHandler(cfg.method("pl.releasenode"), h.handlePLReleaseNode)
	ep.RegisterHandler(cfg.method("repl"), h.handleReplicate)
	ep.RegisterHandler(cfg.method("scan"), h.handleScan)
	ep.RegisterHandler(cfg.method("droprefs"), h.handleDropRefs)
	ep.RegisterHandler(cfg.method("forceevict"), h.handleForceEvict)
	h.wg.Add(1)
	go h.replSender()
	h.wg.Add(1)
	go h.backgroundEvictor()
	if cfg.SlabHeartbeat > 0 {
		h.wg.Add(1)
		go h.slabHeartbeat()
	}
	return h
}

// slabHeartbeat detects slab node failures (§5.2): the home pings every
// node hosting slabs; after SlabHeartbeatMisses consecutive misses the
// node's pages are dropped and holders notified.
func (h *Home) slabHeartbeat() {
	defer h.wg.Done()
	misses := make(map[rdma.NodeID]int)
	for {
		select {
		case <-h.closeCh:
			return
		case <-time.After(h.cfg.SlabHeartbeat):
		}
		if h.passiveNow() {
			continue
		}
		h.mu.Lock()
		nodes := map[rdma.NodeID]bool{}
		for key := range h.slabs {
			nodes[key.node] = true
		}
		h.mu.Unlock()
		for n := range nodes {
			if n == h.ep.ID() {
				continue // the home's own slabs share its fate
			}
			//polarvet:allow fabriccost liveness probes are inherently one per slab node per tick; batching across destinations is impossible
			if _, err := h.ep.CallTimeout(n, h.cfg.method("slab.ping"), nil, h.cfg.SlabHeartbeat); err != nil {
				misses[n]++
				if misses[n] >= h.cfg.SlabHeartbeatMisses {
					delete(misses, n)
					h.HandleSlabFailure(n)
				}
			} else {
				misses[n] = 0
			}
		}
	}
}

func (h *Home) passiveNow() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.passive
}

// NewSlaveHome starts a passive replica home: it applies replicated
// metadata mutations but serves no clients until Promote is called.
func NewSlaveHome(ep *rdma.Endpoint, cfg Config) *Home {
	h := NewHome(ep, cfg, "")
	h.mu.Lock()
	h.passive = true
	h.mu.Unlock()
	return h
}

// Promote activates a slave home after the master failed. PL latch state
// is not replicated (latches die with the master; recovery releases them),
// and every PIB bit is conservatively stale, so database nodes re-validate
// pages against storage on first access.
func (h *Home) Promote() {
	h.mu.Lock()
	h.passive = false
	for _, e := range h.pat {
		h.meta.MustStore64Local(e.slotOff+8, pibStale)
	}
	h.mu.Unlock()
}

// Close stops the home's background goroutines, draining any queued
// replication first.
func (h *Home) Close() {
	close(h.closeCh)
	h.replMu.Lock()
	h.replStop = true
	h.replCond.Broadcast()
	h.replMu.Unlock()
	h.wg.Wait()
}

// Endpoint returns the home's fabric endpoint.
func (h *Home) Endpoint() *rdma.Endpoint { return h.ep }

// MetaRegionID returns the id of the RDMA-registered metadata region
// (clients build PL/PIB addresses from it).
func (h *Home) MetaRegionID() uint32 { return h.meta.ID() }

// Stats returns an occupancy snapshot.
func (h *Home) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.stats
	for _, sl := range h.slabs {
		s.Slabs++
		s.TotalSlots += sl.pages
		s.FreeSlots += len(sl.free)
	}
	s.UsedSlots = len(h.pat)
	for _, e := range h.pat {
		if len(e.refs) > 0 {
			s.Referenced++
		}
	}
	return s
}

// isKicked reports whether a node has been removed from the cluster.
func (h *Home) isKicked(n rdma.NodeID) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.kicked[n]
}

// kickNode marks a node dead and strips its references everywhere.
func (h *Home) kickNode(n rdma.NodeID) {
	h.mu.Lock()
	if h.kicked[n] {
		h.mu.Unlock()
		return
	}
	h.kicked[n] = true
	for _, e := range h.pat {
		if e.refs[n] {
			delete(e.refs, n)
			if len(e.refs) == 0 && e.lruElem == nil {
				e.lruElem = h.lru.PushBack(e)
			}
		}
	}
	h.mu.Unlock()
	if h.cfg.OnUnresponsive != nil {
		h.cfg.OnUnresponsive(n)
	}
}

// nodeIndex assigns (or returns) the small integer index for a node id,
// used as the owner field in PL words.
func (h *Home) nodeIndex(n rdma.NodeID) uint16 {
	if idx, ok := h.nodeIdx[n]; ok {
		return idx
	}
	idx := uint16(len(h.nodes))
	h.nodes = append(h.nodes, n)
	h.nodeIdx[n] = idx
	return idx
}

// AddSlab asks a slab node to create a slab of `pages` pages and adds it
// to the pool. Returns the new total slot count.
func (h *Home) AddSlab(node rdma.NodeID, pages int) (int, error) {
	if pages <= 0 {
		pages = h.cfg.SlabPages
	}
	w := wire.NewWriter(8)
	w.U32(uint32(pages))
	//polarvet:allow fabriccost slab.create mutates the slab node's allocator (mmap + region registration); the response layout is fixed but the work is remote-CPU by nature
	resp, err := h.ep.Call(node, h.cfg.method("slab.create"), w.Bytes())
	if err != nil {
		return 0, fmt.Errorf("rmem: creating slab on %s: %w", node, err)
	}
	rd := wire.NewReader(resp)
	region := rd.U32()
	got := int(rd.U32())
	if err := rd.Err(); err != nil {
		return 0, err
	}
	h.mu.Lock()
	h.addSlabLocked(slabKey{node, region}, got)
	total := 0
	for _, sl := range h.slabs {
		total += sl.pages
	}
	h.mu.Unlock()
	h.replicate(replAddSlab(node, region, got))
	h.flushReplication()
	return total, nil
}

func (h *Home) addSlabLocked(key slabKey, pages int) {
	sl := &slabInfo{key: key, pages: pages}
	for i := pages - 1; i >= 0; i-- {
		sl.free = append(sl.free, i)
	}
	h.slabs[key] = sl
	h.slabList = append(h.slabList, sl)
}

// TotalSlots returns the pool capacity in pages.
func (h *Home) TotalSlots() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	total := 0
	for _, sl := range h.slabs {
		total += sl.pages
	}
	return total
}

// Shrink reduces the pool capacity to at most targetSlots (at least one
// slab is always kept): unreferenced pages are evicted via LRU, and
// referenced pages in victim slabs are migrated to the retained slabs to
// defragment (§3.1.2: "pages are migrated in the background to
// defragment, and unused slabs are released"). Holders of migrated pages
// are notified to drop their stale remote addresses and re-register.
func (h *Home) Shrink(targetSlots int) (int, error) {
	h.mu.Lock()
	total := func() int {
		t := 0
		for _, sl := range h.slabs {
			t += sl.pages
		}
		return t
	}
	releaseEmpty := func() {
		for total() > targetSlots && len(h.slabs) > 1 {
			var victim *slabInfo
			for _, sl := range h.slabs {
				if len(sl.free) == sl.pages {
					victim = sl
					break
				}
			}
			if victim == nil {
				return
			}
			h.removeSlabLocked(victim.key)
		}
	}
	// Phase 1: LRU-evict unreferenced pages, releasing drained slabs.
	releaseEmpty()
	for total() > targetSlots && h.lru.Len() > 0 {
		h.evictLocked(h.lru.Front().Value.(*patEntry))
		releaseEmpty()
	}
	// Phase 2: defragment (§3.1.2). The emptiest slab's surviving pages —
	// all referenced, or phase 1 would have drained them — are migrated
	// into free slots of the retained slabs and the emptied slab is
	// released. Holders are notified (cb.slabfail) to drop their stale
	// remote addresses and re-register on next access. A slab whose pages
	// do not fit elsewhere is kept: referenced pages pin their slab, and
	// Shrink returns the capacity it achieved.
	for total() > targetSlots && len(h.slabs) > 1 {
		var victim *slabInfo
		freeElsewhere := 0
		for _, sl := range h.slabList {
			used := sl.pages - len(sl.free)
			if victim == nil || used < victim.pages-len(victim.free) {
				victim = sl
			}
		}
		for _, sl := range h.slabList {
			if sl != victim {
				freeElsewhere += len(sl.free)
			}
		}
		if victim == nil || victim.pages-len(victim.free) > freeElsewhere {
			break
		}
		// Reserve a destination slot per page (best-fit: fullest slab
		// first, matching allocateLocked) and mark the page stale so no
		// holder trusts bytes we may copy mid-write.
		type migration struct {
			e       *patEntry
			dst     slabKey
			dstSlot int
		}
		var moves []migration
		for _, e := range h.pat {
			if e.slab != victim.key {
				continue
			}
			var dst *slabInfo
			for _, sl := range h.slabList {
				if sl == victim || len(sl.free) == 0 {
					continue
				}
				if dst == nil || len(sl.free) < len(dst.free) {
					dst = sl
				}
			}
			slot := dst.free[len(dst.free)-1]
			dst.free = dst.free[:len(dst.free)-1]
			h.meta.MustStore64Local(e.slotOff+8, pibStale)
			moves = append(moves, migration{e, dst.key, slot})
		}
		// Detach the victim before releasing h.mu so concurrent
		// registrations cannot allocate into it mid-migration. Its region
		// stays live on the slab node until removeSlabLocked frees it.
		delete(h.slabs, victim.key)
		for i, sl := range h.slabList {
			if sl == victim {
				h.slabList = append(h.slabList[:i], h.slabList[i+1:]...)
				break
			}
		}
		h.mu.Unlock()
		// Copy page bytes with one-sided verbs, h.mu released: fabric
		// latency must not stall the control plane.
		buf := make([]byte, types.PageSize)
		failed := map[*patEntry]bool{}
		for _, mv := range moves {
			src := rdma.Addr{Node: victim.key.node, Region: victim.key.region, Off: uint64(mv.e.slot) * types.PageSize}
			dst := rdma.Addr{Node: mv.dst.node, Region: mv.dst.region, Off: uint64(mv.dstSlot) * types.PageSize}
			if err := h.ep.Read(src, buf); err != nil {
				failed[mv.e] = true
				continue
			}
			if err := h.ep.Write(dst, buf); err != nil {
				failed[mv.e] = true
			}
		}
		h.mu.Lock()
		holders := map[rdma.NodeID][]types.PageID{}
		for _, mv := range moves {
			e := mv.e
			for n := range e.refs {
				holders[n] = append(holders[n], e.page)
			}
			if failed[e] || len(e.refs) == 0 {
				// Slab node died mid-copy (page is reconstructible from
				// storage, log-before-page) or the last holder left while
				// we copied: drop the page and return the reserved slot.
				if sl, ok := h.slabs[mv.dst]; ok {
					sl.free = append(sl.free, mv.dstSlot)
				}
				h.evictLocked(e)
				continue
			}
			e.slab, e.slot = mv.dst, mv.dstSlot
			// Mirror the move on the slave as evict + re-register.
			h.replicate(replEvict(e.page))
			firstRef := true
			for n := range e.refs {
				if firstRef {
					h.replicate(replRegister(e.page, e.slab, e.slot, n))
					firstRef = false
				} else {
					h.replicate(replAddRef(e.page, n))
				}
			}
		}
		h.removeSlabLocked(victim.key)
		h.mu.Unlock()
		h.notifyHolders("cb.slabfail", holders)
		h.mu.Lock()
	}
	t := total()
	h.mu.Unlock()
	h.flushReplication()
	return t, nil
}

func (h *Home) removeSlabLocked(key slabKey) {
	delete(h.slabs, key)
	for i, sl := range h.slabList {
		if sl.key == key {
			h.slabList = append(h.slabList[:i], h.slabList[i+1:]...)
			break
		}
	}
	// Free the slab node's memory asynchronously; holding h.mu across an
	// RPC to a possibly-dead node would stall the pool.
	go func() {
		w := wire.NewWriter(8)
		w.U32(key.region)
		//polarvet:allow errdrop best-effort free to a possibly-dead slab node; its memory dies with it and the PAT no longer references the region
		_, _ = h.ep.Call(key.node, h.cfg.method("slab.free"), w.Bytes()) //polarvet:allow fabriccost slab.free tears down the slab node's allocator state; a one-sided write cannot unregister a region
	}()
	h.replicate(replFreeSlab(key.node, key.region))
}

// allocateLocked finds a free slot, evicting LRU unreferenced pages if
// necessary. Thanks to page materialization offloading, even dirty pages
// can be evicted instantaneously without flushing to storage.
func (h *Home) allocateLocked() (slabKey, int, error) {
	for {
		// Best-fit: pack into the fullest slab with space, so shrink finds
		// drainable slabs instead of allocations spread across all of them.
		var best *slabInfo
		for _, sl := range h.slabList {
			if len(sl.free) > 0 && (best == nil || len(sl.free) < len(best.free)) {
				best = sl
			}
		}
		if best != nil {
			slot := best.free[len(best.free)-1]
			best.free = best.free[:len(best.free)-1]
			return best.key, slot, nil
		}
		if h.lru.Len() == 0 {
			return slabKey{}, 0, ErrOutOfMemory
		}
		h.evictLocked(h.lru.Front().Value.(*patEntry))
	}
}

// evictLocked removes an unreferenced page from the pool.
func (h *Home) evictLocked(e *patEntry) {
	if e.lruElem != nil {
		h.lru.Remove(e.lruElem)
		e.lruElem = nil
	}
	delete(h.pat, e.page.Key())
	if sl, ok := h.slabs[e.slab]; ok {
		sl.free = append(sl.free, e.slot)
	}
	// Reset the metadata slot before reuse.
	h.meta.MustStore64Local(e.slotOff, 0)
	h.meta.MustStore64Local(e.slotOff+8, pibStale)
	h.metaFree = append(h.metaFree, e.slotOff)
	h.stats.Evictions++
	h.met.evictions.Inc()
	h.replicate(replEvict(e.page))
}

// backgroundEvictor keeps free slots above the low-water mark so that
// foreground registrations rarely pay eviction cost.
func (h *Home) backgroundEvictor() {
	defer h.wg.Done()
	if h.cfg.FreeLowWater <= 0 {
		return
	}
	for {
		select {
		case <-h.closeCh:
			return
		case <-time.After(h.cfg.EvictInterval):
		}
		h.mu.Lock()
		total, free := 0, 0
		for _, sl := range h.slabs {
			total += sl.pages
			free += len(sl.free)
		}
		if total > 0 {
			for float64(free)/float64(total) < h.cfg.FreeLowWater && h.lru.Len() > 0 {
				h.evictLocked(h.lru.Front().Value.(*patEntry))
				free++
			}
		}
		h.mu.Unlock()
	}
}

var errPassive = fmt.Errorf("rmem: home is a passive slave replica")

// activeErr rejects client traffic on a not-yet-promoted slave.
func (h *Home) activeErr() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.passive {
		return errPassive
	}
	return nil
}

// handleHello assigns (or returns) the caller's node index.
func (h *Home) handleHello(from rdma.NodeID, req []byte) ([]byte, error) {
	if err := h.activeErr(); err != nil {
		return nil, err
	}
	h.mu.Lock()
	idx := h.nodeIndex(from)
	h.mu.Unlock()
	w := wire.NewWriter(2)
	w.U16(idx)
	return w.Bytes(), nil
}

// handleRegister implements page_register: look up or allocate the page,
// add the caller to the PRD, and return the page's remote address plus the
// PL and PIB word addresses.
func (h *Home) handleRegister(from rdma.NodeID, req []byte) ([]byte, error) {
	if err := h.activeErr(); err != nil {
		return nil, err
	}
	rd := wire.NewReader(req)
	page := types.PageID{Space: types.SpaceID(rd.U32()), No: types.PageNo(rd.U32())}
	noAlloc := false
	if rd.Remaining() > 0 {
		noAlloc = rd.Bool()
	}
	if err := rd.Err(); err != nil {
		return nil, err
	}
	// Reply only after the slave mirrors this op (flush runs after the
	// unlock below: deferred calls run last-in first-out).
	defer h.flushReplication()
	h.mu.Lock()
	h.stats.Registers++
	h.met.registers.Inc()
	delete(h.kicked, from) // a registering node is alive by definition
	idx := h.nodeIndex(from)
	k := page.Key()
	e, exists := h.pat[k]
	if !exists && noAlloc {
		// Cache-pollution guard (§3.1.3): a scan checks for an existing
		// remote copy but never allocates one.
		h.met.misses.Inc()
		h.mu.Unlock()
		resp := wire.NewWriter(8)
		resp.Bool(false)
		resp.String("")
		resp.U32(0)
		resp.U64(0)
		resp.U32(h.meta.ID())
		resp.U64(0)
		resp.U16(idx)
		return resp.Bytes(), nil
	}
	if exists {
		h.stats.Hits++
		h.met.hits.Inc()
		if e.lruElem != nil {
			h.lru.Remove(e.lruElem)
			e.lruElem = nil
		}
		e.refs[from] = true
	} else {
		h.met.misses.Inc()
		if len(h.metaFree) == 0 {
			h.mu.Unlock()
			return nil, ErrMetaFull
		}
		slab, slot, err := h.allocateLocked()
		if err != nil {
			h.mu.Unlock()
			return nil, err
		}
		slotOff := h.metaFree[len(h.metaFree)-1]
		h.metaFree = h.metaFree[:len(h.metaFree)-1]
		e = &patEntry{page: page, slab: slab, slot: slot, slotOff: slotOff,
			refs: map[rdma.NodeID]bool{from: true}}
		h.pat[k] = e
		h.meta.MustStore64Local(slotOff, 0)
		h.meta.MustStore64Local(slotOff+8, pibStale) // no data written yet
		h.replicate(replRegister(page, e.slab, e.slot, from))
	}
	if exists {
		h.replicate(replAddRef(page, from))
	}
	resp := wire.NewWriter(64)
	resp.Bool(exists)
	resp.String(string(e.slab.node))
	resp.U32(e.slab.region)
	resp.U64(uint64(e.slot) * types.PageSize)
	resp.U32(h.meta.ID())
	resp.U64(e.slotOff)
	resp.U16(idx)
	h.mu.Unlock()
	return resp.Bytes(), nil
}

// handleUnregister implements page_unregister: drop the caller's reference;
// at refcount 0 the page becomes evictable (LRU).
func (h *Home) handleUnregister(from rdma.NodeID, req []byte) ([]byte, error) {
	if err := h.activeErr(); err != nil {
		return nil, err
	}
	rd := wire.NewReader(req)
	page := types.PageID{Space: types.SpaceID(rd.U32()), No: types.PageNo(rd.U32())}
	if err := rd.Err(); err != nil {
		return nil, err
	}
	defer h.flushReplication() // after the unlock below (LIFO)
	h.mu.Lock()
	defer h.mu.Unlock()
	e, ok := h.pat[page.Key()]
	if !ok {
		return nil, nil // already evicted
	}
	delete(e.refs, from)
	if len(e.refs) == 0 && e.lruElem == nil {
		e.lruElem = h.lru.PushBack(e)
	}
	h.replicate(replUnref(page, from))
	return nil, nil
}

// handleInvalidate implements page_invalidate (§3.1.4, Figure 6) for a
// batch of pages: set the home PIB bit on each, look up the PRDs, and
// synchronously set the local PIB bits on every other node holding a
// copy. The callbacks are grouped per destination node — one cb.inv RPC
// carries every invalidated page a holder references, so an MTR commit
// costs one round trip per distinct holder instead of one per
// (page, holder) pair. Unresponsive nodes are kicked so the invalidation
// always completes.
func (h *Home) handleInvalidate(from rdma.NodeID, req []byte) ([]byte, error) {
	if err := h.activeErr(); err != nil {
		return nil, err
	}
	rd := wire.NewReader(req)
	pages := make([]types.PageID, int(rd.U32()))
	for i := range pages {
		pages[i] = types.PageID{Space: types.SpaceID(rd.U32()), No: types.PageNo(rd.U32())}
	}
	if err := rd.Err(); err != nil {
		return nil, err
	}
	defer h.flushReplication()
	h.mu.Lock()
	holders := map[rdma.NodeID][]types.PageID{}
	for _, page := range pages {
		e, ok := h.pat[page.Key()]
		if !ok {
			continue // not cached remotely: nothing to invalidate
		}
		h.stats.Invalidations++
		h.met.invalidations.Inc()
		h.meta.MustStore64Local(e.slotOff+8, pibStale)
		for n := range e.refs {
			if n != from {
				holders[n] = append(holders[n], page)
			}
		}
		h.replicate(replInvalidate(page))
	}
	h.mu.Unlock()
	h.met.invFanout.Add(uint64(len(holders)))
	h.notifyHolders("cb.inv", holders)
	return nil, nil
}

// HandleSlabFailure processes a slab node crash (§5.2): every page on that
// node's slabs is dropped from the PAT; holders are told so they fall back
// to storage (or re-register from the RW's local cache).
func (h *Home) HandleSlabFailure(node rdma.NodeID) {
	h.mu.Lock()
	var lost []*patEntry
	for _, e := range h.pat {
		if e.slab.node == node {
			lost = append(lost, e)
		}
	}
	holders := make(map[rdma.NodeID][]types.PageID)
	for _, e := range lost {
		for n := range e.refs {
			holders[n] = append(holders[n], e.page)
		}
		if e.lruElem != nil {
			h.lru.Remove(e.lruElem)
			e.lruElem = nil
		}
		delete(h.pat, e.page.Key())
		h.meta.MustStore64Local(e.slotOff, 0)
		h.meta.MustStore64Local(e.slotOff+8, pibStale)
		h.metaFree = append(h.metaFree, e.slotOff)
		h.replicate(replEvict(e.page))
	}
	// Remove the dead node's slabs from the pool.
	for key := range h.slabs {
		if key.node == node {
			delete(h.slabs, key)
			for i, sl := range h.slabList {
				if sl.key == key {
					h.slabList = append(h.slabList[:i], h.slabList[i+1:]...)
					break
				}
			}
			h.replicate(replFreeSlab(key.node, key.region))
		}
	}
	h.mu.Unlock()
	h.flushReplication()
	// An unreachable holder is treated as dead, like the slab node.
	h.notifyHolders("cb.slabfail", holders)
}
