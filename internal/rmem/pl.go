package rmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"polardb/internal/rdma"
	"polardb/internal/retry"
	"polardb/internal/stat"
	"polardb/internal/types"
	"polardb/internal/wire"
)

// Global page latch (PL) word layout, one 8-byte word per PAT entry in the
// home node's RDMA-registered metadata region:
//
//	bits  0..31  shared-lock count
//	bits 32..47  owner node index (valid when X is set)
//	bit  62      exclusive flag
//
// Fast path: database nodes manipulate the word directly with RDMA CAS.
// S-lock: CAS(w -> w+1) while X is clear. X-lock: CAS(0 -> X|owner). The
// slow path is an RPC to the home node, which negotiates — revoking sticky
// X-latches from their owner — until the latch can be granted.

const plXFlag = uint64(1) << 62

func plMakeX(owner uint16) uint64 { return plXFlag | uint64(owner)<<32 }

func plIsX(w uint64) bool { return w&plXFlag != 0 }

func plOwner(w uint64) uint16 { return uint16(w >> 32) }

func plSCount(w uint64) uint32 { return uint32(w) }

// PLMode is a latch mode.
type PLMode int

// Latch modes.
const (
	PLShared PLMode = iota
	PLExclusive
)

func (m PLMode) String() string {
	if m == PLExclusive {
		return "X"
	}
	return "S"
}

type heldPL struct {
	addr rdma.Addr
	mode PLMode
	pins int // active critical sections
	// sticky X-latches are kept after the last unpin until revoked
	cond      *sync.Cond
	revokeReq bool
}

// PLManager is the database-node side of the global page latch protocol.
// It implements the RDMA-CAS fast path, falls back to home-node
// negotiation, and keeps X-latches sticky: an SMO's latches are retained
// after the SMO completes so the next SMO on the same pages pays nothing,
// and are released lazily when another node asks for them (§3.2).
type PLManager struct {
	ep       *rdma.Endpoint
	cfg      Config
	home     rdma.NodeID
	ownerIdx uint16

	mu   sync.Mutex
	held map[uint64]*heldPL

	// FastPathAcquires / SlowPathAcquires instrument Figure 14.
	stats PLStats
	met   plMetrics
}

// plMetrics mirror PLStats into the node registry (§3.2 latch paths).
type plMetrics struct {
	fast   *stat.Counter // latches taken by one RDMA CAS
	slow   *stat.Counter // latches negotiated through the home
	sticky *stat.Counter // X latches re-entered while held sticky
	revoke *stat.Counter // sticky latches surrendered to another node
}

func newPLMetrics(r *stat.Registry) plMetrics {
	return plMetrics{
		fast:   r.Counter("rmem.pl.fast"),
		slow:   r.Counter("rmem.pl.slow"),
		sticky: r.Counter("rmem.pl.sticky"),
		revoke: r.Counter("rmem.pl.revoke"),
	}
}

// PLStats counts latch-path outcomes.
type PLStats struct {
	FastPath  uint64
	SlowPath  uint64
	StickyHit uint64
	Revokes   uint64
}

// NewPLManager creates the node's latch manager. ownerIdx is the node
// index assigned by the home at registration time (carried in X words so
// other nodes can find the owner). It registers the revoke callback.
func NewPLManager(ep *rdma.Endpoint, cfg Config, home rdma.NodeID, ownerIdx uint16) *PLManager {
	cfg.applyDefaults()
	m := &PLManager{ep: ep, cfg: cfg, home: home, ownerIdx: ownerIdx, held: make(map[uint64]*heldPL), met: newPLMetrics(ep.Metrics())}
	ep.RegisterHandler(cfg.method("cb.revoke"), m.handleRevoke)
	return m
}

// Stats returns a copy of the latch statistics.
func (m *PLManager) Stats() PLStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// SetHome repoints the manager after a home failover. All sticky state is
// dropped; latches on the old home are gone with it.
func (m *PLManager) SetHome(home rdma.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.home = home
	m.held = make(map[uint64]*heldPL)
}

// LockX acquires the page's global latch exclusively. plAddr is the latch
// word address returned by page_register.
func (m *PLManager) LockX(page types.PageID, plAddr rdma.Addr) error {
	k := page.Key()
	m.mu.Lock()
	if h, ok := m.held[k]; ok && h.mode == PLExclusive {
		// Sticky hit: we still own the X latch from a previous SMO.
		h.pins++
		h.addr = plAddr
		m.stats.StickyHit++
		m.met.sticky.Inc()
		m.mu.Unlock()
		return nil
	}
	m.mu.Unlock()

	// Fast path: one RDMA CAS.
	want := plMakeX(m.ownerIdx)
	if _, ok, err := m.ep.CAS64(plAddr, 0, want); err != nil {
		return err
	} else if ok {
		m.record(k, plAddr, PLExclusive, true)
		return nil
	}
	// Slow path: negotiate through the home node.
	if err := m.slowAcquire(page, PLExclusive); err != nil {
		return err
	}
	m.record(k, plAddr, PLExclusive, false)
	return nil
}

// UnlockX unpins an X latch. If sticky is true the latch is retained
// (released lazily on revocation); otherwise it is released immediately
// once no pins remain.
func (m *PLManager) UnlockX(page types.PageID, sticky bool) error {
	k := page.Key()
	m.mu.Lock()
	h, ok := m.held[k]
	if !ok || h.mode != PLExclusive {
		m.mu.Unlock()
		return fmt.Errorf("%w: unlockX %s", ErrNotRegistered, page)
	}
	h.pins--
	if h.pins > 0 {
		m.mu.Unlock()
		return nil
	}
	if sticky && !h.revokeReq {
		h.cond.Broadcast()
		m.mu.Unlock()
		return nil
	}
	delete(m.held, k)
	addr := h.addr
	h.cond.Broadcast()
	m.mu.Unlock()
	return m.releaseX(addr)
}

func (m *PLManager) releaseX(addr rdma.Addr) error {
	_, ok, err := m.ep.CAS64(addr, plMakeX(m.ownerIdx), 0)
	if err != nil {
		return err
	}
	if !ok {
		// The home may have force-released it (node kick / recovery).
		return nil
	}
	return nil
}

// LockS acquires the latch in shared mode (RO traversals).
func (m *PLManager) LockS(page types.PageID, plAddr rdma.Addr) error {
	k := page.Key()
	m.mu.Lock()
	if h, ok := m.held[k]; ok && h.mode == PLShared {
		h.pins++
		m.mu.Unlock()
		return nil
	}
	m.mu.Unlock()

	// Fast path: a few CAS attempts to bump the S count.
	for attempt := 0; attempt < 3; attempt++ {
		w, err := m.ep.Load64(plAddr)
		if err != nil {
			return err
		}
		if plIsX(w) {
			break
		}
		if _, ok, err := m.ep.CAS64(plAddr, w, w+1); err != nil {
			return err
		} else if ok {
			m.record(k, plAddr, PLShared, true)
			return nil
		}
	}
	if err := m.slowAcquire(page, PLShared); err != nil {
		return err
	}
	m.record(k, plAddr, PLShared, false)
	return nil
}

// UnlockS releases a shared latch (S latches are never sticky).
func (m *PLManager) UnlockS(page types.PageID) error {
	k := page.Key()
	m.mu.Lock()
	h, ok := m.held[k]
	if !ok || h.mode != PLShared {
		m.mu.Unlock()
		return fmt.Errorf("%w: unlockS %s", ErrNotRegistered, page)
	}
	h.pins--
	if h.pins > 0 {
		m.mu.Unlock()
		return nil
	}
	delete(m.held, k)
	addr := h.addr
	m.mu.Unlock()
	for {
		w, err := m.ep.Load64(addr)
		if err != nil {
			return err
		}
		if plSCount(w) == 0 {
			return nil // force-released by the home
		}
		if _, ok, err := m.ep.CAS64(addr, w, w-1); err != nil {
			return err
		} else if ok {
			return nil
		}
	}
}

func (m *PLManager) record(k uint64, addr rdma.Addr, mode PLMode, fast bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := &heldPL{addr: addr, mode: mode, pins: 1}
	h.cond = sync.NewCond(&m.mu)
	m.held[k] = h
	if fast {
		m.stats.FastPath++
		m.met.fast.Inc()
	} else {
		m.stats.SlowPath++
		m.met.slow.Inc()
	}
}

// slowAcquire asks the home node to negotiate the latch.
func (m *PLManager) slowAcquire(page types.PageID, mode PLMode) error {
	w := wire.NewWriter(16)
	w.U32(uint32(page.Space))
	w.U32(uint32(page.No))
	w.U8(uint8(mode))
	w.U16(m.ownerIdx)
	//polarvet:allow fabriccost pl.slow must run home-side code: the home parks the request, revokes the current owner and hands the latch over — not expressible as a one-sided write
	_, err := m.ep.CallTimeout(m.home, m.cfg.method("pl.slow"), w.Bytes(), m.cfg.LatchTimeout)
	if err != nil {
		return fmt.Errorf("%w: %s %s via home: %v", ErrLatchTimeout, mode, page, err)
	}
	return nil
}

// handleRevoke is called (via the home) when another node needs a latch we
// hold sticky. We release as soon as the current critical section ends.
func (m *PLManager) handleRevoke(from rdma.NodeID, req []byte) ([]byte, error) {
	rd := wire.NewReader(req)
	page := types.PageID{Space: types.SpaceID(rd.U32()), No: types.PageNo(rd.U32())}
	if err := rd.Err(); err != nil {
		return nil, err
	}
	k := page.Key()
	m.mu.Lock()
	h, ok := m.held[k]
	if !ok || h.mode != PLExclusive {
		m.mu.Unlock()
		return nil, nil // already released
	}
	m.stats.Revokes++
	m.met.revoke.Inc()
	h.revokeReq = true
	for h.pins > 0 {
		h.cond.Wait()
	}
	if m.held[k] != h {
		m.mu.Unlock()
		return nil, nil // released concurrently
	}
	delete(m.held, k)
	addr := h.addr
	m.mu.Unlock()
	if err := m.releaseX(addr); err != nil {
		return nil, err
	}
	return nil, nil
}

// ReleaseAll drops every latch this node holds (planned shutdown: the
// paper's RW actively releases all PL locks before handover).
func (m *PLManager) ReleaseAll() {
	m.mu.Lock()
	var toRelease []heldPL
	for k, h := range m.held {
		if h.pins == 0 || h.mode == PLShared {
			toRelease = append(toRelease, *h)
			delete(m.held, k)
		}
	}
	m.mu.Unlock()
	for _, h := range toRelease {
		if h.mode == PLExclusive {
			_ = m.releaseX(h.addr)
		} else {
			for {
				w, err := m.ep.Load64(h.addr)
				if err != nil || plSCount(w) == 0 {
					break
				}
				_, ok, err := m.ep.CAS64(h.addr, w, w-1)
				if err != nil || ok {
					break
				}
			}
		}
	}
}

// HeldCount reports how many latches are currently held (incl. sticky).
func (m *PLManager) HeldCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.held)
}

var errLatchBusy = errors.New("rmem: latch busy")

// homeGrant negotiates a latch grant on the home node's local word. It
// revokes sticky X holders and waits for S counts to drain.
func (h *Home) homeGrant(page types.PageID, mode PLMode, requester uint16) error {
	b := retry.NewBackoff(200*time.Microsecond, h.cfg.LatchTimeout)
	for {
		h.mu.Lock()
		e, ok := h.pat[page.Key()]
		if !ok {
			h.mu.Unlock()
			return fmt.Errorf("%w: latch on unregistered page %s", ErrNotRegistered, page)
		}
		slotOff := e.slotOff
		h.mu.Unlock()

		w, err := h.meta.Load64Local(slotOff)
		if err != nil {
			return err
		}
		switch {
		case mode == PLExclusive && w == 0:
			if _, ok := h.meta.MustCAS64Local(slotOff, 0, plMakeX(requester)); ok {
				return nil
			}
		case mode == PLShared && !plIsX(w):
			if _, ok := h.meta.MustCAS64Local(slotOff, w, w+1); ok {
				return nil
			}
		case plIsX(w):
			owner := plOwner(w)
			h.revokeFromOwner(page, owner)
		}
		if !b.Sleep() {
			return fmt.Errorf("%w: %s on %s", ErrLatchTimeout, mode, page)
		}
	}
}

// revokeFromOwner asks the owning node to release its sticky X latch.
func (h *Home) revokeFromOwner(page types.PageID, owner uint16) {
	h.mu.Lock()
	var node rdma.NodeID
	if int(owner) < len(h.nodes) {
		node = h.nodes[owner]
	}
	slotOff := uint64(0)
	if e, ok := h.pat[page.Key()]; ok {
		slotOff = e.slotOff
	}
	h.mu.Unlock()
	if node == "" {
		return
	}
	w := wire.NewWriter(8)
	w.U32(uint32(page.Space))
	w.U32(uint32(page.No))
	//polarvet:allow fabriccost the revoke callback must run owner-side code (drain local readers, write back, release); its completion is the handover signal
	_, err := h.ep.CallTimeout(node, h.cfg.method("cb.revoke"), w.Bytes(), h.cfg.InvalidateTimeout)
	if err != nil {
		// Owner unreachable (crashed): force-release so the cluster makes
		// progress; recovery will have cleared its state.
		cur := h.meta.MustLoad64Local(slotOff)
		if plIsX(cur) && plOwner(cur) == owner {
			h.meta.MustCAS64Local(slotOff, cur, 0)
		}
		if h.cfg.OnUnresponsive != nil {
			h.cfg.OnUnresponsive(node)
		}
	}
}

// handlePLSlow is the home-side slow path RPC.
func (h *Home) handlePLSlow(from rdma.NodeID, req []byte) ([]byte, error) {
	rd := wire.NewReader(req)
	page := types.PageID{Space: types.SpaceID(rd.U32()), No: types.PageNo(rd.U32())}
	mode := PLMode(rd.U8())
	requester := rd.U16()
	if err := rd.Err(); err != nil {
		return nil, err
	}
	if err := h.homeGrant(page, mode, requester); err != nil {
		return nil, err
	}
	return nil, nil
}

// handlePLReleaseNode force-releases every latch owned by a crashed node
// (recovery step 6 of §5.1).
func (h *Home) handlePLReleaseNode(from rdma.NodeID, req []byte) ([]byte, error) {
	rd := wire.NewReader(req)
	node := rdma.NodeID(rd.String())
	if err := rd.Err(); err != nil {
		return nil, err
	}
	h.ReleaseNodeLatches(node)
	return nil, nil
}

// ReleaseNodeLatches clears every X latch owned by node in the PLT. The
// sweep runs in place under the region write lock (WithBytesLocal), so
// it is one atomic pass: no survivor can grab a latch word between the
// scan of one slot and the clear of the next, and the crashed owner's
// in-flight CAS retries cannot interleave half-cleared state.
func (h *Home) ReleaseNodeLatches(node rdma.NodeID) {
	h.mu.Lock()
	var idx uint16
	found := false
	for i, n := range h.nodes {
		if n == node {
			idx = uint16(i)
			found = true
			break
		}
	}
	if !found {
		h.mu.Unlock()
		return
	}
	offs := make([]uint64, 0, len(h.pat))
	for _, e := range h.pat {
		offs = append(offs, e.slotOff)
	}
	h.mu.Unlock()
	err := h.meta.WithBytesLocal(0, h.meta.Len(), func(b []byte) error {
		for _, off := range offs {
			w := binary.LittleEndian.Uint64(b[off:])
			if plIsX(w) && plOwner(w) == idx {
				binary.LittleEndian.PutUint64(b[off:], 0)
			}
		}
		return nil
	})
	if err != nil {
		// The bounds come from the region's own length: failure is an
		// addressing bug, same contract as the Must*Local accessors.
		panic(fmt.Sprintf("rmem: PLT sweep: %v", err))
	}
}
