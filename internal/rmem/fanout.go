package rmem

import (
	"polardb/internal/rdma"
	"polardb/internal/types"
	"polardb/internal/wire"
)

// notifyHolders delivers a page-list callback (cb.inv, cb.slabfail) to
// reference holders, batched per destination: each node receives one RPC
// carrying every affected page it holds, instead of one round trip per
// (page, holder) pair. This is the single implementation behind the
// §3.1.4 invalidation fan-out, slab-failure notification and forced
// eviction; the callback wire format is uniformly count + page ids.
// Unresponsive holders are kicked so the notification always completes
// (the copy they failed to drop dies with their references).
func (h *Home) notifyHolders(method string, holders map[rdma.NodeID][]types.PageID) {
	for n, pages := range holders {
		if h.isKicked(n) || len(pages) == 0 {
			continue
		}
		w := wire.NewWriter(4 + 8*len(pages))
		w.U32(uint32(len(pages)))
		for _, pg := range pages {
			w.U32(uint32(pg.Space))
			w.U32(uint32(pg.No))
		}
		// One callback per distinct destination node, already carrying that
		// node's whole page list: batched per holder by construction.
		//polarvet:allow fabriccost the iteration is over distinct destination nodes and each receives a single batched RPC; there is nothing left to coalesce
		if _, err := h.ep.CallTimeout(n, h.cfg.method(method), w.Bytes(), h.cfg.InvalidateTimeout); err != nil {
			h.kickNode(n)
		}
	}
}

// holdersOf builds a single-page holder map for notifyHolders.
func holdersOf(nodes []rdma.NodeID, page types.PageID) map[rdma.NodeID][]types.PageID {
	out := make(map[rdma.NodeID][]types.PageID, len(nodes))
	for _, n := range nodes {
		out[n] = []types.PageID{page}
	}
	return out
}
