package rmem

import (
	"polardb/internal/rdma"
	"polardb/internal/types"
	"polardb/internal/wire"
)

// ScanEntry describes one page resident in the remote memory pool, as
// reported to a recovering RW node (§5.1 step 5: the new RW scans the
// pool, evicting pages whose invalidation bit is set and pages newer than
// the redo tail).
type ScanEntry struct {
	Page  types.PageID
	Data  rdma.Addr // one-sided address of the page data
	Stale bool      // home PIB bit
}

// Scan lists every page in the pool (home-side; also exposed via RPC).
func (h *Home) Scan() []ScanEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]ScanEntry, 0, len(h.pat))
	for _, e := range h.pat {
		pib := h.meta.MustLoad64Local(e.slotOff + 8)
		out = append(out, ScanEntry{
			Page:  e.page,
			Data:  rdma.Addr{Node: e.slab.node, Region: e.slab.region, Off: uint64(e.slot) * types.PageSize},
			Stale: pib != pibFresh,
		})
	}
	return out
}

// ForceEvict removes a page from the pool regardless of references,
// notifying reference holders so they drop their local copies. Used by RW
// recovery to purge pages that are stale or ahead of the durable redo.
func (h *Home) ForceEvict(page types.PageID) {
	h.mu.Lock()
	e, ok := h.pat[page.Key()]
	if !ok {
		h.mu.Unlock()
		return
	}
	holders := make([]rdma.NodeID, 0, len(e.refs))
	for n := range e.refs {
		holders = append(holders, n)
	}
	e.refs = map[rdma.NodeID]bool{}
	h.evictLocked(e)
	h.mu.Unlock()
	h.flushReplication()

	// Reuse the invalidation callback: holders mark their local copy
	// stale and will re-register on next access.
	h.notifyHolders("cb.inv", holdersOf(holders, page))
}

// DropNodeRefs removes a (dead) node from every page's reference
// directory, so its references neither pin pages nor cause invalidation
// fan-out timeouts. RW recovery calls this for the crashed node before
// scanning the pool (§5.1 step 5).
func (h *Home) DropNodeRefs(node rdma.NodeID) {
	h.kickNode(node)
}

// handleDropRefs serves DropNodeRefs over RPC.
func (h *Home) handleDropRefs(from rdma.NodeID, req []byte) ([]byte, error) {
	rd := wire.NewReader(req)
	node := rdma.NodeID(rd.String())
	if err := rd.Err(); err != nil {
		return nil, err
	}
	h.DropNodeRefs(node)
	return nil, nil
}

// DropNodeRefs (client side) tells the home a database node is gone.
func (p *Pool) DropNodeRefs(node rdma.NodeID) error {
	w := wire.NewWriter(16)
	w.String(string(node))
	_, err := p.ep.Call(p.Home(), p.cfg.method("droprefs"), w.Bytes())
	return err
}

// handleScan serves the pool scan over RPC for a remote recovery driver.
func (h *Home) handleScan(from rdma.NodeID, req []byte) ([]byte, error) {
	entries := h.Scan()
	w := wire.NewWriter(32 * len(entries))
	w.U32(uint32(len(entries)))
	for _, e := range entries {
		w.U32(uint32(e.Page.Space))
		w.U32(uint32(e.Page.No))
		w.String(string(e.Data.Node))
		w.U32(e.Data.Region)
		w.U64(e.Data.Off)
		w.Bool(e.Stale)
	}
	return w.Bytes(), nil
}

// handleForceEvict serves ForceEvict over RPC.
func (h *Home) handleForceEvict(from rdma.NodeID, req []byte) ([]byte, error) {
	rd := wire.NewReader(req)
	page := types.PageID{Space: types.SpaceID(rd.U32()), No: types.PageNo(rd.U32())}
	if err := rd.Err(); err != nil {
		return nil, err
	}
	h.ForceEvict(page)
	return nil, nil
}

// ScanRemote lists the pool contents from a database node.
func (p *Pool) ScanRemote() ([]ScanEntry, error) {
	resp, err := p.ep.Call(p.Home(), p.cfg.method("scan"), nil)
	if err != nil {
		return nil, err
	}
	rd := wire.NewReader(resp)
	n := int(rd.U32())
	out := make([]ScanEntry, n)
	for i := range out {
		out[i].Page = types.PageID{Space: types.SpaceID(rd.U32()), No: types.PageNo(rd.U32())}
		out[i].Data = rdma.Addr{Node: rdma.NodeID(rd.String()), Region: rd.U32(), Off: rd.U64()}
		out[i].Stale = rd.Bool()
	}
	return out, rd.Err()
}

// ForceEvict purges a page from the pool from a database node.
func (p *Pool) ForceEvict(page types.PageID) error {
	_, err := p.ep.Call(p.Home(), p.cfg.method("forceevict"), p.pageReq(page))
	return err
}
