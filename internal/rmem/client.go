package rmem

import (
	"fmt"
	"sync"

	"polardb/internal/rdma"
	"polardb/internal/stat"
	"polardb/internal/types"
	"polardb/internal/wire"
)

// RegisterResult is what page_register returns: whether the page already
// existed in the pool, the one-sided address of its data, and the
// addresses of its PL latch and PIB invalidation words.
type RegisterResult struct {
	Exists bool
	Data   rdma.Addr
	PL     rdma.Addr
	PIB    rdma.Addr
}

// Pool is the librmem client on a database node. Page data is moved with
// one-sided RDMA verbs; registration, invalidation and latch negotiation
// are RPCs to the home node.
type Pool struct {
	ep  *rdma.Endpoint
	cfg Config
	met poolMetrics

	mu       sync.Mutex
	home     rdma.NodeID
	ownerIdx uint16
	pl       *PLManager

	invalidateFn func(types.PageID)
	slabFailFn   func([]types.PageID)
}

// poolMetrics are the librmem client-side counters, one per §3.1 API
// call plus the two home-initiated callbacks.
type poolMetrics struct {
	register   *stat.Counter // page_register round trips
	unregister *stat.Counter // page_unregister round trips
	pageRead   *stat.Counter // one-sided page_read verbs
	pageWrite  *stat.Counter // one-sided page_write verbs
	pibCheck     *stat.Counter // one-sided PIB staleness probes
	invSent      *stat.Counter // page_invalidate round trips issued (RW); one per batch
	invSentPages *stat.Counter // pages carried by those batches
	invRecv      *stat.Counter // invalidation callbacks received; one per batch
	slabFail     *stat.Counter // pages reported lost to slab crashes
}

func newPoolMetrics(r *stat.Registry) poolMetrics {
	return poolMetrics{
		register:     r.Counter("rmem.register.ops"),
		unregister:   r.Counter("rmem.unregister.ops"),
		pageRead:     r.Counter("rmem.page_read.ops"),
		pageWrite:    r.Counter("rmem.page_write.ops"),
		pibCheck:     r.Counter("rmem.pib_check.ops"),
		invSent:      r.Counter("rmem.invalidate.sent"),
		invSentPages: r.Counter("rmem.invalidate.sent_pages"),
		invRecv:      r.Counter("rmem.invalidate.recv"),
		slabFail:     r.Counter("rmem.slabfail.pages"),
	}
}

// NewPool connects a database node to the pool served by home. The first
// round trip learns the node's owner index (used in PL latch words).
func NewPool(ep *rdma.Endpoint, cfg Config, home rdma.NodeID) (*Pool, error) {
	cfg.applyDefaults()
	p := &Pool{ep: ep, cfg: cfg, met: newPoolMetrics(ep.Metrics()), home: home}
	//polarvet:allow fabriccost the hello handshake allocates this node's owner index in the home's directory; server-side state assignment cannot be a one-sided read
	resp, err := ep.Call(home, cfg.method("hello"), nil)
	if err != nil {
		return nil, fmt.Errorf("rmem: connecting to home %s: %w", home, err)
	}
	rd := wire.NewReader(resp)
	p.ownerIdx = rd.U16()
	if err := rd.Err(); err != nil {
		return nil, err
	}
	p.pl = NewPLManager(ep, cfg, home, p.ownerIdx)
	ep.RegisterHandler(cfg.method("cb.inv"), p.handleInvalidateCB)
	ep.RegisterHandler(cfg.method("cb.slabfail"), p.handleSlabFailCB)
	return p, nil
}

// PL returns the node's global page latch manager.
func (p *Pool) PL() *PLManager { return p.pl }

// OwnerIdx returns the node index the home assigned to this node.
func (p *Pool) OwnerIdx() uint16 { return p.ownerIdx }

// Home returns the current home node id.
func (p *Pool) Home() rdma.NodeID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.home
}

// SwitchHome repoints the client after a home failover (all cached remote
// addresses become invalid; callers must drop them and re-register).
func (p *Pool) SwitchHome(home rdma.NodeID) {
	p.mu.Lock()
	p.home = home
	p.mu.Unlock()
	p.pl.SetHome(home)
}

// OnInvalidate installs the callback run when the home invalidates a page
// this node holds (it must be lock-light: it runs on the RPC path of the
// RW node's page_invalidate).
func (p *Pool) OnInvalidate(fn func(types.PageID)) { p.invalidateFn = fn }

// OnSlabFailure installs the callback run when pages are lost to a slab
// node crash.
func (p *Pool) OnSlabFailure(fn func([]types.PageID)) { p.slabFailFn = fn }

func (p *Pool) pageReq(page types.PageID) []byte {
	w := wire.NewWriter(8)
	w.U32(uint32(page.Space))
	w.U32(uint32(page.No))
	return w.Bytes()
}

// Register implements page_register: obtain the page's remote address,
// incrementing its reference count (allocating it if absent).
func (p *Pool) Register(page types.PageID) (RegisterResult, error) {
	return p.register(page, false)
}

// RegisterIfCached is page_register with the scan-pollution guard: it
// takes a reference only if the page is already in the pool, and never
// allocates (§3.1.3: full-table-scan pages are not written into remote
// memory). Exists=false means no reference was taken.
func (p *Pool) RegisterIfCached(page types.PageID) (RegisterResult, error) {
	return p.register(page, true)
}

func (p *Pool) register(page types.PageID, noAlloc bool) (RegisterResult, error) {
	p.met.register.Inc()
	w := wire.NewWriter(12)
	w.U32(uint32(page.Space))
	w.U32(uint32(page.No))
	w.Bool(noAlloc)
	resp, err := p.ep.Call(p.Home(), p.cfg.method("reg"), w.Bytes())
	if err != nil {
		return RegisterResult{}, err
	}
	rd := wire.NewReader(resp)
	var res RegisterResult
	res.Exists = rd.Bool()
	slabNode := rdma.NodeID(rd.String())
	slabRegion := rd.U32()
	dataOff := rd.U64()
	metaRegion := rd.U32()
	slotOff := rd.U64()
	idx := rd.U16()
	if err := rd.Err(); err != nil {
		return RegisterResult{}, err
	}
	p.mu.Lock()
	p.ownerIdx = idx
	p.mu.Unlock()
	if noAlloc && !res.Exists {
		return res, nil // no reference taken
	}
	home := p.Home()
	res.Data = rdma.Addr{Node: slabNode, Region: slabRegion, Off: dataOff}
	res.PL = rdma.Addr{Node: home, Region: metaRegion, Off: slotOff}
	res.PIB = rdma.Addr{Node: home, Region: metaRegion, Off: slotOff + 8}
	return res, nil
}

// Unregister implements page_unregister: drop this node's reference.
func (p *Pool) Unregister(page types.PageID) error {
	p.met.unregister.Inc()
	_, err := p.ep.Call(p.Home(), p.cfg.method("unreg"), p.pageReq(page))
	return err
}

// ReadPage implements page_read: one-sided RDMA read of the page into buf.
func (p *Pool) ReadPage(data rdma.Addr, buf []byte) error {
	p.met.pageRead.Inc()
	return p.ep.Read(data, buf)
}

// WritePage implements page_write: one-sided RDMA write of the page, then
// clear the PIB bit — the remote copy is now the latest version.
func (p *Pool) WritePage(data rdma.Addr, buf []byte, pib rdma.Addr) error {
	p.met.pageWrite.Inc()
	if err := p.ep.Write(data, buf); err != nil {
		return err
	}
	var zero [8]byte
	return p.ep.Write(pib, zero[:])
}

// PIBStale reads the page's home PIB word with a one-sided read: true
// means the remote copy is outdated (the RW holds a newer local version).
//polarvet:fabric O(1) exactly one one-sided load of the PIB word
func (p *Pool) PIBStale(pib rdma.Addr) (bool, error) {
	p.met.pibCheck.Inc()
	v, err := p.ep.Load64(pib)
	if err != nil {
		return false, err
	}
	return v != pibFresh, nil
}

// Invalidate implements page_invalidate (RW only) for a single page:
// synchronously mark all copies stale, on the home and on every RO local
// cache.
func (p *Pool) Invalidate(page types.PageID) error {
	return p.InvalidateBatch([]types.PageID{page})
}

// InvalidateBatch implements page_invalidate for every page an MTR wrote,
// in one round trip: the home sets each page's PIB bit and notifies each
// holder once with its whole affected-page list, so the per-commit
// coherence cost is O(distinct holders), not O(pages × holders).
//polarvet:fabric O(1) one batched page_invalidate round trip per call
func (p *Pool) InvalidateBatch(pages []types.PageID) error {
	if len(pages) == 0 {
		return nil
	}
	p.met.invSent.Inc()
	p.met.invSentPages.Add(uint64(len(pages)))
	w := wire.NewWriter(4 + 8*len(pages))
	w.U32(uint32(len(pages)))
	for _, pg := range pages {
		w.U32(uint32(pg.Space))
		w.U32(uint32(pg.No))
	}
	_, err := p.ep.Call(p.Home(), p.cfg.method("inv"), w.Bytes())
	return err
}

// ReleaseNodeLatches asks the home to force-release all PL latches held by
// node (recovery step 6).
func (p *Pool) ReleaseNodeLatches(node rdma.NodeID) error {
	w := wire.NewWriter(16)
	w.String(string(node))
	_, err := p.ep.Call(p.Home(), p.cfg.method("pl.releasenode"), w.Bytes())
	return err
}

// handleInvalidateCB serves the home's batched invalidation callback:
// count + page ids, every page this node holds that the commit stalled.
func (p *Pool) handleInvalidateCB(from rdma.NodeID, req []byte) ([]byte, error) {
	rd := wire.NewReader(req)
	pages := make([]types.PageID, int(rd.U32()))
	for i := range pages {
		pages[i] = types.PageID{Space: types.SpaceID(rd.U32()), No: types.PageNo(rd.U32())}
	}
	if err := rd.Err(); err != nil {
		return nil, err
	}
	p.met.invRecv.Inc()
	if p.invalidateFn != nil {
		for _, page := range pages {
			p.invalidateFn(page)
		}
	}
	return nil, nil
}

func (p *Pool) handleSlabFailCB(from rdma.NodeID, req []byte) ([]byte, error) {
	rd := wire.NewReader(req)
	n := int(rd.U32())
	pages := make([]types.PageID, n)
	for i := range pages {
		pages[i] = types.PageID{Space: types.SpaceID(rd.U32()), No: types.PageNo(rd.U32())}
	}
	if err := rd.Err(); err != nil {
		return nil, err
	}
	p.met.slabFail.Add(uint64(len(pages)))
	if p.slabFailFn != nil {
		p.slabFailFn(pages)
	}
	return nil, nil
}
