// Package rmem implements the disaggregated remote memory pool of PolarDB
// Serverless (§3.1): slab nodes exposing Page Arrays over one-sided RDMA,
// and a home node holding the instance metadata —
//
//	PAT (Page Address Table)      page -> (slab node, offset, refcount)
//	PIB (Page Invalidation Bitmap) page -> stale bit, RDMA-readable
//	PRD (Page Reference Directory) page -> database nodes holding copies
//	PLT (Page Latch Table)         page -> global latch word, RDMA-CAS-able
//
// Database nodes use the librmem client (Pool) with the paper's five-call
// interface: page_register / page_unregister / page_read / page_write /
// page_invalidate. Page data moves exclusively through one-sided verbs;
// only control operations (registration, invalidation fan-out, latch slow
// path) are RPCs to the home node.
//
// The home node's metadata is synchronously replicated to a slave home
// (§5.2) so a home crash does not lose the pool.
package rmem

import (
	"errors"
	"time"

	"polardb/internal/rdma"
)

// Errors returned by the pool.
var (
	// ErrOutOfMemory means no slab has a free slot and nothing is evictable
	// (every cached page is referenced).
	ErrOutOfMemory = errors.New("rmem: remote memory pool exhausted")
	// ErrNotRegistered is returned for operations on pages the caller has
	// not registered.
	ErrNotRegistered = errors.New("rmem: page not registered")
	// ErrLatchTimeout means a global page latch could not be acquired.
	ErrLatchTimeout = errors.New("rmem: page latch acquisition timed out")
	// ErrMetaFull means the home node's metadata region is exhausted.
	ErrMetaFull = errors.New("rmem: home metadata region full")
)

// Config parameterizes a remote memory pool instance.
type Config struct {
	// Instance namespaces the pool's RPC methods, so several pools can
	// share a fabric.
	Instance string
	// SlabPages is the number of pages per slab (the paper's slabs are
	// 1 GB of 16 KB pages; we default to 256 4 KB pages = 1 MB).
	SlabPages int
	// MetaSlots caps the number of pages the home can track at once.
	MetaSlots int
	// InvalidateTimeout bounds the per-node invalidation fan-out; an RO
	// that does not respond in time is reported to OnUnresponsive and
	// kicked out of the reference directory so the invalidation succeeds.
	InvalidateTimeout time.Duration
	// LatchTimeout bounds slow-path global latch acquisition.
	LatchTimeout time.Duration
	// FreeLowWater triggers the background evictor when the fraction of
	// free slots drops below it (0 disables).
	FreeLowWater float64
	// EvictInterval is the background evictor period.
	EvictInterval time.Duration
	// SlabHeartbeat is how often the home pings its slab nodes; a node
	// missing SlabHeartbeatMisses pings is declared failed and its pages
	// dropped (§5.2). 0 disables detection (tests drive it manually).
	SlabHeartbeat       time.Duration
	SlabHeartbeatMisses int
	// OnUnresponsive is invoked (outside pool locks) when a database node
	// fails to acknowledge an invalidation; the cluster manager uses it to
	// kick the node.
	OnUnresponsive func(node rdma.NodeID)
}

func (c *Config) applyDefaults() {
	if c.Instance == "" {
		c.Instance = "pool"
	}
	if c.SlabPages == 0 {
		c.SlabPages = 256
	}
	if c.MetaSlots == 0 {
		c.MetaSlots = 1 << 16
	}
	if c.InvalidateTimeout == 0 {
		c.InvalidateTimeout = time.Second
	}
	if c.LatchTimeout == 0 {
		c.LatchTimeout = 5 * time.Second
	}
	if c.EvictInterval == 0 {
		c.EvictInterval = 50 * time.Millisecond
	}
	if c.SlabHeartbeatMisses == 0 {
		c.SlabHeartbeatMisses = 3
	}
}

func (c *Config) method(op string) string { return "rmem." + c.Instance + "." + op }

// Stats is a snapshot of the pool's occupancy.
type Stats struct {
	Slabs         int
	TotalSlots    int
	UsedSlots     int
	FreeSlots     int
	Referenced    int // used slots with refcount > 0
	Registers     uint64
	Hits          uint64 // registers that found the page cached
	Evictions     uint64
	Invalidations uint64
}
