package rmem

import (
	"testing"

	"polardb/internal/rdma"
	"polardb/internal/types"
)

// Micro-benchmarks for the latch and registration paths (with the
// benchmark latency profile, so costs reflect the fabric model). These
// are the ablations behind §3.2/§4.1: the RDMA-CAS fast path vs the home
// negotiation slow path, and sticky re-acquisition vs fresh CAS.

func benchPool(b *testing.B) (*Pool, *Pool, rdma.Addr) {
	b.Helper()
	f := rdma.NewFabric(rdma.DefaultConfig())
	cfg := Config{Instance: "bench"}
	homeEP := f.MustAttach("home")
	NewSlabNode(homeEP, cfg)
	h := NewHome(homeEP, cfg, "")
	b.Cleanup(h.Close)
	if _, err := h.AddSlab("home", 256); err != nil {
		b.Fatal(err)
	}
	rw, err := NewPool(f.MustAttach("rw"), cfg, "home")
	if err != nil {
		b.Fatal(err)
	}
	ro, err := NewPool(f.MustAttach("ro"), cfg, "home")
	if err != nil {
		b.Fatal(err)
	}
	res, err := rw.Register(types.PageID{Space: 1, No: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ro.Register(types.PageID{Space: 1, No: 1}); err != nil {
		b.Fatal(err)
	}
	return rw, ro, res.PL
}

// BenchmarkPLXFastPath measures X latch acquire+release via RDMA CAS.
func BenchmarkPLXFastPath(b *testing.B) {
	rw, _, pl := benchPool(b)
	page := types.PageID{Space: 1, No: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rw.PL().LockX(page, pl); err != nil {
			b.Fatal(err)
		}
		if err := rw.PL().UnlockX(page, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPLXSticky measures re-acquisition of a sticky X latch (no
// network at all — the §3.2 stickiness optimization).
func BenchmarkPLXSticky(b *testing.B) {
	rw, _, pl := benchPool(b)
	page := types.PageID{Space: 1, No: 1}
	if err := rw.PL().LockX(page, pl); err != nil {
		b.Fatal(err)
	}
	if err := rw.PL().UnlockX(page, true); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rw.PL().LockX(page, pl); err != nil {
			b.Fatal(err)
		}
		if err := rw.PL().UnlockX(page, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPLSRevocation measures the slow path: an RO S latch that must
// revoke the RW's sticky X latch through the home node each iteration.
func BenchmarkPLSRevocation(b *testing.B) {
	rw, ro, pl := benchPool(b)
	page := types.PageID{Space: 1, No: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rw.PL().LockX(page, pl); err != nil {
			b.Fatal(err)
		}
		if err := rw.PL().UnlockX(page, true); err != nil { // sticky
			b.Fatal(err)
		}
		if err := ro.PL().LockS(page, pl); err != nil { // forces revocation
			b.Fatal(err)
		}
		if err := ro.PL().UnlockS(page); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPageRegister measures page_register round trips (hit path).
func BenchmarkPageRegister(b *testing.B) {
	rw, _, _ := benchPool(b)
	page := types.PageID{Space: 1, No: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rw.Register(page); err != nil {
			b.Fatal(err)
		}
		if err := rw.Unregister(page); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPageReadRemote measures a one-sided 4 KiB page read.
func BenchmarkPageReadRemote(b *testing.B) {
	rw, _, _ := benchPool(b)
	res, err := rw.Register(types.PageID{Space: 1, No: 2})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, types.PageSize)
	if err := rw.WritePage(res.Data, buf, res.PIB); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(types.PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rw.ReadPage(res.Data, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInvalidateFanOut measures page_invalidate with one RO holder —
// the per-MTR coherency cost of the disaggregated design (§3.1.4).
func BenchmarkInvalidateFanOut(b *testing.B) {
	rw, _, _ := benchPool(b)
	page := types.PageID{Space: 1, No: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rw.Invalidate(page); err != nil {
			b.Fatal(err)
		}
	}
}
