// Package retry is the repository's single audited polling primitive.
//
// The nosleep analyzer (internal/lint) forbids time.Sleep outside the
// RDMA latency model: ad-hoc sleeps hide ordering assumptions and skew
// simulated latency measurements. Code that must genuinely poll wall
// clock — waiting out a switchover, re-locating a raft leader — does it
// through a Backoff, so every polling loop in the tree is bounded by an
// explicit window and visible at its call site as a retry, not a sleep.
package retry

import "time"

// Backoff paces a bounded polling loop: it sleeps a fixed interval per
// retry until its window expires. The zero value is not useful; build
// one with NewBackoff or Until.
type Backoff struct {
	interval time.Duration
	deadline time.Time
}

// NewBackoff returns a Backoff polling every interval for at most window
// from now.
func NewBackoff(interval, window time.Duration) *Backoff {
	return Until(time.Now().Add(window), interval)
}

// Until returns a Backoff polling every interval up to an absolute
// deadline the caller already computed.
func Until(deadline time.Time, interval time.Duration) *Backoff {
	return &Backoff{interval: interval, deadline: deadline}
}

// Expired reports whether the polling window has elapsed.
func (b *Backoff) Expired() bool { return time.Now().After(b.deadline) }

// Sleep pauses one interval and reports whether the caller should try
// again; it returns false immediately once the window has expired.
func (b *Backoff) Sleep() bool {
	if b.Expired() {
		return false
	}
	//polarvet:allow nosleep the tree's one audited polling sleep; every caller is bounded by an explicit window
	time.Sleep(b.interval)
	return true
}
