package retry

import (
	"testing"
	"time"
)

func TestSleepPacesUntilWindowExpires(t *testing.T) {
	b := NewBackoff(time.Millisecond, 20*time.Millisecond)
	start := time.Now()
	n := 0
	for b.Sleep() {
		n++
		if n > 1000 {
			t.Fatal("backoff did not expire")
		}
	}
	if n == 0 {
		t.Fatal("expected at least one retry inside the window")
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("loop exited after %v, before the 20ms window elapsed", elapsed)
	}
	if !b.Expired() {
		t.Fatal("Expired should report true after Sleep returns false")
	}
}

func TestUntilHonoursAbsoluteDeadline(t *testing.T) {
	b := Until(time.Now().Add(-time.Millisecond), time.Millisecond)
	if !b.Expired() {
		t.Fatal("past deadline should be expired")
	}
	if b.Sleep() {
		t.Fatal("Sleep must return false without pausing once expired")
	}
}
