package stat

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0}, // sub-µs truncates to bucket 0
		{time.Microsecond, 1},      // [1,2) µs
		{3 * time.Microsecond, 2},  // [2,4) µs
		{4 * time.Microsecond, 3},  // [4,8) µs
		{1000 * time.Microsecond, 10},
		{time.Hour, NumBuckets - 1}, // clamped to the overflow bucket
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
		h.Observe(c.d)
	}
	s := h.snapshot()
	if s.Count != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", s.Count, len(cases))
	}
	var inBuckets uint64
	for _, b := range s.Buckets {
		inBuckets += b
	}
	if inBuckets != s.Count {
		t.Fatalf("bucket sum %d != count %d", inBuckets, s.Count)
	}
	// Bucket bounds are monotone powers of two.
	if BucketBound(1) != 2*time.Microsecond || BucketBound(3) != 8*time.Microsecond {
		t.Fatalf("unexpected bucket bounds: %v %v", BucketBound(1), BucketBound(3))
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	// 90 fast observations (~2µs bucket), 10 slow (~1ms bucket).
	for i := 0; i < 90; i++ {
		h.Observe(3 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1500 * time.Microsecond)
	}
	s := h.snapshot()
	if q := s.Quantile(0.5); q > 4*time.Microsecond {
		t.Errorf("p50 = %v, want <= 4µs", q)
	}
	// p99 must land in the slow bucket: 1500µs is in [1024,2048)µs.
	if q := s.Quantile(0.99); q < time.Millisecond {
		t.Errorf("p99 = %v, want >= 1ms", q)
	}
	if m := s.Mean(); m < 100*time.Microsecond || m > 300*time.Microsecond {
		t.Errorf("mean = %v, want ~152µs", m)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.ops")
	h := r.Histogram("x.lat")
	c.Add(5)
	h.Observe(2 * time.Microsecond)
	before := r.Snapshot()
	c.Add(7)
	h.Observe(2 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	d := r.Snapshot().Sub(before)
	if d.Counter("x.ops") != 7 {
		t.Errorf("counter delta = %d, want 7", d.Counter("x.ops"))
	}
	hd := d.Histograms["x.lat"]
	if hd.Count != 2 {
		t.Errorf("hist delta count = %d, want 2", hd.Count)
	}
	if hd.SumNS != uint64((2*time.Microsecond + 5*time.Millisecond).Nanoseconds()) {
		t.Errorf("hist delta sum = %d", hd.SumNS)
	}
	var n uint64
	for _, b := range hd.Buckets {
		n += b
	}
	if n != 2 {
		t.Errorf("hist delta bucket sum = %d, want 2", n)
	}
	// A metric created after the first snapshot deltas from zero.
	r.Counter("y.ops").Add(3)
	d2 := r.Snapshot().Sub(before)
	if d2.Counter("y.ops") != 3 {
		t.Errorf("new-metric delta = %d, want 3", d2.Counter("y.ops"))
	}
}

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Get-or-create races with other workers on purpose.
			c := r.Counter("shared.ops")
			h := r.Histogram("shared.lat")
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(time.Duration(i%7) * time.Microsecond)
				if i%1000 == 0 {
					_ = r.Snapshot() // snapshots race increments safely
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counter("shared.ops"); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := s.Histograms["shared.lat"].Count; got != workers*per {
		t.Fatalf("hist count = %d, want %d", got, workers*per)
	}
}

func TestNodeSetTotalAndTable(t *testing.T) {
	ns := NewNodeSet()
	ns.Node("rw0").Counter("a.ops").Add(2)
	ns.Node("ro0").Counter("a.ops").Add(3)
	ns.Node("ro0").Histogram("a.lat").Observe(time.Millisecond)
	snap := ns.Snapshot()
	total := Total(snap)
	if total.Counter("a.ops") != 5 {
		t.Fatalf("total = %d, want 5", total.Counter("a.ops"))
	}
	if total.Histograms["a.lat"].Count != 1 {
		t.Fatalf("total hist count = %d, want 1", total.Histograms["a.lat"].Count)
	}
	var b strings.Builder
	WriteTable(&b, snap)
	out := b.String()
	for _, want := range []string{"metric", "rw0", "ro0", "a.ops", "a.lat"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if names := ns.Names(); len(names) != 2 || names[0] != "a.lat" || names[1] != "a.ops" {
		t.Errorf("names = %v", names)
	}
}
