// Package stat is the repository's low-overhead observability layer:
// atomic counters, fixed-bucket latency histograms, and named registries
// with a snapshot/delta API.
//
// Every layer of the disaggregated stack registers its metrics here —
// rdma fabric verbs, the remote memory pool (hits, misses, evictions,
// invalidations), the engine (MTR commits, flushes, CTS reads, SMO
// latches) and PolarFS/plog (page reads, ParallelRaft appends) — so a
// figure's end-to-end number (QPS, latency) can always be decomposed
// into the per-layer traffic that produced it. DESIGN.md's
// "Observability" section lists every metric name; a doc-drift test
// keeps that table and the registered names in sync.
//
// Hot-path cost is one atomic add per counter event and two atomic adds
// plus a bucket add per histogram observation. Components resolve
// *Counter / *Histogram handles once at construction and never touch
// the registry's map on the hot path.
//
// Registries are per node: the rdma fabric owns a NodeSet, and every
// endpoint (and each component running on that node) records into the
// registry keyed by its node id. `polarctl stats` renders the live
// table; `polarbench` snapshots deltas per figure into BENCH_*.json.
package stat
