package stat

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Registry is one node's named metrics. Counter and Histogram get or
// create by name; components call them once at construction and keep
// the returned handles, so the registry lock never sits on a hot path.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it at zero if new.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it empty if new.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Names returns every registered metric name (counters and histograms),
// sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.counters)+len(r.hists))
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.hists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Load()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.snapshot()
	}
	return s
}

// Snapshot is a point-in-time copy of a registry. JSON encoding is
// deterministic (Go marshals map keys sorted), which BENCH_*.json and
// the EXPERIMENTS.md report generator rely on.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Sub returns the delta s - prev, metric-wise. Metrics absent from prev
// count from zero; metrics absent from s are dropped.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Histograms: make(map[string]HistSnapshot, len(s.Histograms)),
	}
	for n, v := range s.Counters {
		d.Counters[n] = v - prev.Counters[n]
	}
	for n, h := range s.Histograms {
		d.Histograms[n] = h.Sub(prev.Histograms[n])
	}
	return d
}

// Counter returns a counter value (0 if absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// NodeSet is a set of per-node registries. The rdma fabric owns one;
// every component records into the registry of the node it runs on.
type NodeSet struct {
	mu    sync.RWMutex
	nodes map[string]*Registry
}

// NewNodeSet returns an empty node set.
func NewNodeSet() *NodeSet {
	return &NodeSet{nodes: make(map[string]*Registry)}
}

// Node returns the named node's registry, creating it if new.
func (ns *NodeSet) Node(id string) *Registry {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	r, ok := ns.nodes[id]
	if !ok {
		r = NewRegistry()
		ns.nodes[id] = r
	}
	return r
}

// Snapshot copies every node's registry.
func (ns *NodeSet) Snapshot() map[string]Snapshot {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	out := make(map[string]Snapshot, len(ns.nodes))
	for id, r := range ns.nodes {
		out[id] = r.Snapshot()
	}
	return out
}

// Names returns the union of metric names across all nodes, sorted.
func (ns *NodeSet) Names() []string {
	ns.mu.RLock()
	regs := make([]*Registry, 0, len(ns.nodes))
	for _, r := range ns.nodes {
		regs = append(regs, r)
	}
	ns.mu.RUnlock()
	seen := map[string]bool{}
	var out []string
	for _, r := range regs {
		for _, n := range r.Names() {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Total merges a per-node snapshot map into one cluster-wide snapshot
// (counters summed, histograms merged bucket-wise).
func Total(nodes map[string]Snapshot) Snapshot {
	t := Snapshot{Counters: map[string]uint64{}, Histograms: map[string]HistSnapshot{}}
	ids := make([]string, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		s := nodes[id]
		for n, v := range s.Counters {
			t.Counters[n] += v
		}
		for n, h := range s.Histograms {
			cur := t.Histograms[n]
			cur.Count += h.Count
			cur.SumNS += h.SumNS
			if len(h.Buckets) > len(cur.Buckets) {
				cur.Buckets = append(cur.Buckets, make([]uint64, len(h.Buckets)-len(cur.Buckets))...)
			}
			for i, b := range h.Buckets {
				cur.Buckets[i] += b
			}
			t.Histograms[n] = cur
		}
	}
	return t
}

// WriteTable renders per-node snapshots as aligned text: one row per
// metric, one column per node, counters as integers and histograms as
// "count/mean/p99". Rows and columns are sorted, so output is
// deterministic for a given snapshot.
func WriteTable(w io.Writer, nodes map[string]Snapshot) {
	ids := make([]string, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	rows := map[string]bool{}
	for _, s := range nodes {
		for n := range s.Counters {
			rows[n] = true
		}
		for n := range s.Histograms {
			rows[n] = true
		}
	}
	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "%-28s", "metric")
	for _, id := range ids {
		fmt.Fprintf(w, "%22s", id)
	}
	fmt.Fprintln(w)
	for _, name := range names {
		fmt.Fprintf(w, "%-28s", name)
		for _, id := range ids {
			s := nodes[id]
			if v, ok := s.Counters[name]; ok {
				fmt.Fprintf(w, "%22d", v)
			} else if h, ok := s.Histograms[name]; ok && h.Count > 0 {
				fmt.Fprintf(w, "%22s", fmt.Sprintf("%d/%s/%s",
					h.Count, shortDur(h.Mean()), shortDur(h.Quantile(0.99))))
			} else if ok {
				fmt.Fprintf(w, "%22s", "0")
			} else {
				fmt.Fprintf(w, "%22s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// shortDur formats a duration compactly for tables (µs below 10ms, ms
// above).
func shortDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < 10*time.Millisecond:
		return fmt.Sprintf("%dus", d.Microseconds())
	case d < 10*time.Second:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return fmt.Sprintf("%ds", int(d.Seconds()))
	}
}
