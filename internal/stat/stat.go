package stat

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// NumBuckets is the fixed bucket count of every Histogram. Bucket 0
// holds observations below 1µs; bucket i holds [2^(i-1), 2^i) µs; the
// last bucket holds everything from ~2^(NumBuckets-2) µs (≈ 67s) up.
const NumBuckets = 28

// Histogram is a fixed-bucket latency histogram with exponential
// (power-of-two microsecond) bucket boundaries. The zero value is ready
// to use.
type Histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	us := d.Microseconds()
	if us <= 0 {
		return 0
	}
	idx := bits.Len64(uint64(us)) // 1µs -> 1, 2-3µs -> 2, ...
	if idx >= NumBuckets {
		idx = NumBuckets - 1
	}
	return idx
}

// BucketBound returns the exclusive upper bound of bucket i (the last
// bucket is unbounded and reports its inclusive lower bound instead).
func BucketBound(i int) time.Duration {
	if i >= NumBuckets-1 {
		return time.Duration(1<<(NumBuckets-2)) * time.Microsecond
	}
	return time.Duration(uint64(1)<<i) * time.Microsecond
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNS.Add(uint64(d.Nanoseconds()))
	h.buckets[bucketIndex(d)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// Mean returns the average observation (0 if empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNS.Load() / n)
}

// snapshot copies the histogram counter-wise.
func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), SumNS: h.sumNS.Load()}
	var b [NumBuckets]uint64
	last := -1
	for i := range h.buckets {
		b[i] = h.buckets[i].Load()
		if b[i] != 0 {
			last = i
		}
	}
	s.Buckets = append([]uint64(nil), b[:last+1]...)
	return s
}

// HistSnapshot is a point-in-time copy of a histogram. Buckets holds the
// per-bucket counts with trailing zero buckets trimmed (so snapshots of
// mostly-empty histograms stay small in BENCH_*.json).
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	SumNS   uint64   `json:"sum_ns"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// Mean returns the snapshot's average observation (0 if empty).
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / s.Count)
}

// Quantile returns the bucket upper bound at or above which the q-th
// fraction (0 < q <= 1) of observations fall, i.e. an upper estimate of
// the q-quantile given the fixed bucket resolution.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum >= target {
			return BucketBound(i)
		}
	}
	return BucketBound(NumBuckets - 1)
}

// Sub returns the delta s - prev, counter-wise. Buckets absent from one
// side count as zero.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	d := HistSnapshot{Count: s.Count - prev.Count, SumNS: s.SumNS - prev.SumNS}
	last := -1
	var b [NumBuckets]uint64
	for i := 0; i < NumBuckets; i++ {
		var cur, old uint64
		if i < len(s.Buckets) {
			cur = s.Buckets[i]
		}
		if i < len(prev.Buckets) {
			old = prev.Buckets[i]
		}
		b[i] = cur - old
		if b[i] != 0 {
			last = i
		}
	}
	d.Buckets = append([]uint64(nil), b[:last+1]...)
	return d
}
