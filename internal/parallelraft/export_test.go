package parallelraft

import (
	"polardb/internal/rdma"
	"polardb/internal/wire"
)

// newAppendWriter fabricates an append RPC payload for tests; it mirrors
// buildAppendReq's wire layout.
func newAppendWriter(term uint64, leader rdma.NodeID, commitPrefix, maxSeen uint64, extra []uint64, e *Entry) []byte {
	w := wire.NewWriter(256)
	w.U64(term)
	w.String(string(leader))
	w.U64(commitPrefix)
	w.U64(maxSeen)
	w.U16(uint16(len(extra)))
	for _, i := range extra {
		w.U64(i)
	}
	if e != nil {
		w.Bool(true)
		e.marshal(w)
	} else {
		w.Bool(false)
	}
	return w.Bytes()
}

// roundTripEntry marshals e and unmarshals it into out, for tests.
func roundTripEntry(e, out *Entry) {
	w := wire.NewWriter(256)
	e.marshal(w)
	out.unmarshal(wire.NewReader(w.Bytes()))
}
