package parallelraft

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"polardb/internal/rdma"
)

// recordingSM records applied commands and checks ordering of conflicting
// entries.
type recordingSM struct {
	mu      sync.Mutex
	applied []uint64 // indexes in apply order
	cmds    map[uint64][]byte
}

func newRecordingSM() *recordingSM {
	return &recordingSM{cmds: make(map[uint64][]byte)}
}

func (s *recordingSM) Apply(index uint64, cmd []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applied = append(s.applied, index)
	c := make([]byte, len(cmd))
	copy(c, cmd)
	s.cmds[index] = c
}

func (s *recordingSM) appliedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.applied)
}

func (s *recordingSM) cmd(idx uint64) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cmds[idx]
}

type testGroup struct {
	fabric   *rdma.Fabric
	peers    []rdma.NodeID
	replicas map[rdma.NodeID]*Replica
	sms      map[rdma.NodeID]*recordingSM
	eps      map[rdma.NodeID]*rdma.Endpoint
}

func newTestGroup(t *testing.T, n int, bootstrap bool) *testGroup {
	t.Helper()
	g := &testGroup{
		fabric:   rdma.NewFabric(rdma.TestConfig()),
		replicas: make(map[rdma.NodeID]*Replica),
		sms:      make(map[rdma.NodeID]*recordingSM),
		eps:      make(map[rdma.NodeID]*rdma.Endpoint),
	}
	for i := 0; i < n; i++ {
		g.peers = append(g.peers, rdma.NodeID(fmt.Sprintf("s%d", i)))
	}
	cfg := Config{
		Group:             "g",
		Peers:             g.peers,
		Window:            8,
		HeartbeatInterval: 10 * time.Millisecond,
		ElectionTimeout:   60 * time.Millisecond,
		Bootstrap:         bootstrap,
	}
	for _, p := range g.peers {
		ep := g.fabric.MustAttach(p)
		sm := newRecordingSM()
		g.eps[p] = ep
		g.sms[p] = sm
		g.replicas[p] = NewReplica(ep, cfg, sm)
	}
	t.Cleanup(func() {
		for _, r := range g.replicas {
			r.Close()
		}
	})
	return g
}

func (g *testGroup) leader(t *testing.T) *Replica {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		for _, r := range g.replicas {
			if r.Role() == Leader {
				return r
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no leader elected")
	return nil
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestBootstrapLeader(t *testing.T) {
	g := newTestGroup(t, 3, true)
	l := g.replicas[g.peers[0]]
	if l.Role() != Leader {
		t.Fatalf("bootstrap peer role = %v, want leader", l.Role())
	}
	if g.replicas[g.peers[1]].Leader() != g.peers[0] {
		t.Fatalf("follower leader hint = %q", g.replicas[g.peers[1]].Leader())
	}
}

func TestProposeCommitsAndAppliesEverywhere(t *testing.T) {
	g := newTestGroup(t, 3, true)
	l := g.replicas[g.peers[0]]
	for i := 0; i < 5; i++ {
		idx, err := l.Propose([]byte{byte(i)}, []Range{{uint64(i), uint64(i + 1)}})
		if err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
		if idx != uint64(i+1) {
			t.Fatalf("index = %d, want %d", idx, i+1)
		}
	}
	for _, p := range g.peers {
		p := p
		waitFor(t, "apply on "+string(p), func() bool { return g.sms[p].appliedCount() == 5 })
		for i := 0; i < 5; i++ {
			if got := g.sms[p].cmd(uint64(i + 1)); len(got) != 1 || got[0] != byte(i) {
				t.Fatalf("%s cmd[%d] = %v", p, i+1, got)
			}
		}
	}
}

func TestProposeOnFollowerFails(t *testing.T) {
	g := newTestGroup(t, 3, true)
	f := g.replicas[g.peers[1]]
	if _, err := f.Propose([]byte{1}, nil); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("err = %v, want ErrNotLeader", err)
	}
}

func TestCommitSurvivesOneFollowerDown(t *testing.T) {
	g := newTestGroup(t, 3, true)
	l := g.replicas[g.peers[0]]
	g.eps[g.peers[2]].Kill()

	idx, err := l.Propose([]byte("x"), nil)
	if err != nil {
		t.Fatalf("propose with one follower down: %v", err)
	}
	if idx != 1 {
		t.Fatalf("idx = %d", idx)
	}
	// The dead follower revives and catches up through heartbeats.
	g.eps[g.peers[2]].Revive()
	waitFor(t, "revived follower catch-up", func() bool {
		return g.sms[g.peers[2]].appliedCount() == 1
	})
}

func TestLeaderFailureElectsNewLeaderAndPreservesCommits(t *testing.T) {
	g := newTestGroup(t, 3, true)
	l := g.replicas[g.peers[0]]
	for i := 0; i < 3; i++ {
		if _, err := l.Propose([]byte{byte(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	g.eps[g.peers[0]].Kill()

	var newLeader *Replica
	waitFor(t, "new leader", func() bool {
		for _, p := range g.peers[1:] {
			if g.replicas[p].Role() == Leader {
				newLeader = g.replicas[p]
				return true
			}
		}
		return false
	})
	if newLeader.Term() <= 1 {
		t.Fatalf("new term = %d, want > 1", newLeader.Term())
	}
	// Committed entries are preserved and new proposals continue after them.
	idx, err := newLeader.Propose([]byte("after"), nil)
	if err != nil {
		t.Fatalf("propose after failover: %v", err)
	}
	if idx != 4 {
		t.Fatalf("post-failover index = %d, want 4", idx)
	}
	waitFor(t, "new leader applies all", func() bool {
		return g.sms[rdma.NodeID(newLeader.ep.ID())].appliedCount() == 4
	})
	// Old commands intact on the new leader.
	for i := 0; i < 3; i++ {
		if got := g.sms[newLeader.ep.ID()].cmd(uint64(i + 1)); len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("cmd[%d] lost after failover: %v", i+1, got)
		}
	}
}

func TestOldLeaderStepsDownOnRevive(t *testing.T) {
	g := newTestGroup(t, 3, true)
	old := g.replicas[g.peers[0]]
	if _, err := old.Propose([]byte{1}, nil); err != nil {
		t.Fatal(err)
	}
	g.eps[g.peers[0]].Kill()
	waitFor(t, "new leader", func() bool {
		for _, p := range g.peers[1:] {
			if g.replicas[p].Role() == Leader {
				return true
			}
		}
		return false
	})
	g.eps[g.peers[0]].Revive()
	waitFor(t, "old leader steps down", func() bool { return old.Role() == Follower })
}

func TestOutOfOrderApplyNonConflicting(t *testing.T) {
	// Directly exercise the apply rules: feed a follower entries out of
	// order with disjoint ranges; it must apply them without waiting.
	f := rdma.NewFabric(rdma.TestConfig())
	peers := []rdma.NodeID{"l", "f1", "f2"}
	cfg := Config{Group: "g", Peers: peers, Window: 8,
		HeartbeatInterval: time.Hour, ElectionTimeout: time.Hour, Bootstrap: true}
	epL := f.MustAttach("l")
	epF := f.MustAttach("f1")
	f.MustAttach("f2")
	l := NewReplica(epL, cfg, newRecordingSM())
	smF := newRecordingSM()
	fr := NewReplica(epF, cfg, smF)
	defer l.Close()
	defer fr.Close()

	// Build three entries on the leader without replicating (peers ignore).
	// Simulate: follower receives entry 3 first (hole at 1,2), disjoint
	// ranges; then 1 and 2.
	mk := func(idx uint64, lb [][]Range) *Entry {
		return &Entry{Index: idx, Term: 1, Ranges: []Range{{idx * 10, idx*10 + 1}},
			Cmd: []byte{byte(idx)}, LookBehind: lb}
	}
	e1 := mk(1, nil)
	e2 := mk(2, [][]Range{e1.Ranges})
	e3 := mk(3, [][]Range{e1.Ranges, e2.Ranges})

	send := func(e *Entry, commitPrefix uint64, extra []uint64) {
		// Emulate leader append RPC directly.
		req := buildTestAppend(1, "l", commitPrefix, 3, extra, e)
		if _, err := epL.Call("f1", "raft.g.append", req); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	// Entry 3 arrives first, already committed (out-of-order commit).
	send(e3, 0, []uint64{3})
	waitFor(t, "oo apply of 3", func() bool { return smF.appliedCount() == 1 })
	if smF.applied[0] != 3 {
		t.Fatalf("applied %v, want [3]", smF.applied)
	}
	send(e1, 1, nil)
	send(e2, 3, nil)
	waitFor(t, "apply all", func() bool { return smF.appliedCount() == 3 })
	if fr.ApplyPrefix() != 3 {
		t.Fatalf("applyPrefix = %d, want 3", fr.ApplyPrefix())
	}
}

func TestConflictingEntriesApplyInOrder(t *testing.T) {
	f := rdma.NewFabric(rdma.TestConfig())
	peers := []rdma.NodeID{"l", "f1", "f2"}
	cfg := Config{Group: "g", Peers: peers, Window: 8,
		HeartbeatInterval: time.Hour, ElectionTimeout: time.Hour, Bootstrap: true}
	epL := f.MustAttach("l")
	epF := f.MustAttach("f1")
	f.MustAttach("f2")
	l := NewReplica(epL, cfg, newRecordingSM())
	smF := newRecordingSM()
	fr := NewReplica(epF, cfg, smF)
	defer l.Close()
	defer fr.Close()

	overlap := []Range{{100, 101}}
	e1 := &Entry{Index: 1, Term: 1, Ranges: overlap, Cmd: []byte{1}}
	e2 := &Entry{Index: 2, Term: 1, Ranges: overlap, Cmd: []byte{2},
		LookBehind: [][]Range{overlap}}

	// Entry 2 arrives first and is marked committed; it must NOT apply
	// until entry 1 (conflicting) has been applied.
	req := buildTestAppend(1, "l", 0, 2, []uint64{2}, e2)
	if _, err := epL.Call("f1", "raft.g.append", req); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if n := smF.appliedCount(); n != 0 {
		t.Fatalf("conflicting entry applied before predecessor (%d applied)", n)
	}
	req = buildTestAppend(1, "l", 2, 2, nil, e1)
	if _, err := epL.Call("f1", "raft.g.append", req); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "both applied", func() bool { return smF.appliedCount() == 2 })
	smF.mu.Lock()
	defer smF.mu.Unlock()
	if smF.applied[0] != 1 || smF.applied[1] != 2 {
		t.Fatalf("apply order %v, want [1 2]", smF.applied)
	}
	_ = fr
}

// buildTestAppend fabricates an append RPC payload (mirrors buildAppendReq).
func buildTestAppend(term uint64, leader rdma.NodeID, commitPrefix, maxSeen uint64, extra []uint64, e *Entry) []byte {
	w := newAppendWriter(term, leader, commitPrefix, maxSeen, extra, e)
	return w
}

func TestConcurrentProposals(t *testing.T) {
	g := newTestGroup(t, 3, true)
	l := g.replicas[g.peers[0]]
	const n = 40
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := l.Propose([]byte{byte(i)}, []Range{{uint64(i), uint64(i + 1)}})
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("propose: %v", err)
		}
	}
	for _, p := range g.peers {
		p := p
		waitFor(t, "apply on "+string(p), func() bool { return g.sms[p].appliedCount() == n })
	}
	// All replicas applied the same multiset of commands.
	for i := uint64(1); i <= n; i++ {
		ref := g.sms[g.peers[0]].cmd(i)
		for _, p := range g.peers[1:] {
			if got := g.sms[p].cmd(i); len(got) != len(ref) || (len(got) > 0 && got[0] != ref[0]) {
				t.Fatalf("divergence at %d: %v vs %v", i, got, ref)
			}
		}
	}
}

func TestRangeOverlap(t *testing.T) {
	cases := []struct {
		a, b Range
		want bool
	}{
		{Range{0, 10}, Range{10, 20}, false},
		{Range{0, 10}, Range{9, 20}, true},
		{Range{5, 6}, Range{5, 6}, true},
		{Range{0, 1}, Range{2, 3}, false},
	}
	for _, c := range cases {
		if got := c.a.overlaps(c.b); got != c.want {
			t.Errorf("%v overlaps %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.overlaps(c.a); got != c.want {
			t.Errorf("overlap not symmetric for %v,%v", c.a, c.b)
		}
	}
}

// Property: overlaps is symmetric and consistent with an arithmetic oracle.
func TestRangeOverlapProperty(t *testing.T) {
	prop := func(a1, a2, b1, b2 uint32) bool {
		a := Range{uint64(min(a1, a2)), uint64(max(a1, a2) + 1)}
		b := Range{uint64(min(b1, b2)), uint64(max(b1, b2) + 1)}
		oracle := !(a.End <= b.Start || b.End <= a.Start)
		return a.overlaps(b) == oracle && b.overlaps(a) == oracle
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEntryMarshalRoundTrip(t *testing.T) {
	e := Entry{
		Index:      42,
		Term:       7,
		Ranges:     []Range{{1, 2}, {9, 12}},
		Cmd:        []byte("payload"),
		LookBehind: [][]Range{{{0, 1}}, {{3, 4}, {5, 6}}},
	}
	var out Entry
	roundTripEntry(&e, &out)
	if out.Index != e.Index || out.Term != e.Term || string(out.Cmd) != string(e.Cmd) {
		t.Fatalf("round trip: %+v", out)
	}
	if len(out.Ranges) != 2 || out.Ranges[1] != (Range{9, 12}) {
		t.Fatalf("ranges: %+v", out.Ranges)
	}
	if len(out.LookBehind) != 2 || len(out.LookBehind[1]) != 2 {
		t.Fatalf("lookbehind: %+v", out.LookBehind)
	}
}
