// Package parallelraft implements ParallelRaft, the consensus protocol
// PolarFS uses to replicate every chunk across three storage nodes (§2.1
// of the PolarDB Serverless paper, detailed in the PolarFS paper).
//
// ParallelRaft relaxes classic Raft in three ways, all reproduced here:
//
//   - Out-of-order acknowledgement: a follower acks an entry as soon as it
//     arrives, even if earlier entries are missing (holes are allowed).
//   - Out-of-order commit: the leader commits an entry once a majority has
//     acked it, provided it does not conflict with any earlier uncommitted
//     entry. Each entry carries the write ranges (here: page extents) it
//     touches; a look-behind window bounds how far back conflicts can live.
//   - Out-of-order apply: replicas apply a committed entry as soon as every
//     conflicting predecessor within the window has been applied. Entries
//     carry a look-behind buffer with the ranges of their N predecessors so
//     a replica with holes can still prove non-conflict.
//
// Leader election is Raft-style (terms, majority votes, log-recency check
// on the highest index). A newly elected leader runs a merge stage: it
// fetches entries it is missing from peers and fills truly-lost holes with
// no-ops before serving.
package parallelraft

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"polardb/internal/rdma"
	"polardb/internal/stat"
	"polardb/internal/wire"
)

// Errors returned by Propose and the client.
var (
	ErrNotLeader = errors.New("parallelraft: not leader")
	ErrShutdown  = errors.New("parallelraft: replica shut down")
	ErrNoLeader  = errors.New("parallelraft: no leader reachable")
)

// Range is a half-open interval [Start, End) of logical block/page numbers
// an entry writes. Two entries conflict iff any of their ranges overlap.
type Range struct {
	Start, End uint64
}

func (r Range) overlaps(o Range) bool { return r.Start < o.End && o.Start < r.End }

func rangesConflict(a, b []Range) bool {
	for _, x := range a {
		for _, y := range b {
			if x.overlaps(y) {
				return true
			}
		}
	}
	return false
}

// FullRange marks an entry as conflicting with everything (forces in-order
// commit and apply), used for append-only log chunks.
var FullRange = []Range{{Start: 0, End: ^uint64(0)}}

// Entry is a replicated log entry.
type Entry struct {
	Index  uint64
	Term   uint64
	Ranges []Range
	Cmd    []byte // nil for no-op fillers
	// LookBehind holds the Ranges of entries Index-len(LookBehind)..Index-1,
	// oldest first, so a replica with holes can conflict-check them.
	LookBehind [][]Range
}

func marshalRanges(w *wire.Writer, rs []Range) {
	w.U16(uint16(len(rs)))
	for _, r := range rs {
		w.U64(r.Start)
		w.U64(r.End)
	}
}

func unmarshalRanges(rd *wire.Reader) []Range {
	n := int(rd.U16())
	rs := make([]Range, n)
	for i := range rs {
		rs[i].Start = rd.U64()
		rs[i].End = rd.U64()
	}
	return rs
}

func (e *Entry) marshal(w *wire.Writer) {
	w.U64(e.Index)
	w.U64(e.Term)
	marshalRanges(w, e.Ranges)
	w.Bytes32(e.Cmd)
	w.U16(uint16(len(e.LookBehind)))
	for _, rs := range e.LookBehind {
		marshalRanges(w, rs)
	}
}

func (e *Entry) unmarshal(rd *wire.Reader) {
	e.Index = rd.U64()
	e.Term = rd.U64()
	e.Ranges = unmarshalRanges(rd)
	e.Cmd = rd.Bytes32()
	n := int(rd.U16())
	e.LookBehind = make([][]Range, n)
	for i := range e.LookBehind {
		e.LookBehind[i] = unmarshalRanges(rd)
	}
}

// StateMachine receives committed commands. Apply may be invoked out of
// order for entries whose Ranges do not conflict; conflicting entries are
// always applied in index order. Apply is never invoked twice for an index.
type StateMachine interface {
	Apply(index uint64, cmd []byte)
}

// Role is a replica's current role.
type Role int

// Replica roles.
const (
	Follower Role = iota
	Candidate
	Leader
)

func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	}
	return fmt.Sprintf("Role(%d)", int(r))
}

// Config parameterizes a replica group.
type Config struct {
	// Group names the raft group; RPC methods are namespaced by it.
	Group string
	// Peers lists all replica node ids (including this one).
	Peers []rdma.NodeID
	// Window is the look-behind window: the maximum number of in-flight
	// (uncommitted) entries, and how far back conflicts are tracked.
	Window int
	// HeartbeatInterval is the leader's heartbeat period.
	HeartbeatInterval time.Duration
	// ElectionTimeout is the base follower timeout; the effective timeout
	// is randomized in [T, 2T).
	ElectionTimeout time.Duration
	// Bootstrap, when set, makes the replica whose id equals Peers[0] start
	// as leader of term 1 immediately, skipping the initial election. All
	// production wiring in this repository bootstraps groups this way and
	// lets elections take over on failure.
	Bootstrap bool
}

func (c *Config) applyDefaults() {
	if c.Window == 0 {
		c.Window = 16
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 20 * time.Millisecond
	}
	if c.ElectionTimeout == 0 {
		c.ElectionTimeout = 150 * time.Millisecond
	}
}

type proposeWaiter struct {
	ch chan error
}

// Replica is one member of a ParallelRaft group.
type Replica struct {
	cfg Config
	ep  *rdma.Endpoint
	sm  StateMachine

	mu       sync.Mutex
	applyMu  sync.Mutex // serializes checkApply scans (not Apply calls themselves)
	term     uint64
	votedFor rdma.NodeID
	role     Role
	leader   rdma.NodeID

	log          map[uint64]*Entry
	maxIndex     uint64 // highest index present locally
	maxSeen      uint64 // highest index known to exist cluster-wide
	committed    map[uint64]bool
	commitPrefix uint64 // all indexes <= this are committed
	applied      map[uint64]bool
	applyPrefix  uint64 // all indexes <= this are applied

	acks    map[uint64]map[rdma.NodeID]bool // leader only
	waiters map[uint64][]proposeWaiter      // leader only

	lastHeartbeat time.Time
	inflightCond  *sync.Cond

	closed  bool
	closeCh chan struct{}
	wg      sync.WaitGroup
	rng     *rand.Rand

	metPropose *stat.Counter   // entries proposed on this replica
	metCommit  *stat.Histogram // propose-to-majority-commit latency
	metAppend  *stat.Counter   // follower append RPCs served
}

// NewReplica creates a replica attached to ep and starts its timers.
// The state machine receives committed commands.
func NewReplica(ep *rdma.Endpoint, cfg Config, sm StateMachine) *Replica {
	cfg.applyDefaults()
	r := &Replica{
		cfg:       cfg,
		ep:        ep,
		sm:        sm,
		log:       make(map[uint64]*Entry),
		committed: make(map[uint64]bool),
		applied:   make(map[uint64]bool),
		acks:      make(map[uint64]map[rdma.NodeID]bool),
		waiters:   make(map[uint64][]proposeWaiter),
		closeCh:   make(chan struct{}),
		rng:       rand.New(rand.NewSource(int64(hashNode(ep.ID())))),

		metPropose: ep.Metrics().Counter("raft.propose.ops"),
		metCommit:  ep.Metrics().Histogram("raft.propose.us"),
		metAppend:  ep.Metrics().Counter("raft.append.served"),
	}
	r.inflightCond = sync.NewCond(&r.mu)
	r.lastHeartbeat = time.Now()
	if cfg.Bootstrap && ep.ID() == cfg.Peers[0] {
		r.term = 1
		r.role = Leader
		r.leader = ep.ID()
	} else if cfg.Bootstrap {
		r.term = 1
		r.leader = cfg.Peers[0]
	}
	ep.RegisterHandler(r.method("append"), r.handleAppend)
	ep.RegisterHandler(r.method("vote"), r.handleVote)
	ep.RegisterHandler(r.method("fetch"), r.handleFetch)
	ep.RegisterHandler(r.method("status"), r.handleStatus)
	r.wg.Add(1)
	go r.ticker()
	return r
}

func (r *Replica) method(name string) string { return "raft." + r.cfg.Group + "." + name }

func hashNode(id rdma.NodeID) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}

// Close stops the replica's background goroutines.
func (r *Replica) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.closeCh)
	r.inflightCond.Broadcast()
	r.mu.Unlock()
	r.wg.Wait()
}

// Role returns the replica's current role.
func (r *Replica) Role() Role {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.role
}

// Term returns the current term.
func (r *Replica) Term() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.term
}

// Leader returns the node this replica believes is leader ("" if unknown).
func (r *Replica) Leader() rdma.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leader
}

// CommitPrefix returns the contiguous committed prefix.
func (r *Replica) CommitPrefix() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.commitPrefix
}

// ApplyPrefix returns the contiguous applied prefix.
func (r *Replica) ApplyPrefix() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applyPrefix
}

// DebugState is a point-in-time diagnostic snapshot of a replica.
type DebugState struct {
	Role         Role
	Term         uint64
	Leader       rdma.NodeID
	MaxIndex     uint64
	MaxSeen      uint64
	CommitPrefix uint64
	ApplyPrefix  uint64
	PendingAcks  map[uint64]int
	Holes        []uint64
}

// Debug returns a diagnostic snapshot (tests and tooling).
func (r *Replica) Debug() DebugState {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := DebugState{
		Role: r.role, Term: r.term, Leader: r.leader,
		MaxIndex: r.maxIndex, MaxSeen: r.maxSeen,
		CommitPrefix: r.commitPrefix, ApplyPrefix: r.applyPrefix,
		PendingAcks: map[uint64]int{},
	}
	for i := r.commitPrefix + 1; i <= r.maxIndex; i++ {
		if !r.committed[i] {
			d.PendingAcks[i] = len(r.acks[i])
		}
		if _, ok := r.log[i]; !ok {
			d.Holes = append(d.Holes, i)
		}
	}
	return d
}

// MaxIndex returns the highest index present in the local log.
func (r *Replica) MaxIndex() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.maxIndex
}

// majority returns the quorum size.
func (r *Replica) majority() int { return len(r.cfg.Peers)/2 + 1 }

// Propose replicates cmd with the given write ranges. It blocks until the
// entry is committed (majority-durable) or the replica loses leadership.
// Returns the entry's index.
func (r *Replica) Propose(cmd []byte, ranges []Range) (uint64, error) {
	if len(ranges) == 0 {
		ranges = FullRange
	}
	r.metPropose.Inc()
	start := time.Now()
	r.mu.Lock()
	for {
		if r.closed {
			r.mu.Unlock()
			return 0, ErrShutdown
		}
		if r.role != Leader {
			r.mu.Unlock()
			return 0, ErrNotLeader
		}
		// ParallelRaft bounds in-flight entries by the look-behind window.
		if r.maxIndex-r.commitPrefix < uint64(r.cfg.Window) {
			break
		}
		r.inflightCond.Wait()
	}
	idx := r.maxIndex + 1
	e := &Entry{Index: idx, Term: r.term, Ranges: ranges, Cmd: cmd, LookBehind: r.lookBehindLocked(idx)}
	r.log[idx] = e
	r.maxIndex = idx
	if idx > r.maxSeen {
		r.maxSeen = idx
	}
	r.acks[idx] = map[rdma.NodeID]bool{r.ep.ID(): true}
	w := proposeWaiter{ch: make(chan error, 1)}
	r.waiters[idx] = append(r.waiters[idx], w)
	term := r.term
	r.mu.Unlock()

	r.broadcastEntry(e, term)

	r.mu.Lock()
	r.tryCommitLocked()
	r.mu.Unlock()
	r.checkApply()

	select {
	case err := <-w.ch:
		if err == nil {
			r.metCommit.Observe(time.Since(start))
		}
		return idx, err
	case <-r.closeCh:
		return 0, ErrShutdown
	}
}

// lookBehindLocked builds the look-behind buffer for a new entry at idx.
func (r *Replica) lookBehindLocked(idx uint64) [][]Range {
	n := r.cfg.Window
	if idx-1 < uint64(n) {
		n = int(idx - 1)
	}
	lb := make([][]Range, n)
	for i := 0; i < n; i++ {
		j := idx - uint64(n-i)
		if e, ok := r.log[j]; ok {
			lb[i] = e.Ranges
		} else {
			// Unknown predecessor: mark as conflicting with everything so
			// downstream conflict checks stay conservative.
			lb[i] = FullRange
		}
	}
	return lb
}

// broadcastEntry pushes one entry to every peer (out-of-order: each entry
// is an independent message; no ordering between broadcasts).
func (r *Replica) broadcastEntry(e *Entry, term uint64) {
	req := r.buildAppendReq(e, term)
	for _, p := range r.cfg.Peers {
		if p == r.ep.ID() {
			continue
		}
		peer := p
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			resp, err := r.ep.Call(peer, r.method("append"), req)
			if err != nil {
				return
			}
			r.processAppendResp(peer, e.Index, resp)
		}()
	}
}

func (r *Replica) buildAppendReq(e *Entry, term uint64) []byte {
	r.mu.Lock()
	cp := r.commitPrefix
	extra := r.committedBeyondPrefixLocked()
	ms := r.maxSeen
	r.mu.Unlock()

	w := wire.NewWriter(256)
	w.U64(term)
	w.String(string(r.ep.ID()))
	w.U64(cp)
	w.U64(ms)
	w.U16(uint16(len(extra)))
	for _, i := range extra {
		w.U64(i)
	}
	if e != nil {
		w.Bool(true)
		e.marshal(w)
	} else {
		w.Bool(false)
	}
	return w.Bytes()
}

func (r *Replica) committedBeyondPrefixLocked() []uint64 {
	var out []uint64
	for i := r.commitPrefix + 1; i <= r.maxSeen; i++ {
		if r.committed[i] {
			out = append(out, i)
		}
	}
	return out
}

// handleAppend processes an AppendEntries/heartbeat RPC on a follower.
func (r *Replica) handleAppend(from rdma.NodeID, req []byte) ([]byte, error) {
	r.metAppend.Inc()
	rd := wire.NewReader(req)
	term := rd.U64()
	leaderID := rdma.NodeID(rd.String())
	leaderCP := rd.U64()
	leaderMax := rd.U64()
	nExtra := int(rd.U16())
	extra := make([]uint64, nExtra)
	for i := range extra {
		extra[i] = rd.U64()
	}
	hasEntry := rd.Bool()
	var e Entry
	if hasEntry {
		e.unmarshal(rd)
	}
	if err := rd.Err(); err != nil {
		return nil, err
	}

	r.mu.Lock()
	if term < r.term {
		resp := r.appendRespLocked(false)
		r.mu.Unlock()
		return resp, nil
	}
	if term > r.term || r.role != Follower {
		r.becomeFollowerLocked(term, leaderID)
	}
	r.leader = leaderID
	r.lastHeartbeat = time.Now()
	if leaderMax > r.maxSeen {
		r.maxSeen = leaderMax
	}
	ack := false
	if hasEntry {
		if existing, ok := r.log[e.Index]; !ok || existing.Term < e.Term {
			r.log[e.Index] = &e
			if e.Index > r.maxIndex {
				r.maxIndex = e.Index
			}
		}
		ack = true // out-of-order ack: durable locally, holes allowed
	}
	// Learn commits from the leader.
	if leaderCP > r.commitPrefix {
		r.advanceCommitTo(leaderCP)
	}
	for _, i := range extra {
		r.committed[i] = true
	}
	r.rollCommitPrefixLocked()
	resp := r.appendRespLocked(ack)
	r.mu.Unlock()
	r.checkApply()
	return resp, nil
}

// advanceCommitTo marks all entries up to cp committed. Caller holds mu.
func (r *Replica) advanceCommitTo(cp uint64) {
	for i := r.commitPrefix + 1; i <= cp; i++ {
		r.committed[i] = true
	}
	r.rollCommitPrefixLocked()
}

func (r *Replica) rollCommitPrefixLocked() {
	for r.committed[r.commitPrefix+1] {
		delete(r.committed, r.commitPrefix+1)
		r.commitPrefix++
	}
	r.inflightCond.Broadcast()
}

func (r *Replica) appendRespLocked(ack bool) []byte {
	w := wire.NewWriter(32)
	w.U64(r.term)
	w.Bool(ack)
	w.U64(r.maxIndex)
	w.U64(r.neededIndexLocked())
	return w.Bytes()
}

// neededIndexLocked returns the lowest index the replica is missing below
// maxSeen (0 if none) — a catch-up hint for the leader.
func (r *Replica) neededIndexLocked() uint64 {
	for i := r.applyPrefix + 1; i <= r.maxSeen; i++ {
		if _, ok := r.log[i]; !ok {
			return i
		}
	}
	return 0
}

// ackEntry records an ack for index from peer and may commit.
func (r *Replica) ackEntry(idx uint64, peer rdma.NodeID) {
	r.mu.Lock()
	if r.role != Leader {
		r.mu.Unlock()
		return
	}
	if r.acks[idx] == nil {
		r.acks[idx] = make(map[rdma.NodeID]bool)
	}
	r.acks[idx][peer] = true
	r.tryCommitLocked()
	r.mu.Unlock()
	r.checkApply()
}

// tryCommitLocked commits every entry that has a majority of acks and no
// conflicting uncommitted predecessor within the window. Caller holds mu.
func (r *Replica) tryCommitLocked() {
	if r.role != Leader {
		return
	}
	for idx := r.commitPrefix + 1; idx <= r.maxIndex; idx++ {
		if r.committed[idx] {
			continue
		}
		e, ok := r.log[idx]
		if !ok {
			// Leader with a hole (possible right after election, before the
			// merge stage completes): cannot commit past it out of order
			// unless proven non-conflicting, which needs the entry itself.
			break
		}
		if len(r.acks[idx]) < r.majority() {
			if r.entryConflictsBehindLocked(e) {
				break // in-order portion stalls here
			}
			continue // non-conflicting: later entries may still commit
		}
		if r.entryConflictsBehindLocked(e) {
			continue // wait for conflicting predecessors to commit first
		}
		r.committed[idx] = true
		for _, w := range r.waiters[idx] {
			w.ch <- nil
		}
		delete(r.waiters, idx)
		delete(r.acks, idx)
	}
	r.rollCommitPrefixLocked()
}

// entryConflictsBehindLocked reports whether e conflicts with any
// uncommitted predecessor in (idx-Window, idx).
func (r *Replica) entryConflictsBehindLocked(e *Entry) bool {
	lo := uint64(1)
	if e.Index > uint64(r.cfg.Window) {
		lo = e.Index - uint64(r.cfg.Window)
	}
	for j := lo; j < e.Index; j++ {
		if j <= r.commitPrefix || r.committed[j] {
			continue
		}
		var ranges []Range
		if pe, ok := r.log[j]; ok {
			ranges = pe.Ranges
		} else {
			ranges = e.lookBehindRanges(j)
		}
		if rangesConflict(e.Ranges, ranges) {
			return true
		}
	}
	return false
}

// lookBehindRanges returns the ranges of predecessor j recorded in e's
// look-behind buffer, or FullRange if outside the buffer.
func (e *Entry) lookBehindRanges(j uint64) []Range {
	n := uint64(len(e.LookBehind))
	if j >= e.Index || j+n < e.Index {
		return FullRange
	}
	return e.LookBehind[n-(e.Index-j)]
}

// checkApply applies every committed entry whose conflicting predecessors
// have been applied (out-of-order apply).
func (r *Replica) checkApply() {
	r.applyMu.Lock()
	defer r.applyMu.Unlock()
	for {
		var toApply *Entry
		r.mu.Lock()
		limit := r.maxIndex
		for idx := r.applyPrefix + 1; idx <= limit; idx++ {
			if r.applied[idx] {
				continue
			}
			if idx > r.commitPrefix && !r.committed[idx] {
				// Not yet committed. A later committed entry may still be
				// applicable if it does not conflict, so keep scanning, but
				// only within the window.
				continue
			}
			e, ok := r.log[idx]
			if !ok {
				continue // hole: cannot apply this one yet
			}
			if r.applyConflictsBehindLocked(e) {
				continue
			}
			toApply = e
			break
		}
		if toApply == nil {
			r.mu.Unlock()
			return
		}
		r.applied[toApply.Index] = true
		r.mu.Unlock()
		if toApply.Cmd != nil && r.sm != nil {
			r.sm.Apply(toApply.Index, toApply.Cmd)
		}
		r.mu.Lock()
		for r.applied[r.applyPrefix+1] {
			delete(r.applied, r.applyPrefix+1)
			r.applyPrefix++
		}
		r.mu.Unlock()
	}
}

// applyConflictsBehindLocked reports whether any unapplied predecessor of e
// (within the window, or anything at all beyond it) blocks applying e.
func (r *Replica) applyConflictsBehindLocked(e *Entry) bool {
	if e.Index > uint64(r.cfg.Window) && r.applyPrefix < e.Index-uint64(r.cfg.Window) {
		return true // predecessors beyond the window must all be applied
	}
	lo := uint64(1)
	if e.Index > uint64(r.cfg.Window) {
		lo = e.Index - uint64(r.cfg.Window)
	}
	for j := lo; j < e.Index; j++ {
		if j <= r.applyPrefix || r.applied[j] {
			continue
		}
		var ranges []Range
		if pe, ok := r.log[j]; ok {
			ranges = pe.Ranges
		} else {
			ranges = e.lookBehindRanges(j)
		}
		if rangesConflict(e.Ranges, ranges) {
			return true
		}
	}
	return false
}
