package parallelraft

import (
	"time"

	"polardb/internal/rdma"
	"polardb/internal/wire"
)

// ticker drives heartbeats (leader) and election timeouts (follower).
func (r *Replica) ticker() {
	defer r.wg.Done()
	for {
		select {
		case <-r.closeCh:
			return
		case <-time.After(r.cfg.HeartbeatInterval):
		}
		r.mu.Lock()
		role := r.role
		elapsed := time.Since(r.lastHeartbeat)
		timeout := r.cfg.ElectionTimeout + time.Duration(r.rng.Int63n(int64(r.cfg.ElectionTimeout)))
		r.mu.Unlock()

		switch role {
		case Leader:
			r.sendHeartbeats()
		case Follower, Candidate:
			if elapsed > timeout {
				r.startElection()
			}
		}
	}
}

// sendHeartbeats pushes an empty append (with commit info) to all peers.
func (r *Replica) sendHeartbeats() {
	r.mu.Lock()
	if r.role != Leader {
		r.mu.Unlock()
		return
	}
	term := r.term
	r.mu.Unlock()
	req := r.buildAppendReq(nil, term)
	for _, p := range r.cfg.Peers {
		if p == r.ep.ID() {
			continue
		}
		peer := p
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			resp, err := r.ep.Call(peer, r.method("append"), req)
			if err != nil {
				return
			}
			r.processAppendResp(peer, 0, resp)
		}()
	}
}

// processAppendResp handles an append/heartbeat response. idx is the entry
// index the request carried (0 for heartbeats).
func (r *Replica) processAppendResp(peer rdma.NodeID, idx uint64, resp []byte) {
	rd := wire.NewReader(resp)
	term := rd.U64()
	ack := rd.Bool()
	_ = rd.U64() // peer maxIndex
	needed := rd.U64()
	if rd.Err() != nil {
		return
	}
	r.mu.Lock()
	if term > r.term {
		r.becomeFollowerLocked(term, "")
		r.mu.Unlock()
		return
	}
	isLeader := r.role == Leader
	r.mu.Unlock()
	if !isLeader {
		return
	}
	if ack && idx != 0 {
		r.ackEntry(idx, peer)
	}
	if needed != 0 {
		r.sendCatchup(peer, needed)
	}
}

// sendCatchup pushes missing entries starting at from to a lagging peer.
func (r *Replica) sendCatchup(peer rdma.NodeID, from uint64) {
	const batch = 32
	r.mu.Lock()
	if r.role != Leader {
		r.mu.Unlock()
		return
	}
	term := r.term
	var entries []*Entry
	for i := from; i <= r.maxIndex && len(entries) < batch; i++ {
		if e, ok := r.log[i]; ok {
			entries = append(entries, e)
		}
	}
	r.mu.Unlock()
	for _, e := range entries {
		req := r.buildAppendReq(e, term)
		//polarvet:allow fabriccost ParallelRaft appends are deliberately one RPC per entry so out-of-order acks can complete holes independently (§4 of the PolarFS paper)
		resp, err := r.ep.Call(peer, r.method("append"), req)
		if err != nil {
			return
		}
		r.processAppendResp(peer, e.Index, resp)
	}
}

// becomeFollowerLocked steps down into term. Caller holds mu.
func (r *Replica) becomeFollowerLocked(term uint64, leader rdma.NodeID) {
	if term > r.term {
		r.term = term
		r.votedFor = ""
	}
	wasLeader := r.role == Leader
	r.role = Follower
	if leader != "" {
		r.leader = leader
	}
	r.lastHeartbeat = time.Now()
	if wasLeader {
		// Fail in-flight proposals; the client retries against the new leader.
		for idx, ws := range r.waiters {
			for _, w := range ws {
				w.ch <- ErrNotLeader
			}
			delete(r.waiters, idx)
		}
		r.acks = make(map[uint64]map[rdma.NodeID]bool)
	}
	r.inflightCond.Broadcast()
}

// startElection runs one candidate round.
func (r *Replica) startElection() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.role = Candidate
	r.term++
	r.votedFor = r.ep.ID()
	r.lastHeartbeat = time.Now()
	term := r.term
	maxIdx := r.maxIndex
	cp := r.commitPrefix
	r.mu.Unlock()

	w := wire.NewWriter(64)
	w.U64(term)
	w.String(string(r.ep.ID()))
	w.U64(maxIdx)
	w.U64(cp)
	req := w.Bytes()

	votes := 1
	clusterMax := maxIdx
	for _, p := range r.cfg.Peers {
		if p == r.ep.ID() {
			continue
		}
		//polarvet:allow fabriccost a vote request must reach every peer individually; quorum fan-out is the protocol, not an accident
		resp, err := r.ep.CallTimeout(p, r.method("vote"), req, r.cfg.ElectionTimeout)
		if err != nil {
			continue
		}
		rd := wire.NewReader(resp)
		rTerm := rd.U64()
		granted := rd.Bool()
		peerMax := rd.U64()
		if rd.Err() != nil {
			continue
		}
		if rTerm > term {
			r.mu.Lock()
			r.becomeFollowerLocked(rTerm, "")
			r.mu.Unlock()
			return
		}
		if granted {
			votes++
		}
		if peerMax > clusterMax {
			clusterMax = peerMax
		}
	}
	if votes < r.majority() {
		return // stay candidate; next timeout retries
	}

	r.mu.Lock()
	if r.term != term || r.role != Candidate {
		r.mu.Unlock()
		return
	}
	r.role = Leader
	r.leader = r.ep.ID()
	if clusterMax > r.maxSeen {
		r.maxSeen = clusterMax
	}
	r.mu.Unlock()

	r.mergeStage(term, clusterMax)
	r.sendHeartbeats()
}

// mergeStage fills the new leader's log holes up to clusterMax: fetch each
// missing entry from peers; if no replica has it, it was never committed
// (an entry needs a majority to commit and this leader won a majority-vote
// with the highest log), so write a no-op in its place. Afterwards all
// entries up to clusterMax are re-replicated lazily via catch-up.
func (r *Replica) mergeStage(term, clusterMax uint64) {
	for idx := uint64(1); idx <= clusterMax; idx++ {
		r.mu.Lock()
		_, have := r.log[idx]
		if idx <= r.applyPrefix {
			have = true
		}
		r.mu.Unlock()
		if have {
			continue
		}
		var found *Entry
		for _, p := range r.cfg.Peers {
			if p == r.ep.ID() {
				continue
			}
			w := wire.NewWriter(16)
			w.U64(idx)
			w.U64(idx + 1)
			//polarvet:allow fabriccost hole repair asks each peer in turn for the missing entry and stops at the first holder
			resp, err := r.ep.CallTimeout(p, r.method("fetch"), w.Bytes(), r.cfg.ElectionTimeout)
			if err != nil {
				continue
			}
			rd := wire.NewReader(resp)
			n := int(rd.U16())
			if rd.Err() != nil || n == 0 {
				continue
			}
			var e Entry
			e.unmarshal(rd)
			if rd.Err() == nil {
				found = &e
				break
			}
		}
		r.mu.Lock()
		if r.role != Leader || r.term != term {
			r.mu.Unlock()
			return
		}
		if found == nil {
			found = &Entry{Index: idx, Term: term, Ranges: FullRange, Cmd: nil}
		}
		if _, ok := r.log[idx]; !ok {
			r.log[idx] = found
			if idx > r.maxIndex {
				r.maxIndex = idx
			}
			if r.acks[idx] == nil {
				r.acks[idx] = map[rdma.NodeID]bool{r.ep.ID(): true}
			}
		}
		r.mu.Unlock()
		r.broadcastEntry(found, term)
	}
	// Re-replicate & recommit everything not yet committed.
	r.mu.Lock()
	var pending []*Entry
	for i := r.commitPrefix + 1; i <= r.maxIndex; i++ {
		if e, ok := r.log[i]; ok && !r.committed[i] {
			if r.acks[i] == nil {
				r.acks[i] = map[rdma.NodeID]bool{r.ep.ID(): true}
			}
			pending = append(pending, e)
		}
	}
	r.mu.Unlock()
	for _, e := range pending {
		r.broadcastEntry(e, term)
	}
}

// handleVote processes a RequestVote RPC.
func (r *Replica) handleVote(from rdma.NodeID, req []byte) ([]byte, error) {
	rd := wire.NewReader(req)
	term := rd.U64()
	candidate := rdma.NodeID(rd.String())
	candMax := rd.U64()
	_ = rd.U64() // candidate commit prefix
	if err := rd.Err(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if term > r.term {
		r.becomeFollowerLocked(term, "")
	}
	granted := false
	if term == r.term && (r.votedFor == "" || r.votedFor == candidate) && candMax >= r.maxIndex {
		granted = true
		r.votedFor = candidate
		r.lastHeartbeat = time.Now()
	}
	w := wire.NewWriter(32)
	w.U64(r.term)
	w.Bool(granted)
	w.U64(r.maxIndex)
	return w.Bytes(), nil
}

// handleFetch serves log entries [from, to) for merge/catch-up.
func (r *Replica) handleFetch(from rdma.NodeID, req []byte) ([]byte, error) {
	rd := wire.NewReader(req)
	lo := rd.U64()
	hi := rd.U64()
	if err := rd.Err(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	var entries []*Entry
	for i := lo; i < hi; i++ {
		if e, ok := r.log[i]; ok {
			entries = append(entries, e)
		}
	}
	r.mu.Unlock()
	w := wire.NewWriter(256)
	w.U16(uint16(len(entries)))
	for _, e := range entries {
		e.marshal(w)
	}
	return w.Bytes(), nil
}

// handleStatus reports (term, role, leader, maxIndex, commitPrefix) — used
// by the group client to locate the leader.
func (r *Replica) handleStatus(from rdma.NodeID, req []byte) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := wire.NewWriter(64)
	w.U64(r.term)
	w.U8(uint8(r.role))
	w.String(string(r.leader))
	w.U64(r.maxIndex)
	w.U64(r.commitPrefix)
	return w.Bytes(), nil
}
