package parallelraft

import (
	"fmt"
	"time"

	"polardb/internal/rdma"
	"polardb/internal/retry"
	"polardb/internal/wire"
)

// LocateLeader asks the given peers for a raft group's current leader. It
// polls until a leader is reported reachable or the timeout elapses.
// Callers (libpfs, the cluster manager) cache the result and re-locate on
// ErrNotLeader.
func LocateLeader(ep *rdma.Endpoint, group string, peers []rdma.NodeID, timeout time.Duration) (rdma.NodeID, error) {
	b := retry.NewBackoff(10*time.Millisecond, timeout)
	method := "raft." + group + ".status"
	// Status calls get a generous timeout: under CPU-saturated simulation
	// a tight timeout would expire before the handler is even scheduled,
	// and every expiry abandons a goroutine — a feedback loop.
	const statusTimeout = time.Second
	for {
		if ep.Down() {
			return "", fmt.Errorf("%w: local endpoint down", ErrNoLeader)
		}
		for _, p := range peers {
			//polarvet:allow fabriccost leader discovery probes each peer for its role; there is no shared destination to batch toward
			resp, err := ep.CallTimeout(p, method, nil, statusTimeout)
			if err != nil {
				continue
			}
			rd := wire.NewReader(resp)
			_ = rd.U64() // term
			role := Role(rd.U8())
			leader := rdma.NodeID(rd.String())
			if rd.Err() != nil {
				continue
			}
			if role == Leader {
				return p, nil
			}
			if leader != "" {
				// Verify the hint is actually leading.
				//polarvet:allow fabriccost one verification round trip per leader hint, not per peer; hints are rare and point at one node
				r2, err := ep.CallTimeout(leader, method, nil, statusTimeout)
				if err == nil {
					rd2 := wire.NewReader(r2)
					_ = rd2.U64()
					if Role(rd2.U8()) == Leader && rd2.Err() == nil {
						return leader, nil
					}
				}
			}
		}
		if !b.Sleep() {
			return "", ErrNoLeader
		}
	}
}
