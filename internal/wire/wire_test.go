package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.U8(0xAB)
	w.U16(0xBEEF)
	w.U32(0xDEADBEEF)
	w.U64(0x0123456789ABCDEF)
	w.Bool(true)
	w.Bool(false)
	w.Bytes32([]byte{1, 2, 3})
	w.String("polar")

	r := NewReader(w.Bytes())
	if v := r.U8(); v != 0xAB {
		t.Fatalf("u8 = %#x", v)
	}
	if v := r.U16(); v != 0xBEEF {
		t.Fatalf("u16 = %#x", v)
	}
	if v := r.U32(); v != 0xDEADBEEF {
		t.Fatalf("u32 = %#x", v)
	}
	if v := r.U64(); v != 0x0123456789ABCDEF {
		t.Fatalf("u64 = %#x", v)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bools wrong")
	}
	if b := r.Bytes32(); !bytes.Equal(b, []byte{1, 2, 3}) {
		t.Fatalf("bytes = %v", b)
	}
	if s := r.String(); s != "polar" {
		t.Fatalf("string = %q", s)
	}
	if r.Err() != nil {
		t.Fatalf("err = %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestShortBufferSticks(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.U64()
	if !errors.Is(r.Err(), ErrShort) {
		t.Fatalf("err = %v, want ErrShort", r.Err())
	}
	// Error sticks; subsequent reads return zero values.
	if v := r.U32(); v != 0 {
		t.Fatalf("read after error = %d, want 0", v)
	}
}

func TestEmptyBytes32(t *testing.T) {
	w := NewWriter(8)
	w.Bytes32(nil)
	r := NewReader(w.Bytes())
	b := r.Bytes32()
	if r.Err() != nil || len(b) != 0 {
		t.Fatalf("empty bytes32: %v %v", b, r.Err())
	}
}

func TestBytes32IsCopy(t *testing.T) {
	w := NewWriter(16)
	w.Bytes32([]byte{9, 9})
	buf := w.Bytes()
	r := NewReader(buf)
	b := r.Bytes32()
	buf[4] = 0 // mutate underlying buffer; decoded copy must be unaffected
	if b[0] != 9 {
		t.Fatal("Bytes32 aliased the source buffer")
	}
}

// Property: arbitrary (u64, bytes, string, bool) tuples round-trip.
func TestQuickRoundTrip(t *testing.T) {
	prop := func(a uint64, b []byte, s string, f bool) bool {
		w := NewWriter(32)
		w.U64(a)
		w.Bytes32(b)
		w.String(s)
		w.Bool(f)
		r := NewReader(w.Bytes())
		a2, b2, s2, f2 := r.U64(), r.Bytes32(), r.String(), r.Bool()
		return r.Err() == nil && a2 == a && bytes.Equal(b2, b) && s2 == s && f2 == f
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
