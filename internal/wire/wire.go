// Package wire provides a compact, allocation-light binary codec for the
// RPC messages exchanged between simulated nodes. Every message type in
// the repository implements its own Marshal/Unmarshal on top of these
// primitives; we deliberately avoid reflective codecs (encoding/gob) on
// hot paths such as page registration and log shipping.
package wire

import (
	"encoding/binary"
	"errors"
)

// ErrShort is returned when a buffer ends before a value is complete.
var ErrShort = errors.New("wire: short buffer")

// Writer appends primitive values to a byte slice.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with the given initial capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// U8 appends a byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) {
	w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Bytes32 appends a length-prefixed (uint32) byte slice.
func (w *Writer) Bytes32(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader consumes primitive values from a byte slice. The first decoding
// error sticks; check Err once after all reads.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the sticky decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = ErrShort
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads a byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Bytes32 reads a length-prefixed byte slice. The result is a copy, safe
// to retain after the underlying buffer is reused.
func (r *Reader) Bytes32() []byte {
	n := int(r.U32())
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := int(r.U32())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}
