package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// LockHeld flags fabric verbs issued while a sync.Mutex/RWMutex locked in
// the same function is still held. The fabric verbs (Endpoint.Read/Write/
// CAS64/FetchAdd64/Load64/Call/CallTimeout) simulate network latency;
// holding a node-local latch across them serializes every other local
// user of that latch behind a simulated network round-trip, which is both
// a performance bug and a distortion of the measured coherence cost.
//
// The check is per function body and source-ordered: a mutex counts as
// held between X.Lock()/X.RLock() and the matching X.Unlock()/X.RUnlock();
// a deferred unlock holds to the end of the function. Function literals
// are separate scopes. internal/rdma itself is exempt — its internal
// bookkeeping locks are part of the latency model, not callers of it.
type LockHeld struct{}

// fabricVerbs are the latency-bearing *rdma.Endpoint methods.
var fabricVerbs = map[string]bool{
	"Read": true, "Write": true, "CAS64": true, "FetchAdd64": true,
	"Load64": true, "Call": true, "CallTimeout": true,
}

// Name implements Analyzer.
func (LockHeld) Name() string { return "lockheld" }

// Check implements Analyzer.
func (LockHeld) Check(p *Package) []Finding {
	if strings.HasSuffix(p.Path, "internal/rdma") {
		return nil
	}
	var out []Finding
	walkFuncs(p, func(name string, body *ast.BlockStmt) {
		out = append(out, checkLockHeld(p, name, body)...)
	})
	return out
}

// lockState tracks which mutex expressions are held at the current point
// of the source-ordered walk.
type lockState struct {
	p     *Package
	fname string
	held  map[string]bool // mutex expr (rendered) -> held
	out   []Finding
}

func checkLockHeld(p *Package, fname string, body *ast.BlockStmt) []Finding {
	s := &lockState{p: p, fname: fname, held: map[string]bool{}}
	s.walk(body, false)
	return s.out
}

// walk visits n in source order. deferred marks calls syntactically under
// a defer statement: a deferred unlock releases only at function end, so
// it never clears the held set.
func (s *lockState) walk(n ast.Node, deferred bool) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.FuncLit:
		// Separate scope: locks held here don't leak out, and the
		// literal's body may run at any time relative to this function.
		nested := &lockState{p: s.p, fname: s.fname + " (func literal)", held: map[string]bool{}}
		nested.walk(n.Body, false)
		s.out = append(s.out, nested.out...)
		return
	case *ast.DeferStmt:
		s.walk(n.Call, true)
		return
	case *ast.CallExpr:
		for _, arg := range n.Args {
			s.walk(arg, deferred)
		}
		s.walk(n.Fun, deferred)
		s.call(n, deferred)
		return
	}
	// Generic traversal in source order for everything else.
	var children []ast.Node
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil || c == n {
			return c == n
		}
		children = append(children, c)
		return false
	})
	for _, c := range children {
		s.walk(c, deferred)
	}
}

// call classifies one call expression: mutex transition, fabric verb, or
// neither.
func (s *lockState) call(call *ast.CallExpr, deferred bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := s.p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	switch {
	case obj.Pkg().Path() == "sync":
		key := types.ExprString(sel.X)
		switch obj.Name() {
		case "Lock", "RLock":
			s.held[key] = true
		case "Unlock", "RUnlock":
			if !deferred {
				delete(s.held, key)
			}
			// Deferred unlocks release at function end; the mutex stays
			// held for everything that follows in source order.
		}
	case isFabricVerb(obj):
		if len(s.held) > 0 {
			var locks []string
			for k := range s.held {
				locks = append(locks, k)
			}
			sort.Strings(locks)
			s.out = append(s.out, Finding{
				Analyzer: "lockheld",
				Pos:      s.p.Fset.Position(call.Pos()),
				Message: fmt.Sprintf("%s: fabric verb %s.%s while holding %s; release node-local latches before simulated network latency",
					s.fname, types.ExprString(sel.X), obj.Name(), strings.Join(locks, ", ")),
			})
		}
	}
}

// isFabricVerb reports whether obj is a latency-bearing method on
// *rdma.Endpoint.
func isFabricVerb(obj *types.Func) bool {
	if !strings.HasSuffix(obj.Pkg().Path(), "internal/rdma") || !fabricVerbs[obj.Name()] {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Endpoint"
}
