package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// LockHeld flags fabric verbs issued while a sync.Mutex/RWMutex locked in
// the same function is still held. The fabric verbs (Endpoint.Read/Write/
// CAS64/FetchAdd64/Load64/Call/CallTimeout) simulate network latency;
// holding a node-local latch across them serializes every other local
// user of that latch behind a simulated network round-trip, which is both
// a performance bug and a distortion of the measured coherence cost.
//
// The check is per function body and source-ordered: a mutex counts as
// held between X.Lock()/X.RLock() and the matching X.Unlock()/X.RUnlock();
// a deferred unlock holds to the end of the function. Function literals
// are separate scopes. internal/rdma itself is exempt — its internal
// bookkeeping locks are part of the latency model, not callers of it.
type LockHeld struct{}

// fabricVerbs are the latency-bearing *rdma.Endpoint methods.
var fabricVerbs = map[string]bool{
	"Read": true, "Write": true, "CAS64": true, "FetchAdd64": true,
	"Load64": true, "Call": true, "CallTimeout": true,
}

// Name implements Analyzer.
func (LockHeld) Name() string { return "lockheld" }

// Check implements Analyzer.
func (LockHeld) Check(p *Package) []Finding {
	if strings.HasSuffix(p.Path, "internal/rdma") {
		return nil
	}
	var out []Finding
	walkFuncs(p, func(name string, body *ast.BlockStmt) {
		out = append(out, checkLockHeld(p, name, body)...)
	})
	return out
}

// lockState tracks which mutex expressions are held at the current point
// of the source-ordered walk.
type lockState struct {
	p       *Package
	fname   string
	held    map[string]bool      // mutex expr (rendered) -> held
	methods map[string]boundLock // local name -> bound mutex method value
	out     []Finding
}

// boundLock records a mutex method value captured into a local variable
// (`unlock := mu.Unlock; defer unlock()`): calling the variable is the
// same transition as calling the method directly.
type boundLock struct {
	key  string // mutex expr the method was taken from
	name string // Lock, Unlock, RLock, RUnlock, TryLock, TryRLock
}

func checkLockHeld(p *Package, fname string, body *ast.BlockStmt) []Finding {
	s := &lockState{p: p, fname: fname, held: map[string]bool{}, methods: map[string]boundLock{}}
	s.walk(body, false)
	return s.out
}

// walk visits n in source order. deferred marks calls syntactically under
// a defer statement: a deferred unlock releases only at function end, so
// it never clears the held set.
func (s *lockState) walk(n ast.Node, deferred bool) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.FuncLit:
		// Separate scope: locks held here don't leak out, and the
		// literal's body may run at any time relative to this function.
		nested := &lockState{p: s.p, fname: s.fname + " (func literal)", held: map[string]bool{}, methods: map[string]boundLock{}}
		nested.walk(n.Body, false)
		s.out = append(s.out, nested.out...)
		return
	case *ast.DeferStmt:
		s.walk(n.Call, true)
		return
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			s.walk(rhs, deferred)
		}
		s.bindMethodValues(n)
		return
	case *ast.CallExpr:
		for _, arg := range n.Args {
			s.walk(arg, deferred)
		}
		s.walk(n.Fun, deferred)
		s.call(n, deferred)
		return
	}
	// Generic traversal in source order for everything else.
	var children []ast.Node
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil || c == n {
			return c == n
		}
		children = append(children, c)
		return false
	})
	for _, c := range children {
		s.walk(c, deferred)
	}
}

// bindMethodValues records mutex method values captured into locals
// (`unlock := mu.Unlock`) so later calls through the variable count as
// the underlying transition. Rebinding a name to anything else clears it.
func (s *lockState) bindMethodValues(n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if sel, ok := n.Rhs[i].(*ast.SelectorExpr); ok {
			if obj, ok := s.p.Info.Uses[sel.Sel].(*types.Func); ok &&
				obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockMethods[obj.Name()] {
				s.methods[id.Name] = boundLock{key: types.ExprString(sel.X), name: obj.Name()}
				continue
			}
		}
		delete(s.methods, id.Name)
	}
}

// lockMethods are the sync mutex transitions lockheld models.
var lockMethods = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
	"Unlock": true, "RUnlock": true,
}

// transition applies one mutex state change. TryLock/TryRLock count as an
// acquire: in source order the lock is held from the call until the
// matching unlock, and the untaken branch carries no fabric verbs between
// them anyway.
func (s *lockState) transition(key, method string, deferred bool) {
	switch method {
	case "Lock", "RLock", "TryLock", "TryRLock":
		s.held[key] = true
	case "Unlock", "RUnlock":
		if !deferred {
			delete(s.held, key)
		}
		// Deferred unlocks release at function end; the mutex stays
		// held for everything that follows in source order.
	}
}

// call classifies one call expression: mutex transition (direct or through
// a captured method value), fabric verb, or neither.
func (s *lockState) call(call *ast.CallExpr, deferred bool) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := s.methods[id.Name]; ok {
			s.transition(b.key, b.name, deferred)
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := s.p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	switch {
	case obj.Pkg().Path() == "sync" && lockMethods[obj.Name()]:
		s.transition(types.ExprString(sel.X), obj.Name(), deferred)
	case isFabricVerb(obj):
		if len(s.held) > 0 {
			var locks []string
			for k := range s.held {
				locks = append(locks, k)
			}
			sort.Strings(locks)
			s.out = append(s.out, Finding{
				Analyzer: "lockheld",
				Pos:      s.p.Fset.Position(call.Pos()),
				Message: fmt.Sprintf("%s: fabric verb %s.%s while holding %s; release node-local latches before simulated network latency",
					s.fname, types.ExprString(sel.X), obj.Name(), strings.Join(locks, ", ")),
			})
		}
	}
}

// isFabricVerb reports whether obj is a latency-bearing method on
// *rdma.Endpoint.
func isFabricVerb(obj *types.Func) bool {
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/rdma") || !fabricVerbs[obj.Name()] {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Endpoint"
}
