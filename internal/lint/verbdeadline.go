package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// VerbDeadline proves that the engine and cluster layers can never
// wedge forever on a dead peer. Two rules:
//
//  1. A bare rdma.Endpoint.Call has no deadline: a wedged handler
//     blocks the caller until process exit. Engine/cluster code must
//     use CallTimeout (the fabric abandons the handler at the
//     deadline) — every bare Call is reported.
//
//  2. A fabric-waiting call (an Endpoint verb, a remote-tier client
//     method — rmem.Pool / rmem.PLManager / polarfs.Client /
//     txn.Client — or any module function that transitively issues
//     one, in this package or another) sitting on a CFG cycle is an
//     unbounded retry unless
//     the cycle itself is bounded: it advances a retry.Backoff (whose
//     window expires), it can be cancelled through a select clause
//     that leaves the loop (daemon shutdown channels), or every loop
//     forming the cycle is a counted `for init; cond; post` / `range`
//     loop. Data-dependent spins (`for pg != 0 { ...verb... }`) are
//     reported; if the bound really is structural (a page chain
//     walked under an exclusive latch), say so in a //polarvet:allow
//     reason.
//
// Individual one-sided verbs (Read/Write/CAS64/...) fail fast on dead
// nodes, so a straight-line verb needs no deadline; only retry cycles
// and bare Calls can wedge.
type VerbDeadline struct{}

// Name implements Analyzer.
func (VerbDeadline) Name() string { return "verbdeadline" }

// verbDeadlinePkgs are the layers that must stay responsive during
// node failure (§5: an RO promotion cannot wait on the dead RW).
var verbDeadlinePkgs = []string{"internal/engine", "internal/cluster"}

// fabricClients are remote-tier client types whose methods wait on the
// fabric (possibly several verbs deep).
var fabricClients = map[string]map[string]bool{
	"internal/rmem":    {"Pool": true, "PLManager": true},
	"internal/polarfs": {"Client": true},
	"internal/txn":     {"Client": true},
}

// Check implements Analyzer.
func (VerbDeadline) Check(p *Package) []Finding {
	watched := false
	for _, suffix := range verbDeadlinePkgs {
		if strings.HasSuffix(p.Path, suffix) {
			watched = true
		}
	}
	if !watched {
		return nil
	}

	ensureBlockingFns(p)
	isBlocking := func(call *ast.CallExpr) bool {
		obj := calleeFunc(p, call)
		if obj == nil {
			return false
		}
		if isFabricVerb(obj) {
			return true
		}
		if obj.Pkg() != nil {
			for pkg, recvs := range fabricClients {
				if strings.HasSuffix(obj.Pkg().Path(), pkg) && recvs[recvTypeName(obj)] {
					return true
				}
			}
		}
		return p.Mod.blockingFns[obj]
	}

	var out []Finding
	for _, sc := range funcScopes(p) {
		g := buildCFG(sc.body)
		ids, cyclic := g.sccMap()
		boundedCache := map[int]bool{}
		for _, blk := range g.blocks {
			for _, n := range blk.nodes {
				inspectSkipFuncLit(n, func(c ast.Node) bool {
					call, ok := c.(*ast.CallExpr)
					if !ok {
						return true
					}
					obj := calleeFunc(p, call)
					if obj == nil {
						return true
					}
					if methodIs(obj, "internal/rdma", "Endpoint", "Call") {
						out = append(out, Finding{
							Analyzer: "verbdeadline",
							Pos:      p.Fset.Position(call.Pos()),
							Message: fmt.Sprintf("%s: Endpoint.Call has no deadline and can wedge forever on a dead handler; use CallTimeout",
								sc.name),
						})
						return true
					}
					if !isBlocking(call) {
						return true
					}
					id := ids[blk]
					if !cyclic[id] {
						return true
					}
					bounded, seen := boundedCache[id]
					if !seen {
						bounded = sccBounded(p, g, ids, id)
						boundedCache[id] = bounded
					}
					if !bounded {
						out = append(out, Finding{
							Analyzer: "verbdeadline",
							Pos:      p.Fset.Position(call.Pos()),
							Message: fmt.Sprintf("%s: fabric-waiting call %s retried on an unbounded loop; bound it with a retry.Backoff window, a counted loop, or a cancellable select",
								sc.name, callName(call)),
						})
					}
					return true
				})
			}
		}
	}
	return out
}

// ensureBlockingFns computes, once per package, which of p's functions
// (and, recursively, its module dependencies') transitively issue a
// fabric verb or remote-tier client call on some path, into the
// module-wide map — so a cluster loop retrying an exported engine
// helper is recognized as fabric-waiting. rdma is skipped: its methods
// are the verbs themselves, matched by isFabricVerb.
func ensureBlockingFns(p *Package) {
	m := p.Mod
	if m.blockingDone[p.Path] {
		return
	}
	m.blockingDone[p.Path] = true
	for _, imp := range p.Pkg.Imports() {
		path := imp.Path()
		if path != m.Path && !strings.HasPrefix(path, m.Path+"/") {
			continue
		}
		if dp, err := m.Load(path); err == nil {
			ensureBlockingFns(dp)
		}
	}
	if strings.HasSuffix(p.Path, "internal/rdma") {
		return
	}
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for fobj, fd := range decls {
			if m.blockingFns[fobj] {
				continue
			}
			hit := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if hit {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := calleeFunc(p, call)
				if obj == nil {
					return true
				}
				if isFabricVerb(obj) || m.blockingFns[obj] {
					hit = true
					return false
				}
				if obj.Pkg() != nil {
					for pkg, recvs := range fabricClients {
						if strings.HasSuffix(obj.Pkg().Path(), pkg) && recvs[recvTypeName(obj)] {
							hit = true
							return false
						}
					}
				}
				return true
			})
			if hit {
				m.blockingFns[fobj] = true
				changed = true
			}
		}
	}
}

// sccBounded decides whether the cycle with the given id terminates or
// is cancellable.
func sccBounded(p *Package, g *funcCFG, ids map[*cfgBlock]int, id int) bool {
	scc := map[*cfgBlock]bool{}
	for _, blk := range g.blocks {
		if ids[blk] == id {
			scc[blk] = true
		}
	}

	// A retry.Backoff advanced on the cycle bounds it by its window.
	for blk := range scc {
		for _, n := range blk.nodes {
			found := false
			inspectSkipFuncLit(n, func(c ast.Node) bool {
				if call, ok := c.(*ast.CallExpr); ok {
					if obj := calleeFunc(p, call); obj != nil {
						if obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/retry") && recvTypeName(obj) == "Backoff" {
							found = true
							return false
						}
					}
				}
				return true
			})
			if found {
				return true
			}
		}
	}

	// A select on the cycle with a clause that escapes it (shutdown
	// channel, context cancellation) makes the loop cancellable.
	for _, head := range g.selects {
		if !scc[head] {
			continue
		}
		for _, e := range head.succs {
			if !scc[e.to] && reachesAvoiding(e.to, g.exit, scc) {
				return true
			}
		}
	}

	// If every loop forming the cycle is a counted or range loop, the
	// iteration space is finite.
	counted, loops := 0, 0
	for stmt, head := range g.loopHeads {
		if !scc[head] {
			continue
		}
		loops++
		switch s := stmt.(type) {
		case *ast.RangeStmt:
			counted++
		case *ast.ForStmt:
			if s.Cond != nil && s.Post != nil {
				counted++
			}
		}
	}
	return loops > 0 && counted == loops
}

// callName renders the callee of a call for messages.
func callName(call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}
