package lint

import "testing"

// The golden corpus for the dataflow analyzers: each test materializes a
// throwaway module with deliberate violations (and their clean twins) and
// pins the exact findings. These are the regression suite for the CFG
// engine — a precision or soundness change shows up here as a diff.

// pairingSrc is a fake internal/engine exercising every pairTable shape:
// a leaked mini-transaction, a leaked pin, a leaked global latch, a leak
// through an intra-package constructor summary, and a fully-released
// function using the committed-defer idiom (clean).
const pairingSrc = `package engine

type Frame struct{}

type Engine struct{}

type Mtr struct{ e *Engine }

func (e *Engine) BeginMtr() *Mtr { return &Mtr{e} }

func (m *Mtr) Commit() (uint64, error) { return 0, nil }

func (e *Engine) Fetch(id uint64) (*Frame, error) { return &Frame{}, nil }

func (e *Engine) Unpin(f *Frame) {}

func (e *Engine) PLLockX(f *Frame) error { return nil }

func (e *Engine) PLUnlockX(f *Frame) {}

func leakMtr(e *Engine, bad bool) error {
	mt := e.BeginMtr()
	if bad {
		return nil // line 24: mtr leaked
	}
	_, err := mt.Commit()
	return err
}

func leakPin(e *Engine, bad bool) error {
	f, err := e.Fetch(1)
	if err != nil {
		return err // clean: nothing was pinned
	}
	if bad {
		return nil // line 36: pin leaked
	}
	e.Unpin(f)
	return nil
}

func leakLatch(e *Engine, f *Frame, bad bool) error {
	if err := e.PLLockX(f); err != nil {
		return err // clean: latch not taken
	}
	if bad {
		return nil // line 47: latch leaked
	}
	e.PLUnlockX(f)
	return nil
}

func ctor(e *Engine) (*Frame, error) {
	f, err := e.Fetch(2)
	if err != nil {
		return nil, err
	}
	return f, nil // transfer to caller: clean here
}

func leakFromCtor(e *Engine, bad bool) error {
	f, err := ctor(e)
	if err != nil {
		return err
	}
	if bad {
		return nil // line 67: pin from the constructor leaked
	}
	e.Unpin(f)
	return nil
}

func committedDefer(e *Engine, f *Frame) error {
	g, err := e.Fetch(3)
	if err != nil {
		return err
	}
	defer e.Unpin(g)
	mt := e.BeginMtr()
	committed := false
	defer func() {
		if !committed {
			_, _ = mt.Commit()
		}
	}()
	if err := e.PLLockX(f); err != nil {
		return err
	}
	defer e.PLUnlockX(f)
	committed = true
	_, err = mt.Commit()
	return err
}
`

func TestPairing(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/engine/engine.go": pairingSrc,
	})
	wantFindings(t, runOnly(t, mod, "pairing", "./internal/engine"),
		[3]interface{}{"pairing", "internal/engine/engine.go", 24},
		[3]interface{}{"pairing", "internal/engine/engine.go", 36},
		[3]interface{}{"pairing", "internal/engine/engine.go", 47},
		[3]interface{}{"pairing", "internal/engine/engine.go", 67})
}

// verbDeadlineSrc is a fake internal/cluster: a bare Call, a
// data-dependent verb spin, and a spin through a package-local helper are
// reported; the counted, Backoff-bounded and select-cancellable loops are
// not, and neither is CallTimeout.
const verbDeadlineSrc = `package cluster

import (
	"polardb/internal/rdma"
	"polardb/internal/retry"
)

func ask(ep *rdma.Endpoint, b []byte) ([]byte, error) {
	return ep.Call("x", "m", b) // line 9: no deadline
}

func askBounded(ep *rdma.Endpoint, b []byte) ([]byte, error) {
	return ep.CallTimeout("x", "m", b, 1000)
}

func spin(ep *rdma.Endpoint, a rdma.Addr) {
	v, _ := ep.Load64(a)
	for v != 0 {
		v, _ = ep.Load64(a) // line 19: unbounded retry
	}
}

func probe(ep *rdma.Endpoint, a rdma.Addr) uint64 {
	v, _ := ep.Load64(a)
	return v
}

func spinViaHelper(ep *rdma.Endpoint, a rdma.Addr) {
	for probe(ep, a) != 0 { // line 29: blocks through the helper
	}
}

func counted(ep *rdma.Endpoint, a rdma.Addr) {
	for i := 0; i < 8; i++ {
		_, _ = ep.Load64(a)
	}
}

func backedOff(ep *rdma.Endpoint, a rdma.Addr, b *retry.Backoff) {
	for b.Next() {
		_, _ = ep.Load64(a)
	}
}

func cancellable(ep *rdma.Endpoint, a rdma.Addr, stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		_, _ = ep.Load64(a)
	}
}
`

func TestVerbDeadline(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/rdma/rdma.go": fakeRdma,
		"internal/retry/retry.go": `package retry

type Backoff struct{}

func (b *Backoff) Next() bool { return false }
`,
		"internal/cluster/cluster.go": verbDeadlineSrc,
	})
	wantFindings(t, runOnly(t, mod, "verbdeadline", "./internal/cluster"),
		[3]interface{}{"verbdeadline", "internal/cluster/cluster.go", 9},
		[3]interface{}{"verbdeadline", "internal/cluster/cluster.go", 19},
		[3]interface{}{"verbdeadline", "internal/cluster/cluster.go", 29})
}

// regionEscapeSrc is a fake internal/rmem: returning an alias from an
// exported function, storing it into a struct field, and sending it on a
// channel from a WithBytes callback all escape; copying out does not.
const regionEscapeSrc = `package rmem

import "polardb/internal/rdma"

type holder struct{ buf []byte }

func Leak(r *rdma.Region) []byte {
	return r.BytesAt(0, 8) // line 8: alias returned across the boundary
}

func Stash(h *holder, r *rdma.Region) {
	b := r.BytesAt(0, 8)
	h.buf = b // line 13: alias stored past the call
}

func LeakCallback(r *rdma.Region, ch chan []byte) {
	_ = r.WithBytesLocal(0, 8, func(b []byte) error {
		ch <- b // line 18: alias escapes the accessor scope
		return nil
	})
}

func Copies(r *rdma.Region) []byte {
	b := r.BytesAt(0, 8)
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
`

func TestRegionEscape(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/rdma/rdma.go": fakeRdma,
		"internal/rmem/rmem.go": regionEscapeSrc,
	})
	wantFindings(t, runOnly(t, mod, "regionescape", "./internal/rmem"),
		[3]interface{}{"regionescape", "internal/rmem/rmem.go", 8},
		[3]interface{}{"regionescape", "internal/rmem/rmem.go", 13},
		[3]interface{}{"regionescape", "internal/rmem/rmem.go", 18})
}

// TestLockHeldTryLockAndMethodValues pins the lockheld gaps closed in
// this revision: TryLock/TryRLock count as acquisitions, and mutex
// methods captured into locals keep their transition semantics.
func TestLockHeldTryLockAndMethodValues(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/rdma/rdma.go": fakeRdma,
		"internal/engine/engine.go": `package engine

import (
	"sync"

	"polardb/internal/rdma"
)

type tnode struct {
	mu sync.Mutex
	rw sync.RWMutex
	ep *rdma.Endpoint
}

func (n *tnode) tryLockHeld(a rdma.Addr, buf []byte) error {
	if !n.mu.TryLock() {
		return nil
	}
	defer n.mu.Unlock()
	return n.ep.Read(a, buf) // line 20: TryLock held
}

func (n *tnode) tryRLockReleased(a rdma.Addr, buf []byte) error {
	if n.rw.TryRLock() {
		n.rw.RUnlock()
	}
	return n.ep.Read(a, buf)
}

func (n *tnode) methodValueHeld(a rdma.Addr, buf []byte) error {
	lock, unlock := n.mu.Lock, n.mu.Unlock
	lock()
	defer unlock()
	return n.ep.Read(a, buf) // line 34: held through captured methods
}

func (n *tnode) methodValueReleased(a rdma.Addr, buf []byte) error {
	unlock := n.mu.Unlock
	n.mu.Lock()
	unlock()
	return n.ep.Read(a, buf)
}
`,
	})
	wantFindings(t, runOnly(t, mod, "lockheld", "./internal/engine"),
		[3]interface{}{"lockheld", "internal/engine/engine.go", 20},
		[3]interface{}{"lockheld", "internal/engine/engine.go", 34})
}

// TestDirectiveAudit pins the allow-audit: a directive naming an unknown
// analyzer and a directive that suppresses nothing are both reported.
func TestDirectiveAudit(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/engine/engine.go": `package engine

import "time"

func paced() {
	//polarvet:allow nosuchcheck this analyzer does not exist
	time.Sleep(time.Millisecond) //polarvet:allow nosleep demo pacing
}

//polarvet:allow nosleep nothing here sleeps
func quiet() {}
`,
	})
	wantFindings(t, run(t, mod, "./..."),
		[3]interface{}{"directive", "internal/engine/engine.go", 6},
		[3]interface{}{"directive", "internal/engine/engine.go", 10})
}
