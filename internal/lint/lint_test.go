package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeRdma is a minimal stand-in for internal/rdma with the same type and
// method names the analyzers key on.
const fakeRdma = `package rdma

type NodeID string

type Addr struct {
	Node   NodeID
	Region uint32
	Off    uint64
}

type Endpoint struct{}

func (e *Endpoint) Read(a Addr, dst []byte) error                      { return nil }
func (e *Endpoint) Write(a Addr, src []byte) error                     { return nil }
func (e *Endpoint) CAS64(a Addr, old, new uint64) (uint64, bool, error) { return 0, false, nil }
func (e *Endpoint) FetchAdd64(a Addr, d uint64) (uint64, error)        { return 0, nil }
func (e *Endpoint) Load64(a Addr) (uint64, error)                      { return 0, nil }
func (e *Endpoint) Call(t NodeID, m string, b []byte) ([]byte, error)  { return nil, nil }
func (e *Endpoint) CallTimeout(t NodeID, m string, b []byte, d int64) ([]byte, error) {
	return nil, nil
}
func (e *Endpoint) ID() NodeID { return "" }

type Region struct{}

func (r *Region) Store64Local(off, v uint64) error { return nil }
func (r *Region) BytesAt(off uint64, n int) []byte { return nil }
func (r *Region) WithBytesLocal(off uint64, n int, fn func(b []byte) error) error {
	return fn(nil)
}
`

// writeModule materializes files (module-relative path -> contents) as a
// throwaway module named polardb and loads it.
func writeModule(t *testing.T, files map[string]string) *Module {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module polardb\n\ngo 1.22\n"
	for rel, content := range files {
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// run applies all analyzers to the given patterns.
func run(t *testing.T, mod *Module, patterns ...string) []Finding {
	t.Helper()
	fs, err := Run(mod, patterns, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// runOnly applies a single analyzer by name.
func runOnly(t *testing.T, mod *Module, name string, patterns ...string) []Finding {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name() == name {
			fs, err := Run(mod, patterns, []Analyzer{a})
			if err != nil {
				t.Fatal(err)
			}
			return fs
		}
	}
	t.Fatalf("no analyzer %q", name)
	return nil
}

// wantFindings asserts the findings match (analyzer, file suffix, line)
// triples exactly, in order.
func wantFindings(t *testing.T, got []Finding, want ...[3]interface{}) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%v", len(got), len(want), got)
	}
	for i, w := range want {
		f := got[i]
		analyzer, file, line := w[0].(string), w[1].(string), w[2].(int)
		if f.Analyzer != analyzer || !strings.HasSuffix(f.Pos.Filename, file) || f.Pos.Line != line {
			t.Errorf("finding %d = %s at %s:%d, want %s at %s:%d (%s)",
				i, f.Analyzer, f.Pos.Filename, f.Pos.Line, analyzer, file, line, f.Message)
		}
	}
}

func TestNoSleep(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/rdma/rdma.go": fakeRdma,
		// The latency model itself may sleep.
		"internal/rdma/latency.go": `package rdma

import "time"

func simulate() { time.Sleep(time.Microsecond) }
`,
		// Bench measurement windows may sleep.
		"internal/bench/bench.go": `package bench

import "time"

func window() { time.Sleep(time.Millisecond) }
`,
		// Anything else may not.
		"internal/engine/engine.go": `package engine

import "time"

func poll() {
	time.Sleep(time.Millisecond)
}
`,
	})
	wantFindings(t, run(t, mod, "./..."),
		[3]interface{}{"nosleep", "internal/engine/engine.go", 6})
}

func TestNoSleepAllowDirective(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/engine/engine.go": `package engine

import "time"

func pace() {
	//polarvet:allow nosleep demo pacing, not simulated latency
	time.Sleep(time.Millisecond)
	time.Sleep(time.Millisecond) //polarvet:allow nosleep same-line form
}

func unjustified() {
	//polarvet:allow nosleep
	time.Sleep(time.Millisecond)
}
`,
	})
	// The reasonless directive is malformed (reported) and suppresses
	// nothing, so its Sleep is reported too.
	wantFindings(t, run(t, mod, "./..."),
		[3]interface{}{"directive", "internal/engine/engine.go", 12},
		[3]interface{}{"nosleep", "internal/engine/engine.go", 13})
}

func TestLayering(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/rdma/rdma.go": fakeRdma,
		"internal/cluster/cluster.go": `package cluster

import "polardb/internal/rdma"

var _ rdma.NodeID
`,
		// btree reaching up into cluster inverts the DAG.
		"internal/btree/tree.go": `package btree

import "polardb/internal/cluster"

var _ = cluster.Order
`,
		"internal/cluster/order.go": "package cluster\n\nconst Order = 16\n",
		// A package the table has never heard of.
		"internal/mystery/mystery.go": "package mystery\n",
	})
	wantFindings(t, run(t, mod, "./..."),
		[3]interface{}{"layering", "internal/btree/tree.go", 3},
		[3]interface{}{"layering", "internal/mystery/mystery.go", 1})
}

// TestLayeringStatRow pins the observability row of the table: stat is
// importable from every layer (here the extremes: the rdma leaf and the
// bench top), while stat itself stays a leaf — it may not import even
// types, let alone reach up into a tier.
func TestLayeringStatRow(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/stat/stat.go": "package stat\n\ntype Counter struct{}\n",
		"internal/rdma/rdma.go": `package rdma

import "polardb/internal/stat"

var _ stat.Counter
`,
		"internal/bench/bench.go": `package bench

import "polardb/internal/stat"

var _ stat.Counter
`,
	})
	wantFindings(t, runOnly(t, mod, "layering", "./..."))

	bad := writeModule(t, map[string]string{
		"internal/types/types.go": "package types\n\ntype PageNo uint32\n",
		"internal/stat/stat.go": `package stat

import "polardb/internal/types"

var _ types.PageNo
`,
	})
	wantFindings(t, runOnly(t, bad, "layering", "./..."),
		[3]interface{}{"layering", "internal/stat/stat.go", 3})
}

func TestLayeringCleanAndUnrestrictedRoots(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/rdma/rdma.go": fakeRdma,
		"internal/cache/cache.go": `package cache

import "polardb/internal/rdma"

var _ rdma.NodeID
`,
		// cmd may import anything.
		"cmd/tool/main.go": `package main

import (
	"polardb/internal/cache"
	"polardb/internal/rdma"
)

func main() { _ = cache.X; var _ rdma.NodeID }
`,
		"internal/cache/x.go": "package cache\n\nvar X = 1\n",
	})
	wantFindings(t, run(t, mod, "./..."))
}

const lockHeldSrc = `package engine

import (
	"sync"

	"polardb/internal/rdma"
)

type node struct {
	mu sync.Mutex
	rw sync.RWMutex
	ep *rdma.Endpoint
}

func (n *node) latchAcrossFabric(a rdma.Addr, buf []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ep.Read(a, buf) // held: deferred unlock
}

func (n *node) releasedBeforeFabric(a rdma.Addr, buf []byte) error {
	n.mu.Lock()
	n.mu.Unlock()
	return n.ep.Read(a, buf)
}

func (n *node) readLockAcrossCall(b []byte) {
	n.rw.RLock()
	_, _ = n.ep.Call("x", "m", b)
	n.rw.RUnlock()
}

func (n *node) closureIsSeparate(a rdma.Addr, buf []byte) func() {
	n.mu.Lock()
	defer n.mu.Unlock()
	return func() {
		_ = n.ep.Write(a, buf)
	}
}
`

func TestLockHeld(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/rdma/rdma.go":     fakeRdma,
		"internal/engine/engine.go": lockHeldSrc,
	})
	wantFindings(t, runOnly(t, mod, "lockheld", "./internal/engine"),
		[3]interface{}{"lockheld", "internal/engine/engine.go", 18},
		[3]interface{}{"lockheld", "internal/engine/engine.go", 29})
}

func TestLockHeldAllowDirective(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/rdma/rdma.go": fakeRdma,
		"internal/engine/engine.go": `package engine

import (
	"sync"

	"polardb/internal/rdma"
)

type node struct {
	mu sync.Mutex
	ep *rdma.Endpoint
}

func (n *node) audited(a rdma.Addr, buf []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	//polarvet:allow lockheld single-writer config path, never contended
	return n.ep.Read(a, buf)
}
`,
	})
	wantFindings(t, runOnly(t, mod, "lockheld", "./internal/engine"))
}

func TestErrDrop(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/rdma/rdma.go": fakeRdma,
		"internal/engine/engine.go": `package engine

import "polardb/internal/rdma"

func drops(ep *rdma.Endpoint, r *rdma.Region, a rdma.Addr, buf []byte) {
	_ = ep.Write(a, buf)
	ep.Write(a, buf)
	_, _ = ep.Call("x", "m", buf)
	_ = r.Store64Local(0, 1)
	go ep.Write(a, buf)
}

func handles(ep *rdma.Endpoint, a rdma.Addr, buf []byte) error {
	if err := ep.Write(a, buf); err != nil {
		return err
	}
	resp, err := ep.Call("x", "m", buf)
	_ = resp
	return err
}
`,
		// Intra-package calls are the package's own business.
		"internal/rdma/uses.go": `package rdma

func (e *Endpoint) flush(a Addr, b []byte) {
	_ = e.Write(a, b)
}
`,
	})
	// errdrop only: the fixture's bare ep.Call is verbdeadline's problem,
	// pinned in its own test.
	wantFindings(t, runOnly(t, mod, "errdrop", "./..."),
		[3]interface{}{"errdrop", "internal/engine/engine.go", 6},
		[3]interface{}{"errdrop", "internal/engine/engine.go", 7},
		[3]interface{}{"errdrop", "internal/engine/engine.go", 8},
		[3]interface{}{"errdrop", "internal/engine/engine.go", 9},
		[3]interface{}{"errdrop", "internal/engine/engine.go", 10})
}

func TestErrDropAllowDirective(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/rdma/rdma.go": fakeRdma,
		"internal/engine/engine.go": `package engine

import "polardb/internal/rdma"

func bestEffort(ep *rdma.Endpoint, a rdma.Addr, buf []byte) {
	//polarvet:allow errdrop best-effort cache hint; receiver revalidates
	_ = ep.Write(a, buf)
}
`,
	})
	wantFindings(t, run(t, mod, "./..."))
}

// TestRepoIsClean is the gate the tentpole promises: the analyzers run
// clean over the real repository. A deliberate violation anywhere (e.g.
// a stray time.Sleep in internal/engine) fails this test the same way it
// fails `go run ./cmd/polarvet ./...`.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo analysis skipped in -short mode")
	}
	mod, err := LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(mod, []string{"./..."}, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
