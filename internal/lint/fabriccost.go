package lint

// fabriccost is the whole-module fabric-cost analysis. Every simulated
// network round trip in the repository is an *rdma.Endpoint verb — an RPC
// (Call/CallTimeout, which occupies the remote CPU) or a one-sided verb
// (Read/Write/CAS64/FetchAdd64/Load64, which bypasses it) — and the
// recorded benches show the fabric is RPC-dominated. This analysis makes
// the round-trip budget of every function a checked artifact instead of
// tribal knowledge:
//
//   - Per-function summaries. For each function scope (declared functions
//     and function literals) the analysis records which verbs the body
//     issues directly, with a loop multiplicity — O(1), or O(n) when the
//     issuing block sits on a CFG cycle — and which module functions it
//     calls, resolved through the call graph in callgraph.go. A monotone
//     interprocedural fixpoint then folds callee costs into callers: a
//     callee verb reached from a call inside a loop is promoted to O(n).
//     Cycles that only retry are not fan-out: a strongly connected
//     component that advances a retry.Backoff, or whose loops are all
//     bounded by an integer constant (`for i := 0; i < 10; i++`), keeps
//     multiplicity O(1).
//
//   - Loop-carried fan-out findings. An RPC issued per-iteration of a
//     range loop — directly, or through a callee whose whole transitive
//     cost is a single round trip — is the batchable shape: n round
//     trips where one batched request would do (§3.1.4's invalidation
//     fan-out is the canonical instance). Range loops iterate data
//     (nodes, pages, holders); counted and backoff loops are retries and
//     are not reported.
//
//   - One-sided conversion candidates. An RPC whose request marshals
//     only fixed-width wire fields (or is nil) and whose response is
//     ignored or read back with only fixed-width fields is shaped like a
//     read/write of a fixed layout — the remote CPU adds nothing, and a
//     registered region plus a one-sided verb could carry it.
//
//   - Budget directives. A hot-path function declares its round-trip
//     budget in its doc comment:
//
//	//polarvet:fabric O(1)|O(n)|none [rationale]
//
//     and the analysis enforces the declaration *exactly* against the
//     computed transitive worst cost: a function that grew a loop-carried
//     verb violates its budget, and a budget looser than the computed
//     cost is reported too, so the declared table (mirrored in DESIGN.md
//     and pinned by docdrift_test.go) never drifts from reality.
//
// Like every module analysis, propagation under-approximates unknown
// code: calls that do not resolve to a module body contribute nothing,
// and goroutines spawned with `go` do not bill the spawner (their cost is
// not on the caller's latency path). polarvet -fabricreport dumps the
// full per-function cost table as JSON; -fabricgraph renders the cost-
// annotated call graph as DOT.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FabricCost is the module-wide fabric-cost analyzer.
type FabricCost struct{}

// Name implements Analyzer.
func (FabricCost) Name() string { return "fabriccost" }

// Check implements Analyzer; fabriccost only runs module-wide.
func (FabricCost) Check(p *Package) []Finding { return nil }

// CheckModule implements ModuleAnalyzer.
func (FabricCost) CheckModule(pkgs []*Package) []Finding {
	if len(pkgs) == 0 {
		return nil
	}
	a := newFabricAnalysis(pkgs)
	a.solve()
	sel := map[*Package]bool{}
	for _, p := range pkgs {
		sel[p] = true
	}
	return a.report(sel)
}

// fcCost is the loop-multiplicity lattice: none < O(1) < O(n).
type fcCost uint8

const (
	fcNone fcCost = iota
	fcOne
	fcMany
)

func (c fcCost) String() string {
	switch c {
	case fcOne:
		return "O(1)"
	case fcMany:
		return "O(n)"
	}
	return "none"
}

// fcPromote is the cost a callee verb contributes at a call site: a call
// on a loop makes every callee round trip loop-carried.
func fcPromote(c fcCost, mult fcCost) fcCost {
	if c == fcNone {
		return fcNone
	}
	if mult == fcMany {
		return fcMany
	}
	return c
}

// rpcVerbs are the verbs that occupy the remote CPU; the remaining
// fabricVerbs entries are one-sided.
var rpcVerbs = map[string]bool{"Call": true, "CallTimeout": true}

// fabricVerbClass labels a verb "rpc" or "onesided".
func fabricVerbClass(name string) string {
	if rpcVerbs[name] {
		return "rpc"
	}
	return "onesided"
}

// ---- per-scope events ----

// fcVerbEv is one direct fabric verb with its loop multiplicity.
type fcVerbEv struct {
	name string
	pos  token.Pos
	mult fcCost
}

// fcCallEv is one resolved module call with its loop multiplicity.
type fcCallEv struct {
	targets []*types.Func
	pos     token.Pos
	mult    fcCost
}

// fcLitEv is an immediately- or defer-invoked function literal, whose
// scope cost folds into the enclosing function at the site multiplicity.
type fcLitEv struct {
	lit  *ast.FuncLit
	pos  token.Pos
	mult fcCost
}

// fcScope is one analyzed function body and its recorded events.
type fcScope struct {
	p     *Package
	name  string
	fn    *types.Func   // nil for literals
	lit   *ast.FuncLit  // nil for declarations
	body  *ast.BlockStmt
	verbs []fcVerbEv
	calls []fcCallEv
	lits  []fcLitEv
}

// fcWitness explains one entry of a cost map: a direct verb site, or a
// call site into the function/literal that issues it in turn.
type fcWitness struct {
	site    token.Pos
	verb    string // direct verb name when terminal
	nextFn  *types.Func
	nextLit *ast.FuncLit
}

// fcFact is the transitive cost of one verb name in one scope.
type fcFact struct {
	cost fcCost
	wit  fcWitness
}

// fcBudget is one parsed //polarvet:fabric declaration.
type fcBudget struct {
	level fcCost
	pos   token.Position
}

// ---- the analysis driver ----

type fcAnalysis struct {
	idx     *moduleIndex
	fset    *token.FileSet
	scopes  []*fcScope
	fnCost  map[*types.Func]map[string]*fcFact
	litCost map[*ast.FuncLit]map[string]*fcFact
	budgets map[*types.Func]fcBudget
	// malformed / dangling directive findings, collected during parsing.
	directiveFindings []Finding
}

func newFabricAnalysis(pkgs []*Package) *fcAnalysis {
	a := &fcAnalysis{
		idx:     buildModuleIndex(pkgs),
		fset:    pkgs[0].Fset,
		fnCost:  map[*types.Func]map[string]*fcFact{},
		litCost: map[*ast.FuncLit]map[string]*fcFact{},
		budgets: map[*types.Func]fcBudget{},
	}
	for _, p := range a.idx.pkgs {
		if exemptFromLocking(p.Path) {
			continue // rdma implements the verbs; lint analyzes them
		}
		budgets, bad := fabricBudgets(p)
		a.directiveFindings = append(a.directiveFindings, bad...)
		for fd, b := range budgets {
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				a.budgets[fn] = b
			}
		}
		for _, scope := range funcScopes(p) {
			sc := &fcScope{p: p, body: scope.body, lit: scope.lit}
			if scope.decl != nil {
				fn, ok := p.Info.Defs[scope.decl.Name].(*types.Func)
				if !ok {
					continue
				}
				sc.fn = fn
				sc.name = qualifiedFuncName(fn)
			} else {
				sc.name = shortPkg(p.Path) + "." + scope.name
			}
			a.scanScope(sc)
			a.scopes = append(a.scopes, sc)
		}
	}
	return a
}

// scanScope records the scope's direct verb, call and literal-invocation
// events, each tagged with the CFG-derived loop multiplicity of its block.
func (a *fcAnalysis) scanScope(sc *fcScope) {
	g := buildCFG(sc.body)
	ids, cyclic := g.sccMap()
	bounded := map[int]bool{}
	for id := range cyclic {
		bounded[id] = fcSCCBounded(sc.p, g, ids, id)
	}
	bindings := methodBindings(sc.p, sc.body)
	for _, blk := range g.blocks {
		mult := fcOne
		if cyclic[ids[blk]] && !bounded[ids[blk]] {
			mult = fcMany
		}
		goCalls := map[*ast.CallExpr]bool{}
		for _, n := range blk.nodes {
			inspectSkipFuncLit(n, func(c ast.Node) bool {
				switch c := c.(type) {
				case *ast.GoStmt:
					goCalls[c.Call] = true
				case *ast.CallExpr:
					if goCalls[c] {
						return true // async: not on the caller's latency path
					}
					if obj := calleeFunc(sc.p, c); obj != nil && isFabricVerb(obj) {
						sc.verbs = append(sc.verbs, fcVerbEv{name: obj.Name(), pos: c.Pos(), mult: mult})
						return true
					}
					if lit, ok := c.Fun.(*ast.FuncLit); ok {
						sc.lits = append(sc.lits, fcLitEv{lit: lit, pos: c.Pos(), mult: mult})
						return true
					}
					if targets := a.idx.resolveCall(sc.p, c, bindings); len(targets) > 0 {
						sc.calls = append(sc.calls, fcCallEv{targets: targets, pos: c.Pos(), mult: mult})
					}
				}
				return true
			})
		}
	}
}

// fcSCCBounded reports whether a CFG cycle is a retry, not data fan-out:
// it advances a retry.Backoff, or every loop forming it is bounded by an
// integer constant. Range loops iterate data and are never bounded here.
func fcSCCBounded(p *Package, g *funcCFG, ids map[*cfgBlock]int, id int) bool {
	scc := map[*cfgBlock]bool{}
	for _, blk := range g.blocks {
		if ids[blk] == id {
			scc[blk] = true
		}
	}
	for blk := range scc {
		for _, n := range blk.nodes {
			found := false
			inspectSkipFuncLit(n, func(c ast.Node) bool {
				if call, ok := c.(*ast.CallExpr); ok {
					if obj := calleeFunc(p, call); obj != nil && obj.Pkg() != nil &&
						strings.HasSuffix(obj.Pkg().Path(), "internal/retry") && recvTypeName(obj) == "Backoff" {
						found = true
						return false
					}
				}
				return true
			})
			if found {
				return true
			}
		}
	}
	loops, constBounded := 0, 0
	for stmt, head := range g.loopHeads {
		if !scc[head] {
			continue
		}
		loops++
		fs, ok := stmt.(*ast.ForStmt)
		if !ok || fs.Cond == nil {
			continue
		}
		if bin, ok := fs.Cond.(*ast.BinaryExpr); ok {
			switch bin.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				if isConstExpr(p, bin.X) || isConstExpr(p, bin.Y) {
					constBounded++
				}
			}
		}
	}
	return loops > 0 && constBounded == loops
}

// isConstExpr reports whether go/types folded e to a constant.
func isConstExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}

// solve runs the interprocedural cost fixpoint. The lattice is finite
// (verb name -> cost level) and the transfer is monotone, so this
// converges; the cap is a defensive bound.
func (a *fcAnalysis) solve() {
	for round := 0; round < 40; round++ {
		changed := false
		for _, sc := range a.scopes {
			if a.transfer(sc) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// costOf returns the scope's (mutable) cost map.
func (a *fcAnalysis) costOf(sc *fcScope) map[string]*fcFact {
	if sc.fn != nil {
		m := a.fnCost[sc.fn]
		if m == nil {
			m = map[string]*fcFact{}
			a.fnCost[sc.fn] = m
		}
		return m
	}
	m := a.litCost[sc.lit]
	if m == nil {
		m = map[string]*fcFact{}
		a.litCost[sc.lit] = m
	}
	return m
}

// transfer folds the scope's events into its cost map. Reports change.
// Witnesses are first-wins per verb at a given level and replaced when
// the level rises, so the recorded path always explains the final cost.
func (a *fcAnalysis) transfer(sc *fcScope) bool {
	m := a.costOf(sc)
	changed := false
	join := func(verb string, c fcCost, w fcWitness) {
		if c == fcNone {
			return
		}
		f := m[verb]
		if f == nil {
			m[verb] = &fcFact{cost: c, wit: w}
			changed = true
			return
		}
		if c > f.cost {
			f.cost = c
			f.wit = w
			changed = true
		}
	}
	for _, ev := range sc.verbs {
		join(ev.name, ev.mult, fcWitness{site: ev.pos, verb: ev.name})
	}
	for _, ev := range sc.lits {
		for verb, f := range a.litCost[ev.lit] {
			join(verb, fcPromote(f.cost, ev.mult), fcWitness{site: ev.pos, nextLit: ev.lit})
		}
	}
	for _, ev := range sc.calls {
		for _, t := range ev.targets {
			for verb, f := range a.fnCost[t] {
				join(verb, fcPromote(f.cost, ev.mult), fcWitness{site: ev.pos, nextFn: t})
			}
		}
	}
	return changed
}

// renderPath follows the witness chain from a cost map down to the verb
// site, for humans reading findings and the report.
func (a *fcAnalysis) renderPath(m map[string]*fcFact, verb string) string {
	var parts []string
	for hops := 0; hops < 12; hops++ {
		f := m[verb]
		if f == nil {
			break
		}
		switch w := f.wit; {
		case w.nextFn != nil:
			parts = append(parts, qualifiedFuncName(w.nextFn))
			m = a.fnCost[w.nextFn]
		case w.nextLit != nil:
			parts = append(parts, "(func literal)")
			m = a.litCost[w.nextLit]
		default:
			parts = append(parts, fmt.Sprintf("%s at %s", w.verb, a.fset.Position(w.site)))
			return "via " + strings.Join(parts, " → ")
		}
	}
	return "via " + strings.Join(parts, " → ")
}

// worstCost is the scope-wide worst level and the verb witnessing it.
func worstCost(m map[string]*fcFact) (fcCost, string) {
	worst, verb := fcNone, ""
	var names []string
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if f := m[name]; f.cost > worst {
			worst, verb = f.cost, name
		}
	}
	return worst, verb
}

// ---- budget directives ----

// fabricDirectivePrefix introduces a fabric budget declaration.
const fabricDirectivePrefix = "//polarvet:fabric"

// fabricBudgets parses the package's //polarvet:fabric directives. A
// directive lives in the doc comment of the function it budgets;
// malformed bodies and directives attached to nothing are findings.
func fabricBudgets(p *Package) (map[*ast.FuncDecl]fcBudget, []Finding) {
	out := map[*ast.FuncDecl]fcBudget{}
	var bad []Finding
	attached := map[*ast.Comment]bool{}
	parse := func(c *ast.Comment) (fcCost, bool) {
		fields := strings.Fields(strings.TrimPrefix(c.Text, fabricDirectivePrefix))
		if len(fields) >= 1 {
			switch fields[0] {
			case "O(1)":
				return fcOne, true
			case "O(n)":
				return fcMany, true
			case "none":
				return fcNone, true
			}
		}
		bad = append(bad, Finding{
			Analyzer: "fabriccost",
			Pos:      p.Fset.Position(c.Pos()),
			Message:  "malformed //polarvet:fabric: want \"//polarvet:fabric O(1)|O(n)|none [rationale]\"",
		})
		return fcNone, false
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if !strings.HasPrefix(c.Text, fabricDirectivePrefix) {
					continue
				}
				attached[c] = true
				level, ok := parse(c)
				if !ok {
					continue
				}
				if _, dup := out[fd]; dup {
					bad = append(bad, Finding{
						Analyzer: "fabriccost",
						Pos:      p.Fset.Position(c.Pos()),
						Message:  fmt.Sprintf("duplicate //polarvet:fabric on %s; a function has one budget", fd.Name.Name),
					})
					continue
				}
				out[fd] = fcBudget{level: level, pos: p.Fset.Position(c.Pos())}
			}
		}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, fabricDirectivePrefix) || attached[c] {
					continue
				}
				bad = append(bad, Finding{
					Analyzer: "fabriccost",
					Pos:      p.Fset.Position(c.Pos()),
					Message:  "//polarvet:fabric is not attached to a function declaration; put it in the doc comment of the function it budgets",
				})
			}
		}
	}
	return out, bad
}

// ---- findings ----

// report renders every finding class for the selected packages.
func (a *fcAnalysis) report(sel map[*Package]bool) []Finding {
	var out []Finding
	for _, f := range a.directiveFindings {
		if a.posSelected(f.Pos, sel) {
			out = append(out, f)
		}
	}
	for _, sc := range a.scopes {
		for _, f := range a.scopeFindings(sc) {
			if a.posSelected(f.Pos, sel) {
				out = append(out, f)
			}
		}
	}
	out = append(out, a.budgetFindings(sel)...)
	sort.Slice(out, func(i, j int) bool {
		x, y := out[i], out[j]
		if x.Pos.Filename != y.Pos.Filename {
			return x.Pos.Filename < y.Pos.Filename
		}
		if x.Pos.Line != y.Pos.Line {
			return x.Pos.Line < y.Pos.Line
		}
		return x.Message < y.Message
	})
	return out
}

// budgetFindings enforces declared budgets exactly against the computed
// transitive worst cost, in both directions.
func (a *fcAnalysis) budgetFindings(sel map[*Package]bool) []Finding {
	var fns []*types.Func
	for fn := range a.budgets {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	var out []Finding
	for _, fn := range fns {
		b := a.budgets[fn]
		if !a.posSelected(b.pos, sel) {
			continue
		}
		computed, verb := worstCost(a.fnCost[fn])
		switch {
		case computed > b.level:
			out = append(out, Finding{
				Analyzer: "fabriccost",
				Pos:      b.pos,
				Message: fmt.Sprintf("fabric budget violated: %s declares %s but transitively issues %s at %s (%s)",
					qualifiedFuncName(fn), b.level, verb, computed, a.renderPath(a.fnCost[fn], verb)),
			})
		case computed < b.level:
			out = append(out, Finding{
				Analyzer: "fabriccost",
				Pos:      b.pos,
				Message: fmt.Sprintf("fabric budget loose: %s declares %s but the computed worst cost is %s; tighten the directive so the declared table stays honest",
					qualifiedFuncName(fn), b.level, computed),
			})
		}
	}
	return out
}

// scopeFindings walks one scope body for the two site-level finding
// classes: loop-carried fan-out and one-sided conversion candidates.
func (a *fcAnalysis) scopeFindings(sc *fcScope) []Finding {
	wire := a.wireUsage(sc)
	var out []Finding
	var stack []ast.Node
	goCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(sc.body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != sc.body {
			return false // separate scope
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.GoStmt:
			goCalls[n.Call] = true
		case *ast.CallExpr:
			if goCalls[n] {
				return true
			}
			out = append(out, a.callSiteFindings(sc, n, stack, wire)...)
		}
		return true
	})
	return out
}

// callSiteFindings classifies one call site.
func (a *fcAnalysis) callSiteFindings(sc *fcScope, call *ast.CallExpr, stack []ast.Node, wire *fcWireUsage) []Finding {
	rng := enclosingRange(stack, call)
	obj := calleeFunc(sc.p, call)
	if obj != nil && isFabricVerb(obj) {
		if !rpcVerbs[obj.Name()] {
			return nil // one-sided verbs are the cheap currency; no finding
		}
		if rng != nil {
			return []Finding{{
				Analyzer: "fabriccost",
				Pos:      a.fset.Position(call.Pos()),
				Message: fmt.Sprintf("loop-carried fan-out: RPC %s issued per-iteration of range over %s; batch the requests per destination or hoist the round trip out of the loop",
					obj.Name(), types.ExprString(rangeExprOf(rng))),
			}}
		}
		return a.convertibleFinding(sc, call, stack, wire)
	}
	// Interprocedural fan-out: a range loop invoking a helper whose whole
	// transitive cost is one RPC round trip is n round trips in a trench
	// coat — the batchable shape.
	if rng == nil {
		return nil
	}
	bindings := methodBindings(sc.p, sc.body)
	for _, t := range a.idx.resolveCall(sc.p, call, bindings) {
		m := a.fnCost[t]
		if m == nil {
			continue
		}
		rpcWorst := fcNone
		for verb, f := range m {
			if rpcVerbs[verb] && f.cost > rpcWorst {
				rpcWorst = f.cost
			}
		}
		if rpcWorst == fcOne {
			return []Finding{{
				Analyzer: "fabriccost",
				Pos:      a.fset.Position(call.Pos()),
				Message: fmt.Sprintf("loop-carried fan-out: %s (one fabric round trip per call) invoked per-iteration of range over %s; batch the requests into one RPC",
					qualifiedFuncName(t), types.ExprString(rangeExprOf(rng))),
			}}
		}
	}
	return nil
}

// enclosingRange returns the innermost loop enclosing call when that loop
// is a range statement; a nearer for loop (retry shape) shadows it.
func enclosingRange(stack []ast.Node, call *ast.CallExpr) *ast.RangeStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.RangeStmt:
			if call.End() <= s.X.End() {
				continue // inside the ranged expression, evaluated once
			}
			return s
		case *ast.ForStmt:
			if s.Init != nil && call.End() <= s.Init.End() {
				continue // loop init runs once
			}
			return nil
		}
	}
	return nil
}

func rangeExprOf(s *ast.RangeStmt) ast.Expr { return s.X }

// ---- one-sided conversion candidates ----

// fcWireUsage is the scope's flow-insensitive wire.Writer/Reader usage:
// which buffer objects only ever marshal fixed-width fields (and outside
// any loop, so the layout is truly fixed), and which response objects
// feed a wire.NewReader.
type fcWireUsage struct {
	fixedWriter map[types.Object]bool
	fixedReader map[types.Object]bool
	respReader  map[types.Object]types.Object // RPC response var -> reader var
}

// fixedWireMethods are the Writer/Reader methods that move a fixed number
// of bytes; String and Bytes32 are length-prefixed and variable.
var fixedWireMethods = map[string]bool{
	"U8": true, "U16": true, "U32": true, "U64": true, "Bool": true,
	"Bytes": true, "Err": true, "Remaining": true,
}

// wireUsage scans the scope once for writer/reader fixedness.
func (a *fcAnalysis) wireUsage(sc *fcScope) *fcWireUsage {
	u := &fcWireUsage{
		fixedWriter: map[types.Object]bool{},
		fixedReader: map[types.Object]bool{},
		respReader:  map[types.Object]types.Object{},
	}
	variable := map[types.Object]bool{}
	var stack []ast.Node
	ast.Inspect(sc.body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != sc.body {
			return false
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					continue
				}
				fn := calleeFunc(sc.p, call)
				if fn == nil || fn.Name() != "NewReader" || fn.Pkg() == nil ||
					!strings.HasSuffix(fn.Pkg().Path(), "internal/wire") {
					continue
				}
				resp := identObj2(sc.p, call.Args[0])
				rd := identObj2(sc.p, n.Lhs[i])
				if resp != nil && rd != nil {
					u.respReader[resp] = rd
				}
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := identObj2(sc.p, sel.X)
			if recv == nil {
				return true
			}
			writer := isWireType(recv.Type(), "Writer")
			reader := isWireType(recv.Type(), "Reader")
			if !writer && !reader {
				return true
			}
			inLoop := false
			for i := len(stack) - 2; i >= 0; i-- {
				switch stack[i].(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					inLoop = true
				}
			}
			if !fixedWireMethods[sel.Sel.Name] || (inLoop && sel.Sel.Name != "Err" && sel.Sel.Name != "Bytes") {
				variable[recv] = true
				return true
			}
			if writer {
				u.fixedWriter[recv] = true
			} else {
				u.fixedReader[recv] = true
			}
		}
		return true
	})
	for obj := range variable {
		delete(u.fixedWriter, obj)
		delete(u.fixedReader, obj)
	}
	return u
}

// isWireType reports a pointer to internal/wire.<name>.
func isWireType(t types.Type, name string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == name && strings.HasSuffix(named.Obj().Pkg().Path(), "internal/wire")
}

// convertibleFinding reports an RPC shaped like a fixed-layout read or
// write of a registered region: fixed-width (or nil) request, and a
// response that is either ignored (write shape) or read back with only
// fixed-width fields (read shape).
func (a *fcAnalysis) convertibleFinding(sc *fcScope, call *ast.CallExpr, stack []ast.Node, wire *fcWireUsage) []Finding {
	if len(call.Args) < 3 {
		return nil
	}
	req := call.Args[2]
	reqFixed := false
	switch r := req.(type) {
	case *ast.Ident:
		reqFixed = r.Name == "nil"
	case *ast.CallExpr:
		if sel, ok := r.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Bytes" {
			if obj := identObj2(sc.p, sel.X); obj != nil && wire.fixedWriter[obj] {
				reqFixed = true
			}
		}
	}
	if !reqFixed {
		return nil
	}
	respObj, respIgnored := rpcResponseUse(sc.p, call, stack)
	shape := ""
	switch {
	case respIgnored:
		shape = "Write"
	case respObj != nil && wire.fixedReader[wire.respReader[respObj]] && wire.respReader[respObj] != nil:
		shape = "Read"
	default:
		return nil
	}
	detail := "reads the response with only fixed-width fields"
	if shape == "Write" {
		detail = "ignores the response"
	}
	return []Finding{{
		Analyzer: "fabriccost",
		Pos:      a.fset.Position(call.Pos()),
		Message: fmt.Sprintf("one-sided convertible: RPC %s marshals a fixed-layout request and %s; a registered region and a one-sided %s would bypass the remote CPU",
			types.ExprString(call.Args[1]), detail, shape),
	}}
}

// rpcResponseUse inspects how the call's response value is bound: the
// object it lands in, or ignored (blank / dropped expression statement).
func rpcResponseUse(p *Package, call *ast.CallExpr, stack []ast.Node) (types.Object, bool) {
	if len(stack) < 2 {
		return nil, false
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.ExprStmt:
		return nil, true
	case *ast.AssignStmt:
		if len(parent.Rhs) == 1 && parent.Rhs[0] == call && len(parent.Lhs) >= 1 {
			if id, ok := parent.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
				return nil, true
			}
			return identObj2(p, parent.Lhs[0]), false
		}
	}
	return nil, false
}

// posSelected mirrors loAnalysis.posSelected: findings outside the
// pattern-selected packages are suppressed.
func (a *fcAnalysis) posSelected(pos token.Position, sel map[*Package]bool) bool {
	dir := pos.Filename
	if i := strings.LastIndexByte(dir, '/'); i >= 0 {
		dir = dir[:i]
	}
	for p := range sel {
		if p.Dir == dir {
			return true
		}
	}
	return false
}

// ---- public fabric-report API (polarvet -fabricreport / -fabricgraph) ----

// FabricVerbCost is one verb's transitive cost in one function.
type FabricVerbCost struct {
	Verb  string `json:"verb"`
	Class string `json:"class"` // "rpc" or "onesided"
	Cost  string `json:"cost"`  // "O(1)" or "O(n)"
	Path  string `json:"path"`  // witness chain down to the issuing site
}

// FabricFuncCost is the fabric-cost summary of one declared function.
type FabricFuncCost struct {
	Function string           `json:"function"`
	Package  string           `json:"package"`
	Pos      string           `json:"pos"`
	Budget   string           `json:"budget,omitempty"` // declared //polarvet:fabric level
	RPC      string           `json:"rpc"`              // worst RPC-verb cost
	OneSided string           `json:"onesided"`         // worst one-sided-verb cost
	Verbs    []FabricVerbCost `json:"verbs"`
}

// FabricCallEdge is a call-graph edge between two cost-bearing functions.
type FabricCallEdge struct {
	From   string `json:"from"`
	To     string `json:"to"`
	InLoop bool   `json:"inLoop"` // the call sits on an unbounded CFG cycle
}

// FabricReport is the module's per-function fabric-cost table, as dumped
// by polarvet -fabricreport (JSON) and -fabricgraph (DOT).
type FabricReport struct {
	Functions []FabricFuncCost `json:"functions"`
	Edges     []FabricCallEdge `json:"edges"`
}

// BuildFabricReport loads the packages matching patterns and returns the
// cost table the fabriccost analyzer reasons over: every declared module
// function that transitively issues a fabric verb, its per-verb cost and
// witness path, and its declared budget when one exists.
func BuildFabricReport(mod *Module, patterns []string) (*FabricReport, error) {
	paths, err := mod.Packages(patterns...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, path := range paths {
		p, err := mod.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	if len(pkgs) == 0 {
		return &FabricReport{}, nil
	}
	a := newFabricAnalysis(pkgs)
	a.solve()
	r := &FabricReport{}
	included := map[*types.Func]bool{}
	for _, sc := range a.scopes {
		if sc.fn == nil || len(a.fnCost[sc.fn]) == 0 {
			continue
		}
		included[sc.fn] = true
		m := a.fnCost[sc.fn]
		entry := FabricFuncCost{
			Function: sc.name,
			Package:  sc.p.Path,
			Pos:      a.fset.Position(sc.fn.Pos()).String(),
			RPC:      fcNone.String(),
			OneSided: fcNone.String(),
		}
		if b, ok := a.budgets[sc.fn]; ok {
			entry.Budget = b.level.String()
		}
		var names []string
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		rpcWorst, osWorst := fcNone, fcNone
		for _, name := range names {
			f := m[name]
			entry.Verbs = append(entry.Verbs, FabricVerbCost{
				Verb:  name,
				Class: fabricVerbClass(name),
				Cost:  f.cost.String(),
				Path:  a.renderPath(m, name),
			})
			if rpcVerbs[name] {
				if f.cost > rpcWorst {
					rpcWorst = f.cost
				}
			} else if f.cost > osWorst {
				osWorst = f.cost
			}
		}
		entry.RPC, entry.OneSided = rpcWorst.String(), osWorst.String()
		r.Functions = append(r.Functions, entry)
	}
	edges := map[string]*FabricCallEdge{}
	for _, sc := range a.scopes {
		if sc.fn == nil || !included[sc.fn] {
			continue
		}
		for _, ev := range sc.calls {
			for _, t := range ev.targets {
				if !included[t] {
					continue
				}
				key := sc.name + "\x00" + qualifiedFuncName(t)
				e, ok := edges[key]
				if !ok {
					e = &FabricCallEdge{From: sc.name, To: qualifiedFuncName(t)}
					edges[key] = e
				}
				if ev.mult == fcMany {
					e.InLoop = true
				}
			}
		}
	}
	for _, e := range edges {
		r.Edges = append(r.Edges, *e)
	}
	sort.Slice(r.Edges, func(i, j int) bool {
		if r.Edges[i].From != r.Edges[j].From {
			return r.Edges[i].From < r.Edges[j].From
		}
		return r.Edges[i].To < r.Edges[j].To
	})
	return r, nil
}

// DOT renders the cost table as an overlay on the call graph: one node
// per cost-bearing function, filled by its worst RPC cost (O(n) darkest),
// double-bordered when it carries a declared budget; loop-carried call
// edges are bold and labeled ×n.
func (r *FabricReport) DOT() string {
	var b strings.Builder
	b.WriteString("digraph fabriccost {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, style=filled, fontname=\"monospace\"];\n")
	for _, f := range r.Functions {
		fill := "#d9ead3" // one-sided only
		switch f.RPC {
		case "O(n)":
			fill = "#f4cccc"
		case "O(1)":
			fill = "#fff2cc"
		}
		label := fmt.Sprintf("%s\\nrpc %s / 1s %s", f.Function, f.RPC, f.OneSided)
		attrs := ""
		if f.Budget != "" {
			label += fmt.Sprintf("\\nbudget %s", f.Budget)
			attrs = ", peripheries=2"
		}
		fmt.Fprintf(&b, "  %q [label=%q, fillcolor=%q%s];\n", f.Function, label, fill, attrs)
	}
	for _, e := range r.Edges {
		attrs := ""
		if e.InLoop {
			attrs = " [style=bold, label=\"×n\"]"
		}
		fmt.Fprintf(&b, "  %q -> %q%s;\n", e.From, e.To, attrs)
	}
	b.WriteString("}\n")
	return b.String()
}
