package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags statements that discard the error result of a call into
// internal/rdma, internal/polarfs, internal/plog, internal/rmem or
// internal/parallelraft — the packages whose errors encode simulated
// infrastructure failures (node unreachable, quorum lost, torn log, latch
// owner dead). Dropping one silently converts an injected fault into
// corruption, which is exactly what the recovery tests are supposed to
// observe. A discard is a bare expression statement, an assignment of the
// error position to _, or a go/defer of such a call. Intra-package calls
// are exempt (the package owning the error decides locally);
// cross-package callers must handle or annotate.
type ErrDrop struct{}

// errSourcePkgs are the suffixes of packages whose dropped errors are
// reported.
var errSourcePkgs = []string{
	"internal/rdma", "internal/polarfs", "internal/plog",
	"internal/rmem", "internal/parallelraft",
}

// Name implements Analyzer.
func (ErrDrop) Name() string { return "errdrop" }

// Check implements Analyzer.
func (ErrDrop) Check(p *Package) []Finding {
	var out []Finding
	report := func(call *ast.CallExpr, how string) {
		if f, ok := droppedErrCall(p, call); ok {
			f.Message += how
			out = append(out, f)
		}
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					report(call, " (result ignored)")
				}
			case *ast.GoStmt:
				report(n.Call, " (go statement ignores results)")
			case *ast.DeferStmt:
				report(n.Call, " (defer ignores results)")
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				f, ok := droppedErrCall(p, call)
				if !ok {
					return true
				}
				// The error is the last result; it is dropped when the
				// last LHS (or the only LHS of a single-result call) is _.
				last := n.Lhs[len(n.Lhs)-1]
				if id, ok := last.(*ast.Ident); ok && id.Name == "_" {
					f.Message += " (error assigned to _)"
					out = append(out, f)
				}
			}
			return true
		})
	}
	return out
}

// droppedErrCall reports whether call targets an error-returning function
// of one of the watched packages (from a different package), returning a
// template finding.
func droppedErrCall(p *Package, call *ast.CallExpr) (Finding, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return Finding{}, false
	}
	obj, ok := p.Info.Uses[id].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() == p.Path {
		return Finding{}, false
	}
	watched := false
	for _, suffix := range errSourcePkgs {
		if strings.HasSuffix(obj.Pkg().Path(), suffix) {
			watched = true
			break
		}
	}
	if !watched {
		return Finding{}, false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return Finding{}, false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return Finding{}, false
	}
	short := obj.Pkg().Path()
	if i := strings.LastIndex(short, "/"); i >= 0 {
		short = short[i+1:]
	}
	return Finding{
		Analyzer: "errdrop",
		Pos:      p.Fset.Position(call.Pos()),
		Message:  fmt.Sprintf("discarded error from %s.%s", short, obj.Name()),
	}, true
}
