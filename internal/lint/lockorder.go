package lint

// lockorder is the whole-module lock analysis. It models the repository's
// lock universe as a small set of *classes* — one per sync.Mutex/RWMutex
// struct field or package-level mutex variable, plus the single "PL"
// class for the global page latch (engine.PLLockX/S, btree.Store
// dispatch, rmem.PLManager.LockX/S) — and propagates held-class sets
// interprocedurally over the call graph built by callgraph.go.
//
// From the propagated facts it reports two invariant violations:
//
//  1. Lock-order cycles. Every acquisition observed while another class
//     is held contributes a directed edge held→acquired to the global
//     acquisition-order graph. A cycle in that graph whose acquisitions
//     can mutually block (at each handoff, the acquiring mode conflicts
//     with the held mode — a pure reader cycle cannot deadlock) is a
//     potential deadlock, which `go test -race` cannot see.
//
//  2. Fabric verbs reached while a node-local mutex class is held
//     through *any* call path — the interprocedural generalization of
//     lockheld, which only sees verbs issued in the same function body
//     as the Lock call. Holding the PL class across fabric verbs is
//     exempt: the global page latch is *designed* to be taken and held
//     across RDMA (CAS fast path, home-node negotiation, sticky
//     retention), and serializing it behind fabric latency is the
//     documented cost model, not a bug.
//
// The analysis is a conservative under-approximation over unknown code:
// calls that do not resolve to a module function body (stdlib, function
// values that are not captured method values) contribute nothing, and a
// spawned goroutine does not inherit the spawner's held set. Within the
// resolved graph it over-approximates: held sets union at CFG joins with
// write mode dominating, and interface calls fan out to every concrete
// implementing type in the module.
//
// `//polarvet:allow lockorder <reason>` suppresses a finding at the
// reported (witness) position, like every other analyzer.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder is the module-wide lock-order / held-latch analyzer.
type LockOrder struct{}

// Name implements Analyzer.
func (LockOrder) Name() string { return "lockorder" }

// Check implements Analyzer; lockorder only runs module-wide.
func (LockOrder) Check(p *Package) []Finding { return nil }

// CheckModule implements ModuleAnalyzer.
func (LockOrder) CheckModule(pkgs []*Package) []Finding {
	if len(pkgs) == 0 {
		return nil
	}
	return newLockOrderAnalysis(pkgs).run(pkgs)
}

// lockMode distinguishes shared from exclusive acquisitions.
type lockMode uint8

const (
	modeR lockMode = iota + 1 // RLock / LockS
	modeW                     // Lock / LockX
)

func (m lockMode) String() string {
	if m == modeR {
		return "R"
	}
	return "W"
}

// modeConflict reports whether an acquisition in mode acq can block on a
// holder in mode held: everything conflicts except shared-with-shared.
func modeConflict(acq, held lockMode) bool {
	return acq == modeW || held == modeW
}

// plClass is the lock class of the global page latch.
const plClass = "PL"

// fabricTolerant lists the lock classes whose critical sections are
// *designed* to span fabric latency, with the design rationale. Verb
// findings skip them; everything else held across a fabric verb is a
// finding. The table is deliberately small and closed — a new mutex is
// fabric-intolerant until someone argues otherwise here — and DESIGN.md
// documents the same table (docdrift_test.go pins the two together).
var fabricTolerant = map[string]string{
	plClass:                    "the global page latch is taken and held across RDMA by design (CAS fast path, home negotiation, sticky retention); its fabric cost is the paper's cost model",
	"cache.Frame.Latch":        "page materialization and B-tree latch coupling hold a frame latch while the page body or the child's PL crosses the fabric; instance-ordered by tree level",
	"cluster.Session.mu":       "per-session serialization: one statement at a time per connection, each spanning full engine operations",
	"cluster.Proxy.gate":       "the transparent-switchover fence: read-held across statements precisely so a handover can drain them",
	"cluster.Manager.switchMu": "planned handover is stop-the-world for the cluster by design",
}

// pageOrdered marks the page-latch classes whose mutual acquisition
// order is governed by page instance (latch coupling descends the tree,
// and PL + frame latch of one page are taken as a pair in a fixed
// order), which class-granularity cycle detection cannot see. Cycles
// confined to these classes are suppressed, exactly like self-edges.
var pageOrdered = map[string]bool{
	plClass:             true,
	"cache.Frame.Latch": true,
}

// ---- lock-class discovery ----

// loClasses is the discovered lock-class universe.
type loClasses struct {
	of       map[types.Object]string // mutex field / package var -> class
	embedded map[*types.Named]string // struct type embedding a mutex -> class
	all      []string                // every class, sorted
}

// isMutexType reports sync.Mutex / sync.RWMutex (and which).
func isMutexType(t types.Type) (rw bool, ok bool) {
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// discoverLockClasses enumerates every mutex lock class of the module:
// named-struct mutex fields ("engine.Engine.activeMu"), package-level
// mutex variables ("stat.defaultMu"), and — when any PL-bearing package
// is loaded — the global page-latch class "PL". Local mutex variables are
// deliberately unclassified: they cannot participate in a cross-function
// ordering. Exempt packages (rdma, lint) contribute no classes.
func discoverLockClasses(idx *moduleIndex) *loClasses {
	c := &loClasses{of: map[types.Object]string{}, embedded: map[*types.Named]string{}}
	seen := map[string]bool{}
	add := func(obj types.Object, class string) {
		c.of[obj] = class
		if !seen[class] {
			seen[class] = true
			c.all = append(c.all, class)
		}
	}
	for _, p := range idx.pkgs {
		if exemptFromLocking(p.Path) {
			continue
		}
		short := shortPkg(p.Path)
		scope := p.Pkg.Scope()
		for _, name := range scope.Names() {
			switch obj := scope.Lookup(name).(type) {
			case *types.TypeName:
				if obj.IsAlias() {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				st, ok := named.Underlying().(*types.Struct)
				if !ok {
					continue
				}
				for i := 0; i < st.NumFields(); i++ {
					f := st.Field(i)
					if _, ok := isMutexType(f.Type()); !ok {
						continue
					}
					class := short + "." + obj.Name() + "." + f.Name()
					add(f, class)
					if f.Embedded() {
						c.embedded[named] = class
					}
				}
			case *types.Var:
				if _, ok := isMutexType(obj.Type()); ok {
					add(obj, short+"."+name)
				}
			}
		}
		switch short {
		case "rmem", "engine", "btree":
			if !seen[plClass] {
				seen[plClass] = true
				c.all = append(c.all, plClass)
			}
		}
	}
	sort.Strings(c.all)
	return c
}

// embeddedClass resolves a struct value that embeds a mutex (so Lock is
// called on the struct itself) to the embedded field's class.
func (c *loClasses) embeddedClass(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return c.embedded[named]
	}
	return ""
}

// ---- PL op table ----

// plSig names one page-latch operation by package suffix, receiver type
// (concrete or interface) and method name.
type plSig struct {
	pkg, recv, method string
}

var plAcquires = map[plSig]lockMode{
	{"internal/rmem", "PLManager", "LockX"}:  modeW,
	{"internal/rmem", "PLManager", "LockS"}:  modeR,
	{"internal/engine", "Engine", "PLLockX"}: modeW,
	{"internal/engine", "Engine", "PLLockS"}: modeR,
	{"internal/btree", "Store", "PLLockX"}:   modeW,
	{"internal/btree", "Store", "PLLockS"}:   modeR,
}

var plReleases = map[plSig]bool{
	{"internal/rmem", "PLManager", "UnlockX"}:  true,
	{"internal/rmem", "PLManager", "UnlockS"}:  true,
	{"internal/engine", "Engine", "PLUnlockX"}: true,
	{"internal/engine", "Engine", "PLUnlockS"}: true,
	{"internal/btree", "Store", "PLUnlockX"}:   true,
	{"internal/btree", "Store", "PLUnlockS"}:   true,
}

// plDeferrals register the latch for release at MTR commit: the latch
// stays held through the rest of the body but is off the books at exit
// (pairing tracks the commit obligation itself).
var plDeferrals = map[plSig]bool{
	{"internal/engine", "Mtr", "DeferPLUnlockX"}: true,
	{"internal/btree", "Mtr", "DeferPLUnlockX"}:  true,
}

func plSigOf(obj *types.Func) (plSig, bool) {
	if obj.Pkg() == nil {
		return plSig{}, false
	}
	path := obj.Pkg().Path()
	for _, suffix := range []string{"internal/rmem", "internal/engine", "internal/btree"} {
		if strings.HasSuffix(path, suffix) {
			return plSig{pkg: suffix, recv: recvTypeName(obj), method: obj.Name()}, true
		}
	}
	return plSig{}, false
}

// ---- per-function state and events ----

// heldInfo is one held class at one program point. direct marks classes
// locked by a sync mutex call in this very function body — those verbs
// are lockheld's findings, and lockorder stays quiet to avoid doubles.
type heldInfo struct {
	mode   lockMode
	direct bool
}

// loState is the dataflow fact at a program point. pend holds the
// error-guarded acquisitions: the repo idiom releases everything before
// an error return (`n, err := rc.acquire(no); if err != nil { return }`),
// so classes a fallible acquisition would hold enter held only along the
// err == nil edge (see refineEdge) and evaporate on the error edge.
type loState struct {
	held map[string]heldInfo
	rel  map[string]bool                      // net releases (released while not held)
	def  map[string]bool                      // deferred releases (run at exit)
	pend map[types.Object]map[string]lockMode // err var -> classes held iff it is nil
}

func newLoState() *loState {
	return &loState{held: map[string]heldInfo{}, rel: map[string]bool{}, def: map[string]bool{}}
}

func (s *loState) clone() *loState {
	n := newLoState()
	for k, v := range s.held {
		n.held[k] = v
	}
	for k := range s.rel {
		n.rel[k] = true
	}
	for k := range s.def {
		n.def[k] = true
	}
	for obj, classes := range s.pend {
		m := make(map[string]lockMode, len(classes))
		for c, mode := range classes {
			m[c] = mode
		}
		n.setPend(obj, m)
	}
	return n
}

func (s *loState) setPend(obj types.Object, classes map[string]lockMode) {
	if s.pend == nil {
		s.pend = map[types.Object]map[string]lockMode{}
	}
	for c, m := range classes {
		if cur := s.pend[obj]; cur == nil {
			s.pend[obj] = map[string]lockMode{c: m}
		} else if cur[c] < m {
			cur[c] = m
		}
	}
}

// joinInto merges o into s (s is a block-entry fact): held unions with W
// dominating, and releases (net and deferred) union too — may-release.
// The repo's error-path idiom (`committed := false; defer func() { if
// !committed { mt.Commit() } }()` next to a happy-path Commit) releases
// on *some* path in each shape; must-release intersection would call the
// pair a leak and drown the report in held-set pollution. The cost is
// that a class released on one path is considered off the books on all —
// the analyzer prefers missed findings over false ones. Reports change.
func (s *loState) joinInto(o *loState) bool {
	changed := false
	for k, ov := range o.held {
		sv, ok := s.held[k]
		nv := heldInfo{mode: sv.mode, direct: sv.direct || ov.direct}
		if !ok || ov.mode > nv.mode {
			nv.mode = ov.mode
		}
		if !ok || nv != sv {
			s.held[k] = nv
			changed = true
		}
	}
	for k := range o.rel {
		if !s.rel[k] {
			s.rel[k] = true
			changed = true
		}
	}
	for k := range o.def {
		if !s.def[k] {
			s.def[k] = true
			changed = true
		}
	}
	for obj, classes := range o.pend {
		for c, m := range classes {
			if s.pend[obj][c] < m {
				s.setPend(obj, map[string]lockMode{c: m})
				changed = true
			}
		}
	}
	return changed
}

func copyHeld(h map[string]heldInfo) map[string]heldInfo {
	out := make(map[string]heldInfo, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// loAcqEv is one direct acquisition (sync mutex or PL op) with the
// classes held just before it.
type loAcqEv struct {
	pos   token.Pos
	class string
	mode  lockMode
	try   bool
	held  map[string]heldInfo
}

// loCallEv is one resolved module call with the classes held across it.
type loCallEv struct {
	pos     token.Pos
	held    map[string]heldInfo
	targets []*types.Func
}

// loVerbEv is one direct fabric verb with the classes held across it.
type loVerbEv struct {
	pos  token.Pos
	name string
	held map[string]heldInfo
}

// loSummary is the per-function-scope result: the net effect callers
// apply (leavesHeld / releases) plus the recorded events the reporting
// phases consume.
type loSummary struct {
	leavesHeld map[string]lockMode
	releases   map[string]bool
	acqs       []loAcqEv
	calls      []loCallEv
	verbs      []loVerbEv
	pkg        *Package
	name       string
}

func (s *loSummary) effectEquals(o *loSummary) bool {
	if o == nil || len(s.leavesHeld) != len(o.leavesHeld) || len(s.releases) != len(o.releases) {
		return false
	}
	for k, v := range s.leavesHeld {
		if o.leavesHeld[k] != v {
			return false
		}
	}
	for k := range s.releases {
		if !o.releases[k] {
			return false
		}
	}
	return true
}

// ---- the analysis driver ----

type loAnalysis struct {
	idx       *moduleIndex
	classes   *loClasses
	fset      *token.FileSet
	summaries map[*types.Func]*loSummary
	literals  []*loSummary // function-literal scopes (events only)
	cfgs      map[*ast.BlockStmt]*funcCFG
	bindings  map[*ast.BlockStmt]map[types.Object]*types.Func

	// phase-2 transitive facts
	mayAcquire map[*types.Func]map[string]*loAcqWitness
	verbVia    map[*types.Func]*loVerbWitness
}

// loAcqWitness is why fn may acquire a class: either a direct site
// (next nil) or a call at site into next, which acquires it in turn.
type loAcqWitness struct {
	site token.Pos
	next *types.Func
	mode lockMode
}

// loVerbWitness is why fn may issue a fabric verb.
type loVerbWitness struct {
	site token.Pos
	name string // verb method name when next is nil
	next *types.Func
}

func newLockOrderAnalysis(pkgs []*Package) *loAnalysis {
	idx := buildModuleIndex(pkgs)
	return &loAnalysis{
		idx:        idx,
		classes:    discoverLockClasses(idx),
		fset:       pkgs[0].Fset,
		summaries:  map[*types.Func]*loSummary{},
		cfgs:       map[*ast.BlockStmt]*funcCFG{},
		bindings:   map[*ast.BlockStmt]map[types.Object]*types.Func{},
		mayAcquire: map[*types.Func]map[string]*loAcqWitness{},
		verbVia:    map[*types.Func]*loVerbWitness{},
	}
}

func (a *loAnalysis) cfg(body *ast.BlockStmt) *funcCFG {
	g, ok := a.cfgs[body]
	if !ok {
		g = buildCFG(body)
		a.cfgs[body] = g
	}
	return g
}

func (a *loAnalysis) binds(p *Package, body *ast.BlockStmt) map[types.Object]*types.Func {
	b, ok := a.bindings[body]
	if !ok {
		b = methodBindings(p, body)
		a.bindings[body] = b
	}
	return b
}

// sortedDecls lists the module's analyzable declared functions in
// position order (exempt packages skipped).
func (a *loAnalysis) sortedDecls() []*types.Func {
	var fns []*types.Func
	for fn, site := range a.idx.decls {
		if exemptFromLocking(site.pkg.Path) {
			continue
		}
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	return fns
}

// run executes the three phases and renders findings for the selected
// packages.
func (a *loAnalysis) run(selected []*Package) []Finding {
	sel := map[*Package]bool{}
	for _, p := range selected {
		sel[p] = true
	}
	a.solve()
	edges, findings := a.report(sel)
	_ = edges
	return findings
}

// solve runs phase 1 (per-function dataflow to a module-wide fixpoint on
// summary effects, then an event-recording pass, plus literal scopes) and
// phase 2 (transitive may-acquire / may-verb closure).
func (a *loAnalysis) solve() {
	decls := a.sortedDecls()
	// Phase 1a: effect fixpoint. The lattice is finite (held/release
	// sets over the class universe) and the transfer is monotone, so
	// this converges; the cap is a defensive bound.
	for round := 0; round < 40; round++ {
		changed := false
		for _, fn := range decls {
			site := a.idx.decls[fn]
			sum := a.analyzeBody(site.pkg, qualifiedFuncName(fn), site.fd.Body, false)
			if !sum.effectEquals(a.summaries[fn]) {
				changed = true
			}
			a.summaries[fn] = sum
		}
		if !changed {
			break
		}
	}
	// Phase 1b: recording pass — declared bodies with final summaries,
	// plus every function literal as its own empty-entry scope.
	for _, fn := range decls {
		site := a.idx.decls[fn]
		a.summaries[fn] = a.analyzeBody(site.pkg, qualifiedFuncName(fn), site.fd.Body, true)
	}
	a.literals = nil
	for _, p := range a.idx.pkgs {
		if exemptFromLocking(p.Path) {
			continue
		}
		for _, scope := range funcScopes(p) {
			if scope.lit == nil {
				continue
			}
			a.literals = append(a.literals, a.analyzeBody(p, shortPkg(p.Path)+"."+scope.name, scope.body, true))
		}
	}
	// Phase 2: transitive closure over the call graph.
	for round := 0; round < 40; round++ {
		changed := false
		for _, fn := range decls {
			if a.closeOver(fn) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// closeOver folds fn's direct events and its callees' transitive facts
// into mayAcquire/verbVia. Reports change. Witnesses are first-wins per
// class (deterministic given the fixed iteration order), except that a
// write-mode acquisition replaces a read-mode witness: the W edge exists
// in reality and is the one that can deadlock.
func (a *loAnalysis) closeOver(fn *types.Func) bool {
	sum := a.summaries[fn]
	if sum == nil {
		return false
	}
	acq := a.mayAcquire[fn]
	if acq == nil {
		acq = map[string]*loAcqWitness{}
		a.mayAcquire[fn] = acq
	}
	changed := false
	record := func(class string, w *loAcqWitness) {
		old := acq[class]
		if old == nil || (old.mode == modeR && w.mode == modeW) {
			acq[class] = w
			changed = true
		}
	}
	for i := range sum.acqs {
		ev := &sum.acqs[i]
		record(ev.class, &loAcqWitness{site: ev.pos, mode: ev.mode})
	}
	if a.verbVia[fn] == nil && len(sum.verbs) > 0 {
		a.verbVia[fn] = &loVerbWitness{site: sum.verbs[0].pos, name: sum.verbs[0].name}
		changed = true
	}
	for i := range sum.calls {
		ev := &sum.calls[i]
		for _, t := range ev.targets {
			for class, w := range a.mayAcquire[t] {
				record(class, &loAcqWitness{site: ev.pos, next: t, mode: w.mode})
			}
			if a.verbVia[fn] == nil && a.verbVia[t] != nil {
				a.verbVia[fn] = &loVerbWitness{site: ev.pos, next: t}
				changed = true
			}
		}
	}
	return changed
}

// ---- per-function dataflow ----

// analyzeBody runs the worklist dataflow over one function body. When
// record is true the pass replays the stabilized block-entry facts once
// more to collect events; otherwise only the exit effect matters.
func (a *loAnalysis) analyzeBody(p *Package, name string, body *ast.BlockStmt, record bool) *loSummary {
	g := a.cfg(body)
	bindings := a.binds(p, body)
	sum := &loSummary{leavesHeld: map[string]lockMode{}, releases: map[string]bool{}, pkg: p, name: name}
	in := map[*cfgBlock]*loState{g.entry: newLoState()}
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		st := in[b].clone()
		a.transferBlock(p, nil, st, b, bindings)
		for _, e := range b.succs {
			ns := a.refineEdge(p, st, e)
			if cur, ok := in[e.to]; !ok {
				in[e.to] = ns.clone()
				work = append(work, e.to)
			} else if cur.joinInto(ns) {
				work = append(work, e.to)
			}
		}
	}
	if record {
		for _, b := range g.blocks {
			if st, ok := in[b]; ok {
				a.transferBlock(p, sum, st.clone(), b, bindings)
			}
		}
	}
	if exitSt := in[g.exit]; exitSt != nil {
		for class, info := range exitSt.held {
			if !exitSt.def[class] {
				sum.leavesHeld[class] = info.mode
			}
		}
		for class := range exitSt.rel {
			sum.releases[class] = true
		}
		for class := range exitSt.def {
			if _, held := exitSt.held[class]; !held {
				sum.releases[class] = true
			}
		}
	}
	return sum
}

// transferBlock applies every node of b to st in order; when sum is
// non-nil, events are recorded into it.
func (a *loAnalysis) transferBlock(p *Package, sum *loSummary, st *loState, b *cfgBlock, bindings map[types.Object]*types.Func) {
	deferCalls := map[*ast.CallExpr]bool{}
	goCalls := map[*ast.CallExpr]bool{}
	callErr := map[*ast.CallExpr]types.Object{}
	for _, n := range b.nodes {
		inspectSkipFuncLit(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.DeferStmt:
				deferCalls[c.Call] = true
			case *ast.GoStmt:
				goCalls[c.Call] = true
			case *ast.AssignStmt:
				// `x, err := call()` — remember which variable guards
				// the call's acquisitions (visited before the call).
				if len(c.Rhs) == 1 {
					if call, ok := c.Rhs[0].(*ast.CallExpr); ok && len(c.Lhs) > 0 {
						if obj := identObj2(p, c.Lhs[len(c.Lhs)-1]); obj != nil && isErrorType(obj.Type()) {
							callErr[call] = obj
						}
					}
				}
			case *ast.CallExpr:
				if !goCalls[c] {
					a.applyCall(p, sum, st, c, deferCalls[c], callErr[c], bindings)
				}
			}
			return true
		})
	}
}

// refineEdge adjusts the propagated state for a conditional edge:
//
//   - `if mu.TryLock()` — along the branch where the try failed, the
//     class is not held;
//   - `if err != nil` / `if err == nil` — along the nil edge, pending
//     acquisitions guarded by err promote into the held set; along the
//     non-nil edge they evaporate (the repo releases before error
//     returns).
func (a *loAnalysis) refineEdge(p *Package, st *loState, e cfgEdge) *loState {
	cond, negate := e.cond, e.negate
	for {
		if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
			cond, negate = u.X, !negate
			continue
		}
		break
	}
	switch cond := cond.(type) {
	case *ast.CallExpr:
		if !negate {
			return st
		}
		sel, ok := cond.Fun.(*ast.SelectorExpr)
		if !ok {
			return st
		}
		obj, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync" ||
			(obj.Name() != "TryLock" && obj.Name() != "TryRLock") {
			return st
		}
		class := a.classOfExpr(p, sel.X)
		if class == "" {
			return st
		}
		ns := st.clone()
		delete(ns.held, class)
		return ns
	case *ast.BinaryExpr:
		if cond.Op != token.EQL && cond.Op != token.NEQ {
			return st
		}
		var errExpr ast.Expr
		switch {
		case isNilIdent(cond.Y):
			errExpr = cond.X
		case isNilIdent(cond.X):
			errExpr = cond.Y
		default:
			return st
		}
		obj := identObj2(p, errExpr)
		if obj == nil || st.pend[obj] == nil {
			return st
		}
		// Edge is taken when cond == !negate; work out whether that
		// means the error is nil on this edge.
		condTrue := !negate
		errIsNil := (cond.Op == token.EQL) == condTrue
		ns := st.clone()
		classes := ns.pend[obj]
		delete(ns.pend, obj)
		if errIsNil {
			for c, m := range classes {
				a.enterHeld(ns, c, m, false)
			}
		}
		return ns
	}
	return st
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// classOfExpr maps the receiver expression of a sync mutex method call to
// its lock class ("" when unclassified, e.g. a local mutex variable).
func (a *loAnalysis) classOfExpr(p *Package, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		obj := identObj(p, e)
		if obj == nil {
			return ""
		}
		if c, ok := a.classes.of[obj]; ok {
			return c
		}
		return a.classes.embeddedClass(obj.Type())
	case *ast.SelectorExpr:
		if obj := identObj(p, e.Sel); obj != nil {
			if c, ok := a.classes.of[obj]; ok {
				return c
			}
		}
		if tv, ok := p.Info.Types[e]; ok {
			return a.classes.embeddedClass(tv.Type)
		}
	case *ast.ParenExpr:
		return a.classOfExpr(p, e.X)
	case *ast.StarExpr:
		return a.classOfExpr(p, e.X)
	}
	return ""
}

// applyCall classifies one call: sync mutex transition, fabric verb,
// page-latch op, or resolved module call. errObj, when non-nil, is the
// error variable assigned from this call — fallible acquisitions are
// held only once it proves nil.
func (a *loAnalysis) applyCall(p *Package, sum *loSummary, st *loState, call *ast.CallExpr, deferred bool, errObj types.Object, bindings map[types.Object]*types.Func) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil {
			if obj.Pkg().Path() == "sync" && lockMethods[obj.Name()] {
				if class := a.classOfExpr(p, sel.X); class != "" {
					a.mutexTransition(sum, st, class, obj.Name(), call.Pos(), deferred)
				}
				return
			}
			if isFabricVerb(obj) {
				if sum != nil {
					sum.verbs = append(sum.verbs, loVerbEv{pos: call.Pos(), name: obj.Name(), held: copyHeld(st.held)})
				}
				return
			}
		}
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		// An immediately- or defer-invoked literal runs in this
		// function's dynamic extent, so its net effect applies here (its
		// ordering events are recorded separately, as a literal scope).
		ls := a.analyzeBody(p, "", lit.Body, false)
		a.applyEffect(sum, st, ls.releases, ls.leavesHeld, call.Pos(), deferred, nil)
		return
	}
	obj := calleeFunc(p, call)
	isPL := false
	if obj != nil {
		if sig, ok := plSigOf(obj); ok {
			switch {
			case plAcquires[sig] != 0:
				a.recordCallEvent(p, sum, st, call, bindings)
				mode := plAcquires[sig]
				if sum != nil {
					// The ordering edge exists even when the attempt can
					// fail: a failed acquisition still blocked on it.
					sum.acqs = append(sum.acqs, loAcqEv{pos: call.Pos(), class: plClass, mode: mode, held: copyHeld(st.held)})
				}
				if errObj != nil {
					st.setPend(errObj, map[string]lockMode{plClass: mode})
				} else {
					a.enterHeld(st, plClass, mode, false)
				}
				return
			case plReleases[sig]:
				isPL = true
				a.release(st, plClass, deferred)
			case plDeferrals[sig]:
				isPL = true
				st.def[plClass] = true
			}
		}
	}
	targets := a.recordCallEvent(p, sum, st, call, bindings)
	if isPL {
		return
	}
	// Fold callee effects over the dispatch set (unions on both sides —
	// may-release, may-hold), then apply.
	relAll := map[string]bool{}
	heldAll := map[string]lockMode{}
	for _, t := range targets {
		ts := a.summaries[t]
		if ts == nil {
			continue
		}
		for c := range ts.releases {
			relAll[c] = true
		}
		for c, m := range ts.leavesHeld {
			if heldAll[c] < m {
				heldAll[c] = m
			}
		}
	}
	a.applyEffect(sum, st, relAll, heldAll, call.Pos(), deferred, errObj)
}

// applyEffect applies a callee's (or literal's) net effect at a call
// site. A deferred call runs at exit: its releases become deferred
// releases, and anything it would leave held is ignored — it cannot be
// held during the rest of this body. When the call's error result is
// captured, held classes are pending on it proving nil.
func (a *loAnalysis) applyEffect(sum *loSummary, st *loState, releases map[string]bool, leavesHeld map[string]lockMode, pos token.Pos, deferred bool, errObj types.Object) {
	if deferred {
		for c := range releases {
			st.def[c] = true
		}
		return
	}
	for c := range releases {
		a.release(st, c, false)
	}
	if len(leavesHeld) == 0 {
		return
	}
	if errObj != nil {
		st.setPend(errObj, leavesHeld)
		return
	}
	var classes []string
	for c := range leavesHeld {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		a.enterHeld(st, c, leavesHeld[c], false)
	}
}

// recordCallEvent resolves a call against the module graph and, when
// recording, snapshots the held set for the reporting phase.
func (a *loAnalysis) recordCallEvent(p *Package, sum *loSummary, st *loState, call *ast.CallExpr, bindings map[types.Object]*types.Func) []*types.Func {
	targets := a.idx.resolveCall(p, call, bindings)
	if len(targets) == 0 {
		return nil
	}
	if sum != nil {
		sum.calls = append(sum.calls, loCallEv{pos: call.Pos(), held: copyHeld(st.held), targets: targets})
	}
	return targets
}

// mutexTransition applies one sync.Mutex/RWMutex method call.
func (a *loAnalysis) mutexTransition(sum *loSummary, st *loState, class, method string, pos token.Pos, deferred bool) {
	switch method {
	case "Lock":
		a.acquire(sum, st, class, modeW, pos)
	case "RLock":
		a.acquire(sum, st, class, modeR, pos)
	case "TryLock":
		a.tryAcquire(sum, st, class, modeW, pos)
	case "TryRLock":
		a.tryAcquire(sum, st, class, modeR, pos)
	case "Unlock", "RUnlock":
		a.release(st, class, deferred)
	}
}

// acquire records an acquisition event (held snapshot taken before the
// class enters the set) and marks the class held.
func (a *loAnalysis) acquire(sum *loSummary, st *loState, class string, mode lockMode, pos token.Pos) {
	if sum != nil {
		sum.acqs = append(sum.acqs, loAcqEv{pos: pos, class: class, mode: mode, held: copyHeld(st.held)})
	}
	a.enterHeld(st, class, mode, true)
}

// enterHeld adds a class to the held set; W dominates an existing R.
// direct marks classes locked by a sync call in this very body — verbs
// under those are lockheld's findings, not lockorder's.
func (a *loAnalysis) enterHeld(st *loState, class string, mode lockMode, direct bool) {
	info := st.held[class]
	if mode > info.mode {
		info.mode = mode
	}
	if direct {
		info.direct = true
	}
	st.held[class] = info
}

// tryAcquire enters the held set (the branch refinement clears it on the
// failure edge) but witnesses no ordering edge: a try never blocks.
func (a *loAnalysis) tryAcquire(sum *loSummary, st *loState, class string, mode lockMode, pos token.Pos) {
	a.enterHeld(st, class, mode, true)
}

// release clears a held class; a deferred release runs at exit instead,
// and releasing an un-held class is a net release the caller owns.
func (a *loAnalysis) release(st *loState, class string, deferred bool) {
	if deferred {
		st.def[class] = true
		return
	}
	if _, ok := st.held[class]; ok {
		delete(st.held, class)
		return
	}
	st.rel[class] = true
}

// ---- phase 3: edges, cycles, findings ----

// loEdge is one acquisition-order edge: to was acquired (toMode) while
// from was held (fromMode), witnessed at pos (an acquisition site or the
// call site whose callee acquires).
type loEdge struct {
	from, to         string
	fromMode, toMode lockMode
	pos              token.Position
	path             string // "" for a same-function acquisition
}

func (e *loEdge) less(o *loEdge) bool {
	if e.pos.Filename != o.pos.Filename {
		return e.pos.Filename < o.pos.Filename
	}
	if e.pos.Line != o.pos.Line {
		return e.pos.Line < o.pos.Line
	}
	if e.pos.Column != o.pos.Column {
		return e.pos.Column < o.pos.Column
	}
	if e.from != o.from {
		return e.from < o.from
	}
	return e.to < o.to
}

// report builds the deduplicated edge set and the findings for the
// selected packages.
func (a *loAnalysis) report(sel map[*Package]bool) ([]*loEdge, []Finding) {
	edges := a.collectEdges()
	var findings []Finding
	findings = append(findings, a.cycleFindings(edges, sel)...)
	findings = append(findings, a.verbFindings(sel)...)
	return edges, findings
}

// allSummaries lists declared summaries (position order) then literal
// summaries.
func (a *loAnalysis) allSummaries() []*loSummary {
	var out []*loSummary
	for _, fn := range a.sortedDecls() {
		if s := a.summaries[fn]; s != nil {
			out = append(out, s)
		}
	}
	out = append(out, a.literals...)
	return out
}

// collectEdges turns recorded events into the deduplicated global
// acquisition-order edge set, sorted by witness position.
func (a *loAnalysis) collectEdges() []*loEdge {
	byKey := map[[2]string]*loEdge{}
	add := func(e *loEdge) {
		key := [2]string{e.from, e.to}
		old, ok := byKey[key]
		if !ok {
			byKey[key] = e
			return
		}
		// Merge: W dominates on both ends (the W witness is the one
		// that can block); earlier witness wins otherwise.
		if e.toMode > old.toMode || e.fromMode > old.fromMode {
			if e.toMode > old.toMode {
				old.toMode = e.toMode
				old.pos, old.path = e.pos, e.path
			}
			if e.fromMode > old.fromMode {
				old.fromMode = e.fromMode
			}
			return
		}
		if e.less(old) {
			*old = *e
		}
	}
	for _, sum := range a.allSummaries() {
		for i := range sum.acqs {
			ev := &sum.acqs[i]
			for from, info := range ev.held {
				add(&loEdge{
					from: from, to: ev.class,
					fromMode: info.mode, toMode: ev.mode,
					pos: a.fset.Position(ev.pos),
				})
			}
		}
		for i := range sum.calls {
			ev := &sum.calls[i]
			if len(ev.held) == 0 {
				continue
			}
			for _, t := range ev.targets {
				for class, w := range a.mayAcquire[t] {
					for from, info := range ev.held {
						add(&loEdge{
							from: from, to: class,
							fromMode: info.mode, toMode: w.mode,
							pos:  a.fset.Position(ev.pos),
							path: a.acquirePath(t, class),
						})
					}
				}
			}
		}
	}
	var out []*loEdge
	for _, e := range byKey {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// acquirePath renders the call chain from a callee down to the witnessed
// acquisition, for humans reading the finding.
func (a *loAnalysis) acquirePath(fn *types.Func, class string) string {
	var parts []string
	cur := fn
	for hops := 0; cur != nil && hops < 12; hops++ {
		parts = append(parts, qualifiedFuncName(cur))
		w := a.mayAcquire[cur][class]
		if w == nil || w.next == nil {
			if w != nil {
				parts = append(parts, a.fset.Position(w.site).String())
			}
			break
		}
		cur = w.next
	}
	return "via " + strings.Join(parts, " → ")
}

// verbPath renders the call chain from a callee down to the fabric verb.
func (a *loAnalysis) verbPath(fn *types.Func) string {
	var parts []string
	cur := fn
	for hops := 0; cur != nil && hops < 12; hops++ {
		parts = append(parts, qualifiedFuncName(cur))
		w := a.verbVia[cur]
		if w == nil || w.next == nil {
			if w != nil {
				parts = append(parts, fmt.Sprintf("%s at %s", w.name, a.fset.Position(w.site)))
			}
			break
		}
		cur = w.next
	}
	return "via " + strings.Join(parts, " → ")
}

// cycleFindings inserts edges in deterministic order and reports each
// cycle the moment its closing edge arrives, provided every consecutive
// acquisition around the cycle can actually block (a pure reader ring is
// not a deadlock). Self-edges — latch coupling on one class, ordered by
// instance (tree level), not by class — are excluded from cycle logic.
func (a *loAnalysis) cycleFindings(edges []*loEdge, sel map[*Package]bool) []Finding {
	adj := map[string][]*loEdge{}
	var out []Finding
	for _, e := range edges {
		if e.from == e.to {
			continue
		}
		if cyc := findConflictCycle(adj, e); cyc != nil && !cycleIsPageOrdered(cyc) {
			if a.posSelected(e.pos, sel) {
				var desc []string
				for _, ce := range cyc {
					step := fmt.Sprintf("%s(%s) acquired at %s while holding %s(%s)", ce.to, ce.toMode, ce.pos, ce.from, ce.fromMode)
					if ce.path != "" {
						step += " " + ce.path
					}
					desc = append(desc, step)
				}
				var ring []string
				for _, ce := range cyc {
					ring = append(ring, ce.from)
				}
				ring = append(ring, cyc[0].from)
				out = append(out, Finding{
					Analyzer: "lockorder",
					Pos:      e.pos,
					Message: fmt.Sprintf("lock-order cycle %s: %s; pick one global acquisition order",
						strings.Join(ring, " → "), strings.Join(desc, "; ")),
				})
			}
		}
		adj[e.from] = append(adj[e.from], e)
	}
	return out
}

// cycleIsPageOrdered reports a cycle confined to the page-latch classes,
// whose mutual order is governed by page instance rather than class
// (see pageOrdered). A cycle with at least one non-page class is always
// reported, even if it transits the page classes.
func cycleIsPageOrdered(cyc []*loEdge) bool {
	for _, e := range cyc {
		if !pageOrdered[e.from] || !pageOrdered[e.to] {
			return false
		}
	}
	return true
}

// findConflictCycle searches the existing graph for a path closing e
// into a deadlock-capable cycle: e.to ⇝ e.from where every handoff
// conflicts. Returns the cycle starting at e, or nil. The DFS state is
// (node, incoming acquisition mode), which fully determines which
// outgoing edges conflict.
func findConflictCycle(adj map[string][]*loEdge, e *loEdge) []*loEdge {
	type stKey struct {
		node string
		acq  lockMode
	}
	seen := map[stKey]bool{}
	var path []*loEdge
	var dfs func(node string, acq lockMode) bool
	dfs = func(node string, acq lockMode) bool {
		if node == e.from {
			// Wrap: the last acquisition (acq, into e.from) must
			// conflict with e's holder mode.
			return modeConflict(acq, e.fromMode)
		}
		k := stKey{node, acq}
		if seen[k] {
			return false
		}
		seen[k] = true
		for _, n := range adj[node] {
			if n.from == n.to || !modeConflict(acq, n.fromMode) {
				continue
			}
			path = append(path, n)
			if dfs(n.to, n.toMode) {
				return true
			}
			path = path[:len(path)-1]
		}
		return false
	}
	if !dfs(e.to, e.toMode) {
		return nil
	}
	return append([]*loEdge{e}, path...)
}

// verbFindings reports fabric verbs reached while a fabric-intolerant
// mutex class is held, through call paths (and directly, when the held
// class itself came from a callee — the one shape lockheld cannot see).
func (a *loAnalysis) verbFindings(sel map[*Package]bool) []Finding {
	var out []Finding
	seen := map[token.Position]bool{}
	emit := func(pos token.Pos, held map[string]heldInfo, onlyIndirect bool, path string) {
		var classes []string
		for c, info := range held {
			if _, ok := fabricTolerant[c]; ok {
				continue // designed to span the fabric; see the table
			}
			if onlyIndirect && info.direct {
				continue // lockheld already reports this shape
			}
			classes = append(classes, c)
		}
		if len(classes) == 0 {
			return
		}
		sort.Strings(classes)
		p := a.fset.Position(pos)
		if seen[p] || !a.posSelected(p, sel) {
			return
		}
		seen[p] = true
		out = append(out, Finding{
			Analyzer: "lockorder",
			Pos:      p,
			Message: fmt.Sprintf("fabric verb reached while holding %s (%s); release node-local latches before simulated network latency",
				strings.Join(classes, ", "), path),
		})
	}
	for _, sum := range a.allSummaries() {
		for i := range sum.verbs {
			ev := &sum.verbs[i]
			emit(ev.pos, ev.held, true, "verb issued here under a latch acquired by a callee")
		}
		for i := range sum.calls {
			ev := &sum.calls[i]
			if len(ev.held) == 0 {
				continue
			}
			for _, t := range ev.targets {
				if a.verbVia[t] != nil {
					emit(ev.pos, ev.held, false, a.verbPath(t))
					break
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

// posSelected reports whether a position lies inside one of the
// pattern-selected packages (findings in dependency-only packages are
// suppressed: their directives were not loaded, and a narrower run should
// not police files it was not pointed at).
func (a *loAnalysis) posSelected(pos token.Position, sel map[*Package]bool) bool {
	dir := pos.Filename
	if i := strings.LastIndexByte(dir, '/'); i >= 0 {
		dir = dir[:i]
	}
	for p := range sel {
		if p.Dir == dir {
			return true
		}
	}
	return false
}

// qualifiedFuncName renders "pkg.Recv.Name" / "pkg.Name" for findings.
func qualifiedFuncName(fn *types.Func) string {
	name := fn.Name()
	if r := recvTypeName(fn); r != "" {
		name = r + "." + name
	}
	if fn.Pkg() != nil {
		name = shortPkg(fn.Pkg().Path()) + "." + name
	}
	return name
}

// ---- public lock-graph API (polarvet -lockgraph) ----

// LockGraphEdge is one acquisition-order edge of the module.
type LockGraphEdge struct {
	From, To         string
	FromMode, ToMode string // "R" or "W"
	Witness          token.Position
	Path             string // call chain for interprocedural edges, "" for direct
}

// LockGraph is the module's lock universe and observed acquisition
// orderings, as dumped by polarvet -lockgraph.
type LockGraph struct {
	Classes []string
	// FabricTolerant maps the classes designed to span fabric latency to
	// their rationale (the analyzer's fabricTolerant table, restricted to
	// classes that exist in this module).
	FabricTolerant map[string]string
	Edges          []LockGraphEdge
}

// BuildLockGraph loads the packages matching patterns and returns the
// acquisition-order graph the lockorder analyzer reasons over. Nodes are
// every discovered lock class (edge-less classes included).
func BuildLockGraph(mod *Module, patterns []string) (*LockGraph, error) {
	paths, err := mod.Packages(patterns...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, path := range paths {
		p, err := mod.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	if len(pkgs) == 0 {
		return &LockGraph{}, nil
	}
	a := newLockOrderAnalysis(pkgs)
	a.solve()
	edges := a.collectEdges()
	g := &LockGraph{Classes: append([]string(nil), a.classes.all...), FabricTolerant: map[string]string{}}
	for _, c := range g.Classes {
		if why, ok := fabricTolerant[c]; ok {
			g.FabricTolerant[c] = why
		}
	}
	for _, e := range edges {
		g.Edges = append(g.Edges, LockGraphEdge{
			From: e.from, To: e.to,
			FromMode: e.fromMode.String(), ToMode: e.toMode.String(),
			Witness: e.pos, Path: e.path,
		})
	}
	return g, nil
}

// DOT renders the graph in Graphviz dot syntax: one node per lock class,
// one edge per ordered acquisition pair, labeled with the witness site.
func (g *LockGraph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph lockorder {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	for _, c := range g.Classes {
		if _, ok := g.FabricTolerant[c]; ok {
			fmt.Fprintf(&b, "  %q [peripheries=2];\n", c) // fabric-tolerant by design
			continue
		}
		fmt.Fprintf(&b, "  %q;\n", c)
	}
	for _, e := range g.Edges {
		label := fmt.Sprintf("%s→%s %s:%d", e.FromMode, e.ToMode, baseName(e.Witness.Filename), e.Witness.Line)
		attrs := ""
		if e.From == e.To {
			attrs = ", style=dashed" // instance-ordered coupling on one class
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q%s];\n", e.From, e.To, label, attrs)
	}
	b.WriteString("}\n")
	return b.String()
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
