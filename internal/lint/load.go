package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module is a parsed view of the Go module under analysis. polarvet must
// work in an offline build sandbox, so package loading is hand-rolled on
// the standard library only: module packages are located by walking the
// tree, and type information comes from go/types with a recursive
// importer (module packages are type-checked from source; standard
// library packages go through go/importer's source compiler, which also
// reads source and needs no precompiled export data).
type Module struct {
	Root string // directory containing go.mod
	Path string // module path, e.g. "polardb"

	fset  *token.FileSet
	cache map[string]*Package
	std   types.ImporterFrom

	// Cross-package analysis state, filled lazily in import order by the
	// analyzers that link per-package summaries into module-wide facts.
	pairSummaries map[*types.Func]*pairSummary
	pairDone      map[string]bool
	pairAdapted   map[*pairSpec]*pairSpec
	blockingFns   map[*types.Func]bool
	blockingDone  map[string]bool
}

// Package is one loaded, type-checked package (test files excluded).
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Mod   *Module // the module this package was loaded from
}

// LoadModule opens the module rooted at root (the directory holding
// go.mod) and prepares the loader.
func LoadModule(root string) (*Module, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	path := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			path = strings.TrimSpace(rest)
			break
		}
	}
	if path == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	return &Module{
		Root:          abs,
		Path:          path,
		fset:          fset,
		cache:         map[string]*Package{},
		std:           importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pairSummaries: map[*types.Func]*pairSummary{},
		pairDone:      map[string]bool{},
		pairAdapted:   map[*pairSpec]*pairSpec{},
		blockingFns:   map[*types.Func]bool{},
		blockingDone:  map[string]bool{},
	}, nil
}

// Loaded returns every module package loaded so far (including packages
// pulled in as dependencies of the requested patterns), sorted by import
// path. Module-level analyses use this as their whole-module view: a
// pattern-restricted run still sees every package its selection imports.
func (m *Module) Loaded() []*Package {
	var out []*Package
	for _, p := range m.cache {
		if p != nil {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Packages expands package patterns ("./...", "./internal/...",
// "./internal/rmem") into the module's matching import paths, sorted.
func (m *Module) Packages(patterns ...string) ([]string, error) {
	all, err := m.walk()
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	matched := make([]bool, len(patterns))
	match := func(rel string) bool {
		hit := false
		for i, pat := range patterns {
			pat = strings.TrimPrefix(pat, "./")
			if strings.HasSuffix(pat, "...") {
				prefix := strings.TrimSuffix(pat, "...")
				prefix = strings.TrimSuffix(prefix, "/")
				if prefix == "" || rel == prefix || strings.HasPrefix(rel, prefix+"/") {
					matched[i] = true
					hit = true
				}
			} else if rel == pat || (pat == "." && rel == "") {
				matched[i] = true
				hit = true
			}
		}
		return hit
	}
	var out []string
	for _, rel := range all {
		if match(rel) {
			if rel == "" {
				out = append(out, m.Path)
			} else {
				out = append(out, m.Path+"/"+rel)
			}
		}
	}
	// A pattern that matches nothing is a typo'd path, and silently
	// linting zero packages would look like a clean run.
	for i, ok := range matched {
		if !ok {
			return nil, fmt.Errorf("lint: pattern %q matched no packages", patterns[i])
		}
	}
	sort.Strings(out)
	return out, nil
}

// walk lists module-relative directories containing non-test .go files.
func (m *Module) walk() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(m.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != m.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(m.Root, filepath.Dir(p))
		if err != nil {
			return err
		}
		if rel == "." {
			rel = ""
		}
		dirs = append(dirs, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var uniq []string
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			uniq = append(uniq, d)
		}
	}
	return uniq, nil
}

// Load parses and type-checks one module package by import path.
func (m *Module) Load(importPath string) (*Package, error) {
	if p, ok := m.cache[importPath]; ok {
		if p == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", importPath)
		}
		return p, nil
	}
	m.cache[importPath] = nil // cycle marker
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, m.Path), "/")
	dir := filepath.Join(m.Root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(m.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Types:      map[ast.Expr]types.TypeAndValue{},
	}
	cfg := types.Config{Importer: (*moduleImporter)(m)}
	tpkg, err := cfg.Check(importPath, m.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	p := &Package{Path: importPath, Dir: dir, Fset: m.fset, Files: files, Pkg: tpkg, Info: info, Mod: m}
	m.cache[importPath] = p
	return p, nil
}

// moduleImporter resolves imports during type-checking: module-local
// packages recurse through Load, everything else is treated as standard
// library and loaded from GOROOT source.
type moduleImporter Module

func (i *moduleImporter) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, "", 0)
}

func (i *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	m := (*Module)(i)
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		p, err := m.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return m.std.ImportFrom(path, dir, 0)
}
