package lint

// callgraph.go links per-package views into a whole-module call graph.
// Nodes are the module's declared functions and methods (those with
// bodies); edges are resolved at each call site three ways:
//
//   - direct calls and qualified calls (pkg.F, recv.M) resolve through
//     go/types to the single declared callee;
//   - method values captured into locals (h := x.M; ...; h()) resolve
//     through a per-function binding pass to the bound method;
//   - interface method calls resolve against every concrete named type
//     in the module whose method set implements the interface — the
//     static over-approximation of dynamic dispatch.
//
// Function literals are deliberately not nodes: a literal is analyzed as
// its own scope by whichever analyzer owns it, and a call through a
// function-typed value that is not a recorded method value stays
// unresolved (the analyses treat unresolved callees as having no
// effects, keeping the propagation an under-approximation over unknown
// code rather than an explosion over all of it).

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// declSite is one declared module function body.
type declSite struct {
	pkg *Package
	fd  *ast.FuncDecl
}

// moduleIndex is the module-wide resolution context: every analyzed
// package, every declared function, and the concrete named types used to
// resolve interface dispatch.
type moduleIndex struct {
	pkgs  []*Package // deterministic (import-path) order
	decls map[*types.Func]*declSite
	named []*types.Named // concrete (non-interface) module named types
}

// buildModuleIndex indexes the given packages plus every module package
// they pulled in as dependencies.
func buildModuleIndex(pkgs []*Package) *moduleIndex {
	idx := &moduleIndex{decls: map[*types.Func]*declSite{}}
	if len(pkgs) == 0 {
		return idx
	}
	idx.pkgs = pkgs[0].Mod.Loaded()
	for _, p := range idx.pkgs {
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					idx.decls[obj] = &declSite{pkg: p, fd: fd}
				}
			}
		}
		scope := p.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			idx.named = append(idx.named, named)
		}
	}
	return idx
}

// methodBindings scans one function body for method values captured into
// local variables (h := x.M) and returns local object -> bound method.
// The pass is flow-insensitive: a rebinding to a non-method clears the
// entry, and the last textual binding wins — which matches every use in
// the tree (capture once, call later).
func methodBindings(p *Package, body *ast.BlockStmt) map[types.Object]*types.Func {
	out := map[types.Object]*types.Func{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := identObj(p, id)
			if obj == nil {
				continue
			}
			if sel, ok := as.Rhs[i].(*ast.SelectorExpr); ok {
				if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
						out[obj] = fn
						continue
					}
				}
			}
			delete(out, obj)
		}
		return true
	})
	return out
}

// resolveCall returns the module-declared functions a call may invoke,
// in deterministic order. bindings may be nil.
func (idx *moduleIndex) resolveCall(p *Package, call *ast.CallExpr, bindings map[types.Object]*types.Func) []*types.Func {
	obj := calleeFunc(p, call)
	if obj == nil {
		// A call through a plain identifier may be a captured method
		// value.
		if id, ok := call.Fun.(*ast.Ident); ok && bindings != nil {
			if v := identObj(p, id); v != nil {
				if fn, ok := bindings[v]; ok {
					obj = fn
				}
			}
		}
		if obj == nil {
			return nil
		}
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		return idx.resolveInterfaceCall(obj)
	}
	if idx.decls[obj] != nil {
		return []*types.Func{obj}
	}
	return nil
}

// resolveInterfaceCall lists the declared concrete methods that can sit
// behind an interface method.
func (idx *moduleIndex) resolveInterfaceCall(m *types.Func) []*types.Func {
	iface, ok := m.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	seen := map[*types.Func]bool{}
	for _, named := range idx.named {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		fobj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
		fn, ok := fobj.(*types.Func)
		if !ok || seen[fn] || idx.decls[fn] == nil {
			continue
		}
		seen[fn] = true
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// shortPkg is the last path element of a package's import path
// ("polardb/internal/engine" -> "engine").
func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// exemptFromLocking reports packages outside the lock-order universe:
// internal/rdma implements the fabric the invariants protect (its
// bookkeeping locks are the latency model's own), and internal/lint is
// the analyzer itself.
func exemptFromLocking(path string) bool {
	return strings.HasSuffix(path, "internal/rdma") || strings.HasSuffix(path, "internal/lint")
}
