package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// RegionEscape is the taint analysis that keeps raw registered-memory
// bytes inside the package that obtained them. The disaggregation
// claim rests on every cross-node byte flowing through a fabric verb;
// a []byte aliasing an rdma.Region's backing array that escapes — via
// a return from an exported function, a struct field, a channel send,
// or a goroutine closure — is shared memory smuggled past the latency
// and coherence model (and past the region lock, so it races with
// remote writes).
//
// Taint sources are the aliasing accessors by convention: any
// rdma.Region method whose name starts with "Bytes", and the []byte
// parameter of a callback passed to a Region "WithBytes*" method
// (e.g. WithBytesLocal, which exposes the live backing array under the
// region read-lock). Copying accessors (ReadLocal and friends) return
// fresh buffers and are not sources. Taint is tracked flow-sensitively
// per function — reassigning a variable to a fresh buffer clears it —
// and one level across package-local calls: an unexported function
// returning tainted bytes taints its call sites, while an *exported*
// function returning them is itself an escape. internal/rdma is exempt
// (it owns the arrays).
type RegionEscape struct{}

// Name implements Analyzer.
func (RegionEscape) Name() string { return "regionescape" }

// Check implements Analyzer.
func (RegionEscape) Check(p *Package) []Finding {
	if strings.HasSuffix(p.Path, "internal/rdma") {
		return nil
	}
	scopes := funcScopes(p)
	cfgs := make([]*funcCFG, len(scopes))
	for i, sc := range scopes {
		cfgs[i] = buildCFG(sc.body)
	}
	callbackLits := withBytesCallbacks(p)

	tainted := map[*types.Func]bool{}
	for round := 0; round < 5; round++ {
		changed := false
		for i, sc := range scopes {
			if sc.decl == nil || ast.IsExported(sc.decl.Name.Name) {
				continue
			}
			fobj, ok := p.Info.Defs[sc.decl.Name].(*types.Func)
			if !ok {
				continue
			}
			a := &regionAnalysis{p: p, scope: sc, g: cfgs[i], taintedFns: tainted, callbacks: callbackLits}
			a.run()
			if a.returnsTaint && !tainted[fobj] {
				tainted[fobj] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	var out []Finding
	for i, sc := range scopes {
		a := &regionAnalysis{p: p, scope: sc, g: cfgs[i], taintedFns: tainted, callbacks: callbackLits, report: true}
		a.run()
		out = append(out, a.findings...)
	}
	return out
}

// withBytesCallbacks maps func literals passed to Region WithBytes*
// methods to true; their []byte parameters alias region memory.
func withBytesCallbacks(p *Package) map[*ast.FuncLit]bool {
	out := map[*ast.FuncLit]bool{}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeFunc(p, call)
			if obj == nil || obj.Pkg() == nil ||
				!strings.HasSuffix(obj.Pkg().Path(), "internal/rdma") ||
				recvTypeName(obj) != "Region" ||
				!strings.HasPrefix(obj.Name(), "WithBytes") {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					out[lit] = true
				}
			}
			return true
		})
	}
	return out
}

// regionTaint is the flow state: the set of locally tainted objects.
type regionTaint map[types.Object]bool

type regionAnalysis struct {
	p          *Package
	scope      funcScope
	g          *funcCFG
	taintedFns map[*types.Func]bool
	callbacks  map[*ast.FuncLit]bool
	report     bool

	findings     []Finding
	reported     map[token.Pos]bool
	returnsTaint bool
}

func (a *regionAnalysis) run() {
	a.reported = map[token.Pos]bool{}
	entry := regionTaint{}
	if a.scope.lit != nil && a.callbacks[a.scope.lit] {
		for _, field := range a.scope.typ.Params.List {
			if !isByteSlice(a.p, field.Type) {
				continue
			}
			for _, name := range field.Names {
				if obj := a.p.Info.Defs[name]; obj != nil {
					entry[obj] = true
				}
			}
		}
	}

	in := map[*cfgBlock]regionTaint{a.g.entry: entry}
	work := []*cfgBlock{a.g.entry}
	inWork := map[*cfgBlock]bool{a.g.entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk] = false
		st := regionTaint{}
		for o, v := range in[blk] {
			if v {
				st[o] = true
			}
		}
		for _, n := range blk.nodes {
			a.applyNode(st, n)
		}
		for _, e := range blk.succs {
			cur, seen := in[e.to]
			changed := !seen // first visit: propagate even an empty state
			if cur == nil {
				cur = regionTaint{}
				in[e.to] = cur
			}
			for o := range st {
				if !cur[o] {
					cur[o] = true
					changed = true
				}
			}
			if changed && !inWork[e.to] {
				work = append(work, e.to)
				inWork[e.to] = true
			}
		}
	}
}

func (a *regionAnalysis) applyNode(st regionTaint, n ast.Node) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		a.applyAssign(st, s)
	case *ast.SendStmt:
		if a.exprTainted(st, s.Value) {
			a.escape(s.Pos(), "sent on a channel")
		}
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			if a.exprTainted(st, res) {
				a.returnEscape(s.Pos())
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						if i < len(vs.Values) && a.exprTainted(st, vs.Values[i]) {
							if obj := a.p.Info.Defs[name]; obj != nil {
								st[obj] = true
							}
						}
					}
				}
			}
		}
	}
	// Escapes that can sit anywhere in a statement: composite literals
	// and closures capturing tainted bytes.
	inspectSkipFuncLit(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.CompositeLit:
			for _, el := range c.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if a.exprTainted(st, el) {
					a.escape(c.Pos(), "stored in a composite literal")
				}
			}
		case *ast.FuncLit:
			ast.Inspect(c.Body, func(inner ast.Node) bool {
				if ident, ok := inner.(*ast.Ident); ok {
					if o := a.p.Info.Uses[ident]; o != nil && st[o] {
						a.escape(c.Pos(), "captured by a function literal (it may run after the region lock is released)")
						return false
					}
				}
				return true
			})
		}
		return true
	})
}

func (a *regionAnalysis) applyAssign(st regionTaint, s *ast.AssignStmt) {
	for i, lhs := range s.Lhs {
		var rhsTainted bool
		if len(s.Rhs) == len(s.Lhs) {
			rhsTainted = a.exprTainted(st, s.Rhs[i])
		} else if len(s.Rhs) == 1 {
			// Tuple assignment from one call: taint the byte-slice
			// results if the call is tainted.
			rhsTainted = a.exprTainted(st, s.Rhs[0]) && isByteSlice(a.p, lhs)
		}
		switch l := lhs.(type) {
		case *ast.Ident:
			obj := identObj(a.p, l)
			if obj == nil {
				continue
			}
			if rhsTainted && a.outsideScope(obj) {
				a.escape(s.Pos(), fmt.Sprintf("assigned to %s declared outside this function", l.Name))
				continue
			}
			if rhsTainted {
				st[obj] = true
			} else {
				delete(st, obj) // reassigned to a fresh buffer
			}
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			if rhsTainted {
				a.escape(s.Pos(), fmt.Sprintf("stored into %s", types.ExprString(lhs)))
			}
			_ = l
		}
	}
}

// outsideScope reports whether obj is declared outside the analyzed
// function (an enclosing function's local, or a package-level var).
func (a *regionAnalysis) outsideScope(obj types.Object) bool {
	return obj.Pos() < a.scope.typ.Pos() || obj.Pos() > a.scope.body.End()
}

// exprTainted reports whether e evaluates to region-aliasing bytes.
func (a *regionAnalysis) exprTainted(st regionTaint, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := identObj(a.p, e)
		return obj != nil && st[obj]
	case *ast.ParenExpr:
		return a.exprTainted(st, e.X)
	case *ast.SliceExpr:
		return a.exprTainted(st, e.X)
	case *ast.UnaryExpr:
		return e.Op == token.AND && a.exprTainted(st, e.X)
	case *ast.CallExpr:
		obj := calleeFunc(a.p, e)
		if obj == nil {
			return false
		}
		if obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/rdma") &&
			recvTypeName(obj) == "Region" && strings.HasPrefix(obj.Name(), "Bytes") {
			return true
		}
		return obj.Pkg() == a.p.Pkg && a.taintedFns[obj]
	}
	return false
}

func (a *regionAnalysis) returnEscape(pos token.Pos) {
	// Unexported functions may pass aliases around inside the package;
	// the summary pass propagates that to their callers. Exported
	// functions returning an alias leak it across the boundary.
	if a.scope.decl != nil && !ast.IsExported(a.scope.decl.Name.Name) {
		a.returnsTaint = true
		return
	}
	if a.scope.lit != nil {
		// A literal's return value stays with its (same-package)
		// caller; the WithBytes callbacks return error anyway.
		return
	}
	a.escape(pos, "returned from an exported function")
}

func (a *regionAnalysis) escape(pos token.Pos, how string) {
	if !a.report || a.reported[pos] {
		return
	}
	a.reported[pos] = true
	a.findings = append(a.findings, Finding{
		Analyzer: "regionescape",
		Pos:      a.p.Fset.Position(pos),
		Message: fmt.Sprintf("%s: registered-region byte alias %s; raw fabric memory must not leave the accessor scope — copy it instead",
			a.scope.name, how),
	})
}

// isByteSlice reports whether the expression's type is []byte.
func isByteSlice(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	slice, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := slice.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Uint8
}
