package lint

import (
	"fmt"
	"sort"
	"strings"
)

// Layering enforces the package DAG of the disaggregated architecture.
// The table below is the single source of truth for which internal
// packages may import which: leaves (types, wire, stat, retry, lint)
// import no siblings; rdma sits on stat (endpoints record verb metrics);
// the memory/storage/txn tiers sit on the fabric; engine composes the
// tiers; cluster composes engines; workload and bench sit on top.
// Crucially, nothing below cluster may reach up into cluster or engine —
// a b-tree or remote-memory client that could call the engine would let
// state flow around the fabric instead of through it.
//
// stat is deliberately importable from every layer: observability must
// thread through each cross-node path without creating edges between
// the layers themselves (stat itself imports nothing).
//
// cmd/, pkg/ and examples/ are composition roots and are unrestricted.
// An internal package missing from the table is itself a finding: new
// packages must declare their layer here.
type Layering struct{}

// allowedImports maps each internal package (short name) to the internal
// packages it may import.
var allowedImports = map[string][]string{
	"types":        {},
	"wire":         {},
	"stat":         {},
	"rdma":         {"stat"},
	"retry":        {},
	"lint":         {},
	"cache":        {"rdma", "stat", "types"},
	"btree":        {"cache", "stat", "types"},
	"plog":         {"stat", "types", "wire"},
	"parallelraft": {"rdma", "retry", "stat", "types", "wire"},
	"polarfs":      {"parallelraft", "plog", "rdma", "retry", "stat", "types", "wire"},
	"rmem":         {"rdma", "retry", "stat", "types", "wire"},
	"txn":          {"rdma", "stat", "types", "wire"},
	"engine":       {"btree", "cache", "plog", "polarfs", "rdma", "retry", "rmem", "stat", "txn", "types", "wire"},
	"cluster":      {"btree", "engine", "parallelraft", "plog", "polarfs", "rdma", "retry", "rmem", "stat", "txn", "types", "wire"},
	"workload":     {"cluster", "engine", "rdma", "retry", "stat", "types"},
	"bench":        {"btree", "cluster", "engine", "rdma", "retry", "stat", "txn", "types", "wire", "workload"},
}

// Name implements Analyzer.
func (Layering) Name() string { return "layering" }

// Check implements Analyzer.
func (Layering) Check(p *Package) []Finding {
	self, ok := internalName(p.Path)
	if !ok {
		return nil // cmd/pkg/examples/root: unrestricted
	}
	allowed, known := allowedImports[self]
	if !known {
		return []Finding{{
			Analyzer: "layering",
			Pos:      p.Fset.Position(p.Files[0].Pos()),
			Message:  fmt.Sprintf("internal package %q is not in the layering table; declare its allowed imports in internal/lint/layering.go", self),
		}}
	}
	allowSet := map[string]bool{}
	for _, a := range allowed {
		allowSet[a] = true
	}
	var out []Finding
	for _, file := range p.Files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			dep, ok := internalName(path)
			if !ok || allowSet[dep] {
				continue
			}
			msg := fmt.Sprintf("layering violation: internal/%s may not import internal/%s (allowed: %s)",
				self, dep, strings.Join(sortedCopy(allowed), ", "))
			out = append(out, Finding{Analyzer: "layering", Pos: p.Fset.Position(imp.Pos()), Message: msg})
		}
	}
	return out
}

// internalName extracts the first path element under ".../internal/",
// reporting ok=false for paths outside the internal tree.
func internalName(path string) (string, bool) {
	idx := strings.Index(path, "internal/")
	if idx == -1 {
		return "", false
	}
	rest := path[idx+len("internal/"):]
	if i := strings.Index(rest, "/"); i >= 0 {
		rest = rest[:i]
	}
	return rest, true
}

func sortedCopy(xs []string) []string {
	ys := append([]string(nil), xs...)
	sort.Strings(ys)
	return ys
}
