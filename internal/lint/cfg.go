package lint

// cfg.go builds the per-function control-flow graphs that back the
// flow-sensitive analyzers (pairing, regionescape, verbdeadline). The
// graph is deliberately small: blocks hold statements and branch
// conditions in execution order, edges optionally carry the condition
// under which they are taken (so analyzers can refine facts across
// `err != nil` branches), and loop heads / select heads are indexed so
// cycle checks can classify the loops forming a strongly connected
// component. Function literals are *not* inlined — each literal is a
// separate scope with its own CFG (see funcScopes), and the enclosing
// function sees only the literal expression itself.

import (
	"go/ast"
	"go/token"
)

// cfgBlock is one straight-line run of nodes. nodes contains simple
// statements and the condition expressions of branches, in the order
// they execute; compound statements (if/for/switch/select bodies) live
// in successor blocks, never inside nodes.
type cfgBlock struct {
	index      int
	nodes      []ast.Node
	succs      []cfgEdge
	preds      []*cfgBlock
	selectCase bool // entry block of a select communication clause
}

// cfgEdge is a directed edge; when cond is non-nil the edge is taken
// exactly when cond evaluates to !negate.
type cfgEdge struct {
	to     *cfgBlock
	cond   ast.Expr
	negate bool
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	blocks    []*cfgBlock
	entry     *cfgBlock
	exit      *cfgBlock
	fallsOff  *cfgBlock                     // block reaching the closing brace, nil if none
	loopHeads map[ast.Stmt]*cfgBlock        // for/range statement -> head block
	selects   map[*ast.SelectStmt]*cfgBlock // select statement -> head block
}

func (g *funcCFG) newBlock() *cfgBlock {
	b := &cfgBlock{index: len(g.blocks)}
	g.blocks = append(g.blocks, b)
	return b
}

// cfgBuilder carries the break/continue/goto context during construction.
type cfgBuilder struct {
	g            *funcCFG
	breaks       []cfgTarget
	continues    []cfgTarget
	labels       map[string]*cfgBlock
	gotos        []pendingGoto
	pendingLabel string // label attached to the statement about to build
}

type cfgTarget struct {
	label string
	block *cfgBlock
}

type pendingGoto struct {
	from  *cfgBlock
	label string
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{
		loopHeads: map[ast.Stmt]*cfgBlock{},
		selects:   map[*ast.SelectStmt]*cfgBlock{},
	}
	b := &cfgBuilder{g: g, labels: map[string]*cfgBlock{}}
	g.entry = g.newBlock()
	g.exit = g.newBlock()
	end := b.stmts(body.List, g.entry)
	if end != nil {
		g.fallsOff = end
		b.edge(end, g.exit, nil, false)
	}
	for _, pg := range b.gotos {
		if target := b.labels[pg.label]; target != nil {
			b.edge(pg.from, target, nil, false)
		}
	}
	for _, blk := range g.blocks {
		for _, e := range blk.succs {
			e.to.preds = append(e.to.preds, blk)
		}
	}
	return g
}

func (b *cfgBuilder) edge(from, to *cfgBlock, cond ast.Expr, negate bool) {
	from.succs = append(from.succs, cfgEdge{to: to, cond: cond, negate: negate})
}

// takeLabel consumes the label of the statement currently being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// stmts builds a statement list starting in cur; it returns the block
// control falls out of, or nil when every path terminated (return,
// break, panic, ...). Statements after a terminator still get a fresh
// unreachable block so labels inside them resolve.
func (b *cfgBuilder) stmts(list []ast.Stmt, cur *cfgBlock) *cfgBlock {
	for _, s := range list {
		if cur == nil {
			cur = b.g.newBlock() // unreachable continuation
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

func (b *cfgBuilder) stmt(s ast.Stmt, cur *cfgBlock) *cfgBlock {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, cur)

	case *ast.LabeledStmt:
		lb := b.g.newBlock()
		b.edge(cur, lb, nil, false)
		b.labels[s.Label.Name] = lb
		b.pendingLabel = s.Label.Name
		return b.stmt(s.Stmt, lb)

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, s)
		b.edge(cur, b.g.exit, nil, false)
		return nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := findTarget(b.breaks, s.Label); t != nil {
				b.edge(cur, t, nil, false)
			}
			return nil
		case token.CONTINUE:
			if t := findTarget(b.continues, s.Label); t != nil {
				b.edge(cur, t, nil, false)
			}
			return nil
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: cur, label: s.Label.Name})
			return nil
		default: // fallthrough: the switch builder wires the edge
			return cur
		}

	case *ast.IfStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Cond)
		after := b.g.newBlock()
		then := b.g.newBlock()
		b.edge(cur, then, s.Cond, false)
		if end := b.stmts(s.Body.List, then); end != nil {
			b.edge(end, after, nil, false)
		}
		if s.Else != nil {
			els := b.g.newBlock()
			b.edge(cur, els, s.Cond, true)
			if end := b.stmt(s.Else, els); end != nil {
				b.edge(end, after, nil, false)
			}
		} else {
			b.edge(cur, after, s.Cond, true)
		}
		return after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		head := b.g.newBlock()
		b.edge(cur, head, nil, false)
		b.g.loopHeads[s] = head
		after := b.g.newBlock()
		body := b.g.newBlock()
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
			b.edge(head, body, s.Cond, false)
			b.edge(head, after, s.Cond, true)
		} else {
			b.edge(head, body, nil, false)
		}
		cont := head
		if s.Post != nil {
			post := b.g.newBlock()
			post.nodes = append(post.nodes, s.Post)
			b.edge(post, head, nil, false)
			cont = post
		}
		b.breaks = append(b.breaks, cfgTarget{label, after})
		b.continues = append(b.continues, cfgTarget{label, cont})
		if end := b.stmts(s.Body.List, body); end != nil {
			b.edge(end, cont, nil, false)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		return after

	case *ast.RangeStmt:
		label := b.takeLabel()
		cur.nodes = append(cur.nodes, s.X)
		head := b.g.newBlock()
		b.edge(cur, head, nil, false)
		b.g.loopHeads[s] = head
		body := b.g.newBlock()
		after := b.g.newBlock()
		b.edge(head, body, nil, false)
		b.edge(head, after, nil, false)
		b.breaks = append(b.breaks, cfgTarget{label, after})
		b.continues = append(b.continues, cfgTarget{label, head})
		if end := b.stmts(s.Body.List, body); end != nil {
			b.edge(end, head, nil, false)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		return after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		if s.Tag != nil {
			cur.nodes = append(cur.nodes, s.Tag)
		}
		return b.switchClauses(cur, label, s.Body.List, true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Assign)
		return b.switchClauses(cur, label, s.Body.List, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.g.newBlock()
		b.edge(cur, head, nil, false)
		b.g.selects[s] = head
		after := b.g.newBlock()
		b.breaks = append(b.breaks, cfgTarget{label, after})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.g.newBlock()
			blk.selectCase = true
			if cc.Comm != nil {
				blk.nodes = append(blk.nodes, cc.Comm)
			}
			b.edge(head, blk, nil, false)
			if end := b.stmts(cc.Body, blk); end != nil {
				b.edge(end, after, nil, false)
			}
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		return after

	case *ast.EmptyStmt:
		return cur

	case *ast.ExprStmt:
		cur.nodes = append(cur.nodes, s)
		if isTerminalCall(s.X) {
			b.edge(cur, b.g.exit, nil, false)
			return nil
		}
		return cur

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, DeferStmt, GoStmt.
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

// switchClauses wires the clause blocks of a (type) switch. Clause
// guards are modeled conservatively: every clause is reachable from the
// switch head, and the head also reaches the after-block unless a
// default clause exists.
func (b *cfgBuilder) switchClauses(cur *cfgBlock, label string, clauses []ast.Stmt, allowFallthrough bool) *cfgBlock {
	after := b.g.newBlock()
	b.breaks = append(b.breaks, cfgTarget{label, after})
	hasDefault := false
	blks := make([]*cfgBlock, len(clauses))
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		blks[i] = b.g.newBlock()
		for _, e := range cc.List {
			if _, isType := e.(*ast.Ident); !allowFallthrough && isType {
				continue // type-switch case lists name types, not values
			}
			blks[i].nodes = append(blks[i].nodes, e)
		}
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(cur, blks[i], nil, false)
	}
	if !hasDefault {
		b.edge(cur, after, nil, false)
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		end := b.stmts(cc.Body, blks[i])
		if end == nil {
			continue
		}
		if allowFallthrough && endsWithFallthrough(cc.Body) && i+1 < len(blks) {
			b.edge(end, blks[i+1], nil, false)
		} else {
			b.edge(end, after, nil, false)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	return after
}

func endsWithFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func findTarget(stack []cfgTarget, label *ast.Ident) *cfgBlock {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == nil || stack[i].label == label.Name {
			return stack[i].block
		}
	}
	return nil
}

// isTerminalCall reports whether expr is a call that never returns:
// panic, os.Exit, log.Fatal*. Paths ending in one are crash paths, not
// resource leaks, so they bypass the analyzers' exit checks.
func isTerminalCall(expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			if x.Name == "os" && fun.Sel.Name == "Exit" {
				return true
			}
			if x.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln") {
				return true
			}
		}
	}
	return false
}

// sccMap assigns every block a strongly-connected-component id via
// Tarjan's algorithm and reports which components are cycles (more than
// one block, or a single block with a self edge).
func (g *funcCFG) sccMap() (ids map[*cfgBlock]int, cyclic map[int]bool) {
	ids = map[*cfgBlock]int{}
	cyclic = map[int]bool{}
	index := map[*cfgBlock]int{}
	low := map[*cfgBlock]int{}
	onStack := map[*cfgBlock]bool{}
	var stack []*cfgBlock
	next, comp := 0, 0

	var strongconnect func(v *cfgBlock)
	strongconnect = func(v *cfgBlock) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range v.succs {
			w := e.to
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			size := 0
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				ids[w] = comp
				size++
				if w == v {
					break
				}
			}
			if size > 1 {
				cyclic[comp] = true
			} else {
				for _, e := range v.succs {
					if e.to == v {
						cyclic[comp] = true
					}
				}
			}
			comp++
		}
	}
	for _, blk := range g.blocks {
		if _, seen := index[blk]; !seen {
			strongconnect(blk)
		}
	}
	return ids, cyclic
}

// reachesAvoiding reports whether target is reachable from start
// without entering any block in avoid.
func reachesAvoiding(start, target *cfgBlock, avoid map[*cfgBlock]bool) bool {
	seen := map[*cfgBlock]bool{}
	var walk func(b *cfgBlock) bool
	walk = func(b *cfgBlock) bool {
		if b == target {
			return true
		}
		if seen[b] || avoid[b] {
			return false
		}
		seen[b] = true
		for _, e := range b.succs {
			if walk(e.to) {
				return true
			}
		}
		return false
	}
	return walk(start)
}

// inspectSkipFuncLit visits the tree under n in source order but does
// not descend into function literal bodies; the literal node itself is
// still visited so callers can treat captures as escapes or transfers.
// CFG block nodes never contain nested statement blocks except through
// function literals, so this is the node walker the flow-sensitive
// analyzers use.
func inspectSkipFuncLit(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if !fn(c) {
			return false
		}
		if _, isLit := c.(*ast.FuncLit); isLit && c != n {
			return false
		}
		return true
	})
}

// funcScope is one analyzable function body: a declared function or a
// function literal (each literal is its own scope).
type funcScope struct {
	name string
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	typ  *ast.FuncType
	body *ast.BlockStmt
}

// funcScopes lists every function body in the package: declarations
// first, then each function literal (including literals nested in other
// literals), tagged with the enclosing declaration's name.
func funcScopes(p *Package) []funcScope {
	var out []funcScope
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, funcScope{name: fd.Name.Name, decl: fd, typ: fd.Type, body: fd.Body})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					out = append(out, funcScope{
						name: fd.Name.Name + " (func literal)",
						lit:  lit, typ: lit.Type, body: lit.Body,
					})
				}
				return true
			})
		}
	}
	return out
}
