// Package lint implements polarvet, the repository's static analyzer.
//
// The simulation's results are only meaningful while a handful of
// architectural invariants hold: all cross-node interaction flows through
// internal/rdma (never shared Go pointers), all simulated delay flows
// through the fabric latency model, and node-local latches are never held
// across simulated network latency. Nothing in the compiler enforces any
// of that, so this package does. One file per analyzer:
//
//   - nosleep (nosleep.go): time.Sleep outside the latency model
//   - layering (layering.go): the allowed package-import DAG
//   - lockheld (lockheld.go): fabric verbs under a held sync.Mutex
//   - errdrop (errdrop.go): discarded errors from rdma/polarfs/plog
//
// A finding is suppressed by an adjacent directive comment
//
//	//polarvet:allow <analyzer> <reason>
//
// on the same line as the finding or on the line directly above it. The
// reason is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer report.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzer checks one loaded package.
type Analyzer interface {
	Name() string
	Check(p *Package) []Finding
}

// Analyzers returns the full analyzer set, in reporting order.
func Analyzers() []Analyzer {
	return []Analyzer{NoSleep{}, Layering{}, LockHeld{}, ErrDrop{}}
}

// Run loads every package matching patterns and applies the analyzers,
// returning surviving (non-suppressed) findings sorted by position.
func Run(mod *Module, patterns []string, analyzers []Analyzer) ([]Finding, error) {
	paths, err := mod.Packages(patterns...)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, path := range paths {
		p, err := mod.Load(path)
		if err != nil {
			return nil, err
		}
		allows, bad := directives(p)
		out = append(out, bad...)
		for _, a := range analyzers {
			for _, f := range a.Check(p) {
				if !allows.covers(a.Name(), f.Pos) {
					out = append(out, f)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// directivePrefix introduces an allowlist comment.
const directivePrefix = "//polarvet:allow"

// allowSet records, per file and analyzer, the lines carrying an allow
// directive. A directive covers its own line and the following line, so
// it can sit at the end of the offending line or alone just above it.
type allowSet map[string]map[int]bool // "analyzer\x00filename" -> lines

func (s allowSet) covers(analyzer string, pos token.Position) bool {
	lines := s[analyzer+"\x00"+pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}

// directives collects the allow directives of a package; malformed ones
// (unknown shape or missing reason) come back as findings.
func directives(p *Package) (allowSet, []Finding) {
	set := allowSet{}
	var bad []Finding
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(c.Text, directivePrefix))
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "directive",
						Pos:      pos,
						Message:  "malformed //polarvet:allow: want \"//polarvet:allow <analyzer> <reason>\" with a non-empty reason",
					})
					continue
				}
				key := fields[0] + "\x00" + pos.Filename
				if set[key] == nil {
					set[key] = map[int]bool{}
				}
				set[key][pos.Line] = true
			}
		}
	}
	return set, bad
}

// walkFuncs visits every function or method body in the package,
// including file-scope init bodies, handing the enclosing declaration
// name to fn.
func walkFuncs(p *Package, fn func(name string, body *ast.BlockStmt)) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd.Name.Name, fd.Body)
			}
		}
	}
}
