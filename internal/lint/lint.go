// Package lint implements polarvet, the repository's static analyzer.
//
// The simulation's results are only meaningful while a handful of
// architectural invariants hold: all cross-node interaction flows through
// internal/rdma (never shared Go pointers), all simulated delay flows
// through the fabric latency model, and node-local latches are never held
// across simulated network latency. Nothing in the compiler enforces any
// of that, so this package does. One file per analyzer:
//
//   - nosleep (nosleep.go): time.Sleep outside the latency model
//   - layering (layering.go): the allowed package-import DAG
//   - lockheld (lockheld.go): fabric verbs under a held sync.Mutex
//   - errdrop (errdrop.go): discarded errors from rdma/rmem/polarfs/
//     plog/parallelraft
//   - pairing (pairing.go): acquire/release matching (MTR commit, page
//     pins, PL latches, endpoint attach) over per-function CFGs
//   - regionescape (regionescape.go): registered-region byte aliases
//     must not escape the accessor scope
//   - verbdeadline (verbdeadline.go): fabric waits in engine/cluster
//     must be deadline- or window-bounded
//   - lockorder (lockorder.go): a whole-module analysis — per-package
//     function summaries linked across import edges into a call graph
//     (callgraph.go), held-lock sets propagated interprocedurally — that
//     reports cycles in the global lock-acquisition order (potential
//     deadlocks) and fabric verbs reached while a node-local latch class
//     is held through any call path
//   - fabriccost (fabriccost.go): a whole-module fabric-cost analysis —
//     per-function verb summaries with CFG-derived loop multiplicity,
//     propagated over the call graph — that reports loop-carried RPC
//     fan-out, RPCs convertible to one-sided verbs, and violations of
//     declared //polarvet:fabric round-trip budgets
//
// The flow-sensitive analyzers share the CFG builder in cfg.go; pairing
// and verbdeadline additionally consume cross-package summaries, so an
// obligation handed to an exported helper in another module package is
// tracked through it. A finding is suppressed by an adjacent directive
// comment
//
//	//polarvet:allow <analyzer> <reason>
//
// on the same line as the finding or on the line directly above it. The
// reason is mandatory; a directive without one is itself reported, as
// are directives naming an unknown analyzer and directives that no
// longer suppress anything (so stale allows cannot linger).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer report.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzer checks one loaded package.
type Analyzer interface {
	Name() string
	Check(p *Package) []Finding
}

// ModuleAnalyzer is an Analyzer that needs the whole module at once:
// CheckModule runs a single time over every pattern-selected package
// (reaching packages loaded as dependencies through Package.Mod), instead
// of once per package. Its findings are suppressed by the same adjacent
// //polarvet:allow directives as per-package findings.
type ModuleAnalyzer interface {
	Analyzer
	CheckModule(pkgs []*Package) []Finding
}

// Analyzers returns the full analyzer set, in reporting order.
func Analyzers() []Analyzer {
	return []Analyzer{NoSleep{}, Layering{}, LockHeld{}, ErrDrop{}, Pairing{}, RegionEscape{}, VerbDeadline{}, LockOrder{}, FabricCost{}}
}

// Run loads every package matching patterns and applies the analyzers,
// returning surviving (non-suppressed) findings sorted by position.
func Run(mod *Module, patterns []string, analyzers []Analyzer) ([]Finding, error) {
	paths, err := mod.Packages(patterns...)
	if err != nil {
		return nil, err
	}
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name()] = true
	}
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name()] = true
	}
	// Load everything first: module analyzers need the whole selection
	// (and its dependency closure) before they can link summaries, and
	// directives from every file must be known before any finding is
	// filtered.
	var pkgs []*Package
	allows := allowSet{}
	var out []Finding
	for _, path := range paths {
		p, err := mod.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
		as, bad := directives(p)
		out = append(out, bad...)
		for key, lines := range as {
			if allows[key] == nil {
				allows[key] = lines
				continue
			}
			for line, d := range lines {
				allows[key][line] = d
			}
		}
	}
	for _, a := range analyzers {
		if ma, ok := a.(ModuleAnalyzer); ok {
			for _, f := range ma.CheckModule(pkgs) {
				if !allows.covers(a.Name(), f.Pos) {
					out = append(out, f)
				}
			}
			continue
		}
		for _, p := range pkgs {
			for _, f := range a.Check(p) {
				if !allows.covers(a.Name(), f.Pos) {
					out = append(out, f)
				}
			}
		}
	}
	out = append(out, allows.audit(known, ran)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, nil
}

// directivePrefix introduces an allowlist comment.
const directivePrefix = "//polarvet:allow"

// allowDirective is one parsed //polarvet:allow comment.
type allowDirective struct {
	analyzer string
	pos      token.Position
	used     bool
}

// allowSet records, per file and analyzer, the lines carrying an allow
// directive. A directive covers its own line and the following line, so
// it can sit at the end of the offending line or alone just above it.
type allowSet map[string]map[int]*allowDirective // "analyzer\x00filename" -> line -> directive

func (s allowSet) covers(analyzer string, pos token.Position) bool {
	lines := s[analyzer+"\x00"+pos.Filename]
	hit := false
	for _, l := range []int{pos.Line, pos.Line - 1} {
		if d := lines[l]; d != nil {
			d.used = true
			hit = true
		}
	}
	return hit
}

// audit reports directives that name an analyzer polarvet does not
// have, and directives that suppressed nothing on this run (only for
// analyzers that actually ran, so a partial -analyzers run doesn't
// flag the others' allows).
func (s allowSet) audit(known, ran map[string]bool) []Finding {
	var out []Finding
	for _, lines := range s {
		for _, d := range lines {
			switch {
			case !known[d.analyzer]:
				out = append(out, Finding{
					Analyzer: "directive",
					Pos:      d.pos,
					Message:  fmt.Sprintf("//polarvet:allow names unknown analyzer %q", d.analyzer),
				})
			case ran[d.analyzer] && !d.used:
				out = append(out, Finding{
					Analyzer: "directive",
					Pos:      d.pos,
					Message:  fmt.Sprintf("unused //polarvet:allow %s: the analyzer reports nothing here; delete the stale directive", d.analyzer),
				})
			}
		}
	}
	return out
}

// directives collects the allow directives of a package; malformed ones
// (unknown shape or missing reason) come back as findings.
func directives(p *Package) (allowSet, []Finding) {
	set := allowSet{}
	var bad []Finding
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(c.Text, directivePrefix))
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "directive",
						Pos:      pos,
						Message:  "malformed //polarvet:allow: want \"//polarvet:allow <analyzer> <reason>\" with a non-empty reason",
					})
					continue
				}
				key := fields[0] + "\x00" + pos.Filename
				if set[key] == nil {
					set[key] = map[int]*allowDirective{}
				}
				set[key][pos.Line] = &allowDirective{analyzer: fields[0], pos: pos}
			}
		}
	}
	return set, bad
}

// walkFuncs visits every function or method body in the package,
// including file-scope init bodies, handing the enclosing declaration
// name to fn.
func walkFuncs(p *Package, fn func(name string, body *ast.BlockStmt)) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd.Name.Name, fd.Body)
			}
		}
	}
}
