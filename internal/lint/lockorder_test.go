package lint

import (
	"go/ast"
	"strings"
	"testing"
	"time"
)

// TestLockOrderCycle: two functions acquiring the same pair of mutexes in
// opposite orders is the textbook deadlock; the finding lands on the
// witness of the closing edge (the later second acquisition).
func TestLockOrderCycle(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"locks/locks.go": `package locks

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func AB(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func BA(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}
`,
	})
	got := runOnly(t, mod, "lockorder", "./...")
	wantFindings(t, got,
		[3]interface{}{"lockorder", "locks/locks.go", 18})
	if !strings.Contains(got[0].Message, "lock-order cycle") {
		t.Errorf("message %q does not describe a cycle", got[0].Message)
	}
}

// TestLockOrderCycleAllowDirective: the same cycle is suppressed by an
// allow directive at the closing edge's witness.
func TestLockOrderCycleAllowDirective(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"locks/locks.go": `package locks

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func AB(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func BA(a *A, b *B) {
	b.mu.Lock()
	//polarvet:allow lockorder test fixture: order inversion is intentional
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}
`,
	})
	wantFindings(t, runOnly(t, mod, "lockorder", "./..."))
}

// TestLockOrderCrossPackageCycle: the inversion spans an import edge —
// one leg is a direct acquisition, the other is witnessed through a call
// into the dependency package, so the finding carries the call path.
func TestLockOrderCrossPackageCycle(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"deep/deep.go": `package deep

import "sync"

// D exports its latch so a sibling package can order against it.
type D struct{ Mu sync.Mutex }

func (d *D) Grab() { d.Mu.Lock() }
func (d *D) Drop() { d.Mu.Unlock() }
`,
		"top/top.go": `package top

import (
	"sync"

	"polardb/deep"
)

type T struct{ mu sync.Mutex }

func One(t *T, d *deep.D) {
	t.mu.Lock()
	d.Grab()
	d.Drop()
	t.mu.Unlock()
}

func Two(t *T, d *deep.D) {
	d.Mu.Lock()
	t.mu.Lock()
	t.mu.Unlock()
	d.Mu.Unlock()
}
`,
	})
	got := runOnly(t, mod, "lockorder", "./...")
	wantFindings(t, got,
		[3]interface{}{"lockorder", "top/top.go", 20})
	msg := got[0].Message
	if !strings.Contains(msg, "lock-order cycle") || !strings.Contains(msg, "top.T.mu") ||
		!strings.Contains(msg, "deep.D.Mu") || !strings.Contains(msg, "Grab") {
		t.Errorf("cycle message %q should name both classes and the Grab call path", msg)
	}
}

// TestLockOrderReadersDoNotCycle: an order inversion between pure RLock
// acquisitions cannot deadlock (readers admit each other), so no finding.
func TestLockOrderReadersDoNotCycle(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"rw/rw.go": `package rw

import "sync"

type P struct{ mu sync.RWMutex }

type Q struct{ mu sync.RWMutex }

func ReadPQ(p *P, q *Q) {
	p.mu.RLock()
	q.mu.RLock()
	q.mu.RUnlock()
	p.mu.RUnlock()
}

func ReadQP(p *P, q *Q) {
	q.mu.RLock()
	p.mu.RLock()
	p.mu.RUnlock()
	q.mu.RUnlock()
}
`,
	})
	wantFindings(t, runOnly(t, mod, "lockorder", "./..."))
}

// TestLockOrderWriterClosesReaderRing: adding one write-mode ordering to
// the reader ring makes the ring blockable again, and the cycle is
// reported at the writer's witness.
func TestLockOrderWriterClosesReaderRing(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"rw/rw.go": `package rw

import "sync"

type P struct{ mu sync.RWMutex }

type Q struct{ mu sync.RWMutex }

func ReadQP(p *P, q *Q) {
	q.mu.RLock()
	p.mu.RLock()
	p.mu.RUnlock()
	q.mu.RUnlock()
}

func WritePQ(p *P, q *Q) {
	p.mu.Lock()
	q.mu.Lock()
	q.mu.Unlock()
	p.mu.Unlock()
}
`,
	})
	got := runOnly(t, mod, "lockorder", "./...")
	wantFindings(t, got,
		[3]interface{}{"lockorder", "rw/rw.go", 18})
	if !strings.Contains(got[0].Message, "lock-order cycle") {
		t.Errorf("message %q does not describe a cycle", got[0].Message)
	}
}

// TestLockOrderInterfaceDispatch: one leg of the cycle is an acquisition
// behind an interface method, resolved against the concrete implementing
// type; the lock graph records the dispatched edge with its call path.
func TestLockOrderInterfaceDispatch(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"iface/iface.go": `package iface

import "sync"

type Locker interface {
	Grab()
	Drop()
}

type C struct{ mu sync.Mutex }

func (c *C) Grab() { c.mu.Lock() }
func (c *C) Drop() { c.mu.Unlock() }

type A struct{ mu sync.Mutex }

func Do(a *A, l Locker) {
	a.mu.Lock()
	l.Grab()
	l.Drop()
	a.mu.Unlock()
}

func Rev(a *A, c *C) {
	c.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	c.mu.Unlock()
}
`,
	})
	got := runOnly(t, mod, "lockorder", "./...")
	wantFindings(t, got,
		[3]interface{}{"lockorder", "iface/iface.go", 26})
	if !strings.Contains(got[0].Message, "Grab") {
		t.Errorf("cycle message %q should carry the interface-dispatched Grab path", got[0].Message)
	}

	g, err := BuildLockGraph(mod, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Classes) != 2 || g.Classes[0] != "iface.A.mu" || g.Classes[1] != "iface.C.mu" {
		t.Fatalf("classes = %v, want [iface.A.mu iface.C.mu]", g.Classes)
	}
	found := false
	for _, e := range g.Edges {
		if e.From == "iface.A.mu" && e.To == "iface.C.mu" {
			found = true
			if !strings.Contains(e.Path, "Grab") {
				t.Errorf("dispatched edge path %q should name Grab", e.Path)
			}
		}
	}
	if !found {
		t.Errorf("lock graph %+v missing the interface-dispatched edge iface.A.mu -> iface.C.mu", g.Edges)
	}
	dot := g.DOT()
	for _, want := range []string{"digraph lockorder", `"iface.A.mu"`, `"iface.C.mu"`, `"iface.A.mu" -> "iface.C.mu"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

// TestLockOrderVerbUnderCalleeLatch covers the two held-over-fabric
// shapes lockheld's single-function walk cannot see: a verb issued while
// a latch was taken by a cross-package callee, and a call whose callee
// transitively issues the verb while the caller holds the latch.
func TestLockOrderVerbUnderCalleeLatch(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/rdma/rdma.go": fakeRdma,
		"store/store.go": `package store

import (
	"sync"

	"polardb/internal/rdma"
)

// S hands its latch across package boundaries.
type S struct{ mu sync.Mutex }

func (s *S) LockIt()   { s.mu.Lock() }
func (s *S) UnlockIt() { s.mu.Unlock() }

func helper(ep *rdma.Endpoint) {
	_, _ = ep.Load64(rdma.Addr{})
}

func (s *S) Risky(ep *rdma.Endpoint) {
	s.mu.Lock()
	helper(ep)
	s.mu.Unlock()
}
`,
		"fetch/fetch.go": `package fetch

import (
	"polardb/internal/rdma"
	"polardb/store"
)

func Indirect(ep *rdma.Endpoint, s *store.S) error {
	s.LockIt()
	defer s.UnlockIt()
	return ep.Write(rdma.Addr{}, nil)
}
`,
	})
	got := runOnly(t, mod, "lockorder", "./...")
	wantFindings(t, got,
		[3]interface{}{"lockorder", "fetch/fetch.go", 11},
		[3]interface{}{"lockorder", "store/store.go", 21})
	if !strings.Contains(got[0].Message, "store.S.mu") {
		t.Errorf("indirect-hold finding %q should name store.S.mu", got[0].Message)
	}
	if !strings.Contains(got[1].Message, "Load64") {
		t.Errorf("callee-verb finding %q should trace to Load64", got[1].Message)
	}
}

// TestCallGraphMethodValues: a method value captured into a local
// (h := t.M; h()) resolves to the bound method.
func TestCallGraphMethodValues(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"mv/mv.go": `package mv

type T struct{}

func (t *T) M() {}

func Use(t *T) {
	h := t.M
	h()
}
`,
	})
	p, err := mod.Load("polardb/mv")
	if err != nil {
		t.Fatal(err)
	}
	idx := buildModuleIndex([]*Package{p})
	body := funcBody(t, p, "Use")
	call := identCall(t, body)
	got := idx.resolveCall(p, call, methodBindings(p, body))
	if len(got) != 1 || got[0].Name() != "M" {
		t.Fatalf("resolveCall(h()) = %v, want [M]", got)
	}
}

// TestCallGraphInterfaceResolution: a call through an interface fans out
// to every module type implementing it (by value or pointer receiver),
// and to nothing else.
func TestCallGraphInterfaceResolution(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"ir/ir.go": `package ir

type I interface{ Do() }

type A struct{}

func (a *A) Do() {}

type B struct{}

func (b B) Do() {}

type N struct{}

func (n *N) Other() {}

func Call(i I) {
	i.Do()
}
`,
	})
	p, err := mod.Load("polardb/ir")
	if err != nil {
		t.Fatal(err)
	}
	idx := buildModuleIndex([]*Package{p})
	body := funcBody(t, p, "Call")
	var call *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			call = c
		}
		return true
	})
	got := idx.resolveCall(p, call, nil)
	var names []string
	for _, fn := range got {
		names = append(names, recvTypeName(fn)+"."+fn.Name())
	}
	if len(names) != 2 || names[0] != "A.Do" || names[1] != "B.Do" {
		t.Fatalf("resolveCall(i.Do()) = %v, want [A.Do B.Do]", names)
	}
}

// TestPolarvetTimeBudget is the polarvet-bench guard: the whole-module
// analysis (all analyzers, module call graph, interprocedural fixpoints)
// must stay fast enough to sit in CI and in developers' inner loops. The
// budget is far above today's cost (~2s) but low enough to catch a
// fixpoint that stops converging or an accidentally quadratic pass.
func TestPolarvetTimeBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo analysis skipped in -short mode")
	}
	const budget = 90 * time.Second
	start := time.Now()
	mod, err := LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(mod, []string{"./..."}, Analyzers()); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildLockGraph(mod, []string{"./..."}); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildFabricReport(mod, []string{"./..."}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > budget {
		t.Fatalf("full-module polarvet run took %v, budget %v", d, budget)
	}
}

// funcBody finds the body of the named top-level function in p.
func funcBody(t *testing.T, p *Package, name string) *ast.BlockStmt {
	t.Helper()
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name && fd.Body != nil {
				return fd.Body
			}
		}
	}
	t.Fatalf("no function %q in %s", name, p.Path)
	return nil
}

// identCall finds the call-through-identifier expression in body.
func identCall(t *testing.T, body *ast.BlockStmt) *ast.CallExpr {
	t.Helper()
	var call *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if _, ok := c.Fun.(*ast.Ident); ok {
				call = c
			}
		}
		return true
	})
	if call == nil {
		t.Fatal("no identifier call in body")
	}
	return call
}
