package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Pairing is the path-sensitive acquire/release analyzer. The repo's
// correctness argument leans on a handful of paired resources — a
// mini-transaction opened by BeginMtr must commit (its commit point is
// where invalidations are published, §3.1.4), a fetched frame's pin
// must drop (or remote eviction wedges), a PL latch must be released
// (or an SMO blocks the whole cluster, §3.2), an attached endpoint must
// detach. Pairing walks every function's CFG and reports any non-crash
// path that exits with such a resource held and no release — scheduled
// directly, by defer, or by a deferred closure — covering it. Error
// returns are refined along `err != nil` edges, so the common
//
//	f, err := e.Fetch(id)
//	if err != nil { return err } // no frame was pinned here
//
// shape is understood, as is `f := cache.Get(id)` being held only on
// the f != nil branch.
//
// Ownership transfers end tracking instead of reporting: returning the
// resource, storing it into a struct field / map / slice, sending it on
// a channel, capturing it in a closure, or appending it hand the
// release obligation to someone else. Intra-package summaries extend
// the analysis one level across calls: a local function that releases a
// parameter on every path counts as a release at its call sites, and a
// local function that returns an acquired resource counts as an
// acquire. internal/rdma is exempt (it implements the fabric the pairs
// protect).
type Pairing struct{}

// Name implements Analyzer.
func (Pairing) Name() string { return "pairing" }

// pairKind says which operand of an acquire or release call names the
// resource.
type pairKind int

const (
	idResult pairKind = iota // the call's first result
	idRecv                   // the method receiver
	idArg0                   // the first argument
)

// guardKind says how an acquire's success is observed.
type guardKind int

const (
	guardNone      guardKind = iota
	guardErr                 // acquired iff the trailing error result is nil
	guardNilResult           // acquired iff the result is non-nil
)

// releaseSpec matches one releasing method.
type releaseSpec struct {
	pkg, recv, method string
	id                pairKind
}

// pairSpec matches one acquiring method and lists its releases.
type pairSpec struct {
	pkg, recv, method string
	id                pairKind
	guard             guardKind
	relByArg          bool // release matches the acquire's first argument, not its result
	what              string
	releases          []releaseSpec
}

var unpinReleases = []releaseSpec{
	{"internal/cache", "Frame", "Unpin", idRecv},
	{"internal/engine", "Engine", "Unpin", idArg0},
	{"internal/btree", "Store", "Unpin", idArg0},
}

var plxReleases = []releaseSpec{
	{"internal/engine", "Engine", "PLUnlockX", idArg0},
	{"internal/engine", "Mtr", "DeferPLUnlockX", idArg0},
	{"internal/btree", "Mtr", "DeferPLUnlockX", idArg0},
}

var plsReleases = []releaseSpec{
	{"internal/engine", "Engine", "PLUnlockS", idArg0},
	{"internal/btree", "Store", "PLUnlockS", idArg0},
}

var pairTable = []pairSpec{
	{pkg: "internal/engine", recv: "Engine", method: "BeginMtr", id: idResult, what: "mini-transaction",
		releases: []releaseSpec{
			{"internal/engine", "Mtr", "Commit", idRecv},
			{"internal/engine", "Mtr", "release", idRecv},
		}},
	{pkg: "internal/engine", recv: "Engine", method: "Fetch", id: idResult, guard: guardErr,
		what: "pinned frame", releases: unpinReleases},
	{pkg: "internal/btree", recv: "Store", method: "Fetch", id: idResult, guard: guardErr,
		what: "pinned frame", releases: unpinReleases},
	{pkg: "internal/cache", recv: "Cache", method: "Get", id: idResult, guard: guardNilResult,
		what: "pinned frame", releases: unpinReleases},
	{pkg: "internal/cache", recv: "Frame", method: "Pin", id: idRecv,
		what: "pinned frame", releases: unpinReleases},
	{pkg: "internal/cache", recv: "Frame", method: "MtrPin", id: idRecv,
		what: "mtr-pinned frame", releases: []releaseSpec{{"internal/cache", "Frame", "MtrUnpin", idRecv}}},
	{pkg: "internal/engine", recv: "Engine", method: "PLLockX", id: idArg0, guard: guardErr,
		what: "global page X-latch", releases: plxReleases},
	{pkg: "internal/btree", recv: "Store", method: "PLLockX", id: idArg0, guard: guardErr,
		what: "global page X-latch", releases: plxReleases},
	{pkg: "internal/engine", recv: "Engine", method: "PLLockS", id: idArg0, guard: guardErr,
		what: "global page S-latch", releases: plsReleases},
	{pkg: "internal/btree", recv: "Store", method: "PLLockS", id: idArg0, guard: guardErr,
		what: "global page S-latch", releases: plsReleases},
	{pkg: "internal/rmem", recv: "PLManager", method: "LockX", id: idArg0, guard: guardErr,
		what: "global page X-latch", releases: []releaseSpec{{"internal/rmem", "PLManager", "UnlockX", idArg0}}},
	{pkg: "internal/rmem", recv: "PLManager", method: "LockS", id: idArg0, guard: guardErr,
		what: "global page S-latch", releases: []releaseSpec{{"internal/rmem", "PLManager", "UnlockS", idArg0}}},
	// Attach carries a Detach obligation; MustAttach and MustAttachOrGet
	// are deliberately absent — they are the bootstrap forms, wiring
	// process-lifetime endpoints that only the fabric tears down.
	{pkg: "internal/rdma", recv: "Fabric", method: "Attach", id: idResult, guard: guardErr, relByArg: true,
		what: "attached endpoint", releases: []releaseSpec{{"internal/rdma", "Fabric", "Detach", idArg0}}},
}

// pairFact is one live obligation on some path.
type pairFact struct {
	spec     *pairSpec    // nil for summary-seeded parameter facts
	key      string       // rendered identity expression for release matching
	pos      token.Pos    // acquire site
	obj      types.Object // variable bound to the resource, if any
	guardObj types.Object // error / nil-guard variable, if any
	guard    guardKind    // pending guard; guardNone once refined
	deferred bool         // a deferred release covers this fact
}

func (f pairFact) id() string {
	what := ""
	if f.spec != nil {
		what = f.spec.what
	}
	return fmt.Sprintf("%s|%s|%d|%d|%t", f.key, what, f.pos, f.guard, f.deferred)
}

// pairState is the set of live facts, keyed by fact id; merging at CFG
// joins is set union.
type pairState map[string]pairFact

func (s pairState) clone() pairState {
	out := make(pairState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// pairSummary is what one module function means to its callers.
type pairSummary struct {
	releases map[int]bool        // parameter index -> released on every path
	stores   map[int]bool        // parameter index -> handed to a new owner (stored, returned)
	returned map[int][]*pairSpec // result index -> acquired resources it hands back
}

// Check implements Analyzer.
func (Pairing) Check(p *Package) []Finding {
	if strings.HasSuffix(p.Path, "internal/rdma") {
		return nil
	}
	ensurePairSummaries(p)
	scopes := funcScopes(p)
	var out []Finding
	for _, sc := range scopes {
		a := &pairAnalysis{p: p, scope: sc, g: buildCFG(sc.body),
			summaries: p.Mod.pairSummaries, adapted: p.Mod.pairAdapted, report: true}
		a.run()
		out = append(out, a.findings...)
	}
	return out
}

// ensurePairSummaries computes, once per package, the pair summaries of
// p and of every module package it imports — dependencies first, so an
// obligation handed to an exported helper in another package is tracked
// through that helper's (already computed) summary. The shared module
// type-check universe means a cross-package callee is the same
// *types.Func object that keyed the summary when its home package was
// summarized. rdma is skipped: the fabric's own functions summarize as
// unknown and stay conservatively treated.
func ensurePairSummaries(p *Package) {
	m := p.Mod
	if m.pairDone[p.Path] {
		return
	}
	m.pairDone[p.Path] = true // Go forbids import cycles; set-first is just cheap reentry protection
	for _, imp := range p.Pkg.Imports() {
		path := imp.Path()
		if path != m.Path && !strings.HasPrefix(path, m.Path+"/") {
			continue
		}
		if dp, err := m.Load(path); err == nil {
			ensurePairSummaries(dp)
		}
	}
	if strings.HasSuffix(p.Path, "internal/rdma") {
		return
	}
	scopes := funcScopes(p)
	cfgs := make([]*funcCFG, len(scopes))
	for i, sc := range scopes {
		cfgs[i] = buildCFG(sc.body)
	}
	// Intra-package fixpoint (imports are already summarized above), so
	// helpers that delegate to other helpers still summarize.
	for round := 0; round < 5; round++ {
		changed := false
		for i, sc := range scopes {
			if sc.decl == nil {
				continue
			}
			fobj, ok := p.Info.Defs[sc.decl.Name].(*types.Func)
			if !ok {
				continue
			}
			a := &pairAnalysis{p: p, scope: sc, g: cfgs[i], summaries: m.pairSummaries, adapted: m.pairAdapted}
			a.run()
			ns := a.summary()
			// An empty summary is still knowledge — "borrows all its
			// parameters" — and must land in the map so callers don't
			// fall back to the conservative unknown-callee treatment.
			if old := m.pairSummaries[fobj]; old == nil || !samePairSummary(old, ns) {
				m.pairSummaries[fobj] = ns
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

func samePairSummary(a, b *pairSummary) bool {
	if a == nil {
		return b == nil || (len(b.releases) == 0 && len(b.stores) == 0 && len(b.returned) == 0)
	}
	if b == nil {
		return len(a.releases) == 0 && len(a.stores) == 0 && len(a.returned) == 0
	}
	if len(a.releases) != len(b.releases) || len(a.stores) != len(b.stores) || len(a.returned) != len(b.returned) {
		return false
	}
	for k, v := range a.releases {
		if b.releases[k] != v {
			return false
		}
	}
	for k, v := range a.stores {
		if b.stores[k] != v {
			return false
		}
	}
	for k, bv := range b.returned {
		av := a.returned[k]
		if len(av) != len(bv) {
			return false
		}
		for _, spec := range bv {
			found := false
			for _, s := range av {
				if s == spec {
					found = true
				}
			}
			if !found {
				return false
			}
		}
	}
	return true
}

// pairAnalysis runs the dataflow over one function scope.
type pairAnalysis struct {
	p         *Package
	scope     funcScope
	g         *funcCFG
	summaries map[*types.Func]*pairSummary
	adapted   map[*pairSpec]*pairSpec // interned result-position variants of specs
	report    bool

	findings []Finding
	reported map[string]bool

	// summary-pass outputs
	paramObjs   map[types.Object]int // seeded parameter object -> index
	paramLeaked map[int]bool
	paramStored map[int]bool
	returned    map[int][]*pairSpec
}

func (a *pairAnalysis) run() {
	a.reported = map[string]bool{}
	a.paramObjs = map[types.Object]int{}
	a.paramLeaked = map[int]bool{}
	a.paramStored = map[int]bool{}
	a.returned = map[int][]*pairSpec{}

	entry := pairState{}
	if !a.report && a.scope.decl != nil {
		// Summary pass: seed a fact per named parameter to learn which
		// parameters the function releases on every path.
		idx := 0
		for _, field := range a.scope.typ.Params.List {
			for _, name := range field.Names {
				if name.Name != "_" {
					if obj := a.p.Info.Defs[name]; obj != nil {
						a.paramObjs[obj] = idx
						f := pairFact{key: name.Name, pos: name.Pos(), obj: obj}
						entry[f.id()] = f
					}
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}

	in := map[*cfgBlock]pairState{a.g.entry: entry}
	work := []*cfgBlock{a.g.entry}
	inWork := map[*cfgBlock]bool{a.g.entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk] = false
		st := in[blk].clone()
		for _, n := range blk.nodes {
			a.applyNode(st, n)
		}
		for _, e := range blk.succs {
			next := a.refine(st, e)
			cur, seen := in[e.to]
			changed := !seen // first visit: propagate even an empty state
			if cur == nil {
				cur = pairState{}
				in[e.to] = cur
			}
			for k, v := range next {
				if _, ok := cur[k]; !ok {
					cur[k] = v
					changed = true
				}
			}
			if changed && !inWork[e.to] {
				work = append(work, e.to)
				inWork[e.to] = true
			}
		}
	}

	// A function body that falls off its closing brace is an exit too.
	if a.g.fallsOff != nil {
		if st0 := in[a.g.fallsOff]; st0 != nil {
			st := st0.clone()
			for _, n := range a.g.fallsOff.nodes {
				a.applyNode(st, n)
			}
			a.checkExit(st, a.scope.body.End())
		}
	}
}

// summary derives the pass results for the analyzed declaration.
func (a *pairAnalysis) summary() *pairSummary {
	s := &pairSummary{releases: map[int]bool{}, stores: a.paramStored, returned: a.returned}
	for _, idx := range a.paramObjs {
		if !a.paramLeaked[idx] {
			s.releases[idx] = true
		}
	}
	return s
}

// applyNode is the transfer function for one CFG node.
func (a *pairAnalysis) applyNode(st pairState, n ast.Node) {
	switch s := n.(type) {
	case *ast.DeferStmt:
		a.applyDefer(st, s.Call)
		return
	case *ast.ReturnStmt:
		a.applyReleases(st, s)
		a.applyReturn(st, s)
		return
	}
	a.applyReleases(st, n)
	a.applyTransfers(st, n)
	a.applyAcquire(st, n)
}

// applyDefer marks facts released by a deferred call — either a direct
// release (`defer f.Unpin()`) or a deferred closure whose body releases
// (`defer func() { if !committed { mt.Commit() } }()`).
func (a *pairAnalysis) applyDefer(st pairState, call *ast.CallExpr) {
	var hits []relHit
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				hits = append(hits, a.releaseHits(c)...)
			}
			return true
		})
	} else {
		hits = a.releaseHits(call)
	}
	for id, f := range st {
		for _, hit := range hits {
			if hit.clears(f) {
				delete(st, id)
				f.deferred = true
				st[f.id()] = f
				break
			}
		}
	}
}

// relHit is one releasing effect of a call: the rendered identity it
// releases and, for table releases, the matched releaseSpec (nil for
// summary-derived releases, which clear any key-compatible fact).
type relHit struct {
	key string
	rel *releaseSpec
}

// clears reports whether this release discharges fact f. The keys must
// name the same resource or a selector path into it (Unpin(n.f) clears
// the latch fact on n and the summary fact on the parameter n), and a
// table release must be one the fact's own spec lists — e.Unpin(f)
// never discharges a PL latch that happens to share the key f.
func (h relHit) clears(f pairFact) bool {
	if !keyRelated(f.key, h.key) {
		return false
	}
	if h.rel == nil || f.spec == nil {
		return true
	}
	for _, r := range f.spec.releases {
		if r == *h.rel {
			return true
		}
	}
	return false
}

// keyUnder reports whether key is name or a selector path into it.
func keyUnder(key, name string) bool {
	return key == name || strings.HasPrefix(key, name+".")
}

// keyRelated reports whether either rendered identity is a selector
// path into the other.
func keyRelated(a, b string) bool {
	return keyUnder(a, b) || keyUnder(b, a)
}

// releaseHits returns the releasing effects of a call: table releases
// plus module functions known (by summary) to release a parameter on
// every path.
func (a *pairAnalysis) releaseHits(call *ast.CallExpr) []relHit {
	var out []relHit
	if obj := calleeFunc(a.p, call); obj != nil {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			for i := range pairTable {
				for j := range pairTable[i].releases {
					r := &pairTable[i].releases[j]
					if !methodIs(obj, r.pkg, r.recv, r.method) {
						continue
					}
					switch r.id {
					case idRecv:
						out = append(out, relHit{key: types.ExprString(sel.X), rel: r})
					case idArg0:
						if len(call.Args) > 0 {
							out = append(out, relHit{key: types.ExprString(call.Args[0]), rel: r})
						}
					}
				}
			}
		}
		if sum := a.summaries[obj]; sum != nil {
			for i := range call.Args {
				if sum.releases[i] {
					out = append(out, relHit{key: types.ExprString(call.Args[i])})
				}
			}
		}
	}
	return out
}

func (a *pairAnalysis) applyReleases(st pairState, n ast.Node) {
	inspectSkipFuncLit(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, hit := range a.releaseHits(call) {
			for id, f := range st {
				if hit.clears(f) {
					delete(st, id)
				}
			}
		}
		return true
	})
}

// applyTransfers removes facts whose resource is handed to another
// owner inside n: stored, sent, appended, or captured by a closure.
func (a *pairAnalysis) applyTransfers(st pairState, n ast.Node) {
	transferObj := func(o types.Object) {
		for id, f := range st {
			if f.obj != nil && f.obj == o {
				delete(st, id)
				a.markTransferredParam(f)
			}
		}
	}
	if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
		for i, rhs := range as.Rhs {
			ident, ok := rhs.(*ast.Ident)
			if !ok {
				continue
			}
			o := identObj(a.p, ident)
			if o == nil {
				continue
			}
			if li, ok := as.Lhs[i].(*ast.Ident); ok && li.Name != "_" {
				// Pure alias (`prev = p`): the obligation follows the
				// new name, so a later release through the alias —
				// t.releaseX(mt, prev) — still discharges it.
				a.rekey(st, o, ident.Name, identObj(a.p, li), li.Name)
			} else {
				transferObj(o) // stored into a field/slice: new owner
			}
		}
	}
	inspectSkipFuncLit(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.CompositeLit:
			for _, el := range c.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if ident, ok := el.(*ast.Ident); ok {
					if o := identObj(a.p, ident); o != nil {
						transferObj(o)
					}
				}
			}
		case *ast.SendStmt:
			if ident, ok := c.Value.(*ast.Ident); ok {
				if o := identObj(a.p, ident); o != nil {
					transferObj(o)
				}
			}
		case *ast.CallExpr:
			if fun, ok := c.Fun.(*ast.Ident); ok && fun.Name == "append" {
				for _, arg := range c.Args[1:] {
					if ident, ok := arg.(*ast.Ident); ok {
						if o := identObj(a.p, ident); o != nil {
							transferObj(o)
						}
					}
				}
				return true
			}
			// A module callee that stores a parameter takes over the
			// obligation: `retained.push(cur)` moves cur into the
			// container that releaseAll later drains.
			if obj := calleeFunc(a.p, c); obj != nil {
				if sum := a.summaries[obj]; sum != nil {
					for i, arg := range c.Args {
						if !sum.stores[i] {
							continue
						}
						argKey := types.ExprString(arg)
						argObj := identObj2(a.p, arg)
						for id, f := range st {
							if (argObj != nil && f.obj == argObj) || keyRelated(f.key, argKey) {
								delete(st, id)
								a.markTransferredParam(f)
							}
						}
					}
				}
			}
		case *ast.FuncLit:
			// The closure takes over the obligation (it may run later,
			// on another goroutine); its own body is analyzed as a
			// separate scope.
			ast.Inspect(c.Body, func(inner ast.Node) bool {
				if ident, ok := inner.(*ast.Ident); ok {
					if o := a.p.Info.Uses[ident]; o != nil {
						transferObj(o)
					}
				}
				return true
			})
		}
		return true
	})
}

// rekey renames facts tracked under (fromObj, fromName) to the alias
// (toObj, toName), dropping any stale facts already held under the
// alias (the assignment overwrote that binding).
func (a *pairAnalysis) rekey(st pairState, fromObj types.Object, fromName string, toObj types.Object, toName string) {
	var moved []pairFact
	for id, f := range st {
		switch {
		case (fromObj != nil && f.obj == fromObj) || keyUnder(f.key, fromName):
			delete(st, id)
			if keyUnder(f.key, fromName) {
				f.key = toName + strings.TrimPrefix(f.key, fromName)
			} else {
				f.key = toName
			}
			if f.obj == fromObj {
				f.obj = toObj
			}
			moved = append(moved, f)
		case (toObj != nil && f.obj == toObj) || keyUnder(f.key, toName):
			delete(st, id)
		}
	}
	for _, f := range moved {
		st[f.id()] = f
	}
}

// applyAcquire creates facts for acquiring calls appearing as a whole
// statement or as the single right-hand side of an assignment. An
// acquire nested in a return or a larger expression transfers
// immediately and is not tracked.
func (a *pairAnalysis) applyAcquire(st pairState, n ast.Node) {
	var lhs []ast.Expr
	var call *ast.CallExpr
	switch s := n.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			call, _ = s.Rhs[0].(*ast.CallExpr)
			lhs = s.Lhs
		}
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	}
	if call == nil {
		return
	}
	obj := calleeFunc(a.p, call)
	if obj == nil {
		return
	}

	bind := func(resultIdx int, spec *pairSpec, guard guardKind) {
		f := pairFact{spec: spec, pos: call.Pos(), guard: guard}
		switch spec.id {
		case idResult:
			if resultIdx < len(lhs) {
				if _, isIdent := lhs[resultIdx].(*ast.Ident); !isIdent {
					// `eps[i] = attach(...)`: stored straight into a
					// field or slice — ownership transfers immediately.
					return
				}
				f.key = types.ExprString(lhs[resultIdx])
				f.obj = identObj2(a.p, lhs[resultIdx])
			} else {
				f.key = types.ExprString(call)
			}
			if spec.relByArg && len(call.Args) > 0 {
				f.key = types.ExprString(call.Args[0])
			}
		case idRecv:
			sel := call.Fun.(*ast.SelectorExpr)
			f.key = types.ExprString(sel.X)
			f.obj = identObj2(a.p, sel.X)
		case idArg0:
			if len(call.Args) == 0 {
				return
			}
			f.key = types.ExprString(call.Args[0])
			f.obj = identObj2(a.p, call.Args[0])
		}
		if f.key == "_" {
			f.obj = nil
		}
		switch guard {
		case guardErr:
			// The error is the trailing result; with a full assignment
			// it is the last LHS.
			if len(lhs) > 0 {
				f.guardObj = identObj2(a.p, lhs[len(lhs)-1])
			}
			if f.guardObj == nil {
				f.guard = guardErr // stays pending, reported if leaked
			}
		case guardNilResult:
			f.guardObj = f.obj
		}
		// Replace any stale fact for the same identity (reassignment).
		for id, old := range st {
			if old.key == f.key && old.spec != nil && old.spec.what == spec.what {
				delete(st, id)
			}
		}
		st[f.id()] = f
	}

	for i := range pairTable {
		spec := &pairTable[i]
		if methodIs(obj, spec.pkg, spec.recv, spec.method) {
			bind(0, spec, spec.guard)
			return
		}
	}
	// Module constructor that hands back acquired resources.
	if sum := a.summaries[obj]; sum != nil {
		sig, _ := obj.Type().(*types.Signature)
		for j, specs := range sum.returned {
			guard := guardNone
			if sig != nil && sig.Results().Len() > 1 && isErrorType(sig.Results().At(sig.Results().Len()-1).Type()) {
				guard = guardErr
			}
			for _, spec := range specs {
				ad := a.adapted[spec]
				if ad == nil {
					c := *spec
					c.id = idResult
					c.relByArg = false
					ad = &c
					a.adapted[spec] = ad
				}
				bind(j, ad, guard)
			}
		}
	}
}

// applyReturn transfers returned resources, records constructor
// summaries, and reports what is still held. A resource is transferred
// when any root identifier of a result names it — `return n, nil`
// hands off the latch tracked as "n.f", and `return wrap(f), nil`
// hands off the frame f inside the wrapper.
func (a *pairAnalysis) applyReturn(st pairState, ret *ast.ReturnStmt) {
	for j, res := range ret.Results {
		for _, ident := range a.rootIdents(res) {
			io := identObj(a.p, ident)
			for id, f := range st {
				if (io != nil && f.obj == io) || keyRelated(f.key, ident.Name) {
					if f.spec != nil {
						// The resource rides out in result j (possibly
						// inside a wrapper): a constructor summary.
						present := false
						for _, s := range a.returned[j] {
							if s == f.spec {
								present = true
							}
						}
						if !present {
							a.returned[j] = append(a.returned[j], f.spec)
						}
					}
					delete(st, id)
					a.markTransferredParam(f)
				}
			}
		}
	}
	a.checkExit(st, ret.Pos())
}

// markTransferredParam records that a summary-seeded parameter fact was
// transferred rather than released — handing a parameter to a new owner
// (a struct, a slice, the caller via return) is not a release, but it
// does end the caller's tracking: `retained.push(cur)` moves the
// obligation into the container, whose releaseAll discharges it.
func (a *pairAnalysis) markTransferredParam(f pairFact) {
	if f.spec == nil && f.obj != nil {
		if idx, ok := a.paramObjs[f.obj]; ok {
			a.paramLeaked[idx] = true
			a.paramStored[idx] = true
		}
	}
}

// rootIdents collects the identifiers that can carry a resource out of
// an expression: selector bases, composite-literal elements, and call
// arguments the callee is known (or not known not) to retain — but not
// selector field names, callee names, borrowed arguments of summarized
// local helpers (`return e.writeHeaderField(mt, ...)` does not hand mt
// away), or closure bodies (closures are captures, in applyTransfers).
func (a *pairAnalysis) rootIdents(e ast.Expr) []*ast.Ident {
	var out []*ast.Ident
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Ident:
			if e.Name != "_" && e.Name != "nil" {
				out = append(out, e)
			}
		case *ast.ParenExpr:
			walk(e.X)
		case *ast.SelectorExpr:
			walk(e.X)
		case *ast.StarExpr:
			walk(e.X)
		case *ast.UnaryExpr:
			walk(e.X)
		case *ast.IndexExpr:
			walk(e.X)
		case *ast.SliceExpr:
			walk(e.X)
		case *ast.CallExpr:
			var sum *pairSummary
			if obj := calleeFunc(a.p, e); obj != nil {
				sum = a.summaries[obj]
			}
			for i, arg := range e.Args {
				if sum == nil || sum.stores[i] || sum.releases[i] {
					walk(arg)
				}
			}
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				walk(el)
			}
		}
	}
	walk(e)
	return out
}

// checkExit reports (or, in the summary pass, records) facts still held
// at an exit point.
func (a *pairAnalysis) checkExit(st pairState, pos token.Pos) {
	for _, f := range st {
		if f.deferred {
			continue
		}
		if f.spec == nil {
			if idx, ok := a.paramObjs[f.obj]; ok {
				a.paramLeaked[idx] = true
			}
			continue
		}
		if !a.report {
			continue
		}
		acq := a.p.Fset.Position(f.pos)
		key := fmt.Sprintf("%d|%d|%s", f.pos, pos, f.spec.what)
		if a.reported[key] {
			continue
		}
		a.reported[key] = true
		a.findings = append(a.findings, Finding{
			Analyzer: "pairing",
			Pos:      a.p.Fset.Position(pos),
			Message: fmt.Sprintf("%s: exit path still holds %s %q acquired at line %d; release it on this path or defer the release",
				a.scope.name, f.spec.what, f.key, acq.Line),
		})
	}
}

// refine narrows facts along a conditional edge: `err != nil` kills an
// err-guarded fact on its true edge and discharges the guard on its
// false edge; `f == nil` does the reverse for nil-guarded facts; and
// comparing an err-guard against a (necessarily non-nil) sentinel error
// kills the fact on the equal edge.
func (a *pairAnalysis) refine(st pairState, e cfgEdge) pairState {
	if e.cond == nil {
		return st
	}
	bin, ok := e.cond.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return st
	}
	classify := func(x, y ast.Expr) (types.Object, int) {
		o := identObj2(a.p, x)
		if o == nil {
			return nil, 0
		}
		if yi, ok := y.(*ast.Ident); ok && yi.Name == "nil" {
			return o, 1 // compared against nil
		}
		if tv, ok := a.p.Info.Types[y]; ok && tv.Type != nil && isErrorType(tv.Type) {
			return o, 2 // compared against an error sentinel
		}
		return nil, 0
	}
	obj, mode := classify(bin.X, bin.Y)
	if obj == nil {
		obj, mode = classify(bin.Y, bin.X)
	}
	if obj == nil {
		return st
	}
	// truth of the comparison on this edge:
	taken := !e.negate
	eq := (bin.Op == token.EQL) == taken // the two operands are equal on this edge

	out := st.clone()
	// A binding proven nil on this edge cannot hold a resource: kill
	// facts rooted at it. This is what connects `var prev *node` set
	// only inside `if prevNo != 0` with the later `if prev != nil {
	// release(prev) }` — on the nil edge the acquire never happened.
	if mode == 1 && (bin.Op == token.EQL) == !e.negate {
		for id, f := range out {
			if (f.obj != nil && f.obj == obj) || keyUnder(f.key, obj.Name()) {
				delete(out, id)
			}
		}
	}
	for id, f := range out {
		if f.guard == guardNone || f.guardObj == nil || f.guardObj != obj {
			continue
		}
		switch {
		case mode == 1 && f.guard == guardErr:
			delete(out, id)
			if eq { // err == nil: definitely acquired
				f.guard = guardNone
				out[f.id()] = f
			} // err != nil: never acquired — drop
		case mode == 1 && f.guard == guardNilResult:
			delete(out, id)
			if !eq { // f != nil: definitely acquired
				f.guard = guardNone
				out[f.id()] = f
			}
		case mode == 2 && f.guard == guardErr && eq:
			// err == someSentinelErr implies err != nil: not acquired.
			delete(out, id)
		}
	}
	return out
}

// ---- shared type helpers ----

// calleeFunc resolves a call to the *types.Func it invokes, if any.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	obj, _ := p.Info.Uses[id].(*types.Func)
	return obj
}

// methodIs reports whether obj is method recv.method of a package whose
// import path ends in pkg. recv "" matches package-level functions.
func methodIs(obj *types.Func, pkg, recv, method string) bool {
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), pkg) || obj.Name() != method {
		return false
	}
	return recvTypeName(obj) == recv
}

// recvTypeName is the name of a method's receiver type (or interface),
// "" for plain functions.
func recvTypeName(obj *types.Func) string {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// identObj resolves a used identifier to its object.
func identObj(p *Package, ident *ast.Ident) types.Object {
	if o := p.Info.Uses[ident]; o != nil {
		return o
	}
	return p.Info.Defs[ident]
}

// identObj2 resolves an expression to an object when it is a plain
// identifier (not "_"), nil otherwise.
func identObj2(p *Package, e ast.Expr) types.Object {
	ident, ok := e.(*ast.Ident)
	if !ok || ident.Name == "_" || ident.Name == "nil" {
		return nil
	}
	return identObj(p, ident)
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
