package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoSleep forbids time.Sleep outside the fabric latency model. Every
// simulated delay must go through internal/rdma's latency configuration
// so that measured results reflect the modelled hierarchy; an ad-hoc
// sleep is either a hidden latency model (wrong place) or a polling loop
// (use internal/retry, which carries the one audited sleep).
//
// Exempt: internal/rdma/latency.go (the latency model itself),
// internal/bench (measurement windows are real wall-clock time), and
// _test.go files (not loaded at all).
type NoSleep struct{}

// Name implements Analyzer.
func (NoSleep) Name() string { return "nosleep" }

// Check implements Analyzer.
func (NoSleep) Check(p *Package) []Finding {
	if p.Path == "polardb/internal/bench" || strings.HasSuffix(p.Path, "/internal/bench") {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		pos := p.Fset.Position(file.Pos())
		if strings.HasSuffix(pos.Filename, "internal/rdma/latency.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil {
				return true
			}
			if obj.Pkg().Path() == "time" && obj.Name() == "Sleep" {
				out = append(out, Finding{
					Analyzer: "nosleep",
					Pos:      p.Fset.Position(call.Pos()),
					Message:  "time.Sleep outside the latency model; simulate delay via internal/rdma or poll via internal/retry",
				})
			}
			return true
		})
	}
	return out
}
