package lint

import (
	"strings"
	"testing"
)

// fakeWire mirrors internal/wire's codec surface: fixed-width field
// methods plus the variable-length String, which is what fabriccost keys
// on when judging one-sided convertibility.
const fakeWire = `package wire

type Writer struct{}

func NewWriter(n int) *Writer     { return &Writer{} }
func (w *Writer) U8(v uint8)      {}
func (w *Writer) U16(v uint16)    {}
func (w *Writer) U32(v uint32)    {}
func (w *Writer) U64(v uint64)    {}
func (w *Writer) Bool(v bool)     {}
func (w *Writer) String(s string) {}
func (w *Writer) Bytes() []byte   { return nil }

type Reader struct{}

func NewReader(b []byte) *Reader { return &Reader{} }
func (r *Reader) U8() uint8      { return 0 }
func (r *Reader) U16() uint16    { return 0 }
func (r *Reader) U32() uint32    { return 0 }
func (r *Reader) U64() uint64    { return 0 }
func (r *Reader) Bool() bool     { return false }
func (r *Reader) String() string { return "" }
func (r *Reader) Err() error     { return nil }
`

func TestFabricCostLoopCarriedVerb(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/rdma/rdma.go": fakeRdma,
		"internal/rmem/pool.go": `package rmem

import "polardb/internal/rdma"

type Pool struct{ ep *rdma.Endpoint }

func (p *Pool) FanOut(nodes []rdma.NodeID, b []byte) {
	for _, n := range nodes {
		_, _ = p.ep.Call(n, "m", b)
	}
}

// Single issues the same verb outside any loop: O(1), no finding.
func (p *Pool) Single(n rdma.NodeID, b []byte) {
	_, _ = p.ep.Call(n, "m", b)
}

// Bounded retries are not fan-out: the trip count is a compile-time
// constant, so the cost class stays O(1).
func (p *Pool) Retry(n rdma.NodeID, b []byte) {
	for i := 0; i < 3; i++ {
		_, _ = p.ep.Call(n, "m", b)
	}
}
`,
	})
	got := runOnly(t, mod, "fabriccost", "./...")
	wantFindings(t, got, [3]interface{}{"fabriccost", "pool.go", 9})
	if !strings.Contains(got[0].Message, "loop-carried fan-out") {
		t.Errorf("message = %q, want loop-carried fan-out", got[0].Message)
	}
}

func TestFabricCostInterproceduralMultiplicity(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/rdma/rdma.go": fakeRdma,
		"internal/rmem/pool.go": `package rmem

import "polardb/internal/rdma"

type Pool struct{ ep *rdma.Endpoint }

func (p *Pool) buf() []byte { return nil }

// one issues exactly one round trip.
func (p *Pool) one(n rdma.NodeID) error {
	_, err := p.ep.Call(n, "m", p.buf())
	return err
}

// Broadcast multiplies it per peer: the O(1) callee becomes the
// caller's O(n) fan-out.
func (p *Pool) Broadcast(nodes []rdma.NodeID) {
	for _, n := range nodes {
		_ = p.one(n)
	}
}
`,
	})
	got := runOnly(t, mod, "fabriccost", "./...")
	wantFindings(t, got, [3]interface{}{"fabriccost", "pool.go", 19})
	if !strings.Contains(got[0].Message, "rmem.Pool.one") {
		t.Errorf("message = %q, want the callee named", got[0].Message)
	}

	rep, err := BuildFabricReport(mod, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	costs := map[string]string{}
	for _, f := range rep.Functions {
		costs[f.Function] = f.RPC
	}
	if costs["rmem.Pool.one"] != "O(1)" {
		t.Errorf("one RPC cost = %q, want O(1)", costs["rmem.Pool.one"])
	}
	if costs["rmem.Pool.Broadcast"] != "O(n)" {
		t.Errorf("Broadcast RPC cost = %q, want O(n) (loop-promoted through the call)", costs["rmem.Pool.Broadcast"])
	}
	loopEdge := false
	for _, e := range rep.Edges {
		if e.From == "rmem.Pool.Broadcast" && e.To == "rmem.Pool.one" && e.InLoop {
			loopEdge = true
		}
	}
	if !loopEdge {
		t.Errorf("report edges %v lack the in-loop Broadcast -> one edge", rep.Edges)
	}
}

func TestFabricCostBatchedSendIsFlat(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/rdma/rdma.go": fakeRdma,
		"internal/wire/wire.go": fakeWire,
		"internal/rmem/pool.go": `package rmem

import (
	"polardb/internal/rdma"
	"polardb/internal/wire"
)

type Pool struct{ ep *rdma.Endpoint }

// Batched marshals the whole list into one request: the loop moves
// bytes, not round trips, so the function stays O(1).
func (p *Pool) Batched(n rdma.NodeID, pages []uint32) error {
	w := wire.NewWriter(4 + 4*len(pages))
	w.U32(uint32(len(pages)))
	for _, pg := range pages {
		w.U32(pg)
	}
	_, err := p.ep.Call(n, "m", w.Bytes())
	return err
}
`,
	})
	got := runOnly(t, mod, "fabriccost", "./...")
	wantFindings(t, got)
	rep, err := BuildFabricReport(mod, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Functions {
		if f.Function == "rmem.Pool.Batched" && f.RPC != "O(1)" {
			t.Errorf("Batched RPC cost = %q, want O(1)", f.RPC)
		}
	}
}

func TestFabricCostOneSidedConvertible(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/rdma/rdma.go": fakeRdma,
		"internal/wire/wire.go": fakeWire,
		"internal/rmem/pool.go": `package rmem

import (
	"polardb/internal/rdma"
	"polardb/internal/wire"
)

type Pool struct{ ep *rdma.Endpoint }

// Probe: fixed-width request, response ignored -> Write candidate.
func (p *Pool) Probe(n rdma.NodeID) error {
	w := wire.NewWriter(12)
	w.U32(1)
	w.U64(2)
	_, err := p.ep.Call(n, "probe", w.Bytes())
	return err
}

// Peek: nil request, fixed-width response decode -> Read candidate.
func (p *Pool) Peek(n rdma.NodeID) (uint64, error) {
	resp, err := p.ep.Call(n, "peek", nil)
	if err != nil {
		return 0, err
	}
	rd := wire.NewReader(resp)
	v := rd.U64()
	return v, rd.Err()
}

// Named ships a variable-length string: the layout is not fixed, so the
// RPC genuinely needs remote marshaling and draws no finding.
func (p *Pool) Named(n rdma.NodeID, s string) error {
	w := wire.NewWriter(16)
	w.String(s)
	_, err := p.ep.Call(n, "named", w.Bytes())
	return err
}
`,
	})
	got := runOnly(t, mod, "fabriccost", "./...")
	wantFindings(t, got,
		[3]interface{}{"fabriccost", "pool.go", 15},
		[3]interface{}{"fabriccost", "pool.go", 21},
	)
	if !strings.Contains(got[0].Message, "one-sided Write") {
		t.Errorf("Probe message = %q, want a Write candidate", got[0].Message)
	}
	if !strings.Contains(got[1].Message, "one-sided Read") {
		t.Errorf("Peek message = %q, want a Read candidate", got[1].Message)
	}
}

func TestFabricCostBudgets(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/rdma/rdma.go": fakeRdma,
		"internal/rmem/pool.go": `package rmem

import "polardb/internal/rdma"

type Pool struct{ ep *rdma.Endpoint }

// Ok really is one round trip.
//polarvet:fabric O(1) a single probe
func (p *Pool) Ok(n rdma.NodeID, b []byte) error {
	_, err := p.ep.Call(n, "m", b)
	return err
}

// Violated grew a loop under its O(1) declaration.
//polarvet:fabric O(1) stale: the loop below breaks this
func (p *Pool) Violated(nodes []rdma.NodeID, b []byte) {
	for _, n := range nodes {
		_, _ = p.ep.Call(n, "m", b)
	}
}

// Loose declares more cost than the body has.
//polarvet:fabric O(n) stale: there is no loop here
func (p *Pool) Loose(n rdma.NodeID, b []byte) error {
	_, err := p.ep.Call(n, "m", b)
	return err
}
`,
	})
	got := runOnly(t, mod, "fabriccost", "./...")
	wantFindings(t, got,
		[3]interface{}{"fabriccost", "pool.go", 15}, // budget violated (directive line)
		[3]interface{}{"fabriccost", "pool.go", 18}, // the loop-carried verb itself
		[3]interface{}{"fabriccost", "pool.go", 23}, // budget loose (directive line)
	)
	if !strings.Contains(got[0].Message, "fabric budget violated") {
		t.Errorf("finding 0 = %q, want a violated budget", got[0].Message)
	}
	if !strings.Contains(got[2].Message, "fabric budget loose") {
		t.Errorf("finding 2 = %q, want a loose budget", got[2].Message)
	}

	rep, err := BuildFabricReport(mod, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Functions {
		if f.Function == "rmem.Pool.Ok" && f.Budget != "O(1)" {
			t.Errorf("Ok budget in report = %q, want O(1)", f.Budget)
		}
	}
}

func TestFabricCostDirectiveHygiene(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"internal/rdma/rdma.go": fakeRdma,
		"internal/rmem/pool.go": `package rmem

import "polardb/internal/rdma"

type Pool struct{ ep *rdma.Endpoint }

// A directive with an unknown level is malformed.
//polarvet:fabric O(n^2) nonsense level
func (p *Pool) Malformed(n rdma.NodeID, b []byte) {
	_, _ = p.ep.Call(n, "m", b)
}

// A directive not attached to a function budgets nothing.
//polarvet:fabric O(1) dangling
var placeholder = 1
`,
	})
	got := runOnly(t, mod, "fabriccost", "./...")
	wantFindings(t, got,
		[3]interface{}{"fabriccost", "pool.go", 8},
		[3]interface{}{"fabriccost", "pool.go", 14},
	)
	if !strings.Contains(got[0].Message, "malformed //polarvet:fabric") {
		t.Errorf("finding 0 = %q, want malformed directive", got[0].Message)
	}
	if !strings.Contains(got[1].Message, "not attached to a function") {
		t.Errorf("finding 1 = %q, want dangling directive", got[1].Message)
	}
}
