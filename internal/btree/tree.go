package btree

import (
	"fmt"

	"polardb/internal/types"
)

// Space layout: page 0 is the space header (page allocator), page 1 is the
// tree root (fixed for the tree's lifetime; root splits grow downward).
const (
	headerPageNo = 0
	rootPageNo   = 1
)

// Tree is a B+tree over a tablespace.
type Tree struct {
	store Store
	space types.SpaceID
}

// Create formats a new tree in space (header + empty leaf root) inside m.
func Create(store Store, m Mtr, space types.SpaceID) (*Tree, error) {
	t := &Tree{store: store, space: space}
	hdr, err := t.fetch(headerPageNo)
	if err != nil {
		return nil, err
	}
	hdr.f.Latch.Lock()
	hdr.setU32(offAllocNext, rootPageNo+1)
	hdr.setU32(offFreeHead, 0)
	hdr.flush(m)
	hdr.f.Latch.Unlock()
	t.store.Unpin(hdr.f)

	root, err := t.fetch(rootPageNo)
	if err != nil {
		return nil, err
	}
	root.f.Latch.Lock()
	root.init(pageLeaf, 0)
	root.flush(m)
	root.f.Latch.Unlock()
	t.store.Unpin(root.f)
	return t, nil
}

// Open attaches to an existing tree in space.
func Open(store Store, space types.SpaceID) *Tree {
	return &Tree{store: store, space: space}
}

// Space returns the tree's tablespace id.
func (t *Tree) Space() types.SpaceID { return t.space }

func (t *Tree) fetch(no types.PageNo) (*node, error) {
	f, err := t.store.Fetch(types.PageID{Space: t.space, No: no})
	if err != nil {
		return nil, err
	}
	return wrap(f), nil
}

// allocPage takes a page from the free list or extends the space. The
// space header latch is a leaf in the lock order (acquired last, held
// briefly), so holding tree latches while allocating cannot deadlock.
func (t *Tree) allocPage(m Mtr) (*node, error) {
	hdr, err := t.fetch(headerPageNo)
	if err != nil {
		return nil, err
	}
	hdr.f.Latch.Lock()
	var no types.PageNo
	if free := types.PageNo(hdr.u32(offFreeHead)); free != 0 {
		freed, err := t.fetch(free)
		if err != nil {
			hdr.f.Latch.Unlock()
			t.store.Unpin(hdr.f)
			return nil, err
		}
		freed.f.Latch.Lock()
		hdr.setU32(offFreeHead, uint32(freed.nextLeaf()))
		freed.f.Latch.Unlock()
		t.store.Unpin(freed.f)
		no = free
	} else {
		no = types.PageNo(hdr.u32(offAllocNext))
		hdr.setU32(offAllocNext, uint32(no)+1)
	}
	hdr.flush(m)
	hdr.f.Latch.Unlock()
	t.store.Unpin(hdr.f)
	return t.fetch(no)
}

// freePage returns a page to the space free list. Caller holds its latch.
func (t *Tree) freePage(m Mtr, n *node) error {
	hdr, err := t.fetch(headerPageNo)
	if err != nil {
		return err
	}
	hdr.f.Latch.Lock()
	n.setU8(offNodeType, pageFree)
	n.setNKeys(0)
	n.setNextLeaf(types.PageNo(hdr.u32(offFreeHead)))
	n.flush(m)
	hdr.setU32(offFreeHead, uint32(n.pageNo()))
	hdr.flush(m)
	hdr.f.Latch.Unlock()
	t.store.Unpin(hdr.f)
	return nil
}

// ---------------------------------------------------------------------------
// Reads

type readCtx struct {
	t     *Tree
	mode  TraverseMode
	clock uint64
}

func (t *Tree) newReadCtx(mode TraverseMode) (*readCtx, error) {
	rc := &readCtx{t: t, mode: mode}
	if mode == Optimistic {
		clock, err := t.store.SMOClock()
		if err != nil {
			return nil, err
		}
		rc.clock = clock
	}
	return rc, nil
}

// acquire fetches and read-latches a page under the ctx's protocol.
func (rc *readCtx) acquire(no types.PageNo) (*node, error) {
	n, err := rc.t.fetch(no)
	if err != nil {
		return nil, err
	}
	if rc.mode == PessimisticS {
		if err := rc.t.store.PLLockS(n.f); err != nil {
			rc.t.store.Unpin(n.f)
			return nil, err
		}
	}
	n.f.Latch.RLock()
	if rc.mode == Optimistic {
		if n.smoStamp() > rc.clock {
			rc.release(n)
			return nil, ErrSMOConflict
		}
		if err := n.sanityCheck(); err != nil {
			rc.release(n)
			return nil, fmt.Errorf("%w: %v", ErrSMOConflict, err)
		}
	}
	return n, nil
}

func (rc *readCtx) release(n *node) {
	n.f.Latch.RUnlock()
	if rc.mode == PessimisticS {
		rc.t.store.PLUnlockS(n.f)
	}
	rc.t.store.Unpin(n.f)
}

// descendToLeaf walks root-to-leaf with read coupling, returning the
// latched leaf covering key.
func (rc *readCtx) descendToLeaf(key uint64) (*node, error) {
	cur, err := rc.acquire(rootPageNo)
	if err != nil {
		return nil, err
	}
	for !cur.isLeaf() {
		childNo := cur.descendChild(key)
		child, err := rc.acquire(childNo)
		if err != nil {
			rc.release(cur)
			return nil, err
		}
		rc.release(cur)
		cur = child
	}
	return cur, nil
}

// Get returns a copy of key's value.
func (t *Tree) Get(key uint64, mode TraverseMode) ([]byte, error) {
	const optimisticRetries = 3
	for attempt := 0; ; attempt++ {
		val, err := t.getOnce(key, mode)
		if err == nil || !isSMOConflict(err) {
			return val, err
		}
		if attempt >= optimisticRetries {
			mode = PessimisticS // fall back (§4.1)
		}
	}
}

func isSMOConflict(err error) bool {
	for e := err; e != nil; {
		if e == ErrSMOConflict {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

func (t *Tree) getOnce(key uint64, mode TraverseMode) ([]byte, error) {
	rc, err := t.newReadCtx(mode)
	if err != nil {
		return nil, err
	}
	leaf, err := rc.descendToLeaf(key)
	if err != nil {
		return nil, err
	}
	defer rc.release(leaf)
	idx, found := leaf.search(key)
	if !found {
		return nil, ErrKeyNotFound
	}
	v := leaf.value(idx)
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// LeafCoverage descends to the leaf covering key and returns the largest
// key stored on it (ok=false for an empty leaf). Prefetchers use it to
// warm one leaf per descent instead of one descent per key.
func (t *Tree) LeafCoverage(key uint64, mode TraverseMode) (lastKey uint64, ok bool, err error) {
	const optimisticRetries = 3
	for attempt := 0; ; attempt++ {
		lastKey, ok, err = t.leafCoverageOnce(key, mode)
		if err == nil || !isSMOConflict(err) {
			return lastKey, ok, err
		}
		if attempt >= optimisticRetries {
			mode = PessimisticS
		}
	}
}

func (t *Tree) leafCoverageOnce(key uint64, mode TraverseMode) (uint64, bool, error) {
	rc, err := t.newReadCtx(mode)
	if err != nil {
		return 0, false, err
	}
	leaf, err := rc.descendToLeaf(key)
	if err != nil {
		return 0, false, err
	}
	defer rc.release(leaf)
	nk := leaf.nkeys()
	if nk == 0 {
		return 0, false, nil
	}
	return leaf.slotKey(nk - 1), true, nil
}

// KV is one key/value pair delivered by Scan.
type KV struct {
	Key   uint64
	Value []byte
}

// Scan streams entries with from <= key < to in order, calling fn outside
// any latch. fn returning false stops the scan.
func (t *Tree) Scan(from, to uint64, mode TraverseMode, fn func(KV) bool) error {
	const optimisticRetries = 3
	cursor := from
	attempt := 0
	for {
		done, err := t.scanChunk(&cursor, to, mode, fn)
		if err == nil {
			if done {
				return nil
			}
			continue
		}
		if !isSMOConflict(err) {
			return err
		}
		attempt++
		if attempt > optimisticRetries {
			mode = PessimisticS
		}
	}
}

// scanChunk collects one leaf's worth of entries (hopping empty coverage
// with left-to-right latch coupling) and delivers them outside latches.
func (t *Tree) scanChunk(cursor *uint64, to uint64, mode TraverseMode, fn func(KV) bool) (bool, error) {
	rc, err := t.newReadCtx(mode)
	if err != nil {
		return false, err
	}
	leaf, err := rc.descendToLeaf(*cursor)
	if err != nil {
		return false, err
	}
	var batch []KV
	exhausted := false
	for {
		idx, _ := leaf.search(*cursor)
		for ; idx < leaf.nkeys(); idx++ {
			k := leaf.slotKey(idx)
			if k >= to {
				break
			}
			v := leaf.value(idx)
			c := make([]byte, len(v))
			copy(c, v)
			batch = append(batch, KV{Key: k, Value: c})
		}
		next := leaf.nextLeaf()
		if idx < leaf.nkeys() || next == 0 {
			exhausted = true
		}
		if len(batch) > 0 || exhausted {
			rc.release(leaf)
			break
		}
		// This leaf's coverage had nothing at or past the cursor; hop to
		// the right sibling while still holding this leaf (left-to-right
		// coupling keeps the chain walk safe against concurrent merges).
		nl, err := rc.acquire(next)
		if err != nil {
			rc.release(leaf)
			return false, err
		}
		rc.release(leaf)
		leaf = nl
	}

	for _, kv := range batch {
		if !fn(kv) {
			return true, nil
		}
		*cursor = kv.Key + 1
	}
	if exhausted {
		return true, nil
	}
	// More chunks remain; the caller re-descends from the updated cursor.
	return false, nil
}

// ---------------------------------------------------------------------------
// Writes

// PatchInPlace applies a size-preserving in-place edit to key's value:
// fn receives the current value bytes (aliasing the page, write-latched)
// and returns an (offset, data) patch within the value to apply and log,
// or ok=false to leave the value untouched. Used by the asynchronous
// commit-timestamp backfill (§3.3), which overwrites just the cts_commit
// field of records.
func (t *Tree) PatchInPlace(m Mtr, key uint64, fn func(val []byte) (off int, data []byte, ok bool)) error {
	if t.store.ReadOnly() {
		return ErrReadOnly
	}
	cur, err := t.fetch(rootPageNo)
	if err != nil {
		return err
	}
	cur.f.Latch.RLock()
	for !cur.isLeaf() {
		child, err := t.fetch(cur.descendChild(key))
		if err != nil {
			cur.f.Latch.RUnlock()
			t.store.Unpin(cur.f)
			return err
		}
		child.f.Latch.RLock()
		cur.f.Latch.RUnlock()
		t.store.Unpin(cur.f)
		cur = child
	}
	no := cur.pageNo()
	cur.f.Latch.RUnlock()
	t.store.Unpin(cur.f)

	leaf, err := t.fetch(no)
	if err != nil {
		return err
	}
	leaf.f.Latch.Lock()
	defer func() {
		leaf.f.Latch.Unlock()
		t.store.Unpin(leaf.f)
	}()
	if !leaf.isLeaf() || !t.leafCovers(leaf, key) {
		// The leaf moved under us (SMO between unlatch and relatch); a
		// coupled pessimistic descent is overkill for a patch — retry.
		return t.PatchInPlace(m, key, fn)
	}
	idx, found := leaf.search(key)
	if !found {
		return ErrKeyNotFound
	}
	v := leaf.value(idx)
	off, data, ok := fn(v)
	if !ok {
		return nil
	}
	if off < 0 || off+len(data) > len(v) {
		return fmt.Errorf("btree: patch [%d,%d) outside value of %d bytes", off, off+len(data), len(v))
	}
	copy(v[off:], data)
	cellOff, _ := leaf.slotCell(idx)
	leaf.touch(cellOff+off, cellOff+off+len(data))
	leaf.flush(m)
	return nil
}

// Insert adds key -> val; ErrKeyExists if present.
func (t *Tree) Insert(m Mtr, key uint64, val []byte) error {
	return t.write(m, key, val, opInsert)
}

// Put adds or replaces key -> val.
func (t *Tree) Put(m Mtr, key uint64, val []byte) error {
	return t.write(m, key, val, opPut)
}

// Delete removes key; ErrKeyNotFound if absent.
func (t *Tree) Delete(m Mtr, key uint64) error {
	return t.write(m, key, nil, opDelete)
}

type writeOp int

const (
	opInsert writeOp = iota
	opPut
	opDelete
)

func (t *Tree) write(m Mtr, key uint64, val []byte, op writeOp) error {
	if t.store.ReadOnly() {
		return ErrReadOnly
	}
	if len(val) > MaxValueSize {
		return ErrValueTooBig
	}
	// Optimistic attempt: read-couple to the leaf, write-latch it, and
	// apply if no SMO is needed. Only local latches are taken (§3.2).
	done, err := t.writeOptimistic(m, key, val, op)
	if done || err != nil {
		return err
	}
	// Pessimistic: write-latch + X-PL the unsafe path from the root.
	return t.writePessimistic(m, key, val, op)
}

// writeOptimistic returns done=false when an SMO is (possibly) required.
func (t *Tree) writeOptimistic(m Mtr, key uint64, val []byte, op writeOp) (bool, error) {
	cur, err := t.fetch(rootPageNo)
	if err != nil {
		return true, err
	}
	cur.f.Latch.RLock()
	for !cur.isLeaf() {
		childNo := cur.descendChild(key)
		child, err := t.fetch(childNo)
		if err != nil {
			cur.f.Latch.RUnlock()
			t.store.Unpin(cur.f)
			return true, err
		}
		child.f.Latch.RLock()
		cur.f.Latch.RUnlock()
		t.store.Unpin(cur.f)
		cur = child
	}
	// Re-latch the leaf exclusively (revalidating it still covers key is
	// unnecessary: we held its R latch until here only in coupling steps;
	// between RUnlock and Lock the leaf may split, so verify).
	no := cur.pageNo()
	cur.f.Latch.RUnlock()
	t.store.Unpin(cur.f)

	leaf, err := t.fetch(no)
	if err != nil {
		return true, err
	}
	leaf.f.Latch.Lock()
	defer func() {
		leaf.f.Latch.Unlock()
		t.store.Unpin(leaf.f)
	}()
	// The page may have changed roles or coverage since we released the R
	// latch; bail to the pessimistic path if anything looks off.
	if !leaf.isLeaf() || !t.leafCovers(leaf, key) {
		return false, nil
	}
	idx, found := leaf.search(key)
	switch op {
	case opInsert:
		if found {
			return true, ErrKeyExists
		}
		if !leaf.fits(len(val)) {
			return false, nil // needs split
		}
		leaf.insertAt(idx, key, val)
	case opPut:
		if found {
			if !leaf.replaceValue(idx, val) {
				return false, nil
			}
		} else {
			if !leaf.fits(len(val)) {
				return false, nil
			}
			leaf.insertAt(idx, key, val)
		}
	case opDelete:
		if !found {
			return true, ErrKeyNotFound
		}
		if leaf.nkeys() == 1 && leaf.pageNo() != rootPageNo {
			return false, nil // would empty the leaf: needs merge
		}
		leaf.removeAt(idx)
	}
	leaf.flush(m)
	return true, nil
}

// leafCovers reports whether key belongs on this leaf: within (prev-most
// key bound unknown locally, so approximate with key range + sibling
// pointers). A precise check needs the parent; instead accept when the
// key fits the leaf's key span or the leaf chain boundary allows it.
func (t *Tree) leafCovers(leaf *node, key uint64) bool {
	nk := leaf.nkeys()
	if nk == 0 {
		// Cannot tell locally; only the root-as-leaf is trivially right.
		return leaf.pageNo() == rootPageNo
	}
	if key < leaf.slotKey(0) && leaf.prevLeaf() != 0 {
		return false
	}
	if key > leaf.slotKey(nk-1) && leaf.nextLeaf() != 0 {
		// key may belong to a right sibling; conservative re-descend.
		return false
	}
	return true
}

// latched tracks the pessimistic path: write-latched, X-PL'd nodes from
// the shallowest retained ancestor down to the leaf.
type latched struct {
	t     *Tree
	m     Mtr
	nodes []*node
}

func (l *latched) push(n *node) { l.nodes = append(l.nodes, n) }

// releaseAncestors drops everything except the deepest node.
func (l *latched) releaseAncestors() {
	for _, n := range l.nodes[:len(l.nodes)-1] {
		l.t.releaseX(l.m, n)
	}
	l.nodes = l.nodes[len(l.nodes)-1:]
}

func (l *latched) releaseAll() {
	for _, n := range l.nodes {
		l.t.releaseX(l.m, n)
	}
	l.nodes = nil
}

func (t *Tree) acquireX(no types.PageNo) (*node, error) {
	n, err := t.fetch(no)
	if err != nil {
		return nil, err
	}
	if err := t.store.PLLockX(n.f); err != nil {
		t.store.Unpin(n.f)
		return nil, err
	}
	n.f.Latch.Lock()
	return n, nil
}

// releaseX drops the local latch immediately but defers the global X
// latch release to MTR commit (post-invalidation).
func (t *Tree) releaseX(m Mtr, n *node) {
	n.f.Latch.Unlock()
	m.DeferPLUnlockX(n.f)
	t.store.Unpin(n.f)
}

// writePessimistic restarts the operation from the root with write
// latches and X-PL global latches. Full nodes are split preemptively on
// the way down (so the parent of every split always has room and SMOs
// never propagate upward); for deletes, the ancestor chain is retained
// while the child could underflow, so the empty-leaf merge finds its
// parent latched. This is the paper's "pessimistic traversal placing X
// latches as well as X-PL locks on all nodes possibly involved in the
// SMO" (§3.2).
func (t *Tree) writePessimistic(m Mtr, key uint64, val []byte, op writeOp) error {
	for {
		err := t.writePessimisticOnce(m, key, val, op)
		if err != errRetrySMO {
			return err
		}
	}
}

func (t *Tree) writePessimisticOnce(m Mtr, key uint64, val []byte, op writeOp) error {
	var stamp uint64
	getStamp := func() uint64 {
		if stamp == 0 {
			stamp = t.store.SMOStamp()
		}
		return stamp
	}
	inserting := op == opInsert || op == opPut

	retained := &latched{t: t, m: m}
	defer retained.releaseAll()
	cur, err := t.acquireX(rootPageNo)
	if err != nil {
		return err
	}
	retained.push(cur)
	if inserting && !t.canAbsorb(cur, val) {
		target, err := t.splitRoot(m, cur, key, getStamp())
		if err != nil {
			return err
		}
		retained.push(target)
		retained.releaseAncestors() // root is safe now
		cur = target
	}
	for !cur.isLeaf() {
		child, err := t.acquireX(cur.descendChild(key))
		if err != nil {
			return err
		}
		if inserting && !t.canAbsorb(child, val) {
			child, err = t.splitChild(m, cur, child, key, getStamp())
			if err != nil {
				return err
			}
		}
		retained.push(child)
		if t.safeFor(child, op, len(val)) {
			retained.releaseAncestors()
		}
		cur = child
	}

	leaf := cur
	idx, found := leaf.search(key)
	switch op {
	case opInsert, opPut:
		if found {
			if op == opInsert {
				return ErrKeyExists
			}
			if leaf.replaceValue(idx, val) {
				leaf.flush(m)
				return nil
			}
			// Preemptive splitting guaranteed room for delete+reinsert.
			leaf.removeAt(idx)
			idx, _ = leaf.search(key)
		}
		leaf.insertAt(idx, key, val)
		leaf.flush(m)
		return nil
	case opDelete:
		if !found {
			return ErrKeyNotFound
		}
		if leaf.nkeys() == 1 && leaf.pageNo() != rootPageNo {
			// The delete empties the leaf: acquire everything the merge
			// needs before the first mutation (so a latch-order retry
			// leaves no unlogged changes behind), then remove + unlink.
			return t.removeEmptyLeaf(m, retained, idx, getStamp())
		}
		leaf.removeAt(idx)
		leaf.flush(m)
		return nil
	}
	return nil
}

// safeFor reports whether a node cannot participate in an SMO for the op
// (used to decide which ancestors stay latched during the descent).
func (t *Tree) safeFor(n *node, op writeOp, valLen int) bool {
	switch op {
	case opInsert, opPut:
		if n.isLeaf() {
			return n.fits(valLen)
		}
		return n.fits(4)
	case opDelete:
		return n.nkeys() > 1
	}
	return false
}
