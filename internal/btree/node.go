package btree

import (
	"encoding/binary"
	"fmt"
	"sort"

	"polardb/internal/cache"
	"polardb/internal/types"
)

// On-page layout. Every page reserves a common header; bytes [0,8) hold
// the page LSN maintained by the engine outside redo logging, so tree code
// never touches them.
const (
	offPageLSN   = 0  // 8B, engine-maintained, never logged
	offAllocNext = 8  // 4B, page 0 only: next page number to allocate
	offFreeHead  = 12 // 4B, page 0 only: head of the free-page list
	offNodeType  = 16 // 1B: pageFree / pageLeaf / pageInternal
	offLevel     = 17 // 1B: 0 = leaf
	offNKeys     = 18 // 2B
	offNextLeaf  = 20 // 4B leaf chain (also next-free link on free pages)
	offPrevLeaf  = 24 // 4B
	offSMOStamp  = 28 // 8B: SMO clock value of the last SMO touching this page
	offLeftmost  = 36 // 4B internal only: child for keys below all separators
	offDataStart = 40 // 2B: low end of the cell data region
	offSlots     = 42 // slot array start
	slotSize     = 12 // key (8B) + cell offset (2B) + cell length (2B)
)

// Page types.
const (
	pageFree     = 0
	pageLeaf     = 1
	pageInternal = 2
)

// node wraps a latched frame with layout accessors and a dirty-range
// tracker: mutations touch f.Data directly and are flushed as one redo
// record per page per operation.
type node struct {
	f       *cache.Frame
	dirtyLo int
	dirtyHi int
}

func wrap(f *cache.Frame) *node { return &node{f: f, dirtyLo: -1} }

func (n *node) data() []byte         { return n.f.Data }
func (n *node) id() types.PageID     { return n.f.ID }
func (n *node) pageNo() types.PageNo { return n.f.ID.No }

func (n *node) touch(lo, hi int) {
	if n.dirtyLo == -1 || lo < n.dirtyLo {
		n.dirtyLo = lo
	}
	if hi > n.dirtyHi {
		n.dirtyHi = hi
	}
}

// flush emits the accumulated dirty range as a single logged write.
func (n *node) flush(m Mtr) {
	if n.dirtyLo == -1 {
		return
	}
	m.LogWrite(n.f, n.dirtyLo, n.f.Data[n.dirtyLo:n.dirtyHi])
	n.dirtyLo, n.dirtyHi = -1, 0
}

func (n *node) u8(off int) uint8 { return n.f.Data[off] }
func (n *node) setU8(off int, v uint8) {
	n.f.Data[off] = v
	n.touch(off, off+1)
}

func (n *node) u16(off int) uint16 { return binary.LittleEndian.Uint16(n.f.Data[off:]) }
func (n *node) setU16(off int, v uint16) {
	binary.LittleEndian.PutUint16(n.f.Data[off:], v)
	n.touch(off, off+2)
}

func (n *node) u32(off int) uint32 { return binary.LittleEndian.Uint32(n.f.Data[off:]) }
func (n *node) setU32(off int, v uint32) {
	binary.LittleEndian.PutUint32(n.f.Data[off:], v)
	n.touch(off, off+4)
}

func (n *node) u64(off int) uint64 { return binary.LittleEndian.Uint64(n.f.Data[off:]) }
func (n *node) setU64(off int, v uint64) {
	binary.LittleEndian.PutUint64(n.f.Data[off:], v)
	n.touch(off, off+8)
}

func (n *node) nodeType() uint8            { return n.u8(offNodeType) }
func (n *node) isLeaf() bool               { return n.nodeType() == pageLeaf }
func (n *node) level() uint8               { return n.u8(offLevel) }
func (n *node) nkeys() int                 { return int(n.u16(offNKeys)) }
func (n *node) setNKeys(v int)             { n.setU16(offNKeys, uint16(v)) }
func (n *node) nextLeaf() types.PageNo     { return types.PageNo(n.u32(offNextLeaf)) }
func (n *node) setNextLeaf(p types.PageNo) { n.setU32(offNextLeaf, uint32(p)) }
func (n *node) prevLeaf() types.PageNo     { return types.PageNo(n.u32(offPrevLeaf)) }
func (n *node) setPrevLeaf(p types.PageNo) { n.setU32(offPrevLeaf, uint32(p)) }
func (n *node) smoStamp() uint64           { return n.u64(offSMOStamp) }
func (n *node) setSMOStamp(v uint64)       { n.setU64(offSMOStamp, v) }
func (n *node) leftmost() types.PageNo     { return types.PageNo(n.u32(offLeftmost)) }
func (n *node) setLeftmost(p types.PageNo) { n.setU32(offLeftmost, uint32(p)) }
func (n *node) dataStart() int             { return int(n.u16(offDataStart)) }
func (n *node) setDataStart(v int)         { n.setU16(offDataStart, uint16(v)) }

// init formats the page as an empty node of the given type/level.
func (n *node) init(typ, level uint8) {
	n.setU8(offNodeType, typ)
	n.setU8(offLevel, level)
	n.setNKeys(0)
	n.setNextLeaf(0)
	n.setPrevLeaf(0)
	n.setSMOStamp(0)
	n.setLeftmost(0)
	n.setDataStart(types.PageSize)
}

func slotOff(i int) int { return offSlots + i*slotSize }

func (n *node) slotKey(i int) uint64 { return n.u64(slotOff(i)) }
func (n *node) slotCell(i int) (off, length int) {
	return int(n.u16(slotOff(i) + 8)), int(n.u16(slotOff(i) + 10))
}

// value returns the i-th cell's bytes (aliasing the page; callers copy).
func (n *node) value(i int) []byte {
	off, length := n.slotCell(i)
	return n.f.Data[off : off+length]
}

// child returns the i-th separator's child page (internal nodes).
func (n *node) child(i int) types.PageNo {
	return types.PageNo(binary.LittleEndian.Uint32(n.value(i)))
}

// search finds the first slot with key >= k; found reports an exact match.
func (n *node) search(k uint64) (idx int, found bool) {
	nk := n.nkeys()
	idx = sort.Search(nk, func(i int) bool { return n.slotKey(i) >= k })
	found = idx < nk && n.slotKey(idx) == k
	return idx, found
}

// descendChild picks the child page covering key k in an internal node.
func (n *node) descendChild(k uint64) types.PageNo {
	// Children: leftmost covers k < key[0]; child(i) covers key[i] <= k < key[i+1].
	idx := sort.Search(n.nkeys(), func(i int) bool { return n.slotKey(i) > k })
	if idx == 0 {
		return n.leftmost()
	}
	return n.child(idx - 1)
}

// freeSpace returns contiguous free bytes between slots and cell data.
func (n *node) freeSpace() int {
	return n.dataStart() - slotOff(n.nkeys())
}

// totalFree returns freeSpace plus fragmentation reclaimable by compaction.
func (n *node) totalFree() int {
	used := 0
	for i := 0; i < n.nkeys(); i++ {
		_, l := n.slotCell(i)
		used += l
	}
	return (types.PageSize - n.dataStart() - used) + n.freeSpace()
}

// fits reports whether an entry of valueLen can be inserted, possibly
// after compaction.
func (n *node) fits(valueLen int) bool {
	return n.totalFree() >= slotSize+valueLen
}

// fitsNow reports whether an entry fits without compaction.
func (n *node) fitsNow(valueLen int) bool {
	return n.freeSpace() >= slotSize+valueLen
}

// compact rewrites the cell region contiguously, reclaiming fragmentation.
func (n *node) compact() {
	nk := n.nkeys()
	type ent struct {
		key uint64
		val []byte
	}
	ents := make([]ent, nk)
	for i := 0; i < nk; i++ {
		v := n.value(i)
		c := make([]byte, len(v))
		copy(c, v)
		ents[i] = ent{n.slotKey(i), c}
	}
	n.setDataStart(types.PageSize)
	for i, e := range ents {
		off := n.dataStart() - len(e.val)
		copy(n.f.Data[off:], e.val)
		n.setDataStart(off)
		so := slotOff(i)
		binary.LittleEndian.PutUint64(n.f.Data[so:], e.key)
		binary.LittleEndian.PutUint16(n.f.Data[so+8:], uint16(off))
		binary.LittleEndian.PutUint16(n.f.Data[so+10:], uint16(len(e.val)))
	}
	// The whole slot+cell region changed.
	n.touch(offDataStart, types.PageSize)
}

// insertAt inserts (key, val) at slot idx, shifting later slots right.
// Caller must have verified fits().
func (n *node) insertAt(idx int, key uint64, val []byte) {
	if !n.fitsNow(len(val)) {
		n.compact()
	}
	nk := n.nkeys()
	// Shift slots [idx, nk) right by one.
	src := slotOff(idx)
	end := slotOff(nk)
	copy(n.f.Data[src+slotSize:end+slotSize], n.f.Data[src:end])
	// Write the cell.
	off := n.dataStart() - len(val)
	copy(n.f.Data[off:], val)
	n.setDataStart(off)
	// Write the slot.
	binary.LittleEndian.PutUint64(n.f.Data[src:], key)
	binary.LittleEndian.PutUint16(n.f.Data[src+8:], uint16(off))
	binary.LittleEndian.PutUint16(n.f.Data[src+10:], uint16(len(val)))
	n.setNKeys(nk + 1)
	n.touch(src, end+slotSize)
	n.touch(off, off+len(val))
}

// removeAt deletes slot idx (cell space is reclaimed lazily by compact).
func (n *node) removeAt(idx int) {
	nk := n.nkeys()
	src := slotOff(idx + 1)
	end := slotOff(nk)
	copy(n.f.Data[slotOff(idx):], n.f.Data[src:end])
	n.setNKeys(nk - 1)
	n.touch(slotOff(idx), end)
}

// replaceValue swaps slot idx's value; returns false if it cannot fit.
func (n *node) replaceValue(idx int, val []byte) bool {
	off, length := n.slotCell(idx)
	if len(val) <= length {
		copy(n.f.Data[off:], val)
		so := slotOff(idx)
		binary.LittleEndian.PutUint16(n.f.Data[so+10:], uint16(len(val)))
		n.touch(so+10, so+12)
		n.touch(off, off+len(val))
		return true
	}
	key := n.slotKey(idx)
	if n.totalFree()+length < len(val) {
		return false
	}
	n.removeAt(idx)
	if !n.fitsNow(len(val)) {
		n.compact()
	}
	n.insertAt(idx, key, val)
	return true
}

// insertChild inserts a separator (key -> child) into an internal node.
func (n *node) insertChild(key uint64, childPage types.PageNo) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(childPage))
	idx, found := n.search(key)
	if found {
		panic(fmt.Sprintf("btree: duplicate separator %d in page %s", key, n.id()))
	}
	n.insertAt(idx, key, buf[:4])
}

// sanityCheck validates structural invariants, used by tests and the
// optimistic read path's defensive checks.
func (n *node) sanityCheck() error {
	if t := n.nodeType(); t != pageLeaf && t != pageInternal {
		return fmt.Errorf("btree: page %s has invalid type %d", n.id(), t)
	}
	nk := n.nkeys()
	if slotOff(nk) > types.PageSize || nk < 0 {
		return fmt.Errorf("btree: page %s has invalid nkeys %d", n.id(), nk)
	}
	for i := 0; i+1 < nk; i++ {
		if n.slotKey(i) >= n.slotKey(i+1) {
			return fmt.Errorf("btree: page %s keys out of order at %d", n.id(), i)
		}
	}
	for i := 0; i < nk; i++ {
		off, l := n.slotCell(i)
		if off < offSlots || off+l > types.PageSize {
			return fmt.Errorf("btree: page %s cell %d out of bounds", n.id(), i)
		}
	}
	return nil
}
