package btree

import (
	"errors"
	"fmt"

	"polardb/internal/types"
)

// errRetrySMO makes the whole write operation restart (used when a sibling
// latch cannot be taken in order; rare).
var errRetrySMO = errors.New("btree: smo retry")

// canAbsorb reports whether the node surely accommodates the pending
// insertion (leaf: the value; internal: one more separator) without a
// split. Used for preemptive top-down splitting: splitting full nodes on
// the way down guarantees every split's parent has room, so an SMO never
// has to propagate upward.
func (t *Tree) canAbsorb(n *node, val []byte) bool {
	if n.isLeaf() {
		return n.fits(len(val))
	}
	return n.fits(4)
}

// moveUpperHalf splits src's upper half into dst (freshly initialized) and
// returns the separator key. For leaves the separator is dst's first key
// (kept in dst); for internal nodes the median separator is promoted: its
// child becomes dst's leftmost and the key moves to the parent.
func moveUpperHalf(src, dst *node) (sep uint64) {
	nk := src.nkeys()
	// Find the byte-balanced split point.
	total := 0
	sizes := make([]int, nk)
	for i := 0; i < nk; i++ {
		_, l := src.slotCell(i)
		sizes[i] = l + slotSize
		total += sizes[i]
	}
	acc, splitIdx := 0, 0
	for i := 0; i < nk; i++ {
		acc += sizes[i]
		if acc >= total/2 {
			splitIdx = i + 1
			break
		}
	}
	if splitIdx < 1 {
		splitIdx = 1
	}
	if splitIdx >= nk {
		splitIdx = nk - 1
	}

	if src.isLeaf() {
		dst.init(pageLeaf, 0)
		sep = src.slotKey(splitIdx)
		for i := splitIdx; i < nk; i++ {
			dst.insertAt(i-splitIdx, src.slotKey(i), src.value(i))
		}
		src.setNKeys(splitIdx)
		src.compact()
		return sep
	}
	dst.init(pageInternal, src.level())
	sep = src.slotKey(splitIdx)
	var sepChild [4]byte
	copy(sepChild[:], src.value(splitIdx))
	dst.setLeftmost(types.PageNo(uint32(sepChild[0]) | uint32(sepChild[1])<<8 | uint32(sepChild[2])<<16 | uint32(sepChild[3])<<24))
	for i := splitIdx + 1; i < nk; i++ {
		dst.insertAt(i-splitIdx-1, src.slotKey(i), src.value(i))
	}
	src.setNKeys(splitIdx)
	src.compact()
	return sep
}

// fixRightSiblingPrev points the right neighbour's prev pointer at the new
// leaf inserted before it. The neighbour is to the right, so latching it
// while holding the split pages respects lock order.
func (t *Tree) fixRightSiblingPrev(m Mtr, rightNo types.PageNo, newPrev types.PageNo, stamp uint64) error {
	if rightNo == 0 {
		return nil
	}
	sib, err := t.acquireX(rightNo)
	if err != nil {
		return err
	}
	sib.setPrevLeaf(newPrev)
	sib.setSMOStamp(stamp)
	sib.flush(m)
	t.releaseX(m, sib)
	return nil
}

// splitChild splits a full non-root child, inserting the separator into
// parent (which the preemptive descent guarantees has room). It returns
// the side covering key, latched and X-PL'd; the other side is released.
func (t *Tree) splitChild(m Mtr, parent, child *node, key uint64, stamp uint64) (*node, error) {
	right, err := t.allocXLatched(m)
	if err != nil {
		return nil, err
	}
	sep := moveUpperHalf(child, right)
	if child.isLeaf() {
		oldNext := child.nextLeaf()
		right.setNextLeaf(oldNext)
		right.setPrevLeaf(child.pageNo())
		child.setNextLeaf(right.pageNo())
		if err := t.fixRightSiblingPrev(m, oldNext, right.pageNo(), stamp); err != nil {
			t.releaseX(m, right)
			return nil, err
		}
	}
	parent.insertChild(sep, right.pageNo())
	parent.setSMOStamp(stamp)
	child.setSMOStamp(stamp)
	right.setSMOStamp(stamp)
	parent.flush(m)
	child.flush(m)
	right.flush(m)
	if key >= sep {
		t.releaseX(m, child)
		return right, nil
	}
	t.releaseX(m, right)
	return child, nil
}

// splitRoot splits a full root in place: the root page keeps its number
// (it may be pointed to by nothing but the tree itself, but a stable root
// avoids a superblock). Contents move into two fresh children and the
// root becomes a one-separator internal node. Returns the child covering
// key, latched and X-PL'd; the root stays latched by the caller.
func (t *Tree) splitRoot(m Mtr, root *node, key uint64, stamp uint64) (*node, error) {
	left, err := t.allocXLatched(m)
	if err != nil {
		return nil, err
	}
	right, err := t.allocXLatched(m)
	if err != nil {
		t.releaseX(m, left)
		return nil, err
	}
	// Copy the root's node content into left, then split.
	left.init(root.nodeType(), root.level())
	if !root.isLeaf() {
		left.setLeftmost(root.leftmost())
	}
	for i := 0; i < root.nkeys(); i++ {
		left.insertAt(i, root.slotKey(i), root.value(i))
	}
	sep := moveUpperHalf(left, right)
	if left.isLeaf() {
		left.setNextLeaf(right.pageNo())
		right.setPrevLeaf(left.pageNo())
	}
	root.init(pageInternal, root.level()+1)
	root.setLeftmost(left.pageNo())
	root.insertChild(sep, right.pageNo())
	root.setSMOStamp(stamp)
	left.setSMOStamp(stamp)
	right.setSMOStamp(stamp)
	root.flush(m)
	left.flush(m)
	right.flush(m)
	if key >= sep {
		t.releaseX(m, left)
		return right, nil
	}
	t.releaseX(m, right)
	return left, nil
}

// allocXLatched allocates a page and returns it write-latched and X-PL'd.
func (t *Tree) allocXLatched(m Mtr) (*node, error) {
	n, err := t.allocPage(m)
	if err != nil {
		return nil, err
	}
	if err := t.store.PLLockX(n.f); err != nil {
		t.store.Unpin(n.f)
		return nil, err
	}
	n.f.Latch.Lock()
	return n, nil
}

// removeEmptyLeaf removes a leaf that deleting slot idx empties: unlink
// it from the sibling chain, drop its separator from the parent, free the
// page, and collapse the root if it lost its last separator. The retained
// path holds [.., parent, leaf], all write-latched and X-PL'd. All latches
// are acquired before the first mutation, so an errRetrySMO retry never
// leaves unlogged changes behind.
func (t *Tree) removeEmptyLeaf(m Mtr, retained *latched, idx int, stamp uint64) error {
	nodes := retained.nodes
	if len(nodes) < 2 {
		return fmt.Errorf("btree: removeEmptyLeaf without retained parent")
	}
	leaf := nodes[len(nodes)-1]
	parent := nodes[len(nodes)-2]

	prevNo, nextNo := leaf.prevLeaf(), leaf.nextLeaf()
	// Left sibling: try-latch to respect left-to-right lock order held by
	// other operations; on contention the whole op retries.
	var prev *node
	if prevNo != 0 {
		p, err := t.fetch(prevNo)
		if err != nil {
			return err
		}
		if !p.f.Latch.TryLock() {
			t.store.Unpin(p.f)
			return errRetrySMO
		}
		if err := t.store.PLLockX(p.f); err != nil {
			p.f.Latch.Unlock()
			t.store.Unpin(p.f)
			return err
		}
		prev = p
	}
	var next *node
	if nextNo != 0 {
		n, err := t.acquireX(nextNo)
		if err != nil {
			if prev != nil {
				t.releaseX(m, prev)
			}
			return err
		}
		next = n
	}
	// Every latch is held; mutations start here.
	leaf.removeAt(idx)
	if prev != nil {
		prev.setNextLeaf(nextNo)
		prev.setSMOStamp(stamp)
		prev.flush(m)
	}
	if next != nil {
		next.setPrevLeaf(prevNo)
		next.setSMOStamp(stamp)
		next.flush(m)
	}

	// Drop the leaf from the parent.
	if parent.leftmost() == leaf.pageNo() {
		if parent.nkeys() == 0 {
			if prev != nil {
				t.releaseX(m, prev)
			}
			if next != nil {
				t.releaseX(m, next)
			}
			return fmt.Errorf("btree: parent %s has no replacement for leftmost", parent.id())
		}
		parent.setLeftmost(parent.child(0))
		parent.removeAt(0)
	} else {
		found := false
		for i := 0; i < parent.nkeys(); i++ {
			if parent.child(i) == leaf.pageNo() {
				parent.removeAt(i)
				found = true
				break
			}
		}
		if !found {
			if prev != nil {
				t.releaseX(m, prev)
			}
			if next != nil {
				t.releaseX(m, next)
			}
			return fmt.Errorf("btree: leaf %s not found in parent %s", leaf.id(), parent.id())
		}
	}
	parent.setSMOStamp(stamp)
	leaf.setSMOStamp(stamp)
	if err := t.freePage(m, leaf); err != nil {
		if prev != nil {
			t.releaseX(m, prev)
		}
		if next != nil {
			t.releaseX(m, next)
		}
		return err
	}
	parent.flush(m)
	if prev != nil {
		t.releaseX(m, prev)
	}
	if next != nil {
		t.releaseX(m, next)
	}

	// Root collapse: an internal root left with zero separators is merged
	// with its only child so the tree shrinks.
	if parent.pageNo() == rootPageNo && !parent.isLeaf() && parent.nkeys() == 0 {
		return t.collapseRoot(m, parent, stamp)
	}
	return nil
}

// collapseRoot copies the root's single child into the root page and
// frees the child. The child has no siblings (it is the only node of its
// level), so no chain fixups are needed.
func (t *Tree) collapseRoot(m Mtr, root *node, stamp uint64) error {
	child, err := t.acquireX(root.leftmost())
	if err != nil {
		return err
	}
	root.init(child.nodeType(), child.level())
	if !child.isLeaf() {
		root.setLeftmost(child.leftmost())
	}
	for i := 0; i < child.nkeys(); i++ {
		root.insertAt(i, child.slotKey(i), child.value(i))
	}
	root.setSMOStamp(stamp)
	root.flush(m)
	if err := t.freePage(m, child); err != nil {
		t.releaseX(m, child)
		return err
	}
	child.setSMOStamp(stamp)
	child.flush(m)
	t.releaseX(m, child)
	return nil
}
