// Package btree implements the disk-format B+tree index used by the
// storage engine: fixed uint64 keys, variable-length values, slotted 4 KB
// pages. Concurrency follows §3.2 of the paper:
//
//   - Local page latches (cache.Frame.Latch) synchronize threads within a
//     database node, with classic latch coupling / crabbing.
//   - Global page latches (PL) synchronize across nodes: SMOs X-latch every
//     page they may touch; read-only traversals either S-latch each page
//     (pessimistic) or validate SMO stamps against an SMO clock snapshot
//     and retry on conflict (optimistic locking, §4.1).
//
// The tree is storage-agnostic: all page access goes through the Store and
// Mtr interfaces, implemented by the PolarDB Serverless engine and by the
// baseline (shared-storage / monolithic) engines.
package btree

import (
	"errors"

	"polardb/internal/cache"
	"polardb/internal/types"
)

// Errors returned by tree operations.
var (
	ErrKeyExists   = errors.New("btree: key already exists")
	ErrKeyNotFound = errors.New("btree: key not found")
	ErrValueTooBig = errors.New("btree: value exceeds MaxValueSize")
	ErrReadOnly    = errors.New("btree: tree opened on a read-only node")
	ErrSMOConflict = errors.New("btree: optimistic traversal hit a concurrent SMO")
)

// MaxValueSize bounds values so a leaf always holds several entries.
const MaxValueSize = 1024

// Mtr is the mini-transaction context write operations log into. The
// implementation applies the write to the frame, records it as redo, and
// keeps the frame pinned until the MTR commits.
type Mtr interface {
	// LogWrite applies data at off within the frame and logs it. The frame
	// must be exclusively latched by the caller.
	LogWrite(f *cache.Frame, off int, data []byte)
	// DeferPLUnlockX schedules the page's global X latch to be released
	// when the MTR commits — after every modified page has been
	// invalidated — so no other node can observe a half-propagated SMO
	// (§3.2: PL latches are held until the SMO completes, and §3.1.4:
	// invalidation precedes the redo flush).
	DeferPLUnlockX(f *cache.Frame)
}

// Store is the page access layer beneath a tree.
type Store interface {
	// Fetch returns a pinned frame holding the page's current contents.
	Fetch(id types.PageID) (*cache.Frame, error)
	// Unpin releases a fetched frame.
	Unpin(f *cache.Frame)

	// PLLockX latches a page exclusively for an SMO; the release goes
	// through Mtr.DeferPLUnlockX and may remain sticky on the node.
	PLLockX(f *cache.Frame) error
	// PLLockS / PLUnlockS bracket a pessimistic read of a page.
	PLLockS(f *cache.Frame) error
	PLUnlockS(f *cache.Frame)

	// SMOStamp returns the value SMOs stamp onto the pages they modify.
	// It must be monotone and >= any previously returned SMOClock value
	// (the engine derives both from the redo LSN, which also survives
	// crashes — a property a plain in-memory counter would lack).
	SMOStamp() uint64
	// SMOClock returns the optimistic traversal snapshot: any SMO that
	// completes after this call stamps pages with a strictly greater value.
	SMOClock() (uint64, error)

	// ReadOnly reports whether this node may modify pages.
	ReadOnly() bool
}

// TraverseMode selects the concurrency protocol for reads.
type TraverseMode int

const (
	// Local uses only local latches — correct on the RW node, whose local
	// cache is coherent with its own writes.
	Local TraverseMode = iota
	// PessimisticS takes global S-latches (PL) page by page, lock-coupled,
	// so a concurrent SMO on the RW node can never be observed half-done.
	PessimisticS
	// Optimistic takes no global latches; it validates every visited
	// page's SMO stamp against an SMO clock snapshot and retries (then
	// falls back to PessimisticS) when a concurrent SMO is detected.
	Optimistic
)

func (m TraverseMode) String() string {
	switch m {
	case Local:
		return "local"
	case PessimisticS:
		return "plock"
	case Optimistic:
		return "olock"
	}
	return "?"
}
