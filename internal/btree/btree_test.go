package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"polardb/internal/cache"
	"polardb/internal/types"
)

// memStore is a single-node in-memory Store for unit-testing the tree in
// isolation from the engine: frames live in a map, PL latches count calls,
// LogWrite applies directly.
type memStore struct {
	mu       sync.Mutex
	frames   map[uint64]*cache.Frame
	smo      atomic.Uint64
	readOnly bool

	plX, plS atomic.Int64
}

func newMemStore() *memStore {
	return &memStore{frames: make(map[uint64]*cache.Frame)}
}

func (s *memStore) Fetch(id types.PageID) (*cache.Frame, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.frames[id.Key()]
	if !ok {
		f = &cache.Frame{ID: id, Data: make([]byte, types.PageSize)}
		s.frames[id.Key()] = f
	}
	f.Pin()
	return f, nil
}

func (s *memStore) Unpin(f *cache.Frame)         { f.Unpin() }
func (s *memStore) PLLockX(f *cache.Frame) error { s.plX.Add(1); return nil }
func (s *memStore) PLUnlockX(f *cache.Frame)     {}
func (s *memStore) PLLockS(f *cache.Frame) error { s.plS.Add(1); return nil }
func (s *memStore) PLUnlockS(f *cache.Frame)     {}
func (s *memStore) SMOStamp() uint64             { return s.smo.Add(1) }
func (s *memStore) SMOClock() (uint64, error)    { return s.smo.Load(), nil }
func (s *memStore) ReadOnly() bool               { return s.readOnly }

// memMtr applies writes directly (they already hit the frame).
type memMtr struct{ records int }

func (m *memMtr) LogWrite(f *cache.Frame, off int, data []byte) {
	copy(f.Data[off:], data)
	m.records++
}

func (m *memMtr) DeferPLUnlockX(f *cache.Frame) {}

func newTestTree(t *testing.T) (*Tree, *memStore) {
	t.Helper()
	s := newMemStore()
	tr, err := Create(s, &memMtr{}, 1)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	return tr, s
}

func val(k uint64) []byte { return []byte(fmt.Sprintf("value-%d", k)) }

func TestInsertGet(t *testing.T) {
	tr, _ := newTestTree(t)
	m := &memMtr{}
	for k := uint64(1); k <= 10; k++ {
		if err := tr.Insert(m, k, val(k)); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	for k := uint64(1); k <= 10; k++ {
		v, err := tr.Get(k, Local)
		if err != nil {
			t.Fatalf("get %d: %v", k, err)
		}
		if !bytes.Equal(v, val(k)) {
			t.Fatalf("get %d = %q", k, v)
		}
	}
	if _, err := tr.Get(999, Local); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("missing key err = %v", err)
	}
}

func TestInsertDuplicate(t *testing.T) {
	tr, _ := newTestTree(t)
	m := &memMtr{}
	if err := tr.Insert(m, 1, val(1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(m, 1, val(1)); !errors.Is(err, ErrKeyExists) {
		t.Fatalf("err = %v, want ErrKeyExists", err)
	}
}

func TestValueTooBig(t *testing.T) {
	tr, _ := newTestTree(t)
	if err := tr.Insert(&memMtr{}, 1, make([]byte, MaxValueSize+1)); !errors.Is(err, ErrValueTooBig) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadOnlyRejectsWrites(t *testing.T) {
	s := newMemStore()
	tr, err := Create(s, &memMtr{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.readOnly = true
	if err := tr.Insert(&memMtr{}, 1, val(1)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("err = %v", err)
	}
}

func TestSplitsManyKeys(t *testing.T) {
	tr, s := newTestTree(t)
	m := &memMtr{}
	const n = 5000
	for k := uint64(0); k < n; k++ {
		if err := tr.Insert(m, k, val(k)); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	for k := uint64(0); k < n; k++ {
		v, err := tr.Get(k, Local)
		if err != nil || !bytes.Equal(v, val(k)) {
			t.Fatalf("get %d: %q, %v", k, v, err)
		}
	}
	if s.smo.Load() == 0 {
		t.Fatal("no SMOs recorded for 5000 inserts")
	}
	checkTreeInvariants(t, tr)
}

func TestRandomOrderInserts(t *testing.T) {
	tr, _ := newTestTree(t)
	m := &memMtr{}
	rng := rand.New(rand.NewSource(7))
	keys := rng.Perm(3000)
	for _, k := range keys {
		if err := tr.Insert(m, uint64(k), val(uint64(k))); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	checkTreeInvariants(t, tr)
	count := 0
	prev := int64(-1)
	err := tr.Scan(0, ^uint64(0), Local, func(kv KV) bool {
		if int64(kv.Key) <= prev {
			t.Fatalf("scan out of order: %d after %d", kv.Key, prev)
		}
		prev = int64(kv.Key)
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 3000 {
		t.Fatalf("scan count = %d, want 3000", count)
	}
}

func TestPutReplace(t *testing.T) {
	tr, _ := newTestTree(t)
	m := &memMtr{}
	if err := tr.Put(m, 5, []byte("short")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put(m, 5, bytes.Repeat([]byte("L"), 900)); err != nil {
		t.Fatalf("grow: %v", err)
	}
	v, err := tr.Get(5, Local)
	if err != nil || len(v) != 900 {
		t.Fatalf("get after grow: len=%d err=%v", len(v), err)
	}
	if err := tr.Put(m, 5, []byte("tiny")); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	v, _ = tr.Get(5, Local)
	if string(v) != "tiny" {
		t.Fatalf("get after shrink: %q", v)
	}
}

func TestPutReplaceForcesSplit(t *testing.T) {
	tr, _ := newTestTree(t)
	m := &memMtr{}
	// Fill a leaf with medium values, then grow one so it cannot fit.
	for k := uint64(0); k < 8; k++ {
		if err := tr.Put(m, k, bytes.Repeat([]byte{byte(k)}, 400)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Put(m, 3, bytes.Repeat([]byte{0xEE}, 1000)); err != nil {
		t.Fatalf("grow into split: %v", err)
	}
	v, err := tr.Get(3, Local)
	if err != nil || len(v) != 1000 || v[0] != 0xEE {
		t.Fatalf("get: len=%d err=%v", len(v), err)
	}
	for k := uint64(0); k < 8; k++ {
		if _, err := tr.Get(k, Local); err != nil {
			t.Fatalf("get %d after split: %v", k, err)
		}
	}
	checkTreeInvariants(t, tr)
}

func TestDeleteBasic(t *testing.T) {
	tr, _ := newTestTree(t)
	m := &memMtr{}
	for k := uint64(0); k < 100; k++ {
		if err := tr.Insert(m, k, val(k)); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 100; k += 2 {
		if err := tr.Delete(m, k); err != nil {
			t.Fatalf("delete %d: %v", k, err)
		}
	}
	for k := uint64(0); k < 100; k++ {
		_, err := tr.Get(k, Local)
		if k%2 == 0 && !errors.Is(err, ErrKeyNotFound) {
			t.Fatalf("deleted key %d still present (err=%v)", k, err)
		}
		if k%2 == 1 && err != nil {
			t.Fatalf("kept key %d lost: %v", k, err)
		}
	}
	if err := tr.Delete(m, 0); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
	checkTreeInvariants(t, tr)
}

func TestDeleteAllCollapsesTree(t *testing.T) {
	tr, _ := newTestTree(t)
	m := &memMtr{}
	const n = 2000
	for k := uint64(0); k < n; k++ {
		if err := tr.Insert(m, k, val(k)); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < n; k++ {
		if err := tr.Delete(m, k); err != nil {
			t.Fatalf("delete %d: %v", k, err)
		}
	}
	checkTreeInvariants(t, tr)
	// Tree still usable after full drain.
	for k := uint64(0); k < 100; k++ {
		if err := tr.Insert(m, k, val(k)); err != nil {
			t.Fatalf("reinsert %d: %v", k, err)
		}
	}
	checkTreeInvariants(t, tr)
	count := 0
	_ = tr.Scan(0, ^uint64(0), Local, func(KV) bool { count++; return true })
	if count != 100 {
		t.Fatalf("count after drain+refill = %d", count)
	}
}

func TestScanRange(t *testing.T) {
	tr, _ := newTestTree(t)
	m := &memMtr{}
	for k := uint64(0); k < 1000; k += 2 {
		if err := tr.Insert(m, k, val(k)); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	err := tr.Scan(100, 200, Local, func(kv KV) bool {
		got = append(got, kv.Key)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 || got[0] != 100 || got[49] != 198 {
		t.Fatalf("scan [100,200): %d keys, first=%d last=%d", len(got), got[0], got[len(got)-1])
	}
	// Early stop.
	n := 0
	_ = tr.Scan(0, ^uint64(0), Local, func(KV) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("early stop delivered %d", n)
	}
}

func TestScanPessimisticTakesSLatches(t *testing.T) {
	tr, s := newTestTree(t)
	m := &memMtr{}
	for k := uint64(0); k < 500; k++ {
		if err := tr.Insert(m, k, val(k)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.plS.Load()
	count := 0
	if err := tr.Scan(0, ^uint64(0), PessimisticS, func(KV) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 500 {
		t.Fatalf("count = %d", count)
	}
	if s.plS.Load() == before {
		t.Fatal("pessimistic scan took no S latches")
	}
}

func TestOptimisticGetFallsBackOnPersistentConflict(t *testing.T) {
	tr, s := newTestTree(t)
	m := &memMtr{}
	if err := tr.Insert(m, 1, val(1)); err != nil {
		t.Fatal(err)
	}
	// Force a permanently-future SMO stamp on the root so optimistic
	// validation always fails and the read must fall back to PessimisticS.
	f, _ := s.Fetch(types.PageID{Space: 1, No: rootPageNo})
	n := wrap(f)
	n.setSMOStamp(^uint64(0))
	s.Unpin(f)
	v, err := tr.Get(1, Optimistic)
	if err != nil || !bytes.Equal(v, val(1)) {
		t.Fatalf("optimistic get with conflict: %q, %v", v, err)
	}
	if s.plS.Load() == 0 {
		t.Fatal("fallback to pessimistic S latches did not happen")
	}
}

func TestConcurrentWritersAndReaders(t *testing.T) {
	tr, _ := newTestTree(t)
	const writers, perWriter = 4, 400
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			m := &memMtr{}
			for i := uint64(0); i < perWriter; i++ {
				k := base*1_000_000 + i
				if err := tr.Insert(m, k, val(k)); err != nil {
					t.Errorf("insert %d: %v", k, err)
					return
				}
			}
		}(uint64(w))
	}
	// A reader scans continuously while writers run.
	stop := make(chan struct{})
	var scanWG sync.WaitGroup
	scanWG.Add(1)
	go func() {
		defer scanWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			prev := int64(-1)
			_ = tr.Scan(0, ^uint64(0), Local, func(kv KV) bool {
				if int64(kv.Key) <= prev {
					t.Errorf("concurrent scan out of order")
					return false
				}
				prev = int64(kv.Key)
				return true
			})
		}
	}()
	wg.Wait()
	close(stop)
	scanWG.Wait()
	count := 0
	_ = tr.Scan(0, ^uint64(0), Local, func(KV) bool { count++; return true })
	if count != writers*perWriter {
		t.Fatalf("final count = %d, want %d", count, writers*perWriter)
	}
	checkTreeInvariants(t, tr)
}

func TestConcurrentMixedOps(t *testing.T) {
	tr, _ := newTestTree(t)
	m := &memMtr{}
	for k := uint64(0); k < 1000; k++ {
		if err := tr.Insert(m, k, val(k)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			mtr := &memMtr{}
			for i := 0; i < 500; i++ {
				k := uint64(rng.Intn(2000))
				switch rng.Intn(3) {
				case 0:
					_ = tr.Put(mtr, k, val(k))
				case 1:
					err := tr.Delete(mtr, k)
					if err != nil && !errors.Is(err, ErrKeyNotFound) {
						t.Errorf("delete: %v", err)
						return
					}
				case 2:
					_, err := tr.Get(k, Local)
					if err != nil && !errors.Is(err, ErrKeyNotFound) {
						t.Errorf("get: %v", err)
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	checkTreeInvariants(t, tr)
}

// Property: the tree agrees with a map oracle under random op sequences.
func TestOracleProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint16
		Len  uint8
	}
	prop := func(ops []op) bool {
		s := newMemStore()
		tr, err := Create(s, &memMtr{}, 1)
		if err != nil {
			return false
		}
		oracle := map[uint64][]byte{}
		m := &memMtr{}
		for _, o := range ops {
			k := uint64(o.Key % 512)
			switch o.Kind % 3 {
			case 0: // put
				v := bytes.Repeat([]byte{byte(o.Len)}, int(o.Len)%64+1)
				if err := tr.Put(m, k, v); err != nil {
					return false
				}
				oracle[k] = v
			case 1: // delete
				err := tr.Delete(m, k)
				_, had := oracle[k]
				if had != (err == nil) {
					return false
				}
				delete(oracle, k)
			case 2: // get
				v, err := tr.Get(k, Local)
				want, had := oracle[k]
				if had != (err == nil) {
					return false
				}
				if had && !bytes.Equal(v, want) {
					return false
				}
			}
		}
		// Final scan must match the oracle exactly.
		got := map[uint64][]byte{}
		if err := tr.Scan(0, ^uint64(0), Local, func(kv KV) bool {
			got[kv.Key] = kv.Value
			return true
		}); err != nil {
			return false
		}
		if len(got) != len(oracle) {
			return false
		}
		for k, v := range oracle {
			if !bytes.Equal(got[k], v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// checkTreeInvariants walks the whole tree verifying structure: sorted
// keys, separator coverage, level consistency, and leaf-chain integrity.
func checkTreeInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	var walk func(no types.PageNo, lo, hi uint64, wantLevel int) (leftLeaf, rightLeaf types.PageNo)
	leafs := []types.PageNo{}
	walk = func(no types.PageNo, lo, hi uint64, wantLevel int) (types.PageNo, types.PageNo) {
		n, err := tr.fetch(no)
		if err != nil {
			t.Fatalf("fetch %d: %v", no, err)
		}
		defer tr.store.Unpin(n.f)
		if err := n.sanityCheck(); err != nil {
			t.Fatal(err)
		}
		if wantLevel >= 0 && int(n.level()) != wantLevel {
			t.Fatalf("page %d level = %d, want %d", no, n.level(), wantLevel)
		}
		for i := 0; i < n.nkeys(); i++ {
			k := n.slotKey(i)
			if k < lo || k >= hi {
				t.Fatalf("page %d key %d outside [%d,%d)", no, k, lo, hi)
			}
		}
		if n.isLeaf() {
			leafs = append(leafs, no)
			return no, no
		}
		childLo := lo
		first, last := types.PageNo(0), types.PageNo(0)
		for i := 0; i <= n.nkeys(); i++ {
			var childNo types.PageNo
			childHi := hi
			if i == 0 {
				childNo = n.leftmost()
			} else {
				childNo = n.child(i - 1)
				childLo = n.slotKey(i - 1)
			}
			if i < n.nkeys() {
				childHi = n.slotKey(i)
			}
			l, r := walk(childNo, childLo, childHi, int(n.level())-1)
			if i == 0 {
				first = l
			}
			last = r
		}
		return first, last
	}
	root, err := tr.fetch(rootPageNo)
	if err != nil {
		t.Fatal(err)
	}
	level := int(root.level())
	tr.store.Unpin(root.f)
	walk(rootPageNo, 0, ^uint64(0), level)
	// Leaf chain equals in-order leaf sequence.
	for i := 0; i+1 < len(leafs); i++ {
		n, _ := tr.fetch(leafs[i])
		next := n.nextLeaf()
		tr.store.Unpin(n.f)
		if next != leafs[i+1] {
			t.Fatalf("leaf chain broken at %d: next=%d want %d", leafs[i], next, leafs[i+1])
		}
		p, _ := tr.fetch(leafs[i+1])
		prev := p.prevLeaf()
		tr.store.Unpin(p.f)
		if prev != leafs[i] {
			t.Fatalf("leaf back-chain broken at %d", leafs[i+1])
		}
	}
}

func TestPatchInPlace(t *testing.T) {
	tr, _ := newTestTree(t)
	m := &memMtr{}
	if err := tr.Insert(m, 7, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	// Patch bytes [2,4) in place.
	err := tr.PatchInPlace(m, 7, func(val []byte) (int, []byte, bool) {
		if string(val) != "abcdef" {
			t.Fatalf("patch saw %q", val)
		}
		return 2, []byte("XY"), true
	})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := tr.Get(7, Local)
	if string(v) != "abXYef" {
		t.Fatalf("after patch: %q", v)
	}
	// ok=false leaves the value untouched.
	if err := tr.PatchInPlace(m, 7, func([]byte) (int, []byte, bool) { return 0, nil, false }); err != nil {
		t.Fatal(err)
	}
	v, _ = tr.Get(7, Local)
	if string(v) != "abXYef" {
		t.Fatalf("no-op patch changed value: %q", v)
	}
	// Out-of-range patch is rejected.
	if err := tr.PatchInPlace(m, 7, func(val []byte) (int, []byte, bool) {
		return len(val) - 1, []byte("TOOLONG"), true
	}); err == nil {
		t.Fatal("out-of-range patch accepted")
	}
	// Missing key.
	if err := tr.PatchInPlace(m, 999, func([]byte) (int, []byte, bool) { return 0, nil, true }); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestLeafCoverage(t *testing.T) {
	tr, _ := newTestTree(t)
	m := &memMtr{}
	for k := uint64(0); k < 2000; k++ {
		if err := tr.Insert(m, k, val(k)); err != nil {
			t.Fatal(err)
		}
	}
	// Coverage must be >= the probed key and keys within it must land on
	// the same leaf (checked via transitivity of coverage).
	last, ok, err := tr.LeafCoverage(100, Local)
	if err != nil || !ok {
		t.Fatalf("coverage: %v %v", ok, err)
	}
	if last < 100 {
		t.Fatalf("coverage %d < probe 100", last)
	}
	last2, ok, err := tr.LeafCoverage(last, Local)
	if err != nil || !ok || last2 != last {
		t.Fatalf("coverage of last key %d -> %d (%v %v)", last, last2, ok, err)
	}
	// Empty tree: coverage of the root leaf reports no keys.
	tr2, _ := newTestTree(t)
	if _, ok, err := tr2.LeafCoverage(5, Local); err != nil || ok {
		t.Fatalf("empty tree coverage ok=%v err=%v", ok, err)
	}
}
