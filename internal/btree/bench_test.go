package btree

import (
	"fmt"
	"math/rand"
	"testing"
)

// Micro-benchmarks for the index layer in isolation (memStore backend,
// no fabric costs): raw traversal and mutation throughput, plus the
// optimistic-vs-pessimistic read ablation at the tree level.

func benchTree(b *testing.B, n int) (*Tree, *memStore) {
	b.Helper()
	s := newMemStore()
	tr, err := Create(s, &memMtr{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	m := &memMtr{}
	for k := 0; k < n; k++ {
		if err := tr.Insert(m, uint64(k), []byte(fmt.Sprintf("value-%d", k))); err != nil {
			b.Fatal(err)
		}
	}
	return tr, s
}

func BenchmarkTreeGet(b *testing.B) {
	tr, _ := benchTree(b, 100_000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Get(uint64(rng.Intn(100_000)), Local); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeGetPessimistic(b *testing.B) {
	tr, _ := benchTree(b, 100_000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Get(uint64(rng.Intn(100_000)), PessimisticS); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeGetOptimistic(b *testing.B) {
	tr, _ := benchTree(b, 100_000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Get(uint64(rng.Intn(100_000)), Optimistic); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeInsertSequential(b *testing.B) {
	tr, _ := benchTree(b, 0)
	m := &memMtr{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(m, uint64(i), []byte("sequential-value")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeInsertRandom(b *testing.B) {
	tr, _ := benchTree(b, 0)
	m := &memMtr{}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Put(m, rng.Uint64(), []byte("random-value")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeScan100(b *testing.B) {
	tr, _ := benchTree(b, 100_000)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := uint64(rng.Intn(99_000))
		n := 0
		if err := tr.Scan(start, start+100, Local, func(KV) bool { n++; return true }); err != nil {
			b.Fatal(err)
		}
	}
}
