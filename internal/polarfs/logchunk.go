package polarfs

import (
	"sync"

	"polardb/internal/parallelraft"
	"polardb/internal/plog"
	"polardb/internal/rdma"
	"polardb/internal/types"
	"polardb/internal/wire"
)

// logChunkSM is the replicated state machine of a log chunk: the durable
// redo log, ordered by LSN. All appends conflict (FullRange), so raft
// applies them strictly in order on every replica.
type logChunkSM struct {
	mu      sync.RWMutex
	records []plog.Record // ascending LSN
	tail    types.LSN     // highest durable LSN
	head    types.LSN     // records below this have been truncated
}

const (
	logCmdAppend = iota + 1
	logCmdTruncate
)

func (sm *logChunkSM) Apply(index uint64, cmd []byte) {
	rd := wire.NewReader(cmd)
	switch rd.U8() {
	case logCmdAppend:
		recs, err := plog.UnmarshalRecords(rd.Bytes32())
		if err != nil {
			return // corrupt command: logged state unchanged
		}
		sm.mu.Lock()
		for _, r := range recs {
			// Idempotent: skip anything at or below the current tail
			// (client retries after leader changes may replay a batch).
			if r.LSN <= sm.tail {
				continue
			}
			sm.records = append(sm.records, r)
			sm.tail = r.LSN
		}
		sm.mu.Unlock()
	case logCmdTruncate:
		upTo := types.LSN(rd.U64())
		sm.mu.Lock()
		i := 0
		for i < len(sm.records) && sm.records[i].LSN <= upTo {
			i++
		}
		sm.records = sm.records[i:]
		if upTo > sm.head {
			sm.head = upTo
		}
		sm.mu.Unlock()
	}
}

// readFrom returns up to max records with LSN in (after, tail].
func (sm *logChunkSM) readFrom(after types.LSN, max int) []plog.Record {
	sm.mu.RLock()
	defer sm.mu.RUnlock()
	out := make([]plog.Record, 0, 64)
	for _, r := range sm.records {
		if r.LSN > after {
			out = append(out, r)
			if max > 0 && len(out) >= max {
				break
			}
		}
	}
	return out
}

func (sm *logChunkSM) tailLSN() types.LSN {
	sm.mu.RLock()
	defer sm.mu.RUnlock()
	return sm.tail
}

// logChunk is one replica of the volume's log chunk on a storage node.
type logChunk struct {
	sm      *logChunkSM
	replica *parallelraft.Replica
}

func newLogChunk(ep *rdma.Endpoint, cfg VolumeConfig, peers []rdma.NodeID) *logChunk {
	sm := &logChunkSM{}
	lc := &logChunk{
		sm:      sm,
		replica: parallelraft.NewReplica(ep, raftConfig(cfg.Raft, cfg.LogGroup(), peers), sm),
	}
	prefix := "pfs." + cfg.LogGroup() + "."
	ep.RegisterHandler(prefix+"append", lc.handleAppend)
	ep.RegisterHandler(prefix+"read", lc.handleRead)
	ep.RegisterHandler(prefix+"tail", lc.handleTail)
	ep.RegisterHandler(prefix+"truncate", lc.handleTruncate)
	return lc
}

func (lc *logChunk) close() { lc.replica.Close() }

// handleAppend durably appends a batch of redo records (raft-committed
// across the replica set) and returns the new tail LSN.
func (lc *logChunk) handleAppend(from rdma.NodeID, req []byte) ([]byte, error) {
	w := wire.NewWriter(len(req) + 8)
	w.U8(logCmdAppend)
	w.Bytes32(req)
	if _, err := lc.replica.Propose(w.Bytes(), parallelraft.FullRange); err != nil {
		return nil, err
	}
	resp := wire.NewWriter(8)
	resp.U64(uint64(lc.sm.tailLSN()))
	return resp.Bytes(), nil
}

// handleRead serves records with LSN in (after, tail]; max bounds the batch.
func (lc *logChunk) handleRead(from rdma.NodeID, req []byte) ([]byte, error) {
	if lc.replica.Role() != parallelraft.Leader {
		return nil, ErrNotLeader
	}
	rd := wire.NewReader(req)
	after := types.LSN(rd.U64())
	max := int(rd.U32())
	if err := rd.Err(); err != nil {
		return nil, err
	}
	recs := lc.sm.readFrom(after, max)
	return plog.MarshalRecords(recs), nil
}

func (lc *logChunk) handleTail(from rdma.NodeID, req []byte) ([]byte, error) {
	if lc.replica.Role() != parallelraft.Leader {
		return nil, ErrNotLeader
	}
	w := wire.NewWriter(8)
	w.U64(uint64(lc.sm.tailLSN()))
	return w.Bytes(), nil
}

func (lc *logChunk) handleTruncate(from rdma.NodeID, req []byte) ([]byte, error) {
	rd := wire.NewReader(req)
	upTo := rd.U64()
	if err := rd.Err(); err != nil {
		return nil, err
	}
	w := wire.NewWriter(16)
	w.U8(logCmdTruncate)
	w.U64(upTo)
	if _, err := lc.replica.Propose(w.Bytes(), parallelraft.FullRange); err != nil {
		return nil, err
	}
	return nil, nil
}
