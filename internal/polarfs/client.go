package polarfs

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"polardb/internal/parallelraft"
	"polardb/internal/plog"
	"polardb/internal/rdma"
	"polardb/internal/retry"
	"polardb/internal/stat"
	"polardb/internal/types"
	"polardb/internal/wire"
)

// Client is libpfs: the PolarFS access library linked into every database
// node. It locates chunk leaders, retries across leader changes, and
// exposes the volume operations the engine needs.
type Client struct {
	ep      *rdma.Endpoint
	cfg     VolumeConfig
	peers   []rdma.NodeID
	timeout time.Duration
	met     pfsMetrics

	mu      sync.Mutex
	leaders map[string]rdma.NodeID
}

// pfsMetrics count the volume operations a database node issues through
// libpfs, with latency on the two paths the paper measures: page reads
// (the bottom of the three-tier hierarchy) and redo appends (the commit
// durability wait).
type pfsMetrics struct {
	getPage     *stat.Counter
	getPageLat  *stat.Histogram
	appendRedo  *stat.Counter
	appendLat   *stat.Histogram
	readRedo    *stat.Counter
	shipRecords *stat.Counter // redo records distributed to page chunks
}

func newPFSMetrics(r *stat.Registry) pfsMetrics {
	return pfsMetrics{
		getPage:     r.Counter("pfs.get_page.ops"),
		getPageLat:  r.Histogram("pfs.get_page.us"),
		appendRedo:  r.Counter("pfs.append_redo.ops"),
		appendLat:   r.Histogram("pfs.append_redo.us"),
		readRedo:    r.Counter("pfs.read_redo.ops"),
		shipRecords: r.Counter("pfs.ship.records"),
	}
}

// NewClient creates a libpfs client for the deployed volume, issuing
// requests from ep.
func NewClient(ep *rdma.Endpoint, cfg VolumeConfig, peers []rdma.NodeID) *Client {
	cfg.applyDefaults()
	return &Client{
		ep:      ep,
		cfg:     cfg,
		peers:   peers,
		timeout: 5 * time.Second,
		met:     newPFSMetrics(ep.Metrics()),
		leaders: make(map[string]rdma.NodeID),
	}
}

// Config returns the volume configuration the client was built with.
func (c *Client) Config() VolumeConfig { return c.cfg }

// Partition returns the page-chunk partition owning the page.
func (c *Client) Partition(id types.PageID) int {
	return int(id.Key() % uint64(c.cfg.PageChunks))
}

// call issues an RPC to the chunk group's leader, re-locating on failure.
func (c *Client) call(group, op string, req []byte) ([]byte, error) {
	deadline := time.Now().Add(c.timeout)
	b := retry.Until(deadline, 2*time.Millisecond)
	method := "pfs." + group + "." + op
	var lastErr error
	for {
		if c.ep.Down() {
			// Our own node died: no amount of retrying reaches storage.
			return nil, fmt.Errorf("polarfs: %s on %s: %w", op, group, rdma.ErrUnreachable)
		}
		c.mu.Lock()
		leader, ok := c.leaders[group]
		c.mu.Unlock()
		if !ok {
			l, err := parallelraft.LocateLeader(c.ep, group, c.peers, time.Until(deadline))
			if err != nil {
				return nil, fmt.Errorf("polarfs: locating leader of %s: %w (last: %v)", group, err, lastErr)
			}
			leader = l
			c.mu.Lock()
			c.leaders[group] = leader
			c.mu.Unlock()
		}
		resp, err := c.ep.Call(leader, method, req)
		if err == nil {
			return resp, nil
		}
		if errors.Is(err, ErrPageTooOld) || errors.Is(err, ErrStaleLSN) {
			return nil, err
		}
		lastErr = err
		c.mu.Lock()
		delete(c.leaders, group)
		c.mu.Unlock()
		if !b.Sleep() {
			return nil, fmt.Errorf("polarfs: %s on %s: %w", op, group, err)
		}
	}
}

// AppendRedo durably appends redo records to the log chunk (3-way
// replicated). The transaction whose MTRs these records belong to may
// commit once this returns. Returns the chunk's new tail LSN.
func (c *Client) AppendRedo(recs []plog.Record) (types.LSN, error) {
	c.met.appendRedo.Inc()
	start := time.Now()
	resp, err := c.call(c.cfg.LogGroup(), "append", plog.MarshalRecords(recs))
	if err != nil {
		return 0, err
	}
	c.met.appendLat.Observe(time.Since(start))
	rd := wire.NewReader(resp)
	tail := types.LSN(rd.U64())
	return tail, rd.Err()
}

// ReadRedo returns up to max redo records with LSN > after (0 = no limit).
func (c *Client) ReadRedo(after types.LSN, max int) ([]plog.Record, error) {
	c.met.readRedo.Inc()
	w := wire.NewWriter(16)
	w.U64(uint64(after))
	w.U32(uint32(max))
	resp, err := c.call(c.cfg.LogGroup(), "read", w.Bytes())
	if err != nil {
		return nil, err
	}
	return plog.UnmarshalRecords(resp)
}

// RedoTail returns the durable tail LSN of the redo log.
func (c *Client) RedoTail() (types.LSN, error) {
	resp, err := c.call(c.cfg.LogGroup(), "tail", nil)
	if err != nil {
		return 0, err
	}
	rd := wire.NewReader(resp)
	tail := types.LSN(rd.U64())
	return tail, rd.Err()
}

// TruncateRedo garbage-collects redo records with LSN <= upTo. Safe once
// every page chunk's coverage has passed upTo.
func (c *Client) TruncateRedo(upTo types.LSN) error {
	w := wire.NewWriter(8)
	w.U64(uint64(upTo))
	_, err := c.call(c.cfg.LogGroup(), "truncate", w.Bytes())
	return err
}

// ShipRecords distributes redo records to the page chunks owning their
// pages (step 2 of Figure 7), advancing the touched partitions' coverage
// to coverage ("all redo <= coverage affecting you is included"). It
// returns once every touched partition has durably acknowledged.
// Untouched partitions' coverage is advanced lazily by AdvanceCoverage.
func (c *Client) ShipRecords(recs []plog.Record, coverage types.LSN) error {
	c.met.shipRecords.Add(uint64(len(recs)))
	byPart := make(map[int][]plog.Record)
	for _, r := range recs {
		p := c.Partition(r.Page)
		byPart[p] = append(byPart[p], r)
	}
	for p, batch := range byPart {
		//polarvet:allow fabriccost already batched per destination: one AddRecords RPC carries a partition's whole record batch
		if err := c.AddRecords(p, batch, coverage); err != nil {
			return err
		}
	}
	return nil
}

// AdvanceCoverage raises every partition's coverage to at least lsn (the
// shipper has distributed all records <= lsn). Used by checkpointing and
// the final stage of parallel REDO.
func (c *Client) AdvanceCoverage(lsn types.LSN) error {
	for p := 0; p < c.cfg.PageChunks; p++ {
		if err := c.AddRecords(p, nil, lsn); err != nil {
			return err
		}
	}
	return nil
}

// AddRecords sends a batch of redo records to one page-chunk partition.
// recs may be empty to advance coverage only.
func (c *Client) AddRecords(part int, recs []plog.Record, coverage types.LSN) error {
	w := wire.NewWriter(64 + 32*len(recs))
	w.U64(uint64(coverage))
	w.Bytes32(plog.MarshalRecords(recs))
	_, err := c.call(c.cfg.PageGroup(part), "add", w.Bytes())
	return err
}

// GetPage fetches the page's contents as of atLSN (MaxLSN = latest known to
// the chunk). exists is false if the chunk has never seen the page.
func (c *Client) GetPage(id types.PageID, atLSN types.LSN) (data []byte, lsn types.LSN, exists bool, err error) {
	c.met.getPage.Inc()
	start := time.Now()
	w := wire.NewWriter(16)
	w.U32(uint32(id.Space))
	w.U32(uint32(id.No))
	w.U64(uint64(atLSN))
	resp, err := c.call(c.cfg.PageGroup(c.Partition(id)), "get", w.Bytes())
	if err != nil {
		return nil, 0, false, err
	}
	c.met.getPageLat.Observe(time.Since(start))
	rd := wire.NewReader(resp)
	exists = rd.Bool()
	lsn = types.LSN(rd.U64())
	data = rd.Bytes32()
	return data, lsn, exists, rd.Err()
}

// Coverage returns a partition's redo coverage LSN.
func (c *Client) Coverage(part int) (types.LSN, error) {
	resp, err := c.call(c.cfg.PageGroup(part), "coverage", nil)
	if err != nil {
		return 0, err
	}
	rd := wire.NewReader(resp)
	cov := types.LSN(rd.U64())
	return cov, rd.Err()
}

// CheckpointLSN returns min over partitions of coverage: every page chunk
// holds all updates up to this LSN, so REDO recovery may start here
// (step 3 of §5.1).
func (c *Client) CheckpointLSN() (types.LSN, error) {
	cp := MaxLSN
	for p := 0; p < c.cfg.PageChunks; p++ {
		cov, err := c.Coverage(p)
		if err != nil {
			return 0, err
		}
		if cov < cp {
			cp = cov
		}
	}
	return cp, nil
}

// Materialize forces partition p to fold its redo hash up to upTo.
func (c *Client) Materialize(part int, upTo types.LSN) error {
	w := wire.NewWriter(8)
	w.U64(uint64(upTo))
	_, err := c.call(c.cfg.PageGroup(part), "materialize", w.Bytes())
	return err
}

// ParallelRedo reimplements the REDO phase of §5.1 steps 3-4: collect the
// checkpoint LSN, read the redo log from there to the tail, and distribute
// the records to the page chunks, which consume them concurrently. It
// returns the checkpoint and tail LSNs.
func (c *Client) ParallelRedo() (cp, tail types.LSN, err error) {
	cp, err = c.CheckpointLSN()
	if err != nil {
		return 0, 0, fmt.Errorf("polarfs: collecting checkpoint: %w", err)
	}
	tail, err = c.RedoTail()
	if err != nil {
		return 0, 0, fmt.Errorf("polarfs: reading redo tail: %w", err)
	}
	const batch = 512
	after := cp
	for after < tail {
		recs, err := c.ReadRedo(after, batch)
		if err != nil {
			return 0, 0, fmt.Errorf("polarfs: reading redo after %d: %w", after, err)
		}
		if len(recs) == 0 {
			break
		}
		last := recs[len(recs)-1].LSN
		if err := c.ShipRecords(recs, last); err != nil {
			return 0, 0, fmt.Errorf("polarfs: distributing redo: %w", err)
		}
		after = last
	}
	// Advance all partitions' coverage to the tail even if they received
	// no records, so the next checkpoint collection reflects full recovery.
	if err := c.AdvanceCoverage(tail); err != nil {
		return 0, 0, err
	}
	return cp, tail, nil
}
