package polarfs

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"polardb/internal/parallelraft"
	"polardb/internal/plog"
	"polardb/internal/rdma"
	"polardb/internal/stat"
	"polardb/internal/types"
	"polardb/internal/wire"
)

// MaxLSN requests the latest page version from GetPage.
const MaxLSN = ^types.LSN(0)

type pageVersion struct {
	lsn  types.LSN
	data []byte
}

// pageChunkSM is the replicated state machine of a page chunk: a partition
// of the database's pages, stored as materialized versions plus a redo
// hash of not-yet-materialized records (Figure 7 of the paper).
type pageChunkSM struct {
	mu          sync.RWMutex
	pages       map[uint64][]pageVersion // ascending lsn
	pending     map[uint64][]plog.Record // ascending lsn, deduped
	coverage    types.LSN                // all redo <= coverage for this chunk received
	maxVersions int
}

const (
	pcCmdAdd = iota + 1
	pcCmdMaterialize
)

func newPageChunkSM(maxVersions int) *pageChunkSM {
	return &pageChunkSM{
		pages:       make(map[uint64][]pageVersion),
		pending:     make(map[uint64][]plog.Record),
		maxVersions: maxVersions,
	}
}

func (sm *pageChunkSM) Apply(index uint64, cmd []byte) {
	rd := wire.NewReader(cmd)
	switch rd.U8() {
	case pcCmdAdd:
		cov := types.LSN(rd.U64())
		recs, err := plog.UnmarshalRecords(rd.Bytes32())
		if err != nil {
			return
		}
		sm.mu.Lock()
		for _, r := range recs {
			sm.insertPendingLocked(r)
		}
		if cov > sm.coverage {
			sm.coverage = cov
		}
		sm.mu.Unlock()
	case pcCmdMaterialize:
		upTo := types.LSN(rd.U64())
		sm.mu.Lock()
		sm.materializeLocked(upTo)
		sm.mu.Unlock()
	}
}

// insertPendingLocked adds a record to the redo hash, keeping per-page
// LSN order and dropping duplicates and records already materialized
// (idempotency for recovery-time redistribution).
func (sm *pageChunkSM) insertPendingLocked(r plog.Record) {
	k := r.Page.Key()
	if vs := sm.pages[k]; len(vs) > 0 && r.LSN <= vs[len(vs)-1].lsn {
		return // already folded into a materialized version
	}
	list := sm.pending[k]
	i := sort.Search(len(list), func(i int) bool { return list[i].LSN >= r.LSN })
	if i < len(list) && list[i].LSN == r.LSN {
		return // duplicate
	}
	list = append(list, plog.Record{})
	copy(list[i+1:], list[i:])
	list[i] = r
	sm.pending[k] = list
}

// materializeLocked folds pending records with LSN <= upTo into new page
// versions and garbage-collects old versions.
func (sm *pageChunkSM) materializeLocked(upTo types.LSN) {
	for k, list := range sm.pending {
		n := sort.Search(len(list), func(i int) bool { return list[i].LSN > upTo })
		if n == 0 {
			continue
		}
		vs := sm.pages[k]
		var base []byte
		if len(vs) > 0 {
			base = vs[len(vs)-1].data
		}
		page := make([]byte, types.PageSize)
		copy(page, base)
		var last types.LSN
		for _, r := range list[:n] {
			if err := r.ApplyToPage(page); err != nil {
				continue // corrupt record; skip deterministically
			}
			last = r.LSN
		}
		vs = append(vs, pageVersion{lsn: last, data: page})
		if len(vs) > sm.maxVersions {
			vs = vs[len(vs)-sm.maxVersions:]
		}
		sm.pages[k] = vs
		if n == len(list) {
			delete(sm.pending, k)
		} else {
			sm.pending[k] = list[n:]
		}
	}
}

// get materializes the page as of atLSN on demand (without mutating state):
// latest version with lsn <= atLSN plus pending records in (version, atLSN].
// exists reports whether the chunk has ever seen the page.
func (sm *pageChunkSM) get(id types.PageID, atLSN types.LSN) (data []byte, lsn types.LSN, exists bool, err error) {
	sm.mu.RLock()
	defer sm.mu.RUnlock()
	k := id.Key()
	vs := sm.pages[k]
	pend := sm.pending[k]
	if len(vs) == 0 && len(pend) == 0 {
		return nil, 0, false, nil
	}
	page := make([]byte, types.PageSize)
	var base types.LSN
	i := sort.Search(len(vs), func(i int) bool { return vs[i].lsn > atLSN })
	if i > 0 {
		copy(page, vs[i-1].data)
		base = vs[i-1].lsn
	} else if len(vs) > 0 {
		// All retained versions are newer than atLSN; if pending records
		// can't rebuild from zero, the requested version is gone.
		if len(pend) == 0 || pend[0].LSN > atLSN {
			return nil, 0, true, fmt.Errorf("%w: page %s at lsn %d", ErrPageTooOld, id, atLSN)
		}
	}
	for _, r := range pend {
		if r.LSN <= base {
			continue
		}
		if r.LSN > atLSN {
			break
		}
		if err := r.ApplyToPage(page); err != nil {
			return nil, 0, true, err
		}
		base = r.LSN
	}
	return page, base, true, nil
}

func (sm *pageChunkSM) coverageLSN() types.LSN {
	sm.mu.RLock()
	defer sm.mu.RUnlock()
	return sm.coverage
}

func (sm *pageChunkSM) pendingCount() int {
	sm.mu.RLock()
	defer sm.mu.RUnlock()
	n := 0
	for _, l := range sm.pending {
		n += len(l)
	}
	return n
}

// pageChunk is one replica of a page-chunk partition on a storage node.
type pageChunk struct {
	part        int
	sm          *pageChunkSM
	replica     *parallelraft.Replica
	ep          *rdma.Endpoint
	readLatency time.Duration
	closeCh     chan struct{}
	wg          sync.WaitGroup

	metGets *stat.Counter // page get RPCs served by this replica
	metAdds *stat.Counter // redo add batches ingested by this replica
}

func newPageChunk(ep *rdma.Endpoint, cfg VolumeConfig, peers []rdma.NodeID, part int) *pageChunk {
	sm := newPageChunkSM(cfg.MaxVersionsPerPage)
	pc := &pageChunk{
		part:        part,
		sm:          sm,
		replica:     parallelraft.NewReplica(ep, raftConfig(cfg.Raft, cfg.PageGroup(part), peers), sm),
		ep:          ep,
		readLatency: cfg.ReadLatency,
		closeCh:     make(chan struct{}),
		metGets:     ep.Metrics().Counter("pfs.chunk.gets"),
		metAdds:     ep.Metrics().Counter("pfs.chunk.add_batches"),
	}
	prefix := "pfs." + cfg.PageGroup(part) + "."
	ep.RegisterHandler(prefix+"add", pc.handleAdd)
	ep.RegisterHandler(prefix+"get", pc.handleGet)
	ep.RegisterHandler(prefix+"coverage", pc.handleCoverage)
	ep.RegisterHandler(prefix+"materialize", pc.handleMaterialize)
	pc.wg.Add(1)
	go pc.materializer(cfg.MaterializeInterval)
	return pc
}

func (pc *pageChunk) close() {
	close(pc.closeCh)
	// Close the replica before waiting: a materializer stuck in Propose
	// (e.g. on a killed leader that can no longer reach a quorum) only
	// unblocks when the replica shuts down.
	pc.replica.Close()
	pc.wg.Wait()
}

// materializer periodically folds the redo hash into page versions. Only
// the current leader proposes; replicas apply through raft.
func (pc *pageChunk) materializer(interval time.Duration) {
	defer pc.wg.Done()
	for {
		select {
		case <-pc.closeCh:
			return
		case <-time.After(interval):
		}
		if pc.replica.Role() != parallelraft.Leader {
			continue
		}
		if pc.sm.pendingCount() == 0 {
			continue
		}
		upTo := pc.sm.coverageLSN()
		w := wire.NewWriter(16)
		w.U8(pcCmdMaterialize)
		w.U64(uint64(upTo))
		// Best effort; leadership may be lost mid-propose.
		_, _ = pc.replica.Propose(w.Bytes(), parallelraft.FullRange) //polarvet:allow errdrop best-effort materialize nudge; leadership loss mid-propose just means the next tick retries
	}
}

// handleAdd ingests a batch of redo records (step 3-6 of Figure 7): persist
// via raft, insert into the redo hash, then acknowledge. After the ack the
// RW node may evict the covered dirty pages anywhere in the hierarchy.
func (pc *pageChunk) handleAdd(from rdma.NodeID, req []byte) ([]byte, error) {
	pc.metAdds.Inc()
	rd := wire.NewReader(req)
	cov := rd.U64()
	recsBuf := rd.Bytes32()
	if err := rd.Err(); err != nil {
		return nil, err
	}
	recs, err := plog.UnmarshalRecords(recsBuf)
	if err != nil {
		return nil, err
	}
	// Ranges: the pages touched, so independent batches commit out of order.
	ranges := make([]parallelraft.Range, 0, len(recs))
	for _, r := range recs {
		k := r.Page.Key()
		ranges = append(ranges, parallelraft.Range{Start: k, End: k + 1})
	}
	w := wire.NewWriter(len(req) + 16)
	w.U8(pcCmdAdd)
	w.U64(cov)
	w.Bytes32(recsBuf)
	if _, err := pc.replica.Propose(w.Bytes(), ranges); err != nil {
		return nil, err
	}
	return nil, nil
}

// handleGet serves GetPage@LSN from the chunk leader. The read pays the
// storage media latency on top of the network round trip.
func (pc *pageChunk) handleGet(from rdma.NodeID, req []byte) ([]byte, error) {
	pc.metGets.Inc()
	if pc.replica.Role() != parallelraft.Leader {
		return nil, ErrNotLeader
	}
	pc.ep.Fabric().Delay(pc.readLatency, types.PageSize)
	rd := wire.NewReader(req)
	id := types.PageID{Space: types.SpaceID(rd.U32()), No: types.PageNo(rd.U32())}
	at := types.LSN(rd.U64())
	if err := rd.Err(); err != nil {
		return nil, err
	}
	if at != MaxLSN {
		// An explicit-LSN read beyond the chunk's redo coverage could miss
		// records still in flight; the caller must retry after shipping.
		if cov := pc.sm.coverageLSN(); at > cov {
			return nil, fmt.Errorf("%w: want %d, coverage %d", ErrStaleLSN, at, cov)
		}
	}
	data, lsn, exists, err := pc.sm.get(id, at)
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter(types.PageSize + 16)
	w.Bool(exists)
	w.U64(uint64(lsn))
	w.Bytes32(data)
	return w.Bytes(), nil
}

func (pc *pageChunk) handleCoverage(from rdma.NodeID, req []byte) ([]byte, error) {
	if pc.replica.Role() != parallelraft.Leader {
		return nil, ErrNotLeader
	}
	w := wire.NewWriter(8)
	w.U64(uint64(pc.sm.coverageLSN()))
	return w.Bytes(), nil
}

// handleMaterialize forces an immediate fold up to the given LSN (used by
// recovery and tests; the background materializer does this continuously).
func (pc *pageChunk) handleMaterialize(from rdma.NodeID, req []byte) ([]byte, error) {
	rd := wire.NewReader(req)
	upTo := rd.U64()
	if err := rd.Err(); err != nil {
		return nil, err
	}
	w := wire.NewWriter(16)
	w.U8(pcCmdMaterialize)
	w.U64(upTo)
	if _, err := pc.replica.Propose(w.Bytes(), parallelraft.FullRange); err != nil {
		return nil, err
	}
	return nil, nil
}
