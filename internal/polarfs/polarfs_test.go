package polarfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"polardb/internal/plog"
	"polardb/internal/rdma"
	"polardb/internal/types"
)

type testVolume struct {
	fabric *rdma.Fabric
	dep    *Deployment
	client *Client
}

func newTestVolume(t *testing.T, cfg VolumeConfig) *testVolume {
	t.Helper()
	f := rdma.NewFabric(rdma.TestConfig())
	eps := []*rdma.Endpoint{f.MustAttach("st0"), f.MustAttach("st1"), f.MustAttach("st2")}
	dep := Deploy(cfg, eps)
	t.Cleanup(dep.Close)
	db := f.MustAttach("db")
	return &testVolume{fabric: f, dep: dep, client: NewClient(db, dep.Cfg, dep.Peers)}
}

func rec(lsn types.LSN, space types.SpaceID, no types.PageNo, off uint16, data string) plog.Record {
	return plog.Record{LSN: lsn, Page: types.PageID{Space: space, No: no}, Off: off, Data: []byte(data)}
}

func TestAppendAndReadRedo(t *testing.T) {
	v := newTestVolume(t, VolumeConfig{})
	recs := []plog.Record{rec(1, 1, 1, 0, "a"), rec(2, 1, 2, 4, "bb")}
	tail, err := v.client.AppendRedo(recs)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if tail != 2 {
		t.Fatalf("tail = %d, want 2", tail)
	}
	got, err := v.client.ReadRedo(0, 0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != 2 || got[0].LSN != 1 || got[1].LSN != 2 {
		t.Fatalf("read back %+v", got)
	}
	got, err = v.client.ReadRedo(1, 0)
	if err != nil || len(got) != 1 || got[0].LSN != 2 {
		t.Fatalf("read after 1: %+v, %v", got, err)
	}
}

func TestAppendRedoIdempotentRetry(t *testing.T) {
	v := newTestVolume(t, VolumeConfig{})
	recs := []plog.Record{rec(1, 1, 1, 0, "a")}
	if _, err := v.client.AppendRedo(recs); err != nil {
		t.Fatal(err)
	}
	// A retry of the same batch must not duplicate records.
	if _, err := v.client.AppendRedo(recs); err != nil {
		t.Fatal(err)
	}
	got, err := v.client.ReadRedo(0, 0)
	if err != nil || len(got) != 1 {
		t.Fatalf("records = %d (%v), want 1", len(got), err)
	}
}

func TestTruncateRedo(t *testing.T) {
	v := newTestVolume(t, VolumeConfig{})
	_, err := v.client.AppendRedo([]plog.Record{
		rec(1, 1, 1, 0, "a"), rec(2, 1, 1, 1, "b"), rec(3, 1, 1, 2, "c"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.client.TruncateRedo(2); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	got, err := v.client.ReadRedo(0, 0)
	if err != nil || len(got) != 1 || got[0].LSN != 3 {
		t.Fatalf("after truncate: %+v, %v", got, err)
	}
	// Tail is unaffected by truncation.
	tail, err := v.client.RedoTail()
	if err != nil || tail != 3 {
		t.Fatalf("tail = %d, %v", tail, err)
	}
}

func TestShipAndGetPage(t *testing.T) {
	v := newTestVolume(t, VolumeConfig{})
	id := types.PageID{Space: 1, No: 7}
	recs := []plog.Record{
		{LSN: 1, Page: id, Off: 0, Data: []byte("hello")},
		{LSN: 2, Page: id, Off: 5, Data: []byte(" world")},
	}
	if err := v.client.ShipRecords(recs, 2); err != nil {
		t.Fatalf("ship: %v", err)
	}
	data, lsn, exists, err := v.client.GetPage(id, MaxLSN)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if !exists {
		t.Fatal("page should exist")
	}
	if lsn != 2 {
		t.Fatalf("lsn = %d, want 2", lsn)
	}
	if !bytes.Equal(data[:11], []byte("hello world")) {
		t.Fatalf("data = %q", data[:11])
	}
}

func TestGetPageAtLSN(t *testing.T) {
	v := newTestVolume(t, VolumeConfig{})
	id := types.PageID{Space: 1, No: 7}
	recs := []plog.Record{
		{LSN: 1, Page: id, Off: 0, Data: []byte("v1")},
		{LSN: 2, Page: id, Off: 0, Data: []byte("v2")},
	}
	if err := v.client.ShipRecords(recs, 2); err != nil {
		t.Fatal(err)
	}
	data, lsn, _, err := v.client.GetPage(id, 1)
	if err != nil {
		t.Fatalf("get@1: %v", err)
	}
	if lsn != 1 || string(data[:2]) != "v1" {
		t.Fatalf("got lsn=%d data=%q, want v1@1", lsn, data[:2])
	}
}

func TestGetPageMissing(t *testing.T) {
	v := newTestVolume(t, VolumeConfig{})
	_, _, exists, err := v.client.GetPage(types.PageID{Space: 9, No: 9}, MaxLSN)
	if err != nil {
		t.Fatalf("get missing: %v", err)
	}
	if exists {
		t.Fatal("missing page reported as existing")
	}
}

func TestMaterializationMatchesOnDemandMerge(t *testing.T) {
	v := newTestVolume(t, VolumeConfig{MaterializeInterval: time.Hour})
	id := types.PageID{Space: 2, No: 3}
	recs := []plog.Record{
		{LSN: 1, Page: id, Off: 0, Data: []byte("aaaa")},
		{LSN: 2, Page: id, Off: 2, Data: []byte("bb")},
		{LSN: 3, Page: id, Off: 1, Data: []byte("c")},
	}
	if err := v.client.ShipRecords(recs, 3); err != nil {
		t.Fatal(err)
	}
	before, lsnB, _, err := v.client.GetPage(id, MaxLSN)
	if err != nil {
		t.Fatal(err)
	}
	part := v.client.Partition(id)
	if err := v.client.Materialize(part, 3); err != nil {
		t.Fatalf("materialize: %v", err)
	}
	after, lsnA, _, err := v.client.GetPage(id, MaxLSN)
	if err != nil {
		t.Fatal(err)
	}
	if lsnB != lsnA || !bytes.Equal(before, after) {
		t.Fatalf("materialized page differs from on-demand merge (lsn %d vs %d)", lsnB, lsnA)
	}
	// LSN order: "aaaa", then "bb"@2 -> "aabb", then "c"@1 -> "acbb".
	if string(after[:4]) != "acbb" {
		t.Fatalf("content = %q, want acbb", after[:4])
	}
}

func TestMaterializeIsIdempotent(t *testing.T) {
	v := newTestVolume(t, VolumeConfig{MaterializeInterval: time.Hour})
	id := types.PageID{Space: 2, No: 3}
	if err := v.client.ShipRecords([]plog.Record{{LSN: 1, Page: id, Off: 0, Data: []byte("x")}}, 1); err != nil {
		t.Fatal(err)
	}
	part := v.client.Partition(id)
	for i := 0; i < 3; i++ {
		if err := v.client.Materialize(part, 1); err != nil {
			t.Fatal(err)
		}
	}
	data, lsn, _, err := v.client.GetPage(id, MaxLSN)
	if err != nil || lsn != 1 || data[0] != 'x' {
		t.Fatalf("after repeated materialize: lsn=%d err=%v", lsn, err)
	}
}

func TestShipRecordsIdempotentRedistribution(t *testing.T) {
	// Recovery redistributes redo that chunks may already hold; duplicates
	// must not corrupt pages.
	v := newTestVolume(t, VolumeConfig{MaterializeInterval: time.Hour})
	id := types.PageID{Space: 1, No: 1}
	recs := []plog.Record{
		{LSN: 1, Page: id, Off: 0, Data: []byte("ab")},
		{LSN: 2, Page: id, Off: 1, Data: []byte("cd")},
	}
	if err := v.client.ShipRecords(recs, 2); err != nil {
		t.Fatal(err)
	}
	if err := v.client.ShipRecords(recs, 2); err != nil {
		t.Fatal(err)
	}
	data, lsn, _, err := v.client.GetPage(id, MaxLSN)
	if err != nil || lsn != 2 {
		t.Fatalf("lsn=%d err=%v", lsn, err)
	}
	if string(data[:3]) != "acd" {
		t.Fatalf("data = %q, want acd", data[:3])
	}
}

func TestCoverageAndCheckpoint(t *testing.T) {
	v := newTestVolume(t, VolumeConfig{PageChunks: 2})
	if err := v.client.ShipRecords([]plog.Record{rec(5, 1, 1, 0, "x")}, 5); err != nil {
		t.Fatal(err)
	}
	if err := v.client.AdvanceCoverage(5); err != nil {
		t.Fatal(err)
	}
	cp, err := v.client.CheckpointLSN()
	if err != nil {
		t.Fatal(err)
	}
	if cp != 5 {
		t.Fatalf("checkpoint = %d, want 5 (all partitions advanced)", cp)
	}
}

func TestParallelRedoRecoversPages(t *testing.T) {
	// Write redo to the log chunk but "crash" before shipping to page
	// chunks; ParallelRedo must redistribute and make pages readable.
	v := newTestVolume(t, VolumeConfig{PageChunks: 2})
	id := types.PageID{Space: 3, No: 1}
	recs := []plog.Record{
		{LSN: 1, Page: id, Off: 0, Data: []byte("durable")},
		{LSN: 2, Page: id, Off: 0, Data: []byte("DURABLE")},
	}
	if _, err := v.client.AppendRedo(recs); err != nil {
		t.Fatal(err)
	}
	cp, tail, err := v.client.ParallelRedo()
	if err != nil {
		t.Fatalf("parallel redo: %v", err)
	}
	if cp != 0 || tail != 2 {
		t.Fatalf("cp=%d tail=%d, want 0,2", cp, tail)
	}
	data, lsn, exists, err := v.client.GetPage(id, MaxLSN)
	if err != nil || !exists || lsn != 2 {
		t.Fatalf("get after redo: lsn=%d exists=%v err=%v", lsn, exists, err)
	}
	if string(data[:7]) != "DURABLE" {
		t.Fatalf("data = %q", data[:7])
	}
	// Coverage advanced to tail everywhere.
	cp2, err := v.client.CheckpointLSN()
	if err != nil || cp2 != 2 {
		t.Fatalf("checkpoint after redo = %d, %v", cp2, err)
	}
}

func TestStorageNodeFailureTolerated(t *testing.T) {
	v := newTestVolume(t, VolumeConfig{})
	// Kill one follower storage node: writes and reads keep working.
	v.dep.Nodes[2].Endpoint().Kill()
	id := types.PageID{Space: 1, No: 1}
	if _, err := v.client.AppendRedo([]plog.Record{{LSN: 1, Page: id, Off: 0, Data: []byte("q")}}); err != nil {
		t.Fatalf("append with follower down: %v", err)
	}
	if err := v.client.ShipRecords([]plog.Record{{LSN: 1, Page: id, Off: 0, Data: []byte("q")}}, 1); err != nil {
		t.Fatalf("ship with follower down: %v", err)
	}
	data, _, _, err := v.client.GetPage(id, MaxLSN)
	if err != nil || data[0] != 'q' {
		t.Fatalf("get with follower down: %v", err)
	}
}

func TestStorageLeaderFailover(t *testing.T) {
	v := newTestVolume(t, VolumeConfig{PageChunks: 1})
	id := types.PageID{Space: 1, No: 1}
	if _, err := v.client.AppendRedo([]plog.Record{{LSN: 1, Page: id, Off: 0, Data: []byte("pre")}}); err != nil {
		t.Fatal(err)
	}
	if err := v.client.ShipRecords([]plog.Record{{LSN: 1, Page: id, Off: 0, Data: []byte("pre")}}, 1); err != nil {
		t.Fatal(err)
	}
	// Kill the bootstrap leader node; clients must fail over to the new
	// leader and committed data must survive.
	v.dep.Nodes[0].Endpoint().Kill()
	deadline := time.Now().Add(5 * time.Second)
	for {
		data, _, exists, err := v.client.GetPage(id, MaxLSN)
		if err == nil && exists && string(data[:3]) == "pre" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("get after leader failover: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// New writes continue.
	if _, err := v.client.AppendRedo([]plog.Record{{LSN: 2, Page: id, Off: 0, Data: []byte("post")}}); err != nil {
		t.Fatalf("append after failover: %v", err)
	}
}

func TestPartitionStable(t *testing.T) {
	v := newTestVolume(t, VolumeConfig{PageChunks: 4})
	for i := 0; i < 100; i++ {
		id := types.PageID{Space: types.SpaceID(i % 3), No: types.PageNo(i)}
		p1 := v.client.Partition(id)
		p2 := v.client.Partition(id)
		if p1 != p2 || p1 < 0 || p1 >= 4 {
			t.Fatalf("partition unstable or out of range: %d %d", p1, p2)
		}
	}
}

// Property: for any sequence of writes to one page, GetPage@latest equals
// applying the writes in LSN order to a zero page — regardless of how the
// records are batched or interleaved with forced materializations.
func TestPageReconstructionProperty(t *testing.T) {
	v := newTestVolume(t, VolumeConfig{PageChunks: 1, MaterializeInterval: time.Hour})
	var lsn types.LSN
	pageNo := types.PageNo(0)
	prop := func(writes []struct {
		Off  uint16
		Data []byte
	}, matAfter uint8) bool {
		pageNo++
		id := types.PageID{Space: 5, No: pageNo}
		expect := make([]byte, types.PageSize)
		var recs []plog.Record
		for _, w := range writes {
			off := int(w.Off) % types.PageSize
			data := w.Data
			if len(data) > types.PageSize-off {
				data = data[:types.PageSize-off]
			}
			lsn++
			copy(expect[off:], data)
			recs = append(recs, plog.Record{LSN: lsn, Page: id, Off: uint16(off), Data: data})
		}
		if len(recs) == 0 {
			return true
		}
		// Ship in two batches with a materialization in between sometimes.
		cut := int(matAfter) % (len(recs) + 1)
		if cut > 0 {
			if err := v.client.ShipRecords(recs[:cut], recs[cut-1].LSN); err != nil {
				return false
			}
			if err := v.client.Materialize(0, recs[cut-1].LSN); err != nil {
				return false
			}
		}
		if cut < len(recs) {
			if err := v.client.ShipRecords(recs[cut:], lsn); err != nil {
				return false
			}
		}
		got, _, _, err := v.client.GetPage(id, MaxLSN)
		return err == nil && bytes.Equal(got, expect)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestErrPageTooOld(t *testing.T) {
	v := newTestVolume(t, VolumeConfig{PageChunks: 1, MaxVersionsPerPage: 1, MaterializeInterval: time.Hour})
	id := types.PageID{Space: 1, No: 1}
	for i := types.LSN(1); i <= 3; i++ {
		if err := v.client.ShipRecords([]plog.Record{{LSN: i, Page: id, Off: 0, Data: []byte{byte(i)}}}, i); err != nil {
			t.Fatal(err)
		}
		if err := v.client.Materialize(0, i); err != nil {
			t.Fatal(err)
		}
	}
	// Only the newest version is retained; requesting LSN 1 must fail.
	_, _, _, err := v.client.GetPage(id, 1)
	if !errors.Is(err, ErrPageTooOld) {
		t.Fatalf("err = %v, want ErrPageTooOld", err)
	}
}

func TestGetPageBeyondCoverage(t *testing.T) {
	v := newTestVolume(t, VolumeConfig{PageChunks: 1})
	id := types.PageID{Space: 1, No: 1}
	if err := v.client.ShipRecords([]plog.Record{{LSN: 3, Page: id, Off: 0, Data: []byte("x")}}, 3); err != nil {
		t.Fatal(err)
	}
	// Reading at an LSN the chunk has not covered yet must be refused, not
	// silently served stale.
	if _, _, _, err := v.client.GetPage(id, 9); !errors.Is(err, ErrStaleLSN) {
		t.Fatalf("err = %v, want ErrStaleLSN", err)
	}
	// MaxLSN (latest known) is always servable.
	if _, _, _, err := v.client.GetPage(id, MaxLSN); err != nil {
		t.Fatal(err)
	}
}

func TestManyPagesAcrossPartitions(t *testing.T) {
	v := newTestVolume(t, VolumeConfig{PageChunks: 4})
	const n = 64
	var recs []plog.Record
	for i := 0; i < n; i++ {
		id := types.PageID{Space: 1, No: types.PageNo(i)}
		recs = append(recs, plog.Record{LSN: types.LSN(i + 1), Page: id, Off: 0,
			Data: []byte(fmt.Sprintf("page-%02d", i))})
	}
	if err := v.client.ShipRecords(recs, types.LSN(n)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		id := types.PageID{Space: 1, No: types.PageNo(i)}
		data, _, exists, err := v.client.GetPage(id, MaxLSN)
		if err != nil || !exists {
			t.Fatalf("page %d: exists=%v err=%v", i, exists, err)
		}
		want := fmt.Sprintf("page-%02d", i)
		if string(data[:len(want)]) != want {
			t.Fatalf("page %d = %q, want %q", i, data[:len(want)], want)
		}
	}
}
