// Package polarfs implements the shared storage pool of PolarDB
// Serverless: a PolarFS-style distributed store whose volumes are split
// into chunks, each replicated across three storage nodes with
// ParallelRaft (§2.1).
//
// Two chunk types exist, mirroring §3.4 (page materialization offloading):
//
//   - Log chunks persist the redo log. A transaction commits once its redo
//     records are raft-committed on a log chunk.
//   - Page chunks each own a partition of the database's pages. The RW node
//     ships redo records to the owning page chunks; a chunk's leader
//     inserts them into an in-memory redo hash keyed by page, acknowledges,
//     and later materializes new page versions in the background by merging
//     base pages with hashed records. GetPage@LSN merges on demand, so
//     dirty pages can be evicted from the remote memory pool without ever
//     being flushed.
//
// Unlike Aurora there is no gossip between storage nodes: materialization
// is propagated to replicas through ParallelRaft commands, so the
// replicated state machine keeps replicas consistent (the Socrates-like
// design the paper describes).
package polarfs

import (
	"errors"
	"fmt"
	"time"

	"polardb/internal/parallelraft"
	"polardb/internal/rdma"
)

// Errors surfaced to libpfs callers.
var (
	// ErrNotLeader indicates the contacted replica is not the chunk leader;
	// the client re-locates and retries.
	ErrNotLeader = parallelraft.ErrNotLeader
	// ErrPageTooOld means the requested LSN predates every retained version.
	ErrPageTooOld = errors.New("polarfs: requested page version has been garbage collected")
	// ErrStaleLSN means the chunk has not yet received redo covering the
	// requested LSN.
	ErrStaleLSN = errors.New("polarfs: chunk redo coverage below requested lsn")
)

// VolumeConfig describes a volume's layout.
type VolumeConfig struct {
	// Name prefixes all chunk group names.
	Name string
	// PageChunks is the number of page-chunk partitions. Pages are assigned
	// to partitions by hashing (space, page_no).
	PageChunks int
	// MaxVersionsPerPage bounds retained materialized versions (for
	// point-in-time reads); older versions are garbage collected.
	MaxVersionsPerPage int
	// MaterializeInterval is how often chunk leaders fold the redo hash
	// into new page versions.
	MaterializeInterval time.Duration
	// ReadLatency models the storage media + stack cost of serving a
	// GetPage (beyond network RPC time). Default 2ms — ~40x above a
	// one-sided remote memory read in the benchmark latency profile,
	// matching the hierarchy the paper's design exploits. Scaled by the
	// fabric's TimeScale, so latency-free test fabrics see none of it.
	ReadLatency time.Duration
	// Raft overrides consensus tuning knobs (Group/Peers are set per chunk).
	Raft parallelraft.Config
}

func (c *VolumeConfig) applyDefaults() {
	if c.Name == "" {
		c.Name = "vol"
	}
	if c.PageChunks == 0 {
		c.PageChunks = 4
	}
	if c.MaxVersionsPerPage == 0 {
		c.MaxVersionsPerPage = 4
	}
	if c.MaterializeInterval == 0 {
		c.MaterializeInterval = 20 * time.Millisecond
	}
	if c.ReadLatency == 0 {
		c.ReadLatency = 2 * time.Millisecond
	}
}

// LogGroup returns the raft group name of the volume's log chunk.
func (c *VolumeConfig) LogGroup() string { return c.Name + ".lc0" }

// PageGroup returns the raft group name of page-chunk partition p.
func (c *VolumeConfig) PageGroup(p int) string {
	return fmt.Sprintf("%s.pc%d", c.Name, p)
}

// Deployment is a volume deployed across a set of storage nodes.
type Deployment struct {
	Cfg   VolumeConfig
	Nodes []*StorageNode
	Peers []rdma.NodeID
}

// StorageNode hosts one replica of every chunk in the volume.
type StorageNode struct {
	ep         *rdma.Endpoint
	logChunk   *logChunk
	pageChunks []*pageChunk
}

// Endpoint returns the node's fabric endpoint.
func (n *StorageNode) Endpoint() *rdma.Endpoint { return n.ep }

// DebugReplicas returns diagnostic snapshots of every chunk replica on
// this node, keyed by group name.
func (n *StorageNode) DebugReplicas() map[string]parallelraft.DebugState {
	out := map[string]parallelraft.DebugState{
		"log": n.logChunk.replica.Debug(),
	}
	for i, pc := range n.pageChunks {
		out[fmt.Sprintf("pc%d", i)] = pc.replica.Debug()
	}
	return out
}

// Close stops all chunk replicas on the node.
func (n *StorageNode) Close() {
	n.logChunk.close()
	for _, pc := range n.pageChunks {
		pc.close()
	}
}

// Deploy creates the volume's chunks replicated across the given endpoints
// (one replica of every chunk per node; production PolarFS spreads chunks
// over many nodes, which changes placement, not behaviour). The first
// endpoint's replicas bootstrap as leaders.
func Deploy(cfg VolumeConfig, eps []*rdma.Endpoint) *Deployment {
	cfg.applyDefaults()
	peers := make([]rdma.NodeID, len(eps))
	for i, ep := range eps {
		peers[i] = ep.ID()
	}
	d := &Deployment{Cfg: cfg, Peers: peers}
	for _, ep := range eps {
		n := &StorageNode{ep: ep}
		n.logChunk = newLogChunk(ep, cfg, peers)
		for p := 0; p < cfg.PageChunks; p++ {
			n.pageChunks = append(n.pageChunks, newPageChunk(ep, cfg, peers, p))
		}
		d.Nodes = append(d.Nodes, n)
	}
	return d
}

// Close stops every chunk replica in the deployment.
func (d *Deployment) Close() {
	for _, n := range d.Nodes {
		n.Close()
	}
}

func raftConfig(base parallelraft.Config, group string, peers []rdma.NodeID) parallelraft.Config {
	base.Group = group
	base.Peers = peers
	base.Bootstrap = true
	return base
}
