// Package cache implements the local cache tier of a database node
// (§3.1.3): a bounded pool of page frames in node-local memory. The CPU
// only ever touches pages here; misses are filled from the remote memory
// pool (or storage) by the engine, and evicted dirty frames are written
// back to remote memory first.
//
// The cache provides mechanics only — frames, pins, local latches, LRU,
// invalidation bits, swap statistics. Policy (where misses are fetched
// from, what write-back means) lives in the engine so the same cache backs
// both PolarDB Serverless nodes and the baseline architectures.
package cache

import (
	"container/list"
	"errors"
	"sync"
	"sync/atomic"

	"polardb/internal/rdma"
	"polardb/internal/types"
)

// ErrAllPinned is returned when a frame must be evicted but every resident
// frame is pinned.
var ErrAllPinned = errors.New("cache: all frames pinned, cannot evict")

// RemoteInfo carries the remote-memory addresses of a cached page, set by
// the engine at registration time.
type RemoteInfo struct {
	Registered bool
	Data       rdma.Addr
	PL         rdma.Addr
	PIB        rdma.Addr
}

// Frame is one resident page. The embedded RWMutex is the page's *local*
// latch (the paper's per-node latch, distinct from the global PL latch).
type Frame struct {
	ID   types.PageID
	Data []byte

	// Latch is the local page latch: shared for readers, exclusive for
	// modifications. Lock ordering follows B+tree crabbing rules.
	Latch sync.RWMutex

	// Remote holds the page's remote-memory registration, if any.
	Remote RemoteInfo

	// NewestLSN is the LSN of the last redo record modifying this frame.
	NewestLSN types.LSN
	// ShippedLSN is the highest LSN covering this page acknowledged by the
	// owning page chunk; the frame may only be dropped (and its remote
	// copy evicted) once ShippedLSN >= NewestLSN.
	ShippedLSN types.LSN

	pins    atomic.Int32
	mtrPins atomic.Int32 // open mini-transactions that applied bytes here
	dirty   atomic.Bool
	invalid atomic.Bool // local PIB bit (set by cache-invalidation callback)

	lruElem *list.Element
	evictin bool // being evicted; not in map anymore
}

// Pin prevents eviction. Frames returned by Get/Insert are already pinned.
func (f *Frame) Pin() { f.pins.Add(1) }

// Unpin releases a pin.
func (f *Frame) Unpin() { f.pins.Add(-1) }

// Pins returns the current pin count.
func (f *Frame) Pins() int { return int(f.pins.Load()) }

// MtrPin marks the frame as modified by a still-open mini-transaction:
// its bytes must not be shipped to another node until the MTR's
// invalidate-then-publish pipeline (§3.1.4) completes, or a reader could
// observe this page's new bytes alongside stale copies of the MTR's
// other pages.
func (f *Frame) MtrPin() { f.mtrPins.Add(1) }

// MtrUnpin drops a mini-transaction's modification mark.
func (f *Frame) MtrUnpin() { f.mtrPins.Add(-1) }

// MtrPinned reports whether an open mini-transaction modified the frame.
func (f *Frame) MtrPinned() bool { return f.mtrPins.Load() > 0 }

// MarkDirty flags the frame as modified since last write-back.
func (f *Frame) MarkDirty() { f.dirty.Store(true) }

// ClearDirty flags the frame as clean (after write-back).
func (f *Frame) ClearDirty() { f.dirty.Store(false) }

// Dirty reports whether the frame holds unwritten modifications.
func (f *Frame) Dirty() bool { return f.dirty.Load() }

// SetInvalid sets the local PIB bit: the cached copy is outdated.
func (f *Frame) SetInvalid(v bool) { f.invalid.Store(v) }

// Invalid reports the local PIB bit.
func (f *Frame) Invalid() bool { return f.invalid.Load() }

// EvictFn is called (outside cache locks) with a victim frame removed from
// the cache. It must write back / unregister as needed. The frame is
// unpinned and no longer reachable through the cache.
type EvictFn func(*Frame)

// Stats counts cache traffic. SwappedIn/SwappedOut reproduce the "pages
// swapped" series of Figure 11.
type Stats struct {
	Hits       uint64
	Misses     uint64
	SwappedOut uint64 // evictions
	SwappedIn  uint64 // inserts (fetch fills)
	Resident   int
	Capacity   int
}

// Cache is a fixed-capacity page frame pool with LRU replacement.
//
// Eviction interlock: from the moment a victim is detached until its
// evict callback finishes (write-back may block on redo shipping), the
// page is listed as "evicting". WaitEvicting lets fetch paths wait out
// that window instead of resurrecting the page from a stale source while
// its newest bytes are still in flight.
type Cache struct {
	mu       sync.Mutex
	capacity int
	frames   map[uint64]*Frame
	lru      *list.List // *Frame; front = oldest
	evict    EvictFn
	evicting map[uint64]chan struct{}

	hits, misses, in, out atomic.Uint64
}

// New creates a cache holding up to capacity pages. evict may be nil.
func New(capacity int, evict EvictFn) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		frames:   make(map[uint64]*Frame, capacity),
		lru:      list.New(),
		evict:    evict,
		evicting: make(map[uint64]chan struct{}),
	}
}

// Capacity returns the current frame capacity.
func (c *Cache) Capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacity
}

// Get returns the pinned resident frame for id, or nil on miss.
func (c *Cache) Get(id types.PageID) *Frame {
	c.mu.Lock()
	f, ok := c.frames[id.Key()]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil
	}
	f.Pin()
	c.lru.MoveToBack(f.lruElem)
	c.mu.Unlock()
	c.hits.Add(1)
	return f
}

// Insert adds a freshly fetched frame (pinned once on return), evicting
// LRU unpinned frames as needed. If id is already resident (a racing fill)
// the existing frame is returned instead and the argument is discarded.
func (c *Cache) Insert(f *Frame) (*Frame, error) {
	c.mu.Lock()
	if existing, ok := c.frames[f.ID.Key()]; ok {
		existing.Pin()
		c.lru.MoveToBack(existing.lruElem)
		c.mu.Unlock()
		return existing, nil
	}
	var victims []*Frame
	for len(c.frames) >= c.capacity {
		v := c.pickVictimLocked()
		if v == nil {
			c.mu.Unlock()
			// Roll back any victims we already detached? They are gone from
			// the map; evict them anyway to avoid losing writes.
			for _, v := range victims {
				c.runEvict(v)
			}
			return nil, ErrAllPinned
		}
		victims = append(victims, v)
	}
	f.Pin()
	f.lruElem = c.lru.PushBack(f)
	c.frames[f.ID.Key()] = f
	c.mu.Unlock()
	c.in.Add(1)
	for _, v := range victims {
		c.runEvict(v)
	}
	return f, nil
}

// pickVictimLocked detaches the oldest unpinned frame from the cache and
// marks its page as evicting until runEvict completes.
func (c *Cache) pickVictimLocked() *Frame {
	for e := c.lru.Front(); e != nil; e = e.Next() {
		f := e.Value.(*Frame)
		if f.Pins() == 0 {
			c.lru.Remove(e)
			f.lruElem = nil
			f.evictin = true
			delete(c.frames, f.ID.Key())
			c.evicting[f.ID.Key()] = make(chan struct{})
			return f
		}
	}
	return nil
}

func (c *Cache) runEvict(f *Frame) {
	c.out.Add(1)
	if c.evict != nil {
		c.evict(f)
	}
	c.mu.Lock()
	if ch, ok := c.evicting[f.ID.Key()]; ok {
		close(ch)
		delete(c.evicting, f.ID.Key())
	}
	c.mu.Unlock()
}

// WaitEvicting blocks while the page is mid-eviction (detached but its
// write-back not yet complete). Fetch paths call it before filling a miss
// so they never reload a page whose newest bytes are still being evicted.
func (c *Cache) WaitEvicting(id types.PageID) {
	for {
		c.mu.Lock()
		ch, ok := c.evicting[id.Key()]
		c.mu.Unlock()
		if !ok {
			return
		}
		<-ch
	}
}

// Remove detaches a specific frame (e.g. a page dropped by slab failure or
// freed by a B+tree merge) without invoking the evict callback. Returns
// the frame if it was resident.
func (c *Cache) Remove(id types.PageID) *Frame {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.frames[id.Key()]
	if !ok {
		return nil
	}
	if f.lruElem != nil {
		c.lru.Remove(f.lruElem)
		f.lruElem = nil
	}
	delete(c.frames, id.Key())
	return f
}

// Invalidate sets the local PIB bit on the resident copy, if any. It is
// the cache-invalidation callback target and deliberately lock-light.
func (c *Cache) Invalidate(id types.PageID) bool {
	c.mu.Lock()
	f, ok := c.frames[id.Key()]
	c.mu.Unlock()
	if !ok {
		return false
	}
	f.SetInvalid(true)
	return true
}

// Resize changes the capacity, evicting LRU frames if shrinking.
func (c *Cache) Resize(capacity int) error {
	if capacity < 1 {
		capacity = 1
	}
	c.mu.Lock()
	c.capacity = capacity
	var victims []*Frame
	for len(c.frames) > c.capacity {
		v := c.pickVictimLocked()
		if v == nil {
			break
		}
		victims = append(victims, v)
	}
	c.mu.Unlock()
	for _, v := range victims {
		c.runEvict(v)
	}
	if len(victims) == 0 {
		return nil
	}
	return nil
}

// EvictAll flushes every unpinned frame through the evict callback
// (planned shutdown: write everything back to remote memory).
func (c *Cache) EvictAll() {
	for {
		c.mu.Lock()
		v := c.pickVictimLocked()
		c.mu.Unlock()
		if v == nil {
			return
		}
		c.runEvict(v)
	}
}

// ForEach calls fn with every resident frame (snapshot; frames may be
// evicted concurrently). Used by checkpointing and planned handover.
func (c *Cache) ForEach(fn func(*Frame)) {
	c.mu.Lock()
	snapshot := make([]*Frame, 0, len(c.frames))
	for _, f := range c.frames {
		snapshot = append(snapshot, f)
	}
	c.mu.Unlock()
	for _, f := range snapshot {
		fn(f)
	}
}

// Stats returns traffic counters and occupancy.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	resident, capacity := len(c.frames), c.capacity
	c.mu.Unlock()
	return Stats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		SwappedIn:  c.in.Load(),
		SwappedOut: c.out.Load(),
		Resident:   resident,
		Capacity:   capacity,
	}
}

// ResetStats zeroes the traffic counters.
func (c *Cache) ResetStats() {
	c.hits.Store(0)
	c.misses.Store(0)
	c.in.Store(0)
	c.out.Store(0)
}
