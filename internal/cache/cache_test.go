package cache

import (
	"sync"
	"testing"
	"testing/quick"

	"polardb/internal/types"
)

func pid(n uint32) types.PageID { return types.PageID{Space: 1, No: types.PageNo(n)} }

func frame(n uint32) *Frame {
	return &Frame{ID: pid(n), Data: make([]byte, types.PageSize)}
}

func TestGetMissThenInsertHit(t *testing.T) {
	c := New(4, nil)
	if f := c.Get(pid(1)); f != nil {
		t.Fatal("unexpected hit on empty cache")
	}
	f, err := c.Insert(frame(1))
	if err != nil {
		t.Fatal(err)
	}
	if f.Pins() != 1 {
		t.Fatalf("pins after insert = %d, want 1", f.Pins())
	}
	f.Unpin()
	g := c.Get(pid(1))
	if g != f {
		t.Fatal("Get returned different frame")
	}
	if g.Pins() != 1 {
		t.Fatalf("pins after get = %d", g.Pins())
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInsertDuplicateReturnsExisting(t *testing.T) {
	c := New(4, nil)
	f1, _ := c.Insert(frame(1))
	f2, _ := c.Insert(frame(1))
	if f1 != f2 {
		t.Fatal("duplicate insert created second frame")
	}
	if f1.Pins() != 2 {
		t.Fatalf("pins = %d, want 2", f1.Pins())
	}
}

func TestLRUEviction(t *testing.T) {
	var evicted []types.PageID
	c := New(2, func(f *Frame) { evicted = append(evicted, f.ID) })
	f1, _ := c.Insert(frame(1))
	f2, _ := c.Insert(frame(2))
	f1.Unpin()
	f2.Unpin()
	// Touch 1 so 2 becomes LRU.
	c.Get(pid(1)).Unpin()
	f3, _ := c.Insert(frame(3))
	f3.Unpin()
	if len(evicted) != 1 || evicted[0] != pid(2) {
		t.Fatalf("evicted = %v, want [1:2]", evicted)
	}
	if c.Get(pid(2)) != nil {
		t.Fatal("evicted frame still resident")
	}
}

func TestPinnedFramesNotEvicted(t *testing.T) {
	c := New(2, nil)
	c.Insert(frame(1)) // stays pinned
	c.Insert(frame(2)) // stays pinned
	if _, err := c.Insert(frame(3)); err != ErrAllPinned {
		t.Fatalf("err = %v, want ErrAllPinned", err)
	}
}

func TestDirtyVictimReachesEvictCallback(t *testing.T) {
	var sawDirty bool
	c := New(1, func(f *Frame) { sawDirty = f.Dirty() })
	f1, _ := c.Insert(frame(1))
	f1.MarkDirty()
	f1.Unpin()
	f2, _ := c.Insert(frame(2))
	f2.Unpin()
	if !sawDirty {
		t.Fatal("evict callback did not see dirty frame")
	}
}

func TestRemoveSkipsCallback(t *testing.T) {
	calls := 0
	c := New(4, func(*Frame) { calls++ })
	f, _ := c.Insert(frame(1))
	f.Unpin()
	if got := c.Remove(pid(1)); got != f {
		t.Fatal("Remove returned wrong frame")
	}
	if calls != 0 {
		t.Fatal("Remove invoked evict callback")
	}
	if c.Get(pid(1)) != nil {
		t.Fatal("removed frame still resident")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(4, nil)
	f, _ := c.Insert(frame(1))
	f.Unpin()
	if !c.Invalidate(pid(1)) {
		t.Fatal("invalidate missed resident frame")
	}
	if !f.Invalid() {
		t.Fatal("invalid bit not set")
	}
	if c.Invalidate(pid(9)) {
		t.Fatal("invalidate hit non-resident frame")
	}
}

func TestResizeShrinkEvicts(t *testing.T) {
	var evicted int
	c := New(4, func(*Frame) { evicted++ })
	for i := uint32(1); i <= 4; i++ {
		f, _ := c.Insert(frame(i))
		f.Unpin()
	}
	if err := c.Resize(2); err != nil {
		t.Fatal(err)
	}
	if evicted != 2 {
		t.Fatalf("evicted = %d, want 2", evicted)
	}
	if s := c.Stats(); s.Resident != 2 || s.Capacity != 2 {
		t.Fatalf("stats = %+v", s)
	}
	// Growing again allows more residents.
	if err := c.Resize(8); err != nil {
		t.Fatal(err)
	}
	for i := uint32(10); i < 16; i++ {
		f, err := c.Insert(frame(i))
		if err != nil {
			t.Fatal(err)
		}
		f.Unpin()
	}
	if s := c.Stats(); s.Resident != 8 {
		t.Fatalf("resident = %d, want 8", s.Resident)
	}
}

func TestEvictAll(t *testing.T) {
	var evicted int
	c := New(4, func(*Frame) { evicted++ })
	for i := uint32(1); i <= 3; i++ {
		f, _ := c.Insert(frame(i))
		f.Unpin()
	}
	pinned, _ := c.Insert(frame(4)) // stays pinned
	c.EvictAll()
	if evicted != 3 {
		t.Fatalf("evicted = %d, want 3", evicted)
	}
	if c.Get(pinned.ID) == nil {
		t.Fatal("pinned frame evicted by EvictAll")
	}
}

func TestForEach(t *testing.T) {
	c := New(4, nil)
	for i := uint32(1); i <= 3; i++ {
		f, _ := c.Insert(frame(i))
		f.Unpin()
	}
	seen := map[types.PageID]bool{}
	c.ForEach(func(f *Frame) { seen[f.ID] = true })
	if len(seen) != 3 {
		t.Fatalf("ForEach saw %d frames, want 3", len(seen))
	}
}

func TestConcurrentGetInsert(t *testing.T) {
	c := New(16, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint32) {
			defer wg.Done()
			for i := uint32(0); i < 200; i++ {
				n := (seed*31 + i) % 32
				f := c.Get(pid(n))
				if f == nil {
					var err error
					f, err = c.Insert(frame(n))
					if err != nil {
						continue
					}
				}
				if f.ID != pid(n) {
					t.Errorf("frame identity mismatch")
					f.Unpin()
					return
				}
				f.Unpin()
			}
		}(uint32(w))
	}
	wg.Wait()
	s := c.Stats()
	if s.Resident > 16 {
		t.Fatalf("resident %d exceeds capacity", s.Resident)
	}
}

// Property: after any sequence of insert/unpin/get operations, resident
// count never exceeds capacity and every Get returns the frame with the
// requested id.
func TestCapacityInvariantProperty(t *testing.T) {
	prop := func(ops []uint8, capacity uint8) bool {
		capN := int(capacity)%8 + 1
		c := New(capN, nil)
		for _, op := range ops {
			n := uint32(op % 16)
			if f := c.Get(pid(n)); f != nil {
				if f.ID != pid(n) {
					return false
				}
				f.Unpin()
				continue
			}
			f, err := c.Insert(frame(n))
			if err != nil {
				continue
			}
			f.Unpin()
			if c.Stats().Resident > capN {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
