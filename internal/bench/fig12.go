package bench

import (
	"fmt"
	"time"

	"polardb/internal/cluster"
	"polardb/internal/workload"
)

// Fig12 reproduces Figure 12: TPC-H query latency with the local cache
// swept 16 GB -> 256 GB while the remote pool stays large. Latency falls
// steeply until the working set fits locally.
func Fig12(sc Scale) (*Result, error) {
	sizesGB := []float64{16, 32, 64, 256}
	queries := []string{"Q2", "Q4", "Q5", "Q8", "Q10", "Q11", "Q12", "Q14",
		"Q15", "Q16", "Q17", "Q18", "Q19", "Q20", "Q21", "Q22"}
	sf := 8 // dataset ~ 200 GBeq scaled: larger than the small caches
	if sc.Small {
		sizesGB = []float64{16, 64, 256}
		queries = []string{"Q2", "Q5", "Q10", "Q12", "Q18", "Q21"}
		sf = 4
	}
	res := &Result{ID: "fig12", Title: fmt.Sprintf("TPC-H latency vs local cache size (SF-lite=%d)", sf)}

	// One cluster, resized between sweeps (the paper's tunable local tier).
	c, err := launch(cluster.Config{
		RONodes:            0,
		LocalCachePages:    GBPages(sizesGB[0]),
		SlabPages:          256,
		MemorySlabs:        24, // 6144 pages: the pool holds the dataset
		CheckpointInterval: 200 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	h := &workload.TPCH{SF: sf}
	if err := h.Load(c); err != nil {
		return nil, err
	}
	s := c.Proxy.Connect()
	defer s.Close()

	for _, gb := range sizesGB {
		if err := c.ResizeLocalCaches(GBPages(gb)); err != nil {
			return nil, err
		}
		series := Series{Name: fmt.Sprintf("LM %g GBeq", gb)}
		// Warm pass then measured pass: steady-state latency at this size.
		for _, q := range queries {
			if _, err := h.Run(q, s, workload.QueryOpts{}); err != nil {
				return nil, fmt.Errorf("%s warm: %w", q, err)
			}
			t0 := time.Now()
			if _, err := h.Run(q, s, workload.QueryOpts{}); err != nil {
				return nil, fmt.Errorf("%s: %w", q, err)
			}
			series.Points = append(series.Points, Point{Label: q, Y: time.Since(t0).Seconds() * 1000})
		}
		res.Series = append(res.Series, series)
	}
	res.Capture("", c)
	res.Notes = append(res.Notes,
		"latency (ms) falls as the local cache grows; big-scan queries benefit most")
	return res, nil
}
