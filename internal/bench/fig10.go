package bench

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"polardb/internal/cluster"
	"polardb/internal/workload"
)

// Fig10a reproduces Figure 10(a): TPC-C throughput (tpmC) of PolarDB
// Serverless vs classic PolarDB under three memory configurations
// (paper GB -> pages via GBPages):
//
//	(LM 0.5, RM 4, M 4)   — both memories below the ~20 GB working set
//	(LM 4,   RM 24, M 4)  — serverless' remote pool holds the dataset
//	(LM 24,  RM 24, M 24) — everything fits locally on both systems
func Fig10a(sc Scale) (*Result, error) {
	type config struct {
		label string
		lmGB  float64
		rmGB  float64
		mGB   float64
	}
	configs := []config{
		{"(LM:0.5,RM:4,M:4)", 0.5, 4, 4},
		{"(LM:4,RM:24,M:4)", 4, 24, 4},
		{"(LM:24,RM:24,M:24)", 24, 24, 24},
	}
	// Working set ~ 20 GBeq: warehouses/items sized so data spans ~1280
	// pages.
	// The working set must exceed the 4 GBeq configs (the paper's 20 GB vs
	// 4 GB): stock dominates and is uniformly accessed, so size it well
	// past 256 pages.
	tp := &workload.TPCC{Warehouses: 2, Districts: 10, Customers: 250, Items: 12000}
	dur := 3 * time.Second
	workers := 4
	if sc.Small {
		tp = &workload.TPCC{Warehouses: 2, Districts: 10, Customers: 200, Items: 8000}
		dur = 2 * time.Second
	}

	res := &Result{ID: "fig10a", Title: "TPC-C tpmC: PolarDB Serverless vs PolarDB"}
	serverless := Series{Name: "Serverless"}
	classic := Series{Name: "PolarDB"}
	// Single-core simulation runs are noisy; take the best of two runs
	// per cell (stalls only ever lose throughput).
	best := func(prefix string, classicMode bool, cache, pool int) (float64, error) {
		bestQ := 0.0
		for r := 0; r < 2; r++ {
			q, err := fig10aRun(res, prefix, tp, classicMode, cache, pool, dur, workers)
			if err != nil {
				return 0, err
			}
			if q > bestQ {
				bestQ = q
			}
		}
		return bestQ, nil
	}
	for _, cf := range configs {
		// PolarDB Serverless: local cache LM, remote pool RM.
		q, err := best("serverless"+cf.label+"/", false, GBPages(cf.lmGB), GBPages(cf.rmGB))
		if err != nil {
			return nil, fmt.Errorf("fig10a serverless %s: %w", cf.label, err)
		}
		serverless.Points = append(serverless.Points, Point{Label: cf.label, Y: q * 60}) // tpmC
		// Classic PolarDB: buffer pool M, no remote memory.
		q, err = best("polardb"+cf.label+"/", true, GBPages(cf.mGB), 0)
		if err != nil {
			return nil, fmt.Errorf("fig10a polardb %s: %w", cf.label, err)
		}
		classic.Points = append(classic.Points, Point{Label: cf.label, Y: q * 60})
	}
	res.Series = []Series{serverless, classic}
	res.Notes = append(res.Notes,
		"expect: PolarDB wins config 1 (local memory beats remote); Serverless wins config 2",
		"(remote memory beats storage); comparable in config 3 (both fully cached)")
	return res, nil
}

func fig10aRun(res *Result, prefix string, tp *workload.TPCC, classic bool, cachePages, poolPages int, dur time.Duration, workers int) (float64, error) {
	cfg := cluster.Config{
		RONodes:            0,
		LocalCachePages:    cachePages,
		NoRemoteMemory:     classic,
		CheckpointInterval: 200 * time.Millisecond,
		LockWait:           50 * time.Millisecond, // deadlocks abort fast, txn retries
	}
	if !classic {
		cfg.SlabPages = 256
		cfg.MemorySlabs = (poolPages + 255) / 256
	}
	c, err := launch(cfg)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if err := tp.Load(c); err != nil {
		return 0, err
	}
	var newOrders atomic.Uint64
	_, err = runQPS(c, workers, dur, func(s *cluster.Session, rng *rand.Rand) error {
		isNO, err := tp.Mix(s, rng)
		if isNO && err == nil {
			newOrders.Add(1)
		}
		if ignorable(err) {
			return nil // aborted + retried, as TPC-C expects under contention
		}
		return err
	})
	res.Capture(prefix, c)
	return float64(newOrders.Load()) / dur.Seconds(), err
}

// Fig10b reproduces Figure 10(b): TPC-H query latency for Q4, Q5, Q10,
// Q12, Q15 under (LM:8,RM:64) Serverless, PolarDB (M:64), and a larger
// (LM:64,RM:256) Serverless.
func Fig10b(sc Scale) (*Result, error) {
	queries := []string{"Q4", "Q5", "Q10", "Q12", "Q15"}
	sf := 6
	if sc.Small {
		sf = 3
	}
	type config struct {
		name       string
		classic    bool
		cachePages int
		poolPages  int
	}
	configs := []config{
		{"Serverless (LM:8,RM:64)", false, GBPages(8), GBPages(64)},
		{"PolarDB (M:64)", true, GBPages(64), 0},
		{"Serverless (LM:64,RM:256)", false, GBPages(64), GBPages(256)},
	}
	res := &Result{ID: "fig10b", Title: fmt.Sprintf("TPC-H latency (SF-lite=%d), Serverless vs PolarDB", sf)}
	for _, cf := range configs {
		series := Series{Name: cf.name}
		lat, err := fig10bRun(res, cf.name+"/", sf, cf.classic, cf.cachePages, cf.poolPages, queries)
		if err != nil {
			return nil, fmt.Errorf("fig10b %s: %w", cf.name, err)
		}
		for _, q := range queries {
			series.Points = append(series.Points, Point{Label: q, Y: lat[q].Seconds() * 1000})
		}
		res.Series = append(res.Series, series)
	}
	res.Notes = append(res.Notes,
		"latency in ms; expect the small-LM serverless between the fully-cached configs,",
		"and PolarDB(M:64) ~ Serverless(LM:64) when data fits either way")
	return res, nil
}

func fig10bRun(res *Result, prefix string, sf int, classic bool, cachePages, poolPages int, queries []string) (map[string]time.Duration, error) {
	cfg := cluster.Config{
		RONodes:            0,
		LocalCachePages:    cachePages,
		NoRemoteMemory:     classic,
		CheckpointInterval: 200 * time.Millisecond,
	}
	if !classic {
		cfg.SlabPages = 256
		cfg.MemorySlabs = (poolPages + 255) / 256
	}
	c, err := launch(cfg)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	h := &workload.TPCH{SF: sf}
	if err := h.Load(c); err != nil {
		return nil, err
	}
	s := c.Proxy.Connect()
	defer s.Close()
	// Warm steady state, like the paper: one warm pass, then the measured
	// pass. The latency difference then reflects where each config's
	// capacity misses land (local / remote memory / storage).
	out := make(map[string]time.Duration, len(queries))
	for _, q := range queries {
		if _, err := h.Run(q, s, workload.QueryOpts{}); err != nil {
			return nil, fmt.Errorf("%s warm: %w", q, err)
		}
		t0 := time.Now()
		if _, err := h.Run(q, s, workload.QueryOpts{}); err != nil {
			return nil, fmt.Errorf("%s: %w", q, err)
		}
		out[q] = time.Since(t0)
	}
	res.Capture(prefix, c)
	return out, nil
}
