// Package bench regenerates every figure of the paper's evaluation
// (§6): the workload generators, parameter sweeps, baselines and
// measurement harnesses behind Figures 8-15. Each FigN function returns a
// Result whose series mirror the figure's axes; Print renders the same
// rows the paper plots.
//
// Absolute numbers differ from the paper's (the substrate is a simulated
// fabric at MB scale, not a 32-machine RDMA cluster) — the reproduction
// targets the *shape*: who wins, by roughly what factor, and where the
// crossovers fall. EXPERIMENTS.md records paper-vs-measured per figure.
//
// Scaling rule used throughout: the paper's 1 GB ≈ 64 of our 4 KiB pages
// (so a "0.5 GB local / 4 GB remote" config becomes 32 / 256 pages), and
// dataset sizes are chosen to preserve each experiment's ratio of working
// set to the memory tiers.
package bench

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"polardb/internal/btree"
	"polardb/internal/cluster"
	"polardb/internal/rdma"
	"polardb/internal/stat"
	"polardb/internal/txn"
)

// GBPages converts the paper's GB figures into simulated pages.
func GBPages(gb float64) int {
	p := int(gb * 64)
	if p < 8 {
		p = 8
	}
	return p
}

// Result is one regenerated figure.
type Result struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	Series []Series `json:"series"`
	Notes  []string `json:"notes,omitempty"`
	// Metrics are per-node stat registry snapshots captured from the
	// figure's measurement clusters, keyed "<config prefix><node id>"
	// (the prefix is empty for single-cluster figures). They record the
	// per-layer traffic behind the figure's shape — verb mix, hit rates,
	// invalidation fan-out — and land in BENCH_<id>.json.
	Metrics map[string]stat.Snapshot `json:"metrics,omitempty"`
}

// Capture folds the cluster's per-node metric snapshots into the result
// under prefix ("" for single-cluster figures, "<config>/" when a figure
// launches one cluster per configuration).
func (r *Result) Capture(prefix string, c *cluster.Cluster) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]stat.Snapshot)
	}
	for node, snap := range c.Fabric.Metrics().Snapshot() {
		r.Metrics[prefix+node] = snap
	}
}

// Series is one line/bar group of a figure.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Point is one measurement. Label is used for categorical X axes (query
// names, configurations); X for numeric axes (time, memory size, threads).
type Point struct {
	Label string  `json:"label,omitempty"`
	X     float64 `json:"x,omitempty"`
	Y     float64 `json:"y"`
}

// Print renders the result as aligned text tables.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "=== %s: %s ===\n", r.ID, r.Title)
	// Categorical if any label set.
	categorical := false
	for _, s := range r.Series {
		for _, p := range s.Points {
			if p.Label != "" {
				categorical = true
			}
		}
	}
	if categorical {
		// Rows = labels, columns = series.
		labels := []string{}
		seen := map[string]bool{}
		for _, s := range r.Series {
			for _, p := range s.Points {
				if !seen[p.Label] {
					seen[p.Label] = true
					labels = append(labels, p.Label)
				}
			}
		}
		fmt.Fprintf(w, "%-24s", "")
		for _, s := range r.Series {
			fmt.Fprintf(w, "%20s", s.Name)
		}
		fmt.Fprintln(w)
		for _, l := range labels {
			fmt.Fprintf(w, "%-24s", l)
			for _, s := range r.Series {
				v, ok := lookup(s, l)
				if ok {
					fmt.Fprintf(w, "%20.2f", v)
				} else {
					fmt.Fprintf(w, "%20s", "-")
				}
			}
			fmt.Fprintln(w)
		}
	} else {
		for _, s := range r.Series {
			fmt.Fprintf(w, "-- %s\n", s.Name)
			for _, p := range s.Points {
				fmt.Fprintf(w, "   x=%-12.2f y=%.2f\n", p.X, p.Y)
			}
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func lookup(s Series, label string) (float64, bool) {
	for _, p := range s.Points {
		if p.Label == label {
			return p.Y, true
		}
	}
	return 0, false
}

// Summary returns a one-line digest (first/last point per series).
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", r.ID)
	for _, s := range r.Series {
		if len(s.Points) == 0 {
			continue
		}
		fmt.Fprintf(&b, " %s[%0.1f..%0.1f]", s.Name, s.Points[0].Y, s.Points[len(s.Points)-1].Y)
	}
	return b.String()
}

// Scale selects experiment sizes. Small keeps every figure under ~1 min
// for the go-test bench harness; Full approaches the paper's ratios more
// closely (cmd/polarbench -full).
type Scale struct {
	Small bool
}

// benchFabric is the latency profile used for all measurements. Relative
// costs follow the RoCEv2 hierarchy; storage is two orders of magnitude
// above remote memory.
func benchFabric() rdma.Config {
	cfg := rdma.DefaultConfig()
	return cfg
}

// launch builds a measurement cluster.
func launch(cfg cluster.Config) (*cluster.Cluster, error) {
	if cfg.Fabric.TimeScale == 0 {
		cfg.Fabric = benchFabric()
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = time.Hour // benches drive failover manually
	}
	return cluster.Launch(cfg)
}

// runQPS drives fn from `workers` sessions for dur and returns completed
// ops/second.
func runQPS(c *cluster.Cluster, workers int, dur time.Duration, fn func(*cluster.Session, *rand.Rand) error) (float64, error) {
	var ops atomic.Uint64
	var firstErr atomic.Value
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			s := c.Proxy.Connect()
			defer s.Close()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := fn(s, rng); err != nil {
					firstErr.Store(err)
					return
				}
				ops.Add(1)
			}
		}(int64(w) + 1)
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return 0, err
	}
	return float64(ops.Load()) / dur.Seconds(), nil
}

// qpsWindows samples completed-op counts in fixed windows while fn loops,
// until stopAt elapses; returns per-window QPS.
type windowedLoad struct {
	ops    atomic.Uint64
	stop   chan struct{}
	wg     sync.WaitGroup
	errors atomic.Uint64
}

// startLoad launches looping workers; callers sample ops with snapshots.
func startLoad(c *cluster.Cluster, workers int, fn func(*cluster.Session, *rand.Rand) error) *windowedLoad {
	l := &windowedLoad{stop: make(chan struct{})}
	for w := 0; w < workers; w++ {
		l.wg.Add(1)
		go func(seed int64) {
			defer l.wg.Done()
			s := c.Proxy.Connect()
			defer s.Close()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-l.stop:
					return
				default:
				}
				if err := fn(s, rng); err != nil {
					l.errors.Add(1)
					// Transient failures during failover: back off briefly
					// and keep going (clients retry).
					select {
					case <-l.stop:
						return
					case <-time.After(2 * time.Millisecond):
					}
					continue
				}
				l.ops.Add(1)
			}
		}(int64(w) + 1)
	}
	return l
}

func (l *windowedLoad) snapshot() uint64 { return l.ops.Load() }

func (l *windowedLoad) halt() {
	close(l.stop)
	l.wg.Wait()
}

// medianOf returns the median of samples.
func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	return ys[len(ys)/2]
}

// ignorable reports errors that a benchmark loop should treat as an
// aborted-and-retried transaction rather than a harness failure (TPC-C
// expects lock-timeout aborts under contention).
func ignorable(err error) bool {
	return errors.Is(err, txn.ErrLockTimeout)
}

// roMode maps a friendly name to the traversal mode.
func roMode(pessimistic bool) btree.TraverseMode {
	if pessimistic {
		return btree.PessimisticS
	}
	return btree.Optimistic
}
