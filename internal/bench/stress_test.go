package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"polardb/internal/btree"
	"polardb/internal/cluster"
	"polardb/internal/rdma"
	"polardb/internal/txn"
	"polardb/internal/workload"
)

// TestTPCCStressConsistency hammers the TPC-C mix with a tiny local cache
// (constant eviction + write-back + reload through the remote pool) and
// fails on any anomaly. It is the regression test for the
// eviction/reload interlock: without it, a page being written back could
// be resurrected from stale storage, losing committed undo records.
func TestTPCCStressConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	cfg := cluster.Config{
		Fabric:             rdma.TestConfig(),
		RONodes:            0,
		LocalCachePages:    GBPages(0.5),
		SlabPages:          256,
		MemorySlabs:        8,
		CheckpointInterval: 100 * time.Millisecond,
		LockWait:           50 * time.Millisecond,
		HeartbeatInterval:  time.Hour,
	}
	c, err := cluster.Launch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tp := &workload.TPCC{Warehouses: 2, Districts: 10, Customers: 100, Items: 3000}
	if err := tp.Load(c); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var mu sync.Mutex
	var anomaly error
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			s := c.Proxy.Connect()
			defer s.Close()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := tp.Mix(s, rng)
				if err != nil && !ignorable(err) {
					mu.Lock()
					if anomaly == nil {
						anomaly = err
					}
					mu.Unlock()
					return
				}
			}
		}(int64(w))
	}
	time.Sleep(4 * time.Second)
	close(stop)
	wg.Wait()
	if anomaly != nil {
		// Forensics: dump the raw record of the key named in the error.
		fmt.Printf("anomaly: %v\n", anomaly)
		tbl, _ := c.RW.Engine.OpenTable(workload.TStock)
		// Try a few raw reads around the whole stock range.
		for w := 1; w <= 2; w++ {
			for i := 1; i <= 3000; i += 997 {
				key := uint64(w)*1_000_000 + uint64(i)
				raw, err := tbl.Primary.Get(key, btree.Local)
				if err != nil {
					fmt.Printf("raw get %d: %v\n", key, err)
					continue
				}
				rec, _ := txn.UnmarshalRecord(raw)
				fmt.Printf("key %d: trx=%d cts=%d undo=%d/%d tomb=%v len=%d\n",
					key, rec.Trx, rec.CTS, rec.UndoPage, rec.UndoOff, rec.Tombstone, len(rec.Payload))
			}
		}
		t.Fatalf("anomaly: %v", anomaly)
	}
}
