package bench

import (
	"fmt"
	"time"

	"polardb/internal/cluster"
	"polardb/internal/workload"
)

// Fig13 reproduces Figure 13: TPC-H query latency with the *remote* pool
// swept 32 GB -> 256 GB and the local cache pinned small (8 GB). With a
// small pool most misses continue to storage; once the pool holds the
// working set they stop at remote memory — the paper reports ~3x average
// speedup for two-thirds of the queries, with the short dimension-table
// queries (Q2, Q11, Q16) insensitive.
func Fig13(sc Scale) (*Result, error) {
	// The paper sweeps 32-256 GB against a 200 GB dataset (the smallest
	// pool holds ~16% of it). We preserve that *ratio*: the scaled dataset
	// is ~17 GBeq, so the sweep runs 4-32 GBeq.
	sizesGB := []float64{4, 8, 16, 32}
	queries := []string{"Q2", "Q4", "Q5", "Q8", "Q10", "Q11", "Q12", "Q14",
		"Q15", "Q16", "Q17", "Q18", "Q19"}
	sf := 8
	if sc.Small {
		sizesGB = []float64{4, 16, 32}
		queries = []string{"Q2", "Q5", "Q10", "Q12", "Q18"}
		sf = 4
	}
	res := &Result{ID: "fig13", Title: fmt.Sprintf("TPC-H latency vs remote memory size (SF-lite=%d, LM=1GBeq; pool/dataset ratio matches the paper)", sf)}

	for _, gb := range sizesGB {
		c, err := launch(cluster.Config{
			RONodes:            0,
			LocalCachePages:    GBPages(1),
			SlabPages:          64, // 1 GBeq slabs
			MemorySlabs:        int(gb),
			CheckpointInterval: 200 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		h := &workload.TPCH{SF: sf}
		if err := h.Load(c); err != nil {
			c.Close()
			return nil, err
		}
		s := c.Proxy.Connect()
		series := Series{Name: fmt.Sprintf("RM %g GBeq", gb)}
		for _, q := range queries {
			// Warm the pool (not the local cache) then measure.
			if _, err := h.Run(q, s, workload.QueryOpts{}); err != nil {
				s.Close()
				c.Close()
				return nil, fmt.Errorf("%s warm: %w", q, err)
			}
			c.RW.Engine.Cache().EvictAll()
			t0 := time.Now()
			if _, err := h.Run(q, s, workload.QueryOpts{}); err != nil {
				s.Close()
				c.Close()
				return nil, fmt.Errorf("%s: %w", q, err)
			}
			series.Points = append(series.Points, Point{Label: q, Y: time.Since(t0).Seconds() * 1000})
		}
		s.Close()
		res.Capture(fmt.Sprintf("RM%g/", gb), c)
		c.Close()
		res.Series = append(res.Series, series)
	}
	res.Notes = append(res.Notes,
		"expect: scan/join queries speed up ~2-3x as the pool absorbs the working set;",
		"Q2/Q11/Q16 (small dimension scans) stay flat")
	return res, nil
}
