package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"polardb/internal/cluster"
	"polardb/internal/workload"
)

// Fig09 reproduces Figure 9: throughput timeline of an RW switch under
// four regimes — planned switch, unplanned crash with the remote memory
// pool, unplanned crash with page materialization only (no remote
// memory), and unplanned crash without page materialization (single-node
// redo replay from the last page flush — the monolithic baseline). The
// paper's headline: the last regime takes 5.3x longer to resume service.
func Fig09(sc Scale) (*Result, error) {
	warm := 1500 * time.Millisecond
	rows := uint64(20000)
	workers := 4
	if sc.Small {
		warm = 1000 * time.Millisecond
		rows = 12000
	}

	type variant struct {
		name        string
		remoteMem   bool
		traditional bool
		run         func(c *cluster.Cluster) error
	}
	variants := []variant{
		{"planned switch", true, false, func(c *cluster.Cluster) error { return c.CM.SwitchOver() }},
		{"with remote memory", true, false, func(c *cluster.Cluster) error {
			c.Proxy.RWNodeKill()
			return c.CM.Failover(false)
		}},
		{"with page mat. only", false, false, func(c *cluster.Cluster) error {
			c.Proxy.RWNodeKill()
			return c.CM.Failover(false)
		}},
		{"w/o page mat.", false, true, func(c *cluster.Cluster) error {
			c.Proxy.RWNodeKill()
			return c.CM.FailoverTraditional()
		}},
	}

	res := &Result{ID: "fig09", Title: "recovery timeline after RW switch/crash (QPS per window)"}
	for _, v := range variants {
		series, ttfs, ttr, err := fig09Variant(res, v.remoteMem, v.traditional, v.run, warm, rows, workers, v.name)
		if err != nil {
			return nil, fmt.Errorf("fig09 %s: %w", v.name, err)
		}
		res.Series = append(res.Series, series)
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%-22s time-to-first-txn=%6.0fms  time-to-90%%=%6.0fms", v.name,
			ttfs.Seconds()*1000, ttr.Seconds()*1000))
	}
	return res, nil
}

func fig09Variant(res *Result, remoteMem, traditional bool, doSwitch func(*cluster.Cluster) error,
	warm time.Duration, rows uint64, workers int, name string,
) (Series, time.Duration, time.Duration, error) {
	cfg := cluster.Config{
		RONodes:            1,
		MemorySlabs:        24,
		SlabPages:          256,
		LocalCachePages:    256, // holds the hot set; the pool holds everything
		NoRemoteMemory:     !remoteMem,
		CheckpointInterval: 200 * time.Millisecond,
	}
	if traditional {
		// A traditional engine has no continuous materialization: redo
		// accumulates since the last (rare) checkpoint, and recovery must
		// replay all of it on one node before serving.
		cfg.CheckpointInterval = 0
	}
	c, err := launch(cfg)
	if err != nil {
		return Series{}, 0, 0, err
	}
	defer c.Close()
	sb := &workload.Sysbench{Rows: rows, Dist: workload.Skewed, RangeSize: 20, PayloadSize: 96}
	if err := sb.Load(c); err != nil {
		return Series{}, 0, 0, err
	}

	// The load records the first successful transaction after the switch
	// completed (time-to-resume-service, the paper's headline metric).
	var stateMu sync.Mutex
	var crashAt time.Time
	var firstOK time.Time
	switchDone := false
	load := startLoad(c, workers, func(s *cluster.Session, rng *rand.Rand) error {
		_, err := sb.ReadWriteTxn(s, rng)
		if err == nil {
			stateMu.Lock()
			if switchDone && firstOK.IsZero() {
				firstOK = time.Now()
			}
			stateMu.Unlock()
		}
		return err
	})
	defer load.halt()

	window := 50 * time.Millisecond
	series := Series{Name: name}
	var preQPS []float64
	t0 := time.Now()
	last := load.snapshot()
	for time.Since(t0) < warm {
		time.Sleep(window)
		cur := load.snapshot()
		q := float64(cur-last) / window.Seconds()
		preQPS = append(preQPS, q)
		series.Points = append(series.Points, Point{X: time.Since(t0).Seconds(), Y: q})
		last = cur
	}
	peak := medianOf(preQPS)

	// The switch/crash.
	stateMu.Lock()
	crashAt = time.Now()
	stateMu.Unlock()
	switchErr := make(chan error, 1)
	go func() {
		err := doSwitch(c)
		stateMu.Lock()
		switchDone = true
		stateMu.Unlock()
		switchErr <- err
	}()

	var ttRecover time.Duration
	recovered := 0
	deadline := time.Now().Add(90 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(window)
		cur := load.snapshot()
		q := float64(cur-last) / window.Seconds()
		series.Points = append(series.Points, Point{X: time.Since(t0).Seconds(), Y: q})
		last = cur
		if q >= 0.9*peak {
			recovered++
			if recovered >= 3 && ttRecover == 0 {
				ttRecover = time.Since(crashAt)
				break
			}
		} else {
			recovered = 0
		}
	}
	if err := <-switchErr; err != nil {
		return series, 0, ttRecover, err
	}
	if ttRecover == 0 {
		ttRecover = time.Since(crashAt)
	}
	stateMu.Lock()
	ttFirst := time.Duration(0)
	if !firstOK.IsZero() {
		ttFirst = firstOK.Sub(crashAt)
	}
	stateMu.Unlock()
	res.Capture(name+"/", c)
	return series, ttFirst, ttRecover, nil
}
