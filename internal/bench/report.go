package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// RunSchema versions the BENCH_*.json layout; bump on incompatible
// changes so -report can refuse stale files instead of mis-rendering.
const RunSchema = 1

// Run is the machine-readable record of one figure run, persisted as
// BENCH_<result id>.json. EXPERIMENTS.md's measured sections are a pure
// function of these files: `polarbench -report` re-renders them without
// re-running anything, and re-rendering the same JSON is byte-identical.
type Run struct {
	Schema int     `json:"schema"`
	Fig    string  `json:"fig"`   // polarbench -fig id ("8", "10a", ...)
	Date   string  `json:"date"`  // YYYY-MM-DD, stamped when the run was written
	Scale  string  `json:"scale"` // "small" or "full"
	Result *Result `json:"result"`
}

// RunFilename returns the canonical JSON filename for a figure result.
func RunFilename(resultID string) string { return "BENCH_" + resultID + ".json" }

// WriteRun persists the run, indented and with sorted keys (Go marshals
// map keys sorted), so diffs of committed BENCH_*.json stay readable.
func WriteRun(path string, run *Run) error {
	buf, err := json.MarshalIndent(run, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o666)
}

// LoadRun reads a BENCH_*.json file back.
func LoadRun(path string) (*Run, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var run Run
	if err := json.Unmarshal(buf, &run); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if run.Schema != RunSchema {
		return nil, fmt.Errorf("%s: schema %d, want %d (re-run polarbench)", path, run.Schema, RunSchema)
	}
	if run.Result == nil {
		return nil, fmt.Errorf("%s: no result", path)
	}
	return &run, nil
}

// digestCounters is the fixed, ordered set of per-layer counters the
// measured sections surface (only those present and nonzero are shown).
// Totals are summed across every captured node and configuration.
var digestCounters = []string{
	"rdma.read.ops",
	"rdma.write.ops",
	"rdma.atomic.ops",
	"rdma.rpc.ops",
	"engine.page.local_hit",
	"engine.page.remote_read",
	"engine.page.storage_read",
	"rmem.home.hits",
	"rmem.home.misses",
	"rmem.home.evictions",
	"rmem.invalidate.sent",
	"rmem.pl.fast",
	"rmem.pl.slow",
	"rmem.pl.sticky",
	"rmem.pl.revoke",
	"engine.mtr.commit",
	"raft.propose.ops",
}

// digestHists are the latency histograms worth a mean in the digest.
var digestHists = []string{
	"rdma.read.us",
	"rdma.rpc.us",
	"pfs.get_page.us",
	"pfs.append_redo.us",
}

// RenderMeasured renders the run's measured section body (the text
// between the figure's polarbench markers in EXPERIMENTS.md). It is a
// pure function of the Run, so re-rendering unchanged JSON is
// byte-identical.
func (run *Run) RenderMeasured() string {
	var b strings.Builder
	r := run.Result
	fmt.Fprintf(&b, "**Measured** — %s scale, %s, `go run ./cmd/polarbench -fig %s -out .` (`%s`):\n",
		run.Scale, run.Date, run.Fig, RunFilename(r.ID))

	if categorical(r) {
		renderCategorical(&b, r)
	} else {
		renderNumeric(&b, r)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "> %s\n", n)
	}
	renderDigest(&b, r)
	return b.String()
}

func categorical(r *Result) bool {
	for _, s := range r.Series {
		for _, p := range s.Points {
			if p.Label != "" {
				return true
			}
		}
	}
	return false
}

// renderCategorical emits a markdown table: rows = labels (first-seen
// order), one column per series.
func renderCategorical(b *strings.Builder, r *Result) {
	var labels []string
	seen := map[string]bool{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if !seen[p.Label] {
				seen[p.Label] = true
				labels = append(labels, p.Label)
			}
		}
	}
	b.WriteString("\n|  |")
	for _, s := range r.Series {
		fmt.Fprintf(b, " %s |", s.Name)
	}
	b.WriteString("\n|---|")
	for range r.Series {
		b.WriteString("---:|")
	}
	b.WriteString("\n")
	for _, l := range labels {
		fmt.Fprintf(b, "| %s |", l)
		for _, s := range r.Series {
			if v, ok := lookup(s, l); ok {
				fmt.Fprintf(b, " %s |", fmtFloat(v))
			} else {
				b.WriteString(" - |")
			}
		}
		b.WriteString("\n")
	}
	b.WriteString("\n")
}

// renderNumeric digests timeline-style series (many x/y samples) into
// per-series summary rows instead of dumping every window.
func renderNumeric(b *strings.Builder, r *Result) {
	b.WriteString("\n| series | points | first | min | max | last |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|\n")
	for _, s := range r.Series {
		if len(s.Points) == 0 {
			fmt.Fprintf(b, "| %s | 0 | - | - | - | - |\n", s.Name)
			continue
		}
		first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y
		min, max := first, first
		for _, p := range s.Points {
			if p.Y < min {
				min = p.Y
			}
			if p.Y > max {
				max = p.Y
			}
		}
		fmt.Fprintf(b, "| %s | %d | %s | %s | %s | %s |\n",
			s.Name, len(s.Points), fmtFloat(first), fmtFloat(min), fmtFloat(max), fmtFloat(last))
	}
	b.WriteString("\n")
}

// renderDigest emits the per-layer traffic totals behind the figure.
func renderDigest(b *strings.Builder, r *Result) {
	if len(r.Metrics) == 0 {
		return
	}
	counters := map[string]uint64{}
	type hsum struct{ count, sumNS uint64 }
	hists := map[string]hsum{}
	for _, snap := range r.Metrics {
		for name, v := range snap.Counters {
			counters[name] += v
		}
		for name, h := range snap.Histograms {
			cur := hists[name]
			cur.count += h.Count
			cur.sumNS += h.SumNS
			hists[name] = cur
		}
	}
	var parts []string
	for _, name := range digestCounters {
		if v := counters[name]; v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	for _, name := range digestHists {
		if h := hists[name]; h.count > 0 {
			parts = append(parts, fmt.Sprintf("%s(mean)=%.1fµs", name, float64(h.sumNS)/float64(h.count)/1e3))
		}
	}
	if len(parts) == 0 {
		return
	}
	fmt.Fprintf(b, "\nPer-layer traffic (summed over %d captured node registries):\n", len(r.Metrics))
	fmt.Fprintf(b, "`%s`\n", strings.Join(parts, "` `"))
}

// fmtFloat renders measurement values compactly and deterministically:
// two decimals, with trailing ".00" dropped for whole numbers.
func fmtFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimSuffix(s, ".00")
	return s
}

// Marker delimiting a generated measured section in EXPERIMENTS.md.
func beginMarker(id string) string { return "<!-- polarbench:begin " + id + " -->" }
func endMarker(id string) string   { return "<!-- polarbench:end " + id + " -->" }

// UpdateExperiments replaces the generated section for the run's figure
// (the text between its polarbench begin/end markers) in doc. The
// markers themselves are kept, so the update is re-runnable.
func UpdateExperiments(doc string, run *Run) (string, error) {
	id := run.Result.ID
	begin, end := beginMarker(id), endMarker(id)
	bi := strings.Index(doc, begin)
	if bi < 0 {
		return "", fmt.Errorf("EXPERIMENTS.md: marker %q not found", begin)
	}
	ei := strings.Index(doc, end)
	if ei < 0 {
		return "", fmt.Errorf("EXPERIMENTS.md: marker %q not found", end)
	}
	if ei < bi {
		return "", fmt.Errorf("EXPERIMENTS.md: %q precedes %q", end, begin)
	}
	return doc[:bi+len(begin)] + "\n" + run.RenderMeasured() + doc[ei:], nil
}

// Report loads every BENCH_*.json under dir and rewrites the matching
// measured sections of the experiments file in place. Returns the ids
// updated (sorted).
func Report(dir, experiments string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "BENCH_") && strings.HasSuffix(name, ".json") {
			paths = append(paths, dir+string(os.PathSeparator)+name)
		}
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no BENCH_*.json in %s (run polarbench -all -out %s first)", dir, dir)
	}
	sort.Strings(paths)
	docBytes, err := os.ReadFile(experiments)
	if err != nil {
		return nil, err
	}
	doc := string(docBytes)
	var ids []string
	for _, p := range paths {
		run, err := LoadRun(p)
		if err != nil {
			return nil, err
		}
		doc, err = UpdateExperiments(doc, run)
		if err != nil {
			return nil, err
		}
		ids = append(ids, run.Result.ID)
	}
	return ids, os.WriteFile(experiments, []byte(doc), 0o666)
}
