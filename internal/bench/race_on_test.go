//go:build race

package bench

// raceEnabled reports whether this test binary was built with the race
// detector, which slows the figure harnesses 10-20x.
const raceEnabled = true
