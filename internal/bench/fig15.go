package bench

import (
	"fmt"
	"time"

	"polardb/internal/cluster"
	"polardb/internal/workload"
)

// Fig15 reproduces Figure 15: the effect of Batched Key PrePare (BKP)
// prefetching on indexed equi-join queries (Q3, Q5, Q8, Q9, Q10), with
// the inner-table pages initially (a) in remote memory and (b) only in
// storage (remote memory off). Prefetching hides remote latency behind
// the probe phase; the paper reports average latency reductions of 25.4%
// (memory) and 52.3% (storage).
func Fig15(sc Scale) (*Result, error) {
	queries := []string{"Q3", "Q5", "Q8", "Q9", "Q10"}
	sfMem, sfSto := 4, 6
	if sc.Small {
		queries = []string{"Q3", "Q9", "Q10"}
		sfMem, sfSto = 3, 3
	}
	res := &Result{ID: "fig15", Title: "BKP prefetching on remote memory (a) and remote storage (b)"}

	memPlain, memBKP, err := fig15Run(res, "mem/", sfMem, true, queries)
	if err != nil {
		return nil, fmt.Errorf("fig15a: %w", err)
	}
	stoPlain, stoBKP, err := fig15Run(res, "storage/", sfSto, false, queries)
	if err != nil {
		return nil, fmt.Errorf("fig15b: %w", err)
	}
	mk := func(name string, m map[string]time.Duration) Series {
		s := Series{Name: name}
		for _, q := range queries {
			s.Points = append(s.Points, Point{Label: q, Y: m[q].Seconds() * 1000})
		}
		return s
	}
	res.Series = []Series{
		mk("mem w/o BKP", memPlain), mk("mem BKP", memBKP),
		mk("storage w/o BKP", stoPlain), mk("storage BKP", stoBKP),
	}
	res.Notes = append(res.Notes,
		"expect: BKP cuts latency on both tiers, with a larger relative win on storage",
		"(higher per-miss latency to hide)")
	return res, nil
}

// fig15Run measures each query cold (local cache dropped) with and
// without BKP. remoteMem=false turns the pool off so misses go to storage.
func fig15Run(res *Result, prefix string, sf int, remoteMem bool, queries []string) (plain, bkp map[string]time.Duration, err error) {
	cfg := cluster.Config{
		RONodes:            0,
		LocalCachePages:    GBPages(2),
		NoRemoteMemory:     !remoteMem,
		SlabPages:          256,
		MemorySlabs:        16,
		CheckpointInterval: 200 * time.Millisecond,
	}
	c, err := launch(cfg)
	if err != nil {
		return nil, nil, err
	}
	defer c.Close()
	h := &workload.TPCH{SF: sf}
	if err := h.Load(c); err != nil {
		return nil, nil, err
	}
	s := c.Proxy.Connect()
	defer s.Close()
	if remoteMem {
		// Warm the pool so (a) genuinely measures remote-memory misses.
		for _, q := range queries {
			if _, err := h.Run(q, s, workload.QueryOpts{}); err != nil {
				return nil, nil, err
			}
		}
	}
	measure := func(opts workload.QueryOpts) (map[string]time.Duration, error) {
		out := make(map[string]time.Duration, len(queries))
		for _, q := range queries {
			c.RW.Engine.Cache().EvictAll()
			t0 := time.Now()
			if _, err := h.Run(q, s, opts); err != nil {
				return nil, fmt.Errorf("%s: %w", q, err)
			}
			out[q] = time.Since(t0)
		}
		return out, nil
	}
	plain, err = measure(workload.QueryOpts{})
	if err != nil {
		return nil, nil, err
	}
	bkp, err = measure(workload.QueryOpts{BKP: true, Engine: c.RW.Engine})
	if err != nil {
		return nil, nil, err
	}
	res.Capture(prefix, c)
	return plain, bkp, nil
}
