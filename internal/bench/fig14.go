package bench

import (
	"fmt"
	"math/rand"
	"time"

	"polardb/internal/cluster"
	"polardb/internal/workload"
)

// Fig14 reproduces Figure 14: total read throughput with optimistic
// (Olock) vs pessimistic (Plock) global page latching on the RO node, as
// client concurrency grows 32 -> 128 threads. The proxy sends writes to
// the RW and balances reads; under Plock every RO page visit takes a
// global S latch (RDMA CAS + contention with the writer's sticky X
// latches), so its throughput collapses at high concurrency while Olock
// only pays SMO-retry costs.
func Fig14(sc Scale) (*Result, error) {
	threads := []int{32, 64, 96, 128}
	dur := 1200 * time.Millisecond
	rows := uint64(8000)
	if sc.Small {
		threads = []int{16, 48, 96}
		dur = 800 * time.Millisecond
		rows = 5000
	}
	res := &Result{ID: "fig14", Title: "read QPS: optimistic vs pessimistic PL locking"}
	for _, dist := range []workload.Distribution{workload.Uniform, workload.Skewed} {
		for _, pess := range []bool{false, true} {
			name := dist.String() + "-"
			if pess {
				name += "Plock"
			} else {
				name += "Olock"
			}
			series := Series{Name: name}
			for _, n := range threads {
				qps, err := fig14Run(res, name+"/", rows, dist, pess, n, dur)
				if err != nil {
					return nil, fmt.Errorf("fig14 %s n=%d: %w", name, n, err)
				}
				series.Points = append(series.Points, Point{Label: fmt.Sprintf("%d threads", n), X: float64(n), Y: qps})
			}
			res.Series = append(res.Series, series)
		}
	}
	res.Notes = append(res.Notes,
		"expect: Plock loses a large share of QPS as threads grow; Olock stays near flat")
	return res, nil
}

func fig14Run(res *Result, prefix string, rows uint64, dist workload.Distribution, pessimistic bool, threads int, dur time.Duration) (float64, error) {
	cfg := cluster.Config{
		RONodes:            1,
		LocalCachePages:    GBPages(4),
		SlabPages:          256,
		MemorySlabs:        8,
		ROMode:             roMode(pessimistic),
		CheckpointInterval: 200 * time.Millisecond,
	}
	c, err := launch(cfg)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	sb := &workload.Sysbench{Rows: rows, Dist: dist, RangeSize: 20, PayloadSize: 96}
	if err := sb.Load(c); err != nil {
		return 0, err
	}
	// One writer session keeps SMOs happening (inserting fresh keys), so
	// PL latches are genuinely contended.
	stopW := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		s := c.Proxy.Connect()
		defer s.Close()
		rng := rand.New(rand.NewSource(99))
		k := rows
		for {
			select {
			case <-stopW:
				return
			default:
			}
			_ = s.Exec(workload.TableName, cluster.OpPut, k, []byte("w"))
			k++
			_ = rng
		}
	}()
	// Reader threads measure point-read throughput.
	qps, err := runQPS(c, threads, dur, func(s *cluster.Session, rng *rand.Rand) error {
		k := uint64(rng.Int63n(int64(rows)))
		if dist == workload.Skewed && rng.Intn(100) < 95 {
			k = uint64(rng.Int63n(int64(rows/20 + 1)))
		}
		_, _, err := s.Get(workload.TableName, k)
		return err
	})
	close(stopW)
	<-writerDone
	res.Capture(prefix, c)
	return qps, err
}
