package bench

import (
	"os"
	"testing"
)

// Smoke tests: every figure harness runs end to end at Small scale and
// produces plausible series. (The root bench_test.go exposes them as
// testing.B benchmarks; these guard against regressions in go test runs.)
// They are skipped in -short mode: each takes tens of seconds.

// skipHeavyUnderRace exempts the longest figure harnesses from race-enabled
// runs: the detector slows them 10-20x, pushing the package past go test's
// default 10-minute budget. The remaining figures keep the cluster, engine
// and rmem paths under the detector; the skipped ones run in the plain
// suite.
func skipHeavyUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("figure too heavy under -race; covered by the non-race run")
	}
}

func runFig(t *testing.T, fn func(Scale) (*Result, error), minSeries int) *Result {
	t.Helper()
	if testing.Short() {
		t.Skip("figure smoke tests skipped in -short mode")
	}
	r, err := fn(Scale{Small: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) < minSeries {
		t.Fatalf("%s: %d series, want >= %d", r.ID, len(r.Series), minSeries)
	}
	for _, s := range r.Series {
		if len(s.Points) == 0 {
			t.Fatalf("%s series %s empty", r.ID, s.Name)
		}
	}
	r.Print(os.Stdout)
	return r
}

func TestFig08Smoke(t *testing.T) { runFig(t, Fig08, 2) }
func TestFig09Smoke(t *testing.T) { runFig(t, Fig09, 4) }
func TestFig10aSmoke(t *testing.T) {
	skipHeavyUnderRace(t)
	r := runFig(t, Fig10a, 2)
	// Shape assertion: serverless wins the middle config.
	sv, pb := r.Series[0], r.Series[1]
	if sv.Points[1].Y <= pb.Points[1].Y {
		t.Logf("warning: serverless (%0.0f) did not beat PolarDB (%0.0f) in config 2",
			sv.Points[1].Y, pb.Points[1].Y)
	}
}
func TestFig10bSmoke(t *testing.T) { runFig(t, Fig10b, 3) }
func TestFig11Smoke(t *testing.T)  { skipHeavyUnderRace(t); runFig(t, Fig11, 6) }
func TestFig12Smoke(t *testing.T)  { runFig(t, Fig12, 3) }
func TestFig13Smoke(t *testing.T)  { skipHeavyUnderRace(t); runFig(t, Fig13, 3) }
func TestFig14Smoke(t *testing.T)  { skipHeavyUnderRace(t); runFig(t, Fig14, 4) }
func TestFig15Smoke(t *testing.T)  { runFig(t, Fig15, 4) }
