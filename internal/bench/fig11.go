package bench

import (
	"fmt"
	"math/rand"
	"time"

	"polardb/internal/cluster"
	"polardb/internal/workload"
)

// Fig11 reproduces Figure 11: mixed read/write throughput plus the number
// of pages swapped between local and remote memory, sweeping the local
// memory size (paper: 0.5-24 GB) with the remote pool fixed large enough
// for the dataset. Three panels: (a) sysbench uniform, (b) sysbench
// skewed, (c) TPC-C.
func Fig11(sc Scale) (*Result, error) {
	sizesGB := []float64{0.5, 1, 2, 4, 8, 24}
	dur := 1500 * time.Millisecond
	rows := uint64(20000)
	if sc.Small {
		sizesGB = []float64{0.5, 2, 8, 24}
		dur = 800 * time.Millisecond
		rows = 10000
	}
	res := &Result{ID: "fig11", Title: "throughput + pages swapped vs local memory size (GBeq)"}

	panels := []struct {
		name string
		run  func(prefix string, lmPages int) (float64, uint64, error)
	}{
		{"uniform", func(prefix string, lm int) (float64, uint64, error) {
			return fig11Sysbench(res, prefix, rows, workload.Uniform, lm, dur)
		}},
		{"skewed", func(prefix string, lm int) (float64, uint64, error) {
			return fig11Sysbench(res, prefix, rows, workload.Skewed, lm, dur)
		}},
		{"tpcc", func(prefix string, lm int) (float64, uint64, error) {
			return fig11TPCC(res, prefix, lm, dur, sc)
		}},
	}
	for _, p := range panels {
		qps := Series{Name: p.name + " QPS"}
		swapped := Series{Name: p.name + " pages swapped"}
		for _, gb := range sizesGB {
			q, sw, err := p.run(fmt.Sprintf("%s-LM%g/", p.name, gb), GBPages(gb))
			if err != nil {
				return nil, fmt.Errorf("fig11 %s lm=%v: %w", p.name, gb, err)
			}
			label := fmt.Sprintf("LM %g GBeq", gb)
			qps.Points = append(qps.Points, Point{Label: label, X: gb, Y: q})
			swapped.Points = append(swapped.Points, Point{Label: label, X: gb, Y: float64(sw)})
		}
		res.Series = append(res.Series, qps, swapped)
	}
	res.Notes = append(res.Notes,
		"expect: QPS grows and swapping vanishes as local memory approaches the working set;",
		"skewed and TPC-C curves flatten earlier (hot set fits sooner) than uniform")
	return res, nil
}

func fig11Cluster(lmPages int) (*cluster.Cluster, error) {
	return launch(cluster.Config{
		RONodes:            0,
		LocalCachePages:    lmPages,
		SlabPages:          256,
		MemorySlabs:        12, // 3072 pages = 48 GBeq: holds every dataset here
		CheckpointInterval: 200 * time.Millisecond,
		LockWait:           50 * time.Millisecond,
	})
}

func fig11Sysbench(res *Result, prefix string, rows uint64, dist workload.Distribution, lmPages int, dur time.Duration) (float64, uint64, error) {
	c, err := fig11Cluster(lmPages)
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()
	sb := &workload.Sysbench{Rows: rows, Dist: dist, RangeSize: 20, PayloadSize: 96}
	if err := sb.Load(c); err != nil {
		return 0, 0, err
	}
	c.RW.Engine.Cache().ResetStats()
	qps, err := runQPS(c, 4, dur, func(s *cluster.Session, rng *rand.Rand) error {
		_, err := sb.ReadWriteTxn(s, rng)
		if ignorable(err) {
			return nil
		}
		return err
	})
	st := c.RW.Engine.Cache().Stats()
	res.Capture(prefix, c)
	return qps, st.SwappedIn + st.SwappedOut, err
}

func fig11TPCC(res *Result, prefix string, lmPages int, dur time.Duration, sc Scale) (float64, uint64, error) {
	c, err := fig11Cluster(lmPages)
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()
	tp := &workload.TPCC{Warehouses: 2, Districts: 10, Customers: 120, Items: 3000}
	if sc.Small {
		tp = &workload.TPCC{Warehouses: 1, Districts: 6, Customers: 60, Items: 1200}
	}
	if err := tp.Load(c); err != nil {
		return 0, 0, err
	}
	c.RW.Engine.Cache().ResetStats()
	tpm, err := runQPS(c, 4, dur, func(s *cluster.Session, rng *rand.Rand) error {
		_, err := tp.Mix(s, rng)
		if ignorable(err) {
			return nil
		}
		return err
	})
	st := c.RW.Engine.Cache().Stats()
	res.Capture(prefix, c)
	return tpm * 60, st.SwappedIn + st.SwappedOut, err
}
