package bench

import (
	"math/rand"
	"time"

	"polardb/internal/cluster"
	"polardb/internal/workload"
)

// Fig08 reproduces Figure 8: throughput of sysbench read-only range
// queries while the remote memory pool is scaled 8 GB -> 80 GB -> 48 GB
// -> 128 GB live (scaled to pages by GBPages). After each expansion
// throughput climbs gradually as new slabs warm; each shrink drops it
// immediately as pages are evicted wholesale.
func Fig08(sc Scale) (*Result, error) {
	// Paper sizes (GB) mapped to slabs of 64 pages (= "1 GB").
	sizesGB := []float64{8, 80, 48, 128}
	phase := 2500 * time.Millisecond
	rows := uint64(30000) // working set ≈ 90 GBeq > largest pool
	workers := 8
	if sc.Small {
		phase = 1200 * time.Millisecond
		rows = 12000
		workers = 4
	}

	c, err := launch(cluster.Config{
		RONodes:         1,
		SlabPages:       64, // 1 "GB" per slab
		MemorySlabs:     int(sizesGB[0]),
		LocalCachePages: GBPages(1),
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	sb := &workload.Sysbench{Rows: rows, Dist: workload.Uniform, RangeSize: 50}
	if err := sb.Load(c); err != nil {
		return nil, err
	}

	load := startLoad(c, workers, func(s *cluster.Session, rng *rand.Rand) error {
		_, err := sb.RangeTxn(s, rng)
		return err
	})
	defer load.halt()

	res := &Result{ID: "fig08", Title: "throughput while scaling remote memory 8->80->48->128 GBeq"}
	qps := Series{Name: "QPS"}
	capacity := Series{Name: "pool GBeq"}

	window := 100 * time.Millisecond
	t0 := time.Now()
	sample := func(until time.Duration, gb float64) {
		last := load.snapshot()
		for time.Since(t0) < until {
			time.Sleep(window)
			cur := load.snapshot()
			qps.Points = append(qps.Points, Point{
				X: time.Since(t0).Seconds(),
				Y: float64(cur-last) / window.Seconds(),
			})
			capacity.Points = append(capacity.Points, Point{
				X: time.Since(t0).Seconds(),
				Y: gb,
			})
			last = cur
		}
	}
	sample(phase, sizesGB[0])
	// Scale out to 80 GBeq.
	if _, err := c.GrowMemory(int(sizesGB[1] - sizesGB[0])); err != nil {
		return nil, err
	}
	sample(2*phase, sizesGB[1])
	// Scale in to 48 GBeq: slabs and pages removed at once.
	if _, err := c.ShrinkMemory(int(sizesGB[2]) * 64); err != nil {
		return nil, err
	}
	sample(3*phase, sizesGB[2])
	// Scale out to 128 GBeq.
	cur := c.Home.TotalSlots() / 64
	if _, err := c.GrowMemory(int(sizesGB[3]) - cur); err != nil {
		return nil, err
	}
	sample(4*phase, sizesGB[3])

	res.Series = []Series{qps, capacity}
	res.Capture("", c)
	res.Notes = append(res.Notes,
		"expect: QPS ramps after each grow (slabs warm gradually); drops at the shrink, then recovers")
	return res, nil
}
