package rdma

import (
	"fmt"
	"time"
)

// Handler processes a two-sided RPC on the receiving node. Handlers run on
// the callee's goroutine budget; returning an error propagates it to the
// caller verbatim.
type Handler func(from NodeID, req []byte) ([]byte, error)

// RegisterHandler installs an RPC handler under the given method name.
// Re-registering a name replaces the previous handler.
func (e *Endpoint) RegisterHandler(method string, h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handlers[method] = h
}

// DeregisterHandler removes an RPC handler.
func (e *Endpoint) DeregisterHandler(method string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.handlers, method)
}

// Call performs a two-sided RPC round trip to the target node. Request and
// response bytes both pay the per-KB bandwidth cost.
func (e *Endpoint) Call(target NodeID, method string, req []byte) ([]byte, error) {
	if e.isDown() {
		return nil, fmt.Errorf("%w: %s (local endpoint down)", ErrUnreachable, e.id)
	}
	callee, err := e.fabric.lookup(target)
	if err != nil {
		return nil, err
	}
	callee.mu.RLock()
	h, ok := callee.handlers[method]
	callee.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s on %s", ErrNoSuchHandler, method, target)
	}
	start := time.Now()
	e.fabric.delay(e.fabric.cfg.RPC/2, len(req))
	resp, err := h(e.id, req)
	if err != nil {
		return nil, err
	}
	// The callee may have been killed while the handler ran; the reply is
	// then lost from the caller's perspective.
	if callee.isDown() {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, target)
	}
	e.fabric.delay(e.fabric.cfg.RPC/2, len(resp))
	e.record(opRPC, len(req)+len(resp), start)
	return resp, nil
}

// CallTimeout is Call with a deadline. A handler that blocks past the
// deadline yields ErrUnreachable, modelling a hung peer; the handler's
// goroutine is abandoned (its late reply is dropped).
func (e *Endpoint) CallTimeout(target NodeID, method string, req []byte, timeout time.Duration) ([]byte, error) {
	type result struct {
		resp []byte
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := e.Call(target, method, req)
		ch <- result{resp, err}
	}()
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-time.After(timeout):
		return nil, fmt.Errorf("%w: %s (rpc %s timed out)", ErrUnreachable, target, method)
	}
}
