package rdma

import "sync/atomic"

type opClass int

const (
	opRead opClass = iota
	opWrite
	opAtomic
	opRPC
	numOpClasses
)

// Stats accumulates fabric-wide traffic counters.
type Stats struct {
	ops   [numOpClasses]atomic.Uint64
	bytes [numOpClasses]atomic.Uint64
}

func (s *Stats) record(c opClass, n int) {
	s.ops[c].Add(1)
	s.bytes[c].Add(uint64(n))
}

func (s *Stats) reset() {
	for i := range s.ops {
		s.ops[i].Store(0)
		s.bytes[i].Store(0)
	}
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Reads:      s.ops[opRead].Load(),
		ReadBytes:  s.bytes[opRead].Load(),
		Writes:     s.ops[opWrite].Load(),
		WriteBytes: s.bytes[opWrite].Load(),
		Atomics:    s.ops[opAtomic].Load(),
		RPCs:       s.ops[opRPC].Load(),
		RPCBytes:   s.bytes[opRPC].Load(),
	}
}

// StatsSnapshot is a point-in-time copy of fabric traffic counters.
type StatsSnapshot struct {
	Reads      uint64 // one-sided READ verbs issued
	ReadBytes  uint64
	Writes     uint64 // one-sided WRITE verbs issued
	WriteBytes uint64
	Atomics    uint64 // CAS + FETCH_ADD verbs issued
	RPCs       uint64 // two-sided round trips
	RPCBytes   uint64
}

// Sub returns the delta s - prev, counter-wise.
func (s StatsSnapshot) Sub(prev StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Reads:      s.Reads - prev.Reads,
		ReadBytes:  s.ReadBytes - prev.ReadBytes,
		Writes:     s.Writes - prev.Writes,
		WriteBytes: s.WriteBytes - prev.WriteBytes,
		Atomics:    s.Atomics - prev.Atomics,
		RPCs:       s.RPCs - prev.RPCs,
		RPCBytes:   s.RPCBytes - prev.RPCBytes,
	}
}
