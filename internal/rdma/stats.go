package rdma

import (
	"sync/atomic"
	"time"

	"polardb/internal/stat"
)

type opClass int

const (
	opRead opClass = iota
	opWrite
	opAtomic
	opRPC
	numOpClasses
)

// verbNames are the per-verb metric name stems under which each
// endpoint records its traffic (see DESIGN.md "Observability").
var verbNames = [numOpClasses]string{
	opRead:   "rdma.read",
	opWrite:  "rdma.write",
	opAtomic: "rdma.atomic",
	opRPC:    "rdma.rpc",
}

// verbMetrics are one endpoint's per-verb issue counters: ops, bytes
// moved, and end-to-end verb latency (injected fabric delay plus data
// copy). Handles are resolved once at attach time.
type verbMetrics struct {
	ops   [numOpClasses]*stat.Counter
	bytes [numOpClasses]*stat.Counter
	lat   [numOpClasses]*stat.Histogram
}

func newVerbMetrics(r *stat.Registry) *verbMetrics {
	m := &verbMetrics{}
	for c := opClass(0); c < numOpClasses; c++ {
		m.ops[c] = r.Counter(verbNames[c] + ".ops")
		m.bytes[c] = r.Counter(verbNames[c] + ".bytes")
		m.lat[c] = r.Histogram(verbNames[c] + ".us")
	}
	return m
}

// record counts one issued verb on the endpoint (per-node metrics) and
// on the fabric-wide totals.
func (e *Endpoint) record(c opClass, n int, start time.Time) {
	e.verbs.ops[c].Inc()
	e.verbs.bytes[c].Add(uint64(n))
	e.verbs.lat[c].Observe(time.Since(start))
	e.fabric.stats.record(c, n)
}

// Stats accumulates fabric-wide traffic counters.
type Stats struct {
	ops   [numOpClasses]atomic.Uint64
	bytes [numOpClasses]atomic.Uint64
}

func (s *Stats) record(c opClass, n int) {
	s.ops[c].Add(1)
	s.bytes[c].Add(uint64(n))
}

func (s *Stats) reset() {
	for i := range s.ops {
		s.ops[i].Store(0)
		s.bytes[i].Store(0)
	}
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Reads:      s.ops[opRead].Load(),
		ReadBytes:  s.bytes[opRead].Load(),
		Writes:     s.ops[opWrite].Load(),
		WriteBytes: s.bytes[opWrite].Load(),
		Atomics:    s.ops[opAtomic].Load(),
		RPCs:       s.ops[opRPC].Load(),
		RPCBytes:   s.bytes[opRPC].Load(),
	}
}

// StatsSnapshot is a point-in-time copy of fabric traffic counters.
type StatsSnapshot struct {
	Reads      uint64 // one-sided READ verbs issued
	ReadBytes  uint64
	Writes     uint64 // one-sided WRITE verbs issued
	WriteBytes uint64
	Atomics    uint64 // CAS + FETCH_ADD verbs issued
	RPCs       uint64 // two-sided round trips
	RPCBytes   uint64
}

// Sub returns the delta s - prev, counter-wise.
func (s StatsSnapshot) Sub(prev StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Reads:      s.Reads - prev.Reads,
		ReadBytes:  s.ReadBytes - prev.ReadBytes,
		Writes:     s.Writes - prev.Writes,
		WriteBytes: s.WriteBytes - prev.WriteBytes,
		Atomics:    s.Atomics - prev.Atomics,
		RPCs:       s.RPCs - prev.RPCs,
		RPCBytes:   s.RPCBytes - prev.RPCBytes,
	}
}
