// Package rdma simulates an RDMA fabric connecting the nodes of a
// disaggregated data center.
//
// The real PolarDB Serverless runs on RoCEv2 NICs and relies on two
// properties of RDMA that this package reproduces in-process:
//
//   - One-sided verbs (READ, WRITE, CAS, FETCH_ADD) that access registered
//     remote memory regions without involving the remote CPU.
//   - A latency hierarchy: local memory ≪ remote memory ≪ remote storage.
//
// Every node in the simulation owns an Endpoint. Endpoints register memory
// Regions (making them remotely accessible) and RPC handlers (two-sided
// messaging). All cross-node interaction in the repository flows through
// this package, never through shared Go pointers, so coherence and
// consistency protocols must actually run.
package rdma

import (
	"errors"
	"fmt"
	"sync"

	"polardb/internal/stat"
)

// NodeID identifies a node attached to the fabric.
type NodeID string

// Common errors returned by fabric operations.
var (
	ErrUnreachable   = errors.New("rdma: node unreachable")
	ErrNoSuchNode    = errors.New("rdma: no such node")
	ErrNoSuchRegion  = errors.New("rdma: no such memory region")
	ErrOutOfBounds   = errors.New("rdma: access out of region bounds")
	ErrNoSuchHandler = errors.New("rdma: no such rpc handler")
	ErrMisaligned    = errors.New("rdma: atomic access must be 8-byte aligned")
	ErrDuplicateNode = errors.New("rdma: node id already attached")
)

// Fabric is the switched network connecting all nodes. It owns the latency
// model and global traffic statistics.
type Fabric struct {
	cfg     Config
	stats   Stats
	metrics *stat.NodeSet

	mu    sync.RWMutex
	nodes map[NodeID]*Endpoint
}

// NewFabric creates a fabric with the given configuration.
func NewFabric(cfg Config) *Fabric {
	cfg.applyDefaults()
	return &Fabric{cfg: cfg, metrics: stat.NewNodeSet(), nodes: make(map[NodeID]*Endpoint)}
}

// Metrics returns the fabric's per-node metric registries. Endpoints
// record their verb traffic here under their node id, and components
// running on a node share its registry via Endpoint.Metrics.
func (f *Fabric) Metrics() *stat.NodeSet { return f.metrics }

// attachLocked registers and returns a fresh endpoint for id. The caller
// holds f.mu and has checked id is not already attached.
func (f *Fabric) attachLocked(id NodeID) *Endpoint {
	ep := &Endpoint{
		id:       id,
		fabric:   f,
		verbs:    newVerbMetrics(f.metrics.Node(string(id))),
		regions:  make(map[uint32]*Region),
		handlers: make(map[string]Handler),
	}
	f.nodes[id] = ep
	return ep
}

// Attach creates and registers an endpoint for a new node.
func (f *Fabric) Attach(id NodeID) (*Endpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.nodes[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateNode, id)
	}
	return f.attachLocked(id), nil
}

// MustAttach is Attach that panics on error; for wiring code where a
// duplicate node id is a programming bug.
func (f *Fabric) MustAttach(id NodeID) *Endpoint {
	ep, err := f.Attach(id)
	if err != nil {
		panic(err)
	}
	return ep
}

// MustAttachOrGet returns the node's endpoint, attaching it if new.
func (f *Fabric) MustAttachOrGet(id NodeID) *Endpoint {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ep, ok := f.nodes[id]; ok {
		return ep
	}
	return f.attachLocked(id)
}

// Detach removes a node from the fabric. Subsequent operations targeting it
// fail with ErrNoSuchNode.
func (f *Fabric) Detach(id NodeID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.nodes, id)
}

// Stats returns a snapshot of fabric-wide traffic counters.
func (f *Fabric) Stats() StatsSnapshot { return f.stats.snapshot() }

// ResetStats zeroes all traffic counters.
func (f *Fabric) ResetStats() { f.stats.reset() }

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// lookup finds a live endpoint, honouring kill/partition state.
func (f *Fabric) lookup(id NodeID) (*Endpoint, error) {
	f.mu.RLock()
	ep, ok := f.nodes[id]
	f.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchNode, id)
	}
	if ep.isDown() {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, id)
	}
	return ep, nil
}

// Endpoint is a node's attachment to the fabric: its registered memory
// regions and RPC handlers.
type Endpoint struct {
	id     NodeID
	fabric *Fabric
	verbs  *verbMetrics

	mu       sync.RWMutex
	nextReg  uint32
	regions  map[uint32]*Region
	handlers map[string]Handler
	down     bool
}

// ID returns the node id this endpoint belongs to.
func (e *Endpoint) ID() NodeID { return e.id }

// Fabric returns the fabric the endpoint is attached to.
func (e *Endpoint) Fabric() *Fabric { return e.fabric }

// Metrics returns this node's metric registry. Components running on
// the node (engine, librmem, libpfs, raft replicas) register their
// metrics here so everything one node does lands in one registry.
func (e *Endpoint) Metrics() *stat.Registry {
	return e.fabric.metrics.Node(string(e.id))
}

// Kill simulates a node crash: all regions and handlers become unreachable
// until Revive is called. Local (in-node) users of the endpoint's regions
// are unaffected; only fabric access is cut.
func (e *Endpoint) Kill() {
	e.mu.Lock()
	e.down = true
	e.mu.Unlock()
}

// Revive brings a killed node back online with its memory intact. Callers
// model cold restarts by registering fresh regions instead.
func (e *Endpoint) Revive() {
	e.mu.Lock()
	e.down = false
	e.mu.Unlock()
}

func (e *Endpoint) isDown() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.down
}

// Down reports whether the endpoint has been killed (fault detection for
// components running on the node itself, e.g. a shipper noticing its own
// NIC is gone).
func (e *Endpoint) Down() bool { return e.isDown() }
