package rdma

import (
	"runtime"
	"time"
)

// Config holds the latency/bandwidth model of the simulated fabric.
//
// Defaults approximate the cost hierarchy measured on RoCEv2 hardware:
// a one-sided remote-memory verb costs a few microseconds, an RPC costs
// roughly double (two DMA crossings plus remote CPU), and a storage access
// costs two orders of magnitude more. Absolute values are irrelevant for
// the reproduction; the ordering is what the paper's design exploits.
type Config struct {
	// TimeScale multiplies every injected delay. 0 disables delays entirely
	// (unit tests); 1 is the default benchmark profile.
	TimeScale float64

	// OneSidedRead is the base latency of a one-sided RDMA READ.
	OneSidedRead time.Duration
	// OneSidedWrite is the base latency of a one-sided RDMA WRITE.
	OneSidedWrite time.Duration
	// Atomic is the latency of RDMA CAS / FETCH_ADD.
	Atomic time.Duration
	// RPC is the base latency of a two-sided round trip.
	RPC time.Duration
	// PerKB is added per KiB transferred, modelling bandwidth.
	PerKB time.Duration

	// scaleSet records whether TimeScale was explicitly provided.
	scaleSet bool
}

// DefaultConfig returns the benchmark latency profile (TimeScale 1).
//
// Fabric verbs use real RoCEv2-scale numbers (~2µs one-sided, ~5µs RPC),
// injected as yielding busy-waits because they sit far below the OS sleep
// granularity (~1ms on typical hosts — sleeping would flatten the
// hierarchy). Storage-class latencies (polarfs.VolumeConfig.ReadLatency,
// default 2ms) are true sleeps, so storage waits overlap across
// goroutines even on small hosts. The resulting hierarchy — local memory
// ≪ remote memory (µs) ≪ storage (ms) — is what the paper's design
// exploits.
func DefaultConfig() Config {
	return Config{
		TimeScale:     1,
		OneSidedRead:  2 * time.Microsecond,
		OneSidedWrite: 2 * time.Microsecond,
		Atomic:        1 * time.Microsecond,
		RPC:           5 * time.Microsecond,
		PerKB:         300 * time.Nanosecond,
		scaleSet:      true,
	}
}

// TestConfig returns a profile with all delays disabled, for unit tests.
func TestConfig() Config {
	c := DefaultConfig()
	c.TimeScale = 0
	return c
}

func (c *Config) applyDefaults() {
	d := DefaultConfig()
	if c.OneSidedRead == 0 {
		c.OneSidedRead = d.OneSidedRead
	}
	if c.OneSidedWrite == 0 {
		c.OneSidedWrite = d.OneSidedWrite
	}
	if c.Atomic == 0 {
		c.Atomic = d.Atomic
	}
	if c.RPC == 0 {
		c.RPC = d.RPC
	}
	if c.PerKB == 0 {
		c.PerKB = d.PerKB
	}
	if !c.scaleSet && c.TimeScale == 0 {
		// A zero-valued Config (not built by TestConfig) means "defaults".
		c.TimeScale = 1
	}
	c.scaleSet = true
}

// Delay injects an extra simulated latency (e.g. a storage device access)
// scaled by the fabric's TimeScale. Components above the raw verbs use it
// to model costs the network model does not cover.
func (f *Fabric) Delay(base time.Duration, bytes int) { f.delay(base, bytes) }

// delay injects a simulated network delay of base + size-proportional cost.
func (f *Fabric) delay(base time.Duration, bytes int) {
	if f.cfg.TimeScale == 0 {
		return
	}
	d := base + f.cfg.PerKB*time.Duration((bytes+1023)/1024)
	d = time.Duration(float64(d) * f.cfg.TimeScale)
	if d <= 0 {
		return
	}
	spinOrSleep(d)
}

// spinOrSleep waits for d. Sub-millisecond waits busy-spin because the OS timer
// granularity would otherwise round every microsecond-scale RDMA verb up
// to ~100µs and destroy the latency hierarchy the simulation depends on.
// The spin yields to the scheduler each iteration so that, on small core
// counts, latency injection cannot starve the simulation's background
// goroutines (raft heartbeats, shippers, materializers).
func spinOrSleep(d time.Duration) {
	if d >= time.Millisecond {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}
