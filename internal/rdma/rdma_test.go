package rdma

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newTestFabric(t *testing.T) *Fabric {
	t.Helper()
	return NewFabric(TestConfig())
}

func TestAttachDetach(t *testing.T) {
	f := newTestFabric(t)
	a, err := f.Attach("a")
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	if a.ID() != "a" {
		t.Fatalf("id = %q, want a", a.ID())
	}
	if _, err := f.Attach("a"); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("duplicate attach err = %v, want ErrDuplicateNode", err)
	}
	f.Detach("a")
	if _, err := f.Attach("a"); err != nil {
		t.Fatalf("re-attach after detach: %v", err)
	}
}

func TestOneSidedReadWrite(t *testing.T) {
	f := newTestFabric(t)
	mem := f.MustAttach("mem")
	db := f.MustAttach("db")

	r := mem.RegisterRegion(4096)
	addr := Addr{Node: "mem", Region: r.ID(), Off: 128}

	src := []byte("hello remote memory")
	if err := db.Write(addr, src); err != nil {
		t.Fatalf("write: %v", err)
	}
	dst := make([]byte, len(src))
	if err := db.Read(addr, dst); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatalf("read back %q, want %q", dst, src)
	}
}

func TestReadOutOfBounds(t *testing.T) {
	f := newTestFabric(t)
	mem := f.MustAttach("mem")
	db := f.MustAttach("db")
	r := mem.RegisterRegion(64)
	err := db.Read(Addr{Node: "mem", Region: r.ID(), Off: 60}, make([]byte, 16))
	if !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("err = %v, want ErrOutOfBounds", err)
	}
}

func TestNoSuchNodeAndRegion(t *testing.T) {
	f := newTestFabric(t)
	db := f.MustAttach("db")
	if err := db.Read(Addr{Node: "ghost"}, make([]byte, 1)); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("err = %v, want ErrNoSuchNode", err)
	}
	f.MustAttach("mem")
	err := db.Read(Addr{Node: "mem", Region: 99}, make([]byte, 1))
	if !errors.Is(err, ErrNoSuchRegion) {
		t.Fatalf("err = %v, want ErrNoSuchRegion", err)
	}
}

func TestCAS64(t *testing.T) {
	f := newTestFabric(t)
	mem := f.MustAttach("mem")
	db := f.MustAttach("db")
	r := mem.RegisterRegion(64)
	addr := Addr{Node: "mem", Region: r.ID(), Off: 8}

	prev, ok, err := db.CAS64(addr, 0, 42)
	if err != nil || !ok || prev != 0 {
		t.Fatalf("cas(0,42) = %d,%v,%v; want 0,true,nil", prev, ok, err)
	}
	prev, ok, err = db.CAS64(addr, 0, 7)
	if err != nil || ok || prev != 42 {
		t.Fatalf("cas(0,7) = %d,%v,%v; want 42,false,nil", prev, ok, err)
	}
	v, err := db.Load64(addr)
	if err != nil || v != 42 {
		t.Fatalf("load = %d,%v; want 42", v, err)
	}
}

func TestCASMisaligned(t *testing.T) {
	f := newTestFabric(t)
	mem := f.MustAttach("mem")
	db := f.MustAttach("db")
	r := mem.RegisterRegion(64)
	_, _, err := db.CAS64(Addr{Node: "mem", Region: r.ID(), Off: 3}, 0, 1)
	if !errors.Is(err, ErrMisaligned) {
		t.Fatalf("err = %v, want ErrMisaligned", err)
	}
}

func TestFetchAdd64Concurrent(t *testing.T) {
	f := newTestFabric(t)
	mem := f.MustAttach("mem")
	r := mem.RegisterRegion(64)
	addr := Addr{Node: "mem", Region: r.ID(), Off: 0}

	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		ep := f.MustAttach(NodeID(rune('A' + i)))
		wg.Add(1)
		go func(ep *Endpoint) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				if _, err := ep.FetchAdd64(addr, 1); err != nil {
					t.Errorf("fetchadd: %v", err)
					return
				}
			}
		}(ep)
	}
	wg.Wait()
	v, _ := r.Load64Local(0)
	if v != workers*perWorker {
		t.Fatalf("counter = %d, want %d", v, workers*perWorker)
	}
}

func TestRPC(t *testing.T) {
	f := newTestFabric(t)
	srv := f.MustAttach("srv")
	cli := f.MustAttach("cli")

	srv.RegisterHandler("echo", func(from NodeID, req []byte) ([]byte, error) {
		if from != "cli" {
			t.Errorf("from = %q, want cli", from)
		}
		return append([]byte("echo:"), req...), nil
	})
	resp, err := cli.Call("srv", "echo", []byte("hi"))
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if string(resp) != "echo:hi" {
		t.Fatalf("resp = %q", resp)
	}
	if _, err := cli.Call("srv", "nope", nil); !errors.Is(err, ErrNoSuchHandler) {
		t.Fatalf("err = %v, want ErrNoSuchHandler", err)
	}
}

func TestRPCHandlerError(t *testing.T) {
	f := newTestFabric(t)
	srv := f.MustAttach("srv")
	cli := f.MustAttach("cli")
	boom := errors.New("boom")
	srv.RegisterHandler("fail", func(NodeID, []byte) ([]byte, error) { return nil, boom })
	if _, err := cli.Call("srv", "fail", nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestKillRevive(t *testing.T) {
	f := newTestFabric(t)
	mem := f.MustAttach("mem")
	db := f.MustAttach("db")
	r := mem.RegisterRegion(64)
	addr := Addr{Node: "mem", Region: r.ID(), Off: 0}

	if err := db.Write(addr, []byte{1}); err != nil {
		t.Fatalf("write before kill: %v", err)
	}
	mem.Kill()
	if err := db.Write(addr, []byte{2}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if _, err := db.Call("mem", "x", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("rpc err = %v, want ErrUnreachable", err)
	}
	mem.Revive()
	// Memory survives a kill/revive (warm restart).
	var b [1]byte
	if err := db.Read(addr, b[:]); err != nil || b[0] != 1 {
		t.Fatalf("read after revive = %v %v, want value 1", b, err)
	}
}

func TestCallTimeout(t *testing.T) {
	f := newTestFabric(t)
	srv := f.MustAttach("srv")
	cli := f.MustAttach("cli")
	block := make(chan struct{})
	srv.RegisterHandler("hang", func(NodeID, []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	t.Cleanup(func() { close(block) })
	_, err := cli.CallTimeout("srv", "hang", nil, 10*time.Millisecond)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestStats(t *testing.T) {
	f := newTestFabric(t)
	mem := f.MustAttach("mem")
	db := f.MustAttach("db")
	r := mem.RegisterRegion(1024)
	addr := Addr{Node: "mem", Region: r.ID(), Off: 0}

	before := f.Stats()
	_ = db.Write(addr, make([]byte, 100))
	_ = db.Read(addr, make([]byte, 50))
	_, _, _ = db.CAS64(addr, 0, 1)
	d := f.Stats().Sub(before)
	if d.Writes != 1 || d.WriteBytes != 100 {
		t.Fatalf("writes = %d/%d, want 1/100", d.Writes, d.WriteBytes)
	}
	if d.Reads != 1 || d.ReadBytes != 50 {
		t.Fatalf("reads = %d/%d, want 1/50", d.Reads, d.ReadBytes)
	}
	if d.Atomics != 1 {
		t.Fatalf("atomics = %d, want 1", d.Atomics)
	}
	f.ResetStats()
	if s := f.Stats(); s.Reads != 0 || s.Writes != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
}

// Property: any byte slice written to any in-bounds offset reads back
// identically (write/read round trip through one-sided verbs).
func TestReadWriteRoundTripProperty(t *testing.T) {
	f := newTestFabric(t)
	mem := f.MustAttach("mem")
	db := f.MustAttach("db")
	const size = 8192
	r := mem.RegisterRegion(size)

	prop := func(data []byte, off uint16) bool {
		if len(data) > 1024 {
			data = data[:1024]
		}
		o := uint64(off) % (size - 1024)
		addr := Addr{Node: "mem", Region: r.ID(), Off: o}
		if err := db.Write(addr, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := db.Read(addr, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: concurrent CAS from many nodes never double-grants: exactly one
// winner per round of attempts on the same expected value.
func TestCASMutualExclusionProperty(t *testing.T) {
	f := newTestFabric(t)
	mem := f.MustAttach("mem")
	r := mem.RegisterRegion(64)
	addr := Addr{Node: "mem", Region: r.ID(), Off: 0}

	eps := make([]*Endpoint, 6)
	for i := range eps {
		eps[i] = f.MustAttach(NodeID(rune('a' + i)))
	}
	for round := uint64(0); round < 50; round++ {
		wins := make(chan int, len(eps))
		var wg sync.WaitGroup
		for i, ep := range eps {
			wg.Add(1)
			go func(i int, ep *Endpoint) {
				defer wg.Done()
				if _, ok, _ := ep.CAS64(addr, round, round+1); ok {
					wins <- i
				}
			}(i, ep)
		}
		wg.Wait()
		close(wins)
		n := 0
		for range wins {
			n++
		}
		if n != 1 {
			t.Fatalf("round %d: %d winners, want exactly 1", round, n)
		}
	}
}

func TestLatencyInjection(t *testing.T) {
	cfg := Config{
		TimeScale:     1,
		OneSidedRead:  200 * time.Microsecond,
		OneSidedWrite: 200 * time.Microsecond,
		Atomic:        200 * time.Microsecond,
		RPC:           200 * time.Microsecond,
		PerKB:         time.Nanosecond,
		scaleSet:      true,
	}
	f := NewFabric(cfg)
	mem := f.MustAttach("mem")
	db := f.MustAttach("db")
	r := mem.RegisterRegion(64)
	addr := Addr{Node: "mem", Region: r.ID(), Off: 0}

	start := time.Now()
	const n = 5
	for i := 0; i < n; i++ {
		if err := db.Read(addr, make([]byte, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if got := time.Since(start); got < n*cfg.OneSidedRead {
		t.Fatalf("elapsed %v < %v: latency not injected", got, n*cfg.OneSidedRead)
	}
}
