package rdma

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"
)

// Addr names a location in a registered remote memory region.
type Addr struct {
	Node   NodeID
	Region uint32
	Off    uint64
}

// Nil reports whether the address is the zero value.
func (a Addr) Nil() bool { return a == Addr{} }

func (a Addr) String() string {
	return fmt.Sprintf("%s/r%d+%d", a.Node, a.Region, a.Off)
}

// Region is a piece of node memory registered with the NIC, remotely
// accessible through one-sided verbs. The owning node may also access it
// locally (without fabric latency) through the same methods on the Region
// value itself.
type Region struct {
	id  uint32
	mu  sync.RWMutex
	buf []byte
}

// ID returns the region's identifier within its endpoint.
func (r *Region) ID() uint32 { return r.id }

// Len returns the region size in bytes.
func (r *Region) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.buf)
}

// ReadLocal copies region bytes at off into dst without fabric latency.
// It is the owning node's view of its own memory.
func (r *Region) ReadLocal(off uint64, dst []byte) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if int(off)+len(dst) > len(r.buf) || int(off) < 0 {
		return ErrOutOfBounds
	}
	copy(dst, r.buf[off:])
	return nil
}

// WriteLocal copies src into the region at off without fabric latency.
func (r *Region) WriteLocal(off uint64, src []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(off)+len(src) > len(r.buf) {
		return ErrOutOfBounds
	}
	copy(r.buf[off:], src)
	return nil
}

// Load64Local atomically reads an 8-byte word locally.
func (r *Region) Load64Local(off uint64) (uint64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if off%8 != 0 {
		return 0, ErrMisaligned
	}
	if int(off)+8 > len(r.buf) {
		return 0, ErrOutOfBounds
	}
	return binary.LittleEndian.Uint64(r.buf[off:]), nil
}

// Store64Local atomically writes an 8-byte word locally.
func (r *Region) Store64Local(off uint64, v uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if off%8 != 0 {
		return ErrMisaligned
	}
	if int(off)+8 > len(r.buf) {
		return ErrOutOfBounds
	}
	binary.LittleEndian.PutUint64(r.buf[off:], v)
	return nil
}

// FetchAdd64Local atomically adds delta to an 8-byte word locally and
// returns the value before the addition.
func (r *Region) FetchAdd64Local(off uint64, delta uint64) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if off%8 != 0 {
		return 0, ErrMisaligned
	}
	if int(off)+8 > len(r.buf) {
		return 0, ErrOutOfBounds
	}
	prev := binary.LittleEndian.Uint64(r.buf[off:])
	binary.LittleEndian.PutUint64(r.buf[off:], prev+delta)
	return prev, nil
}

// CAS64Local performs a local compare-and-swap on an 8-byte word and
// returns the previous value and whether the swap happened.
func (r *Region) CAS64Local(off uint64, old, new uint64) (uint64, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.casLocked(off, old, new)
}

func (r *Region) casLocked(off uint64, old, new uint64) (uint64, bool, error) {
	if off%8 != 0 {
		return 0, false, ErrMisaligned
	}
	if int(off)+8 > len(r.buf) {
		return 0, false, ErrOutOfBounds
	}
	cur := binary.LittleEndian.Uint64(r.buf[off:])
	if cur != old {
		return cur, false, nil
	}
	binary.LittleEndian.PutUint64(r.buf[off:], new)
	return cur, true, nil
}

// The Must*Local variants panic instead of returning an error. Local
// region access fails only on out-of-bounds or misaligned offsets —
// addressing bugs in the caller, not simulated infrastructure faults —
// so callers with offsets they computed against the region's own layout
// use these and keep fault-error handling (errdrop) meaningful.

// MustReadLocal is ReadLocal for caller-computed offsets.
func (r *Region) MustReadLocal(off uint64, dst []byte) {
	if err := r.ReadLocal(off, dst); err != nil {
		panic(fmt.Sprintf("rdma: local read r%d+%d: %v", r.id, off, err))
	}
}

// MustWriteLocal is WriteLocal for caller-computed offsets.
func (r *Region) MustWriteLocal(off uint64, src []byte) {
	if err := r.WriteLocal(off, src); err != nil {
		panic(fmt.Sprintf("rdma: local write r%d+%d: %v", r.id, off, err))
	}
}

// MustLoad64Local is Load64Local for caller-computed offsets.
func (r *Region) MustLoad64Local(off uint64) uint64 {
	v, err := r.Load64Local(off)
	if err != nil {
		panic(fmt.Sprintf("rdma: local load r%d+%d: %v", r.id, off, err))
	}
	return v
}

// MustStore64Local is Store64Local for caller-computed offsets.
func (r *Region) MustStore64Local(off uint64, v uint64) {
	if err := r.Store64Local(off, v); err != nil {
		panic(fmt.Sprintf("rdma: local store r%d+%d: %v", r.id, off, err))
	}
}

// MustCAS64Local is CAS64Local for caller-computed offsets.
func (r *Region) MustCAS64Local(off uint64, old, new uint64) (uint64, bool) {
	cur, ok, err := r.CAS64Local(off, old, new)
	if err != nil {
		panic(fmt.Sprintf("rdma: local cas r%d+%d: %v", r.id, off, err))
	}
	return cur, ok
}

// WithBytesLocal runs fn over n bytes of the region starting at off, in
// place and under the region's write lock: no remote verb or local
// accessor can interleave with fn, so a multi-word read-modify-write
// sweep (recovery force-releasing a crashed node's latches) is atomic
// without paying a lock round-trip per word. The slice aliases the
// registered buffer and is valid only inside fn — keeping it past the
// return would smuggle fabric memory past the region lock, which the
// regionescape analyzer rejects; copy anything that must outlive fn.
func (r *Region) WithBytesLocal(off uint64, n int, fn func(b []byte) error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n < 0 || int(off) < 0 || int(off)+n > len(r.buf) {
		return ErrOutOfBounds
	}
	return fn(r.buf[off : int(off)+n])
}

// RegisterRegion registers size bytes of node memory with the NIC and
// returns the region handle. The contents start zeroed.
func (e *Endpoint) RegisterRegion(size int) *Region {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nextReg++
	r := &Region{id: e.nextReg, buf: make([]byte, size)}
	e.regions[r.id] = r
	return r
}

// DeregisterRegion removes a region; remote access to it then fails.
func (e *Endpoint) DeregisterRegion(id uint32) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.regions, id)
}

// Region returns a registered region by id, or nil.
func (e *Endpoint) Region(id uint32) *Region {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.regions[id]
}

// remoteRegion resolves an Addr to a region on a live node. A killed
// endpoint cannot initiate traffic either: its NIC is down in both
// directions.
func (e *Endpoint) remoteRegion(a Addr) (*Region, error) {
	if e.isDown() {
		return nil, fmt.Errorf("%w: %s (local endpoint down)", ErrUnreachable, e.id)
	}
	target, err := e.fabric.lookup(a.Node)
	if err != nil {
		return nil, err
	}
	target.mu.RLock()
	r, ok := target.regions[a.Region]
	target.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchRegion, a)
	}
	return r, nil
}

// Read performs a one-sided RDMA READ of len(dst) bytes from the remote
// address into dst. The remote CPU is not involved.
func (e *Endpoint) Read(a Addr, dst []byte) error {
	r, err := e.remoteRegion(a)
	if err != nil {
		return err
	}
	start := time.Now()
	e.fabric.delay(e.fabric.cfg.OneSidedRead, len(dst))
	if err := r.ReadLocal(a.Off, dst); err != nil {
		return err
	}
	e.record(opRead, len(dst), start)
	return nil
}

// Write performs a one-sided RDMA WRITE of src to the remote address.
func (e *Endpoint) Write(a Addr, src []byte) error {
	r, err := e.remoteRegion(a)
	if err != nil {
		return err
	}
	start := time.Now()
	e.fabric.delay(e.fabric.cfg.OneSidedWrite, len(src))
	if err := r.WriteLocal(a.Off, src); err != nil {
		return err
	}
	e.record(opWrite, len(src), start)
	return nil
}

// CAS64 performs a one-sided RDMA compare-and-swap on an 8-byte word at the
// remote address. It returns the previous value and whether the swap
// succeeded.
func (e *Endpoint) CAS64(a Addr, old, new uint64) (uint64, bool, error) {
	r, err := e.remoteRegion(a)
	if err != nil {
		return 0, false, err
	}
	start := time.Now()
	e.fabric.delay(e.fabric.cfg.Atomic, 8)
	prev, ok, err := r.CAS64Local(a.Off, old, new)
	if err != nil {
		return 0, false, err
	}
	e.record(opAtomic, 8, start)
	return prev, ok, nil
}

// FetchAdd64 performs a one-sided RDMA fetch-and-add on an 8-byte word and
// returns the value before the addition.
func (e *Endpoint) FetchAdd64(a Addr, delta uint64) (uint64, error) {
	r, err := e.remoteRegion(a)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	e.fabric.delay(e.fabric.cfg.Atomic, 8)
	r.mu.Lock()
	if a.Off%8 != 0 {
		r.mu.Unlock()
		return 0, ErrMisaligned
	}
	if int(a.Off)+8 > len(r.buf) {
		r.mu.Unlock()
		return 0, ErrOutOfBounds
	}
	prev := binary.LittleEndian.Uint64(r.buf[a.Off:])
	binary.LittleEndian.PutUint64(r.buf[a.Off:], prev+delta)
	r.mu.Unlock()
	e.record(opAtomic, 8, start)
	return prev, nil
}

// Load64 performs a one-sided atomic read of an 8-byte word.
func (e *Endpoint) Load64(a Addr) (uint64, error) {
	r, err := e.remoteRegion(a)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	e.fabric.delay(e.fabric.cfg.OneSidedRead, 8)
	v, err := r.Load64Local(a.Off)
	if err != nil {
		return 0, err
	}
	e.record(opRead, 8, start)
	return v, nil
}
