package workload

import (
	"fmt"
	"math/rand"

	"polardb/internal/cluster"
)

// Sysbench models the sysbench OLTP table: sbtest(id PK, k, c, pad).
type Sysbench struct {
	// Rows is the table size.
	Rows uint64
	// PayloadSize approximates sysbench's c+pad columns (default 120 B).
	PayloadSize int
	// Dist selects uniform or skewed point keys.
	Dist Distribution
	// RangeSize is the span of oltp range queries (default 100).
	RangeSize uint64
}

func (s *Sysbench) defaults() {
	if s.PayloadSize == 0 {
		s.PayloadSize = 120
	}
	if s.RangeSize == 0 {
		s.RangeSize = 100
	}
}

// TableName is the sysbench table.
const TableName = "sbtest"

// Load creates and populates the sysbench table through the proxy.
func (s *Sysbench) Load(c *cluster.Cluster) error {
	s.defaults()
	if _, err := c.RW.Engine.CreateTable(TableName); err != nil {
		return err
	}
	sess := c.Proxy.Connect()
	defer sess.Close()
	const batch = 100
	for base := uint64(0); base < s.Rows; base += batch {
		if err := sess.Begin(); err != nil {
			return err
		}
		for k := base; k < base+batch && k < s.Rows; k++ {
			if err := sess.Exec(TableName, cluster.OpInsert, k, payload(s.PayloadSize, byte(k))); err != nil {
				_ = sess.Rollback()
				return fmt.Errorf("sysbench load at %d: %w", k, err)
			}
		}
		if err := sess.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// ReadOnlyTxn runs one oltp_read_only transaction: 10 point selects plus
// one range select of RangeSize rows (the paper's Figure 8 uses range
// selects). Returns the number of rows read.
func (s *Sysbench) ReadOnlyTxn(sess *cluster.Session, rng *rand.Rand) (int, error) {
	s.defaults()
	rows := 0
	for i := 0; i < 10; i++ {
		k := pick(rng, s.Dist, s.Rows)
		_, ok, err := sess.Get(TableName, k)
		if err != nil {
			return rows, err
		}
		if ok {
			rows++
		}
	}
	start := pick(rng, s.Dist, s.Rows)
	err := sess.Scan(TableName, start, start+s.RangeSize, func(uint64, []byte) bool {
		rows++
		return true
	})
	return rows, err
}

// RangeTxn runs a single range select (Figure 8's workload).
func (s *Sysbench) RangeTxn(sess *cluster.Session, rng *rand.Rand) (int, error) {
	s.defaults()
	start := pick(rng, s.Dist, s.Rows)
	rows := 0
	err := sess.Scan(TableName, start, start+s.RangeSize, func(uint64, []byte) bool {
		rows++
		return true
	})
	return rows, err
}

// ReadWriteTxn runs one oltp_read_write transaction: 10 point selects, 1
// range select, 2 index updates, and 1 delete+insert, all in one
// transaction (sysbench's default mix, scaled).
func (s *Sysbench) ReadWriteTxn(sess *cluster.Session, rng *rand.Rand) (int, error) {
	s.defaults()
	rows := 0
	if err := sess.Begin(); err != nil {
		return 0, err
	}
	abort := func(err error) (int, error) {
		_ = sess.Rollback()
		return rows, err
	}
	for i := 0; i < 10; i++ {
		k := pick(rng, s.Dist, s.Rows)
		if _, ok, err := sess.Get(TableName, k); err != nil {
			return abort(err)
		} else if ok {
			rows++
		}
	}
	start := pick(rng, s.Dist, s.Rows)
	if err := sess.Scan(TableName, start, start+s.RangeSize/10, func(uint64, []byte) bool {
		rows++
		return true
	}); err != nil {
		return abort(err)
	}
	for i := 0; i < 2; i++ {
		k := pick(rng, s.Dist, s.Rows)
		if err := sess.Exec(TableName, cluster.OpPut, k, payload(s.PayloadSize, byte(k+1))); err != nil {
			return abort(err)
		}
	}
	k := pick(rng, s.Dist, s.Rows)
	if err := sess.Exec(TableName, cluster.OpDelete, k, nil); err != nil {
		// The row may have been deleted by a concurrent txn; tolerate.
		_ = err
	}
	if err := sess.Exec(TableName, cluster.OpPut, k, payload(s.PayloadSize, byte(k))); err != nil {
		return abort(err)
	}
	return rows, sess.Commit()
}
