package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"polardb/internal/cluster"
	"polardb/internal/engine"
)

// TPCH is a scaled-down TPC-H: customer/orders/lineitem/part with the
// access shapes the paper's queries exercise — large range scans,
// indexed equi-joins against inner tables (where Batched Key PrePare
// prefetching applies, §4.2), and short dimension-table lookups.
type TPCH struct {
	// SF scales table cardinalities: customers = 150*SF, orders =
	// 1500*SF, lineitems ~ 4 per order, parts = 200*SF.
	SF int
}

func (t *TPCH) defaults() {
	if t.SF == 0 {
		t.SF = 1
	}
}

// Cardinalities.
func (t *TPCH) Customers() int { return 150 * t.SF }
func (t *TPCH) Orders() int    { return 1500 * t.SF }
func (t *TPCH) Parts() int     { return 200 * t.SF }

// TPC-H table names.
const (
	HCustomer = "h_customer"
	HOrders   = "h_orders"
	HLineitem = "h_lineitem"
	HPart     = "h_part"
)

// Orders row fields: [custkey, date, totalprice, lines].
// Lineitem key: orderkey*8+line; fields: [partkey, qty, price, shipdate].
// Customer fields: [nationkey, acctbal]. Part fields: [size, retail].

func liKey(order uint64, line int) uint64 { return order*8 + uint64(line) }

// Load creates and populates the TPC-H schema (deterministic from seed 1).
func (t *TPCH) Load(c *cluster.Cluster) error {
	t.defaults()
	for _, tbl := range []string{HCustomer, HOrders, HLineitem, HPart} {
		if _, err := c.RW.Engine.CreateTable(tbl); err != nil {
			return err
		}
	}
	rng := rand.New(rand.NewSource(1))
	s := c.Proxy.Connect()
	defer s.Close()

	batchBegin := func() error { return s.Begin() }
	commit := func() error { return s.Commit() }

	if err := batchBegin(); err != nil {
		return err
	}
	for i := 1; i <= t.Customers(); i++ {
		if err := s.Exec(HCustomer, cluster.OpPut, uint64(i),
			row([]uint64{uint64(rng.Intn(25)), uint64(rng.Intn(10000))}, 80)); err != nil {
			return err
		}
	}
	if err := commit(); err != nil {
		return err
	}
	if err := batchBegin(); err != nil {
		return err
	}
	for i := 1; i <= t.Parts(); i++ {
		if err := s.Exec(HPart, cluster.OpPut, uint64(i),
			row([]uint64{uint64(1 + rng.Intn(50)), uint64(900 + rng.Intn(200))}, 64)); err != nil {
			return err
		}
	}
	if err := commit(); err != nil {
		return err
	}
	for o := 1; o <= t.Orders(); o++ {
		if o%200 == 1 {
			if err := batchBegin(); err != nil {
				return err
			}
		}
		cust := uint64(1 + rng.Intn(t.Customers()))
		date := uint64(rng.Intn(2400)) // days
		lines := 2 + rng.Intn(5)
		total := uint64(0)
		for l := 0; l < lines; l++ {
			part := uint64(1 + rng.Intn(t.Parts()))
			qty := uint64(1 + rng.Intn(50))
			price := qty * uint64(900+rng.Intn(200))
			total += price
			ship := date + uint64(rng.Intn(120))
			if err := s.Exec(HLineitem, cluster.OpPut, liKey(uint64(o), l),
				row([]uint64{part, qty, price, ship}, 40)); err != nil {
				return fmt.Errorf("tpch load lineitem: %w", err)
			}
		}
		if err := s.Exec(HOrders, cluster.OpPut, uint64(o),
			row([]uint64{cust, date, total, uint64(lines)}, 40)); err != nil {
			return err
		}
		if o%200 == 0 || o == t.Orders() {
			if err := commit(); err != nil {
				return err
			}
		}
	}
	return nil
}

// QueryOpts tunes query execution.
type QueryOpts struct {
	// BKP enables Batched Key PrePare prefetching on indexed joins: inner
	// table keys accumulated in the join buffer are prefetched in the
	// background before the probe phase (§4.2). Requires Engine.
	BKP bool
	// Engine is the node the query runs on (for BKP and scan guards).
	Engine *engine.Engine
	// JoinBuffer is the number of outer rows accumulated per batch.
	JoinBuffer int
}

func (o *QueryOpts) defaults() {
	if o.JoinBuffer == 0 {
		o.JoinBuffer = 64
	}
}

// QueryNames lists the implemented TPC-H query labels, matching those in
// the paper's figures. Each label maps to one of four access shapes with
// query-specific parameters.
var QueryNames = []string{
	"Q2", "Q3", "Q4", "Q5", "Q8", "Q9", "Q10", "Q11", "Q12",
	"Q14", "Q15", "Q16", "Q17", "Q18", "Q19", "Q20", "Q21", "Q22",
}

// Run executes the named query on the session and returns rows touched.
func (t *TPCH) Run(name string, s *cluster.Session, opts QueryOpts) (int, error) {
	t.defaults()
	opts.defaults()
	switch name {
	// Short dimension-table queries ("not sensitive to memory capacity":
	// Q2, Q11, Q16 in Figure 13).
	case "Q2", "Q11", "Q16":
		return t.partScan(s)
	// Date-range scan + semi-join of lineitem (Q4/Q12/Q14 shapes).
	case "Q4", "Q12", "Q14", "Q15", "Q20", "Q22":
		return t.orderLineitemScan(s, spanFor(name))
	// Indexed equi-join: scan orders, join customer via point gets — the
	// BKP showcase (Q3/Q5/Q8/Q9/Q10 in Figure 15).
	case "Q3", "Q5", "Q8", "Q9", "Q10", "Q21":
		return t.customerJoin(s, opts, spanFor(name))
	// Lineitem->part join (Q17/Q19 shapes) and big aggregation (Q18).
	case "Q17", "Q19":
		return t.partJoin(s, opts)
	case "Q18":
		return t.groupTop(s)
	}
	return 0, fmt.Errorf("tpch: unknown query %s", name)
}

// spanFor varies the scanned fraction per query label so different
// queries have different sizes (as in the paper's latency charts).
func spanFor(name string) float64 {
	switch name {
	case "Q4", "Q14", "Q15":
		return 0.25
	case "Q12", "Q20", "Q22":
		return 0.40
	case "Q3", "Q10":
		return 0.50
	case "Q5", "Q8", "Q9", "Q21":
		return 0.75
	default:
		return 0.30
	}
}

// partScan reads the whole part table (small).
func (t *TPCH) partScan(s *cluster.Session) (int, error) {
	n := 0
	err := s.Scan(HPart, 0, ^uint64(0), func(uint64, []byte) bool {
		n++
		return true
	})
	return n, err
}

// orderLineitemScan scans a date-ordered range of orders and their lines.
func (t *TPCH) orderLineitemScan(s *cluster.Session, span float64) (int, error) {
	hi := uint64(float64(t.Orders()) * span)
	rows := 0
	var orders []uint64
	if err := s.Scan(HOrders, 1, hi+1, func(k uint64, v []byte) bool {
		rows++
		orders = append(orders, k)
		return true
	}); err != nil {
		return rows, err
	}
	for _, o := range orders {
		if err := s.Scan(HLineitem, liKey(o, 0), liKey(o+1, 0), func(_ uint64, v []byte) bool {
			rows++
			return true
		}); err != nil {
			return rows, err
		}
	}
	return rows, nil
}

// customerJoin scans a range of orders into the join buffer, then probes
// the inner tables in batches: each order's lineitems (the big inner —
// where prefetching pays) and its customer row. With BKP on, every
// batch's inner keys are prefetched before the probe phase (§4.2's
// join-buffer flow: fill the buffer, kick BKP, then probe).
func (t *TPCH) customerJoin(s *cluster.Session, opts QueryOpts, span float64) (int, error) {
	lo := uint64(float64(t.Orders()) * (1 - span))
	rows := 0
	var custKeys, liKeys []uint64
	var lineCounts []int
	if err := s.Scan(HOrders, lo+1, uint64(t.Orders())+1, func(k uint64, v []byte) bool {
		rows++
		custKeys = append(custKeys, getField(v, 0))
		liKeys = append(liKeys, liKey(k, 0))
		lineCounts = append(lineCounts, int(getField(v, 3)))
		return true
	}); err != nil {
		return rows, err
	}
	// Probe lineitems (big inner) batch-wise, prefetching under BKP.
	for lo := 0; lo < len(liKeys); lo += opts.JoinBuffer {
		hi := lo + opts.JoinBuffer
		if hi > len(liKeys) {
			hi = len(liKeys)
		}
		if opts.BKP && opts.Engine != nil {
			tbl, err := opts.Engine.OpenTable(HLineitem)
			if err != nil {
				return rows, err
			}
			opts.Engine.Prefetch(tbl.Primary, liKeys[lo:hi]).Wait()
		}
		for i := lo; i < hi; i++ {
			for l := 0; l < lineCounts[i]; l++ {
				if _, ok, err := s.Get(HLineitem, liKeys[i]+uint64(l)); err != nil {
					return rows, err
				} else if ok {
					rows++
				}
			}
		}
	}
	n, err := t.probeBatches(s, HCustomer, custKeys, opts)
	return rows + n, err
}

// partJoin scans lineitems joining part by point gets (BKP-able).
func (t *TPCH) partJoin(s *cluster.Session, opts QueryOpts) (int, error) {
	hi := uint64(float64(t.Orders()) * 0.3)
	rows := 0
	var keys []uint64
	if err := s.Scan(HLineitem, liKey(1, 0), liKey(hi, 0), func(_ uint64, v []byte) bool {
		rows++
		keys = append(keys, getField(v, 0))
		return true
	}); err != nil {
		return rows, err
	}
	n, err := t.probeBatches(s, HPart, keys, opts)
	return rows + n, err
}

// probeBatches joins the buffered keys against the inner table one join
// buffer at a time, prefetching each batch when BKP is enabled.
func (t *TPCH) probeBatches(s *cluster.Session, inner string, keys []uint64, opts QueryOpts) (int, error) {
	rows := 0
	for lo := 0; lo < len(keys); lo += opts.JoinBuffer {
		hi := lo + opts.JoinBuffer
		if hi > len(keys) {
			hi = len(keys)
		}
		batch := keys[lo:hi]
		if opts.BKP && opts.Engine != nil {
			tbl, err := opts.Engine.OpenTable(inner)
			if err != nil {
				return rows, err
			}
			opts.Engine.Prefetch(tbl.Primary, batch).Wait()
		}
		for _, k := range batch {
			if _, ok, err := s.Get(inner, k); err != nil {
				return rows, err
			} else if ok {
				rows++
			}
		}
	}
	return rows, nil
}

// groupTop aggregates order totals by customer and returns the top 10
// (Q18 shape: big scan + grouping).
func (t *TPCH) groupTop(s *cluster.Session) (int, error) {
	totals := map[uint64]uint64{}
	rows := 0
	if err := s.Scan(HOrders, 0, ^uint64(0), func(_ uint64, v []byte) bool {
		rows++
		totals[getField(v, 0)] += getField(v, 2)
		return true
	}); err != nil {
		return rows, err
	}
	type ct struct {
		c uint64
		t uint64
	}
	top := make([]ct, 0, len(totals))
	for c, tt := range totals {
		top = append(top, ct{c, tt})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].t > top[j].t })
	if len(top) > 10 {
		top = top[:10]
	}
	return rows, nil
}
