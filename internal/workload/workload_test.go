package workload

import (
	"math/rand"
	"testing"
	"time"

	"polardb/internal/cluster"
	"polardb/internal/rdma"
)

func testCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Launch(cluster.Config{
		Fabric:            rdma.TestConfig(),
		RONodes:           1,
		MemorySlabs:       8,
		SlabPages:         256,
		LocalCachePages:   512,
		HeartbeatInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestPickDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 10000
	// Uniform: keys spread; Skewed: >=80% in hottest 5%.
	hotHits := 0
	for i := 0; i < n; i++ {
		if pick(rng, Skewed, 1000) < 50 {
			hotHits++
		}
	}
	if hotHits < n*80/100 {
		t.Fatalf("skewed hot hits = %d/%d, want >= 80%%", hotHits, n)
	}
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		seen[pick(rng, Uniform, 1000)] = true
	}
	if len(seen) < 900 {
		t.Fatalf("uniform coverage = %d/1000", len(seen))
	}
	if pick(rng, Uniform, 0) != 0 {
		t.Fatal("pick(0) != 0")
	}
}

func TestRowFields(t *testing.T) {
	r := row([]uint64{7, 9}, 10)
	if len(r) != 26 {
		t.Fatalf("len = %d", len(r))
	}
	if getField(r, 0) != 7 || getField(r, 1) != 9 {
		t.Fatal("fields wrong")
	}
	putField(r, 1, 11)
	if getField(r, 1) != 11 {
		t.Fatal("putField failed")
	}
}

func TestSysbenchLoadAndTxns(t *testing.T) {
	c := testCluster(t)
	sb := &Sysbench{Rows: 500, Dist: Uniform, RangeSize: 20}
	if err := sb.Load(c); err != nil {
		t.Fatalf("load: %v", err)
	}
	s := c.Proxy.Connect()
	defer s.Close()
	rng := rand.New(rand.NewSource(1))
	rows, err := sb.ReadOnlyTxn(s, rng)
	if err != nil {
		t.Fatalf("read only: %v", err)
	}
	if rows == 0 {
		t.Fatal("read only touched no rows")
	}
	if _, err := sb.RangeTxn(s, rng); err != nil {
		t.Fatalf("range: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := sb.ReadWriteTxn(s, rng); err != nil {
			t.Fatalf("read write %d: %v", i, err)
		}
	}
	// Table still consistent: all keys readable.
	n := 0
	if err := s.Scan(TableName, 0, ^uint64(0), func(uint64, []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n < 490 || n > 510 {
		t.Fatalf("row count drifted: %d", n)
	}
}

func TestTPCCLoadAndMix(t *testing.T) {
	c := testCluster(t)
	w := &TPCC{Warehouses: 1, Districts: 2, Customers: 20, Items: 50, OrderLines: 6}
	if err := w.Load(c); err != nil {
		t.Fatalf("load: %v", err)
	}
	s := c.Proxy.Connect()
	defer s.Close()
	rng := rand.New(rand.NewSource(2))

	// New orders advance the district counter.
	for i := 0; i < 5; i++ {
		if _, err := w.NewOrder(s, rng); err != nil {
			t.Fatalf("new order: %v", err)
		}
	}
	dv, ok, err := s.Get(TDistrict, dKey(1, 1))
	if err != nil || !ok {
		t.Fatal(err)
	}
	_ = dv
	if err := w.Payment(s, rng); err != nil {
		t.Fatalf("payment: %v", err)
	}
	if err := w.OrderStatus(s, rng); err != nil {
		t.Fatalf("order status: %v", err)
	}
	if err := w.Delivery(s, rng); err != nil {
		t.Fatalf("delivery: %v", err)
	}
	if _, err := w.StockLevel(s, rng); err != nil {
		t.Fatalf("stock level: %v", err)
	}
	newOrders := 0
	for i := 0; i < 30; i++ {
		isNO, err := w.Mix(s, rng)
		if err != nil {
			t.Fatalf("mix %d: %v", i, err)
		}
		if isNO {
			newOrders++
		}
	}
	if newOrders == 0 {
		t.Fatal("mix produced no new orders")
	}
}

func TestTPCCMoneyConservation(t *testing.T) {
	// Payments move money warehouse<-customer; totals must reconcile.
	c := testCluster(t)
	w := &TPCC{Warehouses: 1, Districts: 2, Customers: 10, Items: 20}
	if err := w.Load(c); err != nil {
		t.Fatal(err)
	}
	s := c.Proxy.Connect()
	defer s.Close()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		if err := w.Payment(s, rng); err != nil {
			t.Fatal(err)
		}
	}
	var wYTD uint64
	wv, _, err := s.Get(TWarehouse, wKey(1))
	if err != nil {
		t.Fatal(err)
	}
	wYTD = getField(wv, 0)
	// Sum of customer balance deficits equals warehouse YTD.
	var deficit uint64
	for d := 1; d <= 2; d++ {
		for cu := 1; cu <= 10; cu++ {
			cv, ok, err := s.Get(TCustomer, cKey(1, d, cu))
			if err != nil || !ok {
				t.Fatal(err)
			}
			deficit += 1000 - getField(cv, 0) // initial balance 1000 (underflows wrap; amounts small enough)
		}
	}
	if deficit != wYTD {
		t.Fatalf("money not conserved: warehouse ytd %d, customer deficit %d", wYTD, deficit)
	}
}

func TestTPCHLoadAndQueries(t *testing.T) {
	c := testCluster(t)
	h := &TPCH{SF: 1}
	if err := h.Load(c); err != nil {
		t.Fatalf("load: %v", err)
	}
	s := c.Proxy.Connect()
	defer s.Close()
	for _, q := range QueryNames {
		rows, err := h.Run(q, s, QueryOpts{})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if rows == 0 {
			t.Fatalf("%s touched no rows", q)
		}
	}
}

func TestTPCHBKPMatchesPlain(t *testing.T) {
	c := testCluster(t)
	h := &TPCH{SF: 1}
	if err := h.Load(c); err != nil {
		t.Fatal(err)
	}
	s := c.Proxy.Connect()
	defer s.Close()
	plain, err := h.Run("Q10", s, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	bkp, err := h.Run("Q10", s, QueryOpts{BKP: true, Engine: c.RW.Engine})
	if err != nil {
		t.Fatal(err)
	}
	if plain != bkp {
		t.Fatalf("BKP changed results: %d vs %d rows", plain, bkp)
	}
}

func TestSysbenchSkewedLoadAndRun(t *testing.T) {
	c := testCluster(t)
	sb := &Sysbench{Rows: 300, Dist: Skewed, RangeSize: 10}
	if err := sb.Load(c); err != nil {
		t.Fatal(err)
	}
	s := c.Proxy.Connect()
	defer s.Close()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5; i++ {
		if _, err := sb.ReadWriteTxn(s, rng); err != nil {
			t.Fatalf("skewed rw txn: %v", err)
		}
	}
}

func TestTPCCUnknownQueryAndEmptyMix(t *testing.T) {
	c := testCluster(t)
	h := &TPCH{SF: 1}
	if err := h.Load(c); err != nil {
		t.Fatal(err)
	}
	s := c.Proxy.Connect()
	defer s.Close()
	if _, err := h.Run("Q99", s, QueryOpts{}); err == nil {
		t.Fatal("unknown query accepted")
	}
}

func TestTPCCDeliveryCreditsCustomer(t *testing.T) {
	c := testCluster(t)
	w := &TPCC{Warehouses: 1, Districts: 1, Customers: 5, Items: 20}
	if err := w.Load(c); err != nil {
		t.Fatal(err)
	}
	s := c.Proxy.Connect()
	defer s.Close()
	rng := rand.New(rand.NewSource(9))
	// Create orders then deliver them; the order totals must land on
	// customer balances (field 0 grows) and orders get flagged delivered.
	var oids []uint64
	for i := 0; i < 3; i++ {
		oid, err := w.NewOrder(s, rng)
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	for i := 0; i < 3; i++ {
		if err := w.Delivery(s, rng); err != nil {
			t.Fatal(err)
		}
	}
	delivered := 0
	for _, oid := range oids {
		ov, ok, err := s.Get(TOrder, oKey(1, 1, int(oid)))
		if err != nil || !ok {
			t.Fatalf("order %d: %v %v", oid, ok, err)
		}
		if getField(ov, 2) == 1 {
			delivered++
		}
	}
	if delivered != 3 {
		t.Fatalf("delivered = %d, want 3", delivered)
	}
}
