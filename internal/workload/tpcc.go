package workload

import (
	"fmt"
	"math/rand"

	"polardb/internal/cluster"
)

// TPCC is a scaled-down TPC-C: the full five-transaction mix over the
// warehouse schema, with key spaces packed into uint64 primary keys. Row
// contents are numeric fields (balances, quantities, counters) that the
// transactions actually read, modify and write back, so page access and
// write patterns match the benchmark's character.
type TPCC struct {
	Warehouses int
	Districts  int // per warehouse (10)
	Customers  int // per district
	Items      int
	OrderLines int // max lines per order (5..OrderLines)
}

func (t *TPCC) defaults() {
	if t.Warehouses == 0 {
		t.Warehouses = 2
	}
	if t.Districts == 0 {
		t.Districts = 10
	}
	if t.Customers == 0 {
		t.Customers = 100
	}
	if t.Items == 0 {
		t.Items = 1000
	}
	if t.OrderLines == 0 {
		t.OrderLines = 10
	}
}

// TPC-C table names.
const (
	TWarehouse = "warehouse"
	TDistrict  = "district"
	TCustomer  = "customer"
	TStock     = "stock"
	TOrder     = "orders"
	TOrderLine = "orderline"
	TItem      = "item"
)

// Key packing.
func wKey(w int) uint64             { return uint64(w) }
func dKey(w, d int) uint64          { return uint64(w)*100 + uint64(d) }
func cKey(w, d, c int) uint64       { return dKey(w, d)*10000 + uint64(c) }
func sKey(w, i int) uint64          { return uint64(w)*1_000_000 + uint64(i) }
func oKey(w, d, o int) uint64       { return dKey(w, d)*1_000_000 + uint64(o) }
func olKey(ok uint64, l int) uint64 { return ok*16 + uint64(l) }

// District row fields.
const (
	dNextOID = iota
	dYTD
	dDelivered // last delivered order id
)

// Load creates and populates the TPC-C schema.
func (t *TPCC) Load(c *cluster.Cluster) error {
	t.defaults()
	for _, tbl := range []string{TWarehouse, TDistrict, TCustomer, TStock, TOrder, TOrderLine, TItem} {
		if _, err := c.RW.Engine.CreateTable(tbl); err != nil {
			return err
		}
	}
	s := c.Proxy.Connect()
	defer s.Close()
	// Batched loading: one commit per batch rather than per row.
	const batch = 250
	n := 0
	put := func(tbl string, k uint64, v []byte) error {
		if n == 0 {
			if err := s.Begin(); err != nil {
				return err
			}
		}
		if err := s.Exec(tbl, cluster.OpPut, k, v); err != nil {
			_ = s.Rollback()
			n = 0
			return err
		}
		n++
		if n >= batch {
			n = 0
			return s.Commit()
		}
		return nil
	}
	flush := func() error {
		if n == 0 {
			return nil
		}
		n = 0
		return s.Commit()
	}
	for i := 1; i <= t.Items; i++ {
		if err := put(TItem, uint64(i), row([]uint64{uint64(10 + i%90)}, 24)); err != nil {
			return err
		}
	}
	for w := 1; w <= t.Warehouses; w++ {
		if err := put(TWarehouse, wKey(w), row([]uint64{0}, 32)); err != nil {
			return err
		}
		for i := 1; i <= t.Items; i++ {
			if err := put(TStock, sKey(w, i), row([]uint64{100, 0, 0}, 16)); err != nil {
				return err
			}
		}
		for d := 1; d <= t.Districts; d++ {
			if err := put(TDistrict, dKey(w, d), row([]uint64{1, 0, 0}, 24)); err != nil {
				return err
			}
			for cu := 1; cu <= t.Customers; cu++ {
				if err := put(TCustomer, cKey(w, d, cu), row([]uint64{1000, 0, 0}, 64)); err != nil {
					return err
				}
			}
		}
	}
	return flush()
}

// NewOrder runs one New-Order transaction; returns the order id.
func (t *TPCC) NewOrder(s *cluster.Session, rng *rand.Rand) (uint64, error) {
	t.defaults()
	w := 1 + rng.Intn(t.Warehouses)
	d := 1 + rng.Intn(t.Districts)
	cu := 1 + rng.Intn(t.Customers)
	if err := s.Begin(); err != nil {
		return 0, err
	}
	abort := func(err error) (uint64, error) {
		_ = s.Rollback()
		return 0, err
	}
	// District: take the next order id.
	dv, ok, err := s.Get(TDistrict, dKey(w, d))
	if err != nil || !ok {
		return abort(fmt.Errorf("tpcc: district %d/%d: %v", w, d, err))
	}
	oid := getField(dv, dNextOID)
	putField(dv, dNextOID, oid+1)
	if err := s.Exec(TDistrict, cluster.OpUpdate, dKey(w, d), dv); err != nil {
		return abort(err)
	}
	nLines := 5 + rng.Intn(t.OrderLines-4)
	ok64 := oKey(w, d, int(oid))
	total := uint64(0)
	for l := 0; l < nLines; l++ {
		iid := 1 + rng.Intn(t.Items)
		// Stock: decrement quantity, bump counters.
		sv, ok, err := s.Get(TStock, sKey(w, iid))
		if err != nil || !ok {
			return abort(fmt.Errorf("tpcc: stock %d/%d: %v", w, iid, err))
		}
		qty := getField(sv, 0)
		if qty < 10 {
			qty += 91
		}
		qty -= uint64(1 + rng.Intn(5))
		putField(sv, 0, qty)
		putField(sv, 2, getField(sv, 2)+1)
		if err := s.Exec(TStock, cluster.OpUpdate, sKey(w, iid), sv); err != nil {
			return abort(err)
		}
		amount := uint64(1+rng.Intn(5)) * uint64(10+iid%90)
		total += amount
		if err := s.Exec(TOrderLine, cluster.OpPut, olKey(ok64, l),
			row([]uint64{uint64(iid), uint64(1 + rng.Intn(5)), amount}, 16)); err != nil {
			return abort(err)
		}
	}
	if err := s.Exec(TOrder, cluster.OpPut, ok64,
		row([]uint64{uint64(cu), uint64(nLines), 0, total}, 8)); err != nil {
		return abort(err)
	}
	return oid, s.Commit()
}

// Payment runs one Payment transaction.
func (t *TPCC) Payment(s *cluster.Session, rng *rand.Rand) error {
	t.defaults()
	w := 1 + rng.Intn(t.Warehouses)
	d := 1 + rng.Intn(t.Districts)
	cu := 1 + rng.Intn(t.Customers)
	amount := uint64(1 + rng.Intn(5000))
	if err := s.Begin(); err != nil {
		return err
	}
	abort := func(err error) error {
		_ = s.Rollback()
		return err
	}
	wv, ok, err := s.Get(TWarehouse, wKey(w))
	if err != nil || !ok {
		return abort(fmt.Errorf("tpcc: warehouse %d: %v", w, err))
	}
	putField(wv, 0, getField(wv, 0)+amount)
	if err := s.Exec(TWarehouse, cluster.OpUpdate, wKey(w), wv); err != nil {
		return abort(err)
	}
	dv, ok, err := s.Get(TDistrict, dKey(w, d))
	if err != nil || !ok {
		return abort(fmt.Errorf("tpcc: district: %v", err))
	}
	putField(dv, dYTD, getField(dv, dYTD)+amount)
	if err := s.Exec(TDistrict, cluster.OpUpdate, dKey(w, d), dv); err != nil {
		return abort(err)
	}
	cv, ok, err := s.Get(TCustomer, cKey(w, d, cu))
	if err != nil || !ok {
		return abort(fmt.Errorf("tpcc: customer: %v", err))
	}
	putField(cv, 0, getField(cv, 0)-amount)
	putField(cv, 1, getField(cv, 1)+1)
	if err := s.Exec(TCustomer, cluster.OpUpdate, cKey(w, d, cu), cv); err != nil {
		return abort(err)
	}
	return s.Commit()
}

// OrderStatus runs one Order-Status transaction (read only).
func (t *TPCC) OrderStatus(s *cluster.Session, rng *rand.Rand) error {
	t.defaults()
	w := 1 + rng.Intn(t.Warehouses)
	d := 1 + rng.Intn(t.Districts)
	cu := 1 + rng.Intn(t.Customers)
	if _, _, err := s.Get(TCustomer, cKey(w, d, cu)); err != nil {
		return err
	}
	// Latest order for the district: read the district's next oid, then
	// the most recent order and its lines.
	dv, ok, err := s.Get(TDistrict, dKey(w, d))
	if err != nil || !ok {
		return err
	}
	next := getField(dv, dNextOID)
	if next <= 1 {
		return nil
	}
	ok64 := oKey(w, d, int(next-1))
	if _, _, err := s.Get(TOrder, ok64); err != nil {
		return err
	}
	return s.Scan(TOrderLine, olKey(ok64, 0), olKey(ok64, 16), func(uint64, []byte) bool { return true })
}

// Delivery runs one Delivery transaction: deliver the oldest undelivered
// order of each district of one warehouse.
func (t *TPCC) Delivery(s *cluster.Session, rng *rand.Rand) error {
	t.defaults()
	w := 1 + rng.Intn(t.Warehouses)
	if err := s.Begin(); err != nil {
		return err
	}
	abort := func(err error) error {
		_ = s.Rollback()
		return err
	}
	for d := 1; d <= t.Districts; d++ {
		dv, ok, err := s.Get(TDistrict, dKey(w, d))
		if err != nil || !ok {
			return abort(fmt.Errorf("tpcc: district: %v", err))
		}
		delivered := getField(dv, dDelivered)
		next := getField(dv, dNextOID)
		if delivered+1 >= next {
			continue // nothing to deliver
		}
		oid := delivered + 1
		ov, ok, err := s.Get(TOrder, oKey(w, d, int(oid)))
		if err != nil {
			return abort(err)
		}
		if ok {
			putField(ov, 2, 1) // delivered flag
			if err := s.Exec(TOrder, cluster.OpUpdate, oKey(w, d, int(oid)), ov); err != nil {
				return abort(err)
			}
			// Credit the customer with the order total.
			cu := int(getField(ov, 0))
			cv, ok, err := s.Get(TCustomer, cKey(w, d, cu))
			if err == nil && ok {
				putField(cv, 0, getField(cv, 0)+getField(ov, 3))
				putField(cv, 2, getField(cv, 2)+1)
				if err := s.Exec(TCustomer, cluster.OpUpdate, cKey(w, d, cu), cv); err != nil {
					return abort(err)
				}
			}
		}
		putField(dv, dDelivered, oid)
		if err := s.Exec(TDistrict, cluster.OpUpdate, dKey(w, d), dv); err != nil {
			return abort(err)
		}
	}
	return s.Commit()
}

// StockLevel runs one Stock-Level transaction (read only): scan the last
// orders' lines and count distinct low-stock items.
func (t *TPCC) StockLevel(s *cluster.Session, rng *rand.Rand) (int, error) {
	t.defaults()
	w := 1 + rng.Intn(t.Warehouses)
	d := 1 + rng.Intn(t.Districts)
	dv, ok, err := s.Get(TDistrict, dKey(w, d))
	if err != nil || !ok {
		return 0, err
	}
	next := getField(dv, dNextOID)
	lo := uint64(1)
	if next > 20 {
		lo = next - 20
	}
	seen := map[uint64]bool{}
	if err := s.Scan(TOrderLine, olKey(oKey(w, d, int(lo)), 0), olKey(oKey(w, d, int(next)), 0),
		func(_ uint64, v []byte) bool {
			seen[getField(v, 0)] = true
			return true
		}); err != nil {
		return 0, err
	}
	low := 0
	for iid := range seen {
		sv, ok, err := s.Get(TStock, sKey(w, int(iid)))
		if err != nil {
			return low, err
		}
		if ok && getField(sv, 0) < 15 {
			low++
		}
	}
	return low, nil
}

// Mix runs one transaction drawn from the standard TPC-C mix and reports
// whether it was a New-Order (the tpmC numerator).
func (t *TPCC) Mix(s *cluster.Session, rng *rand.Rand) (newOrder bool, err error) {
	switch p := rng.Intn(100); {
	case p < 45:
		_, err = t.NewOrder(s, rng)
		return true, err
	case p < 88:
		return false, t.Payment(s, rng)
	case p < 92:
		return false, t.OrderStatus(s, rng)
	case p < 96:
		return false, t.Delivery(s, rng)
	default:
		_, err = t.StockLevel(s, rng)
		return false, err
	}
}
