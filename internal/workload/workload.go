// Package workload implements scaled-down versions of the benchmarks the
// paper evaluates with (§6.1): sysbench OLTP (uniform and skewed), TPC-C
// and TPC-H. The workloads only need to reproduce the *page access
// patterns* that drive the paper's figures — point reads/writes with
// controllable skew, multi-statement read-write transactions over a
// warehouse schema, and scan/join-heavy analytical queries — since the
// systems under test sit below the SQL layer.
package workload

import (
	"encoding/binary"
	"math/rand"
)

// Distribution selects how point keys are drawn.
type Distribution int

const (
	// Uniform draws keys uniformly (sysbench rand-type=uniform).
	Uniform Distribution = iota
	// Skewed sends most traffic to a hot ~5% of the key space, matching
	// the paper's "rand-type=default" footnote.
	Skewed
)

func (d Distribution) String() string {
	if d == Skewed {
		return "skewed"
	}
	return "uniform"
}

// pick draws a key in [0, n) under the distribution.
func pick(rng *rand.Rand, d Distribution, n uint64) uint64 {
	if n == 0 {
		return 0
	}
	if d == Uniform {
		return uint64(rng.Int63n(int64(n)))
	}
	// Skewed: 95% of accesses hit the hottest 5% of keys.
	hot := n / 20
	if hot == 0 {
		hot = 1
	}
	if rng.Intn(100) < 95 {
		return uint64(rng.Int63n(int64(hot)))
	}
	return hot + uint64(rng.Int63n(int64(n-hot)))
}

// payload builds a filler row of the given size with a seed byte.
func payload(size int, seed byte) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = 'a' + (seed+byte(i))%26
	}
	return b
}

// Numeric row encoding helpers (fixed-width fields, little endian) used by
// the TPC-C and TPC-H row payloads.

func putField(b []byte, i int, v uint64) { binary.LittleEndian.PutUint64(b[i*8:], v) }
func getField(b []byte, i int) uint64    { return binary.LittleEndian.Uint64(b[i*8:]) }

// row builds a payload of n 8-byte numeric fields plus filler.
func row(fields []uint64, filler int) []byte {
	b := make([]byte, len(fields)*8+filler)
	for i, v := range fields {
		putField(b, i, v)
	}
	for i := len(fields) * 8; i < len(b); i++ {
		b[i] = 'x'
	}
	return b
}
