// Package cluster assembles and operates a PolarDB Serverless cluster:
// storage nodes (PolarFS), memory nodes (remote pool with a replicated
// home), one RW and several RO database nodes, stateless proxies, and the
// Cluster Manager that drives failover and scaling (§3, §5).
package cluster

import (
	"fmt"
	"time"

	"polardb/internal/btree"
	"polardb/internal/engine"
	"polardb/internal/parallelraft"
	"polardb/internal/polarfs"
	"polardb/internal/rdma"
	"polardb/internal/rmem"
)

// Config describes the cluster to launch.
type Config struct {
	// Fabric tunes the simulated RDMA network (zero value = defaults;
	// use rdma.TestConfig() for latency-free tests).
	Fabric rdma.Config
	// StorageNodes is the storage replica count (>= 3 for quorum).
	StorageNodes int
	// PageChunks partitions the volume across page chunks.
	PageChunks int
	// MemorySlabs / SlabPages size the remote memory pool: MemorySlabs
	// slabs of SlabPages pages each, all on the first memory node.
	MemorySlabs int
	SlabPages   int
	// SlaveHome adds a passive replica home for §5.2 failover.
	SlaveHome bool
	// NoRemoteMemory builds the shared-storage PolarDB baseline.
	NoRemoteMemory bool
	// RONodes is the number of read replicas.
	RONodes int
	// LocalCachePages sizes each database node's local cache tier.
	LocalCachePages int
	// ROMode picks Optimistic (default) or PessimisticS global latching.
	ROMode btree.TraverseMode
	// HeartbeatInterval / HeartbeatMisses tune RW failure detection
	// (the paper's CM works at 1 Hz; tests use milliseconds).
	HeartbeatInterval time.Duration
	HeartbeatMisses   int
	// CheckpointInterval enables background coverage sync + log GC.
	CheckpointInterval time.Duration
	// LockWait bounds row lock waits (deadlocks resolve by timeout).
	LockWait time.Duration
}

func (c *Config) applyDefaults() {
	if c.StorageNodes == 0 {
		c.StorageNodes = 3
	}
	if c.PageChunks == 0 {
		c.PageChunks = 4
	}
	if c.MemorySlabs == 0 {
		c.MemorySlabs = 2
	}
	if c.SlabPages == 0 {
		c.SlabPages = 256
	}
	if c.LocalCachePages == 0 {
		c.LocalCachePages = 256
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 20 * time.Millisecond
	}
	if c.HeartbeatMisses == 0 {
		c.HeartbeatMisses = 3
	}
}

// Cluster is a running PolarDB Serverless deployment.
type Cluster struct {
	cfg    Config
	Fabric *rdma.Fabric

	Storage *polarfs.Deployment

	MemNode   rdma.NodeID
	Home      *rmem.Home
	SlaveHome *rmem.Home
	memCfg    rmem.Config

	RW    *DBNode
	ROs   []*DBNode
	Proxy *Proxy
	CM    *Manager

	nextNodeID int
}

// Launch builds and boots a cluster.
func Launch(cfg Config) (*Cluster, error) {
	cfg.applyDefaults()
	c := &Cluster{cfg: cfg, Fabric: rdma.NewFabric(cfg.Fabric)}

	// Storage pool.
	eps := make([]*rdma.Endpoint, cfg.StorageNodes)
	for i := range eps {
		eps[i] = c.Fabric.MustAttach(rdma.NodeID(fmt.Sprintf("st%d", i)))
	}
	c.Storage = polarfs.Deploy(polarfs.VolumeConfig{
		PageChunks:          cfg.PageChunks,
		MaterializeInterval: 10 * time.Millisecond,
		// Generous raft timing: storage leadership must stay stable even
		// when the simulation is CPU-saturated on small machines.
		Raft: parallelraft.Config{
			HeartbeatInterval: 50 * time.Millisecond,
			ElectionTimeout:   2 * time.Second,
		},
	}, eps)

	// Memory pool.
	if !cfg.NoRemoteMemory {
		c.memCfg = rmem.Config{
			Instance:          "pool",
			SlabPages:         cfg.SlabPages,
			InvalidateTimeout: time.Second,
			LatchTimeout:      5 * time.Second,
			SlabHeartbeat:     cfg.HeartbeatInterval,
		}
		c.MemNode = "mem0"
		memEP := c.Fabric.MustAttach(c.MemNode)
		rmem.NewSlabNode(memEP, c.memCfg)
		var slaveID rdma.NodeID
		if cfg.SlaveHome {
			slaveID = "mem0b"
			slaveEP := c.Fabric.MustAttach(slaveID)
			c.SlaveHome = rmem.NewSlaveHome(slaveEP, c.memCfg)
		}
		c.Home = rmem.NewHome(memEP, c.memCfg, slaveID)
		for i := 0; i < cfg.MemorySlabs; i++ {
			if _, err := c.Home.AddSlab(c.MemNode, cfg.SlabPages); err != nil {
				return nil, err
			}
		}
	}

	// RW node.
	rw, err := c.newDBNode("rw0", false, "", 0)
	if err != nil {
		return nil, err
	}
	if err := rw.Engine.Bootstrap(); err != nil {
		return nil, err
	}
	c.RW = rw

	// RO nodes.
	for i := 0; i < cfg.RONodes; i++ {
		ro, err := c.newDBNode(rdma.NodeID(fmt.Sprintf("ro%d", i)), true,
			rw.ID, rw.Engine.CTSRegionID())
		if err != nil {
			return nil, err
		}
		c.ROs = append(c.ROs, ro)
	}

	c.Proxy = newProxy(c)
	c.CM = newManager(c)
	c.CM.Start()
	return c, nil
}

// newDBNode builds a database node on a fresh endpoint.
func (c *Cluster) newDBNode(id rdma.NodeID, ro bool, rwNode rdma.NodeID, ctsRegion uint32) (*DBNode, error) {
	ep := c.Fabric.MustAttach(id)
	n := &DBNode{ID: id, EP: ep, cluster: c}
	n.PFS = polarfs.NewClient(ep, c.Storage.Cfg, c.Storage.Peers)
	if !c.cfg.NoRemoteMemory {
		pool, err := rmem.NewPool(ep, c.memCfg, c.MemNode)
		if err != nil {
			return nil, err
		}
		n.Pool = pool
	}
	ep.RegisterHandler("cm.ping", func(rdma.NodeID, []byte) ([]byte, error) { return []byte{1}, nil })
	cfg := engine.Config{
		LocalCachePages:    c.cfg.LocalCachePages,
		ROMode:             c.cfg.ROMode,
		CheckpointInterval: c.cfg.CheckpointInterval,
		LockWait:           c.cfg.LockWait,
	}
	var err error
	if ro {
		cfg.RWNode = rwNode
		cfg.CTSRegionID = ctsRegion
		n.Engine, err = engine.NewRO(engine.Deps{EP: ep, PFS: n.PFS, Pool: n.Pool}, cfg)
		n.ReadOnly = true
	} else {
		n.Engine, err = engine.NewRW(engine.Deps{EP: ep, PFS: n.PFS, Pool: n.Pool}, cfg)
	}
	if err != nil {
		return nil, err
	}
	return n, nil
}

// AddRO attaches a new read replica to the running cluster.
func (c *Cluster) AddRO() (*DBNode, error) {
	c.nextNodeID++
	id := rdma.NodeID(fmt.Sprintf("ro-x%d", c.nextNodeID))
	ro, err := c.newDBNode(id, true, c.RW.ID, c.RW.Engine.CTSRegionID())
	if err != nil {
		return nil, err
	}
	c.ROs = append(c.ROs, ro)
	c.Proxy.setNodes(c.RW, c.ROs)
	return ro, nil
}

// GrowMemory adds slabs to the remote pool; returns the new capacity in
// pages (Figure 8's scale-out events).
func (c *Cluster) GrowMemory(slabs int) (int, error) {
	total := 0
	for i := 0; i < slabs; i++ {
		t, err := c.Home.AddSlab(c.MemNode, c.cfg.SlabPages)
		if err != nil {
			return 0, err
		}
		total = t
	}
	return total, nil
}

// ShrinkMemory shrinks the pool to at most targetPages (Figure 8's
// scale-in events); unreferenced pages are evicted at once.
func (c *Cluster) ShrinkMemory(targetPages int) (int, error) {
	return c.Home.Shrink(targetPages)
}

// ResizeLocalCaches resizes every database node's local cache tier.
func (c *Cluster) ResizeLocalCaches(pages int) error {
	if err := c.RW.Engine.ResizeLocalCache(pages); err != nil {
		return err
	}
	for _, ro := range c.ROs {
		if err := ro.Engine.ResizeLocalCache(pages); err != nil {
			return err
		}
	}
	return nil
}

// Close shuts the cluster down.
func (c *Cluster) Close() {
	c.CM.Stop()
	if c.RW != nil && c.RW.Engine != nil {
		c.RW.Engine.Close()
	}
	for _, ro := range c.ROs {
		ro.Engine.Close()
	}
	if c.Home != nil {
		c.Home.Close()
	}
	if c.SlaveHome != nil {
		c.SlaveHome.Close()
	}
	c.Storage.Close()
}
