package cluster

import (
	"fmt"

	"polardb/internal/engine"
	"polardb/internal/polarfs"
	"polardb/internal/rdma"
	"polardb/internal/rmem"
)

// DBNode is a database node (RW or RO): an engine plus its substrate
// clients, rebuildable in place when the node changes role.
type DBNode struct {
	ID       rdma.NodeID
	EP       *rdma.Endpoint
	PFS      *polarfs.Client
	Pool     *rmem.Pool
	Engine   *engine.Engine
	ReadOnly bool

	cluster *Cluster
}

// promoteToRW turns this RO node into the RW (§5.1 step 2): the RO engine
// is torn down and an RW engine is built on the same endpoint, substrate
// clients and local state, then runs recovery. traditional selects the
// single-node redo replay baseline instead of parallel REDO.
func (n *DBNode) promoteToRW(oldRW rdma.NodeID, planned, traditional bool) error {
	if !n.ReadOnly {
		return fmt.Errorf("cluster: %s is already the RW", n.ID)
	}
	n.Engine.Close()
	e, err := engine.NewRW(engine.Deps{EP: n.EP, PFS: n.PFS, Pool: n.Pool}, engine.Config{
		LocalCachePages:    n.cluster.cfg.LocalCachePages,
		CheckpointInterval: n.cluster.cfg.CheckpointInterval,
		LockWait:           n.cluster.cfg.LockWait,
	})
	if err != nil {
		return err
	}
	if traditional {
		if _, err := e.RecoverTraditional(oldRW, 0); err != nil {
			return err
		}
	} else if err := e.Recover(oldRW, planned); err != nil {
		return err
	}
	n.Engine = e
	n.ReadOnly = false
	return nil
}
