package cluster

import (
	"fmt"
	"os"
	"sync"
	"time"

	"polardb/internal/rdma"
)

// Manager is the Cluster Manager (CM, §5.1): it heartbeats the RW node
// and drives RO promotion on failure, and orchestrates planned switches
// (version upgrades, migrations) with transaction adoption.
type Manager struct {
	c *Cluster

	mu       sync.Mutex
	stopCh   chan struct{}
	wg       sync.WaitGroup
	running  bool
	switchMu sync.Mutex // serializes failovers

	// Events receives human-readable CM events (tests, CLI).
	Events chan string
}

func newManager(c *Cluster) *Manager {
	return &Manager{c: c, Events: make(chan string, 64)}
}

func (m *Manager) event(format string, args ...any) {
	select {
	case m.Events <- fmt.Sprintf(format, args...):
	default:
	}
}

// Start begins heartbeating the RW node.
func (m *Manager) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.running {
		return
	}
	m.running = true
	m.stopCh = make(chan struct{})
	m.wg.Add(1)
	go m.heartbeatLoop(m.stopCh)
}

// Stop halts heartbeating.
func (m *Manager) Stop() {
	m.mu.Lock()
	if !m.running {
		m.mu.Unlock()
		return
	}
	m.running = false
	close(m.stopCh)
	m.mu.Unlock()
	m.wg.Wait()
}

// cmNode is the CM's own fabric endpoint, lazily attached.
func (m *Manager) cmEP() *rdma.Endpoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	ep := m.c.Fabric.MustAttachOrGet("cm")
	return ep
}

func (m *Manager) heartbeatLoop(stop chan struct{}) {
	defer m.wg.Done()
	ep := m.cmEP()
	misses := 0
	for {
		select {
		case <-stop:
			return
		case <-time.After(m.c.cfg.HeartbeatInterval):
		}
		rw := m.c.Proxy.rwNode()
		if rw == nil {
			continue
		}
		//polarvet:allow fabriccost the heartbeat must exercise the RW's RPC dispatch loop to prove liveness; a one-sided read would succeed against a wedged process
		_, err := ep.CallTimeout(rw.ID, "cm.ping", nil, m.c.cfg.HeartbeatInterval)
		if err != nil {
			misses++
			if misses >= m.c.cfg.HeartbeatMisses {
				m.event("rw %s unresponsive (%d misses); initiating failover", rw.ID, misses)
				if err := m.Failover(false); err != nil {
					m.event("failover failed: %v", err)
				}
				misses = 0
			}
			continue
		}
		misses = 0
	}
}

// Failover replaces the RW node with the first RO (§5.1). planned runs
// the clean handover protocol (§3.5): the proxy pauses sessions, the old
// RW flushes its state to shared memory, and in-flight transactions are
// adopted by the new RW so sessions resume from their savepoints.
func (m *Manager) Failover(planned bool) error {
	return m.failover(planned, false)
}

// FailoverTraditional is Failover(false) with the single-node redo-replay
// recovery baseline ("w/o page mat.", Figure 9).
func (m *Manager) FailoverTraditional() error {
	return m.failover(false, true)
}

func (m *Manager) failover(planned, traditional bool) error {
	m.switchMu.Lock()
	defer m.switchMu.Unlock()
	trace := func(string) {}
	if os.Getenv("POLARDB_TRACE_RECOVERY") != "" {
		t0 := time.Now()
		trace = func(step string) {
			fmt.Fprintf(os.Stderr, "failover: %-20s +%8.1fms\n", step, time.Since(t0).Seconds()*1000)
		}
	}
	c := m.c
	if len(c.ROs) == 0 {
		return fmt.Errorf("cluster: no RO node available for promotion")
	}
	old := c.Proxy.rwNode()

	// Pause the proxy: drains in-flight statements, holds new ones.
	c.Proxy.gate.Lock()
	defer c.Proxy.gate.Unlock()
	trace("gate acquired")

	if planned {
		// Old RW cleans up: sync redo to page chunks, write dirty pages to
		// shared memory, release PL latches (§5.1 "planned node down").
		if err := old.Engine.PlannedHandover(); err != nil {
			return err
		}
	} else {
		// Steps 1-2: fence the old RW (its NIC is cut both ways) so it can
		// no longer write to memory or storage nodes. Its engine is torn
		// down in the background — promotion must not wait for a dead
		// node's timeouts.
		old.EP.Kill()
		go old.Engine.Close()
	}

	trace("old node handled")
	target := c.ROs[0]
	rest := append([]*DBNode(nil), c.ROs[1:]...)
	// Drop the target's RO-cached pool references before the engine swap.
	target.Engine.Cache().EvictAll()
	trace("target cache dropped")
	if err := target.promoteToRW(old.ID, planned, traditional); err != nil {
		return err
	}
	trace("promoted")
	c.RW = target
	c.ROs = rest
	for _, ro := range rest {
		ro.Engine.SwitchRW(target.ID, target.Engine.CTSRegionID())
	}
	c.Proxy.setNodes(target, rest)
	var adopted = target.Engine.Adopted()
	if !planned {
		adopted = nil
	}
	c.Proxy.rebindAll(adopted)
	m.event("promoted %s to RW (planned=%v, adopted=%d txns)", target.ID, planned, len(adopted))
	return nil
}

// SwitchOver performs a planned RW switch (auto-scaling migration,
// version upgrade): the paper's transparent switching with savepoints.
func (m *Manager) SwitchOver() error { return m.Failover(true) }
