package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestHomeNodeFailover(t *testing.T) {
	cfg := testConfig()
	cfg.SlaveHome = true
	cfg.HeartbeatInterval = time.Hour
	c := launch(t, cfg)
	if _, err := c.RW.Engine.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	s := c.Proxy.Connect()
	defer s.Close()
	for k := uint64(0); k < 100; k++ {
		if err := s.Exec("t", OpPut, k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	// Crash the home; the synchronously-replicated slave takes over.
	if err := c.FailoverHome(); err != nil {
		t.Fatalf("home failover: %v", err)
	}
	// All data still readable, and new writes work (pages revalidate via
	// the conservative PIB-stale marks).
	for k := uint64(0); k < 100; k += 9 {
		v, ok, err := s.Get("t", k)
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", k) {
			t.Fatalf("key %d after home failover: %q %v %v", k, v, ok, err)
		}
	}
	if err := s.Exec("t", OpPut, 500, []byte("post")); err != nil {
		t.Fatalf("write after home failover: %v", err)
	}
	if v, ok, _ := s.Get("t", 500); !ok || string(v) != "post" {
		t.Fatalf("post-failover write lost: %q %v", v, ok)
	}
}

func TestFailoverHomeWithoutSlave(t *testing.T) {
	cfg := testConfig()
	cfg.HeartbeatInterval = time.Hour
	c := launch(t, cfg)
	if err := c.FailoverHome(); err == nil {
		t.Fatal("home failover without slave should fail")
	}
}

func TestClusterRecovery(t *testing.T) {
	cfg := testConfig()
	cfg.HeartbeatInterval = time.Hour
	c := launch(t, cfg)
	if _, err := c.RW.Engine.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	s := c.Proxy.Connect()
	defer s.Close()
	for k := uint64(0); k < 80; k++ {
		if err := s.Exec("t", OpPut, k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	// An open transaction must not survive the full restart.
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := s.Exec("t", OpPut, 5, []byte("dirty")); err != nil {
		t.Fatal(err)
	}

	// Total loss of all memory state (§5.3): rebuild from storage.
	if err := c.FullRestart(); err != nil {
		t.Fatalf("full restart: %v", err)
	}
	if err := s.Exec("t", OpPut, 200, []byte("x")); !errors.Is(err, ErrTxnLost) {
		t.Fatalf("open txn survived cluster recovery: err=%v", err)
	}
	_ = s.Rollback()

	// Committed data rebuilt from storage; pool starts cold.
	deadline := time.Now().Add(3 * time.Second)
	for {
		v, ok, err := s.Get("t", 5)
		if err == nil && ok && string(v) == "v5" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dirty write not rolled back after cluster recovery: %q %v %v", v, ok, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for k := uint64(0); k < 80; k += 7 {
		v, ok, err := s.Get("t", k)
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", k) {
			t.Fatalf("key %d after cluster recovery: %q %v %v", k, v, ok, err)
		}
	}
	// And it keeps serving writes.
	if err := s.Exec("t", OpPut, 300, []byte("after")); err != nil {
		t.Fatalf("write after cluster recovery: %v", err)
	}
}
