package cluster

import (
	"fmt"

	"polardb/internal/engine"
	"polardb/internal/rmem"
)

// FailoverHome handles a memory home-node crash (§5.2): the slave home —
// which received every metadata mutation synchronously — is promoted, and
// every database node repoints its pool client at it. Pages survive on
// the slab nodes; PL latch state dies with the master (recovery releases
// latches lazily) and PIB bits are conservatively stale.
func (c *Cluster) FailoverHome() error {
	if c.SlaveHome == nil {
		return fmt.Errorf("cluster: no slave home configured")
	}
	c.Proxy.gate.Lock()
	defer c.Proxy.gate.Unlock()

	c.Home.Endpoint().Kill()
	c.Home.Close()
	c.SlaveHome.Promote()
	c.Home = c.SlaveHome
	c.SlaveHome = nil
	newHome := c.Home.Endpoint().ID()
	c.MemNode = newHome

	repoint := func(n *DBNode) {
		if n.Pool == nil {
			return
		}
		// Local copies keep working; remote addresses must be re-learned
		// (the promoted home marked every PIB stale, so first accesses
		// re-validate against the RW or storage).
		n.Engine.Cache().EvictAll()
		n.Pool.SwitchHome(newHome)
	}
	repoint(c.RW)
	for _, ro := range c.ROs {
		repoint(ro)
	}
	c.CM.event("promoted slave home %s", newHome)
	return nil
}

// FullRestart implements cluster recovery (§5.3): when every home replica
// is lost, all database and memory state restarts from a cleared state
// and is rebuilt from storage. Remote memory comes back empty (the cold
// cache problem the paper notes), open transactions are rolled back by
// recovery, and service resumes on the same node ids.
func (c *Cluster) FullRestart() error {
	c.Proxy.gate.Lock()
	defer c.Proxy.gate.Unlock()

	// Stop every database node and the memory control plane.
	oldRW := c.RW
	oldRW.Engine.Close()
	for _, ro := range c.ROs {
		ro.Engine.Close()
	}
	if c.Home != nil {
		c.Home.Close()
	}
	if c.SlaveHome != nil {
		c.SlaveHome.Close()
		c.SlaveHome = nil
	}

	// Fresh memory pool on the same memory node (handlers replace the old
	// ones; slab data is abandoned and rebuilt on demand from storage).
	if !c.cfg.NoRemoteMemory {
		memEP := c.Fabric.MustAttachOrGet(c.MemNode)
		rmem.NewSlabNode(memEP, c.memCfg)
		c.Home = rmem.NewHome(memEP, c.memCfg, "")
		for i := 0; i < c.cfg.MemorySlabs; i++ {
			if _, err := c.Home.AddSlab(c.MemNode, c.cfg.SlabPages); err != nil {
				return err
			}
		}
	}

	// Rebuild every database node's engine against the fresh pool.
	rebuild := func(n *DBNode, ro bool, rwNode *DBNode) error {
		if n.Pool != nil {
			pool, err := rmem.NewPool(n.EP, c.memCfg, c.MemNode)
			if err != nil {
				return err
			}
			n.Pool = pool
		}
		cfg := engine.Config{
			LocalCachePages:    c.cfg.LocalCachePages,
			ROMode:             c.cfg.ROMode,
			CheckpointInterval: c.cfg.CheckpointInterval,
			LockWait:           c.cfg.LockWait,
		}
		var err error
		if ro {
			cfg.RWNode = rwNode.ID
			cfg.CTSRegionID = rwNode.Engine.CTSRegionID()
			n.Engine, err = engine.NewRO(engine.Deps{EP: n.EP, PFS: n.PFS, Pool: n.Pool}, cfg)
			n.ReadOnly = true
		} else {
			n.Engine, err = engine.NewRW(engine.Deps{EP: n.EP, PFS: n.PFS, Pool: n.Pool}, cfg)
		}
		return err
	}
	if err := rebuild(oldRW, false, nil); err != nil {
		return err
	}
	// The RW recovers from storage alone: parallel REDO + undo scan; the
	// remote memory pool is empty, so this is the cold-cache path.
	if err := oldRW.Engine.Recover("", false); err != nil {
		return err
	}
	for _, ro := range c.ROs {
		if err := rebuild(ro, true, oldRW); err != nil {
			return err
		}
	}
	c.Proxy.setNodes(c.RW, c.ROs)
	c.Proxy.rebindAll(nil) // every open transaction is lost
	c.CM.event("cluster recovery complete (cold caches)")
	return nil
}
