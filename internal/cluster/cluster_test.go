package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"polardb/internal/btree"
	"polardb/internal/rdma"
)

func testConfig() Config {
	return Config{
		Fabric:            rdma.TestConfig(),
		RONodes:           2,
		MemorySlabs:       4,
		SlabPages:         256,
		LocalCachePages:   256,
		HeartbeatInterval: 15 * time.Millisecond,
		HeartbeatMisses:   3,
	}
}

func launch(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := Launch(cfg)
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestLaunchAndBasicTraffic(t *testing.T) {
	c := launch(t, testConfig())
	if _, err := c.RW.Engine.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	s := c.Proxy.Connect()
	defer s.Close()
	for k := uint64(1); k <= 50; k++ {
		if err := s.Exec("t", OpPut, k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	for k := uint64(1); k <= 50; k++ {
		v, ok, err := s.Get("t", k)
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", k) {
			t.Fatalf("get %d: %q %v %v", k, v, ok, err)
		}
	}
	// Reads go to RO nodes (round robin): both ROs should have traffic.
	for _, ro := range c.ROs {
		if ro.Engine.Stats().RemoteReads.Load()+ro.Engine.Stats().StorageReads.Load() == 0 {
			t.Fatalf("RO %s served no reads", ro.ID)
		}
	}
}

func TestSessionTransaction(t *testing.T) {
	c := launch(t, testConfig())
	if _, err := c.RW.Engine.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	s := c.Proxy.Connect()
	defer s.Close()
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 5; k++ {
		if err := s.Exec("t", OpInsert, k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if s.Savepoint() != 5 {
		t.Fatalf("savepoint = %d, want 5", s.Savepoint())
	}
	// Own reads see the writes.
	if _, ok, err := s.Get("t", 3); !ok || err != nil {
		t.Fatalf("own read: %v %v", ok, err)
	}
	// Another session does not (uncommitted).
	s2 := c.Proxy.Connect()
	defer s2.Close()
	if _, ok, _ := s2.Get("t", 3); ok {
		t.Fatal("uncommitted write visible to another session")
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s2.Get("t", 3); !ok {
		t.Fatal("committed write invisible")
	}
}

func TestScanThroughProxy(t *testing.T) {
	c := launch(t, testConfig())
	if _, err := c.RW.Engine.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	s := c.Proxy.Connect()
	defer s.Close()
	for k := uint64(0); k < 100; k++ {
		if err := s.Exec("t", OpPut, k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	if err := s.Scan("t", 10, 60, func(uint64, []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("scan = %d, want 50", n)
	}
}

func TestUnplannedFailoverViaHeartbeat(t *testing.T) {
	c := launch(t, testConfig())
	if _, err := c.RW.Engine.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	s := c.Proxy.Connect()
	defer s.Close()
	for k := uint64(0); k < 50; k++ {
		if err := s.Exec("t", OpPut, k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	oldRW := c.Proxy.rwNode()
	// Crash the RW; the CM heartbeat detects and promotes an RO. (Teardown
	// of the dead engine waits out a libpfs client timeout, so allow time.)
	oldRW.EP.Kill()
	deadline := time.Now().Add(20 * time.Second)
	for c.Proxy.rwNode() == oldRW {
		if time.Now().After(deadline) {
			t.Fatal("CM did not fail over")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Autocommit traffic continues against the new RW.
	if err := s.Exec("t", OpPut, 1000, []byte("post")); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	v, ok, err := s.Get("t", 25)
	if err != nil || !ok || string(v) != "v25" {
		t.Fatalf("read after failover: %q %v %v", v, ok, err)
	}
}

func TestUnplannedFailoverAbortsOpenTxn(t *testing.T) {
	cfg := testConfig()
	cfg.HeartbeatInterval = time.Hour // manual failover only
	c := launch(t, cfg)
	if _, err := c.RW.Engine.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	s := c.Proxy.Connect()
	defer s.Close()
	if err := s.Exec("t", OpPut, 1, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := s.Exec("t", OpPut, 1, []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	if err := c.CM.Failover(false); err != nil {
		t.Fatalf("failover: %v", err)
	}
	// The open transaction is lost.
	if err := s.Exec("t", OpPut, 2, []byte("x")); !errors.Is(err, ErrTxnLost) {
		t.Fatalf("err = %v, want ErrTxnLost", err)
	}
	_ = s.Rollback() // clears the lost state
	// The dirty write was rolled back by recovery.
	deadline := time.Now().Add(3 * time.Second)
	for {
		v, ok, err := s.Get("t", 1)
		if err == nil && ok && string(v) == "committed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("uncommitted write survived: %q %v %v", v, ok, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPlannedSwitchResumesTxnFromSavepoint(t *testing.T) {
	cfg := testConfig()
	cfg.HeartbeatInterval = time.Hour
	c := launch(t, cfg)
	if _, err := c.RW.Engine.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	s := c.Proxy.Connect()
	defer s.Close()
	// A long-running multi-statement transaction (bulk insert).
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 10; k++ {
		if err := s.Exec("t", OpInsert, k, []byte(fmt.Sprintf("row%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	sp := s.Savepoint()

	// Planned switch (auto-scaling migration).
	if err := c.CM.SwitchOver(); err != nil {
		t.Fatalf("switchover: %v", err)
	}
	// The transaction resumes: previous statements' effects are intact and
	// further statements continue from the savepoint.
	if s.Savepoint() != sp {
		t.Fatalf("savepoint reset: %d -> %d", sp, s.Savepoint())
	}
	for k := uint64(11); k <= 15; k++ {
		if err := s.Exec("t", OpInsert, k, []byte(fmt.Sprintf("row%d", k))); err != nil {
			t.Fatalf("insert %d after switch: %v", k, err)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatalf("commit after switch: %v", err)
	}
	for k := uint64(1); k <= 15; k++ {
		v, ok, err := s.Get("t", k)
		if err != nil || !ok || string(v) != fmt.Sprintf("row%d", k) {
			t.Fatalf("row %d after resumed txn: %q %v %v", k, v, ok, err)
		}
	}
}

func TestPlannedSwitchTransparentToAutocommit(t *testing.T) {
	cfg := testConfig()
	cfg.HeartbeatInterval = time.Hour
	c := launch(t, cfg)
	if _, err := c.RW.Engine.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	// Continuous autocommit writers across a planned switch: no errors.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			s := c.Proxy.Connect()
			defer s.Close()
			k := base * 1_000_000
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.Exec("t", OpPut, k, []byte("v")); err != nil {
					errCh <- fmt.Errorf("writer %d at %d: %w", base, k, err)
					return
				}
				k++
			}
		}(uint64(w))
	}
	time.Sleep(50 * time.Millisecond)
	if err := c.CM.SwitchOver(); err != nil {
		t.Fatalf("switchover: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("writer failed across planned switch: %v", err)
	default:
	}
}

func TestMemoryElasticity(t *testing.T) {
	c := launch(t, testConfig())
	base := c.Home.TotalSlots()
	grown, err := c.GrowMemory(2)
	if err != nil {
		t.Fatal(err)
	}
	if grown != base+2*c.cfg.SlabPages {
		t.Fatalf("grown = %d, want %d", grown, base+2*c.cfg.SlabPages)
	}
	shrunk, err := c.ShrinkMemory(base)
	if err != nil {
		t.Fatal(err)
	}
	if shrunk > base {
		t.Fatalf("shrunk = %d, want <= %d", shrunk, base)
	}
}

func TestAddROLive(t *testing.T) {
	cfg := testConfig()
	cfg.RONodes = 1
	c := launch(t, cfg)
	if _, err := c.RW.Engine.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	s := c.Proxy.Connect()
	defer s.Close()
	if err := s.Exec("t", OpPut, 1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	ro, err := c.AddRO()
	if err != nil {
		t.Fatal(err)
	}
	// New RO serves reads.
	deadline := time.Now().Add(2 * time.Second)
	for ro.Engine.Stats().RemoteReads.Load()+ro.Engine.Stats().StorageReads.Load() == 0 {
		if _, _, err := s.Get("t", 1); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("new RO never served a read")
		}
	}
}

func TestNoRemoteMemoryCluster(t *testing.T) {
	cfg := testConfig()
	cfg.NoRemoteMemory = true
	cfg.RONodes = 0
	c := launch(t, cfg)
	if _, err := c.RW.Engine.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	s := c.Proxy.Connect()
	defer s.Close()
	for k := uint64(0); k < 50; k++ {
		if err := s.Exec("t", OpPut, k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := s.Get("t", 25)
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("baseline get: %q %v %v", v, ok, err)
	}
}

func TestSessionSecondaryIndex(t *testing.T) {
	cfg := testConfig()
	cfg.HeartbeatInterval = time.Hour
	c := launch(t, cfg)
	tbl, err := c.RW.Engine.CreateTable("emp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RW.Engine.CreateIndex(tbl, "by_age"); err != nil {
		t.Fatal(err)
	}
	s := c.Proxy.Connect()
	defer s.Close()
	// One transaction maintains base table + index together.
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	for pk := uint64(1); pk <= 20; pk++ {
		age := 20 + pk%5
		if err := s.Exec("emp", OpInsert, pk, []byte(fmt.Sprintf("row%d", pk))); err != nil {
			t.Fatal(err)
		}
		if err := s.ExecIndex("emp", "by_age", OpInsert, age<<32|pk, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Index range scan -> base-table point reads, through the proxy.
	var pks []uint64
	if err := s.ScanIndex("emp", "by_age", 22<<32, 24<<32, func(k uint64, _ []byte) bool {
		pks = append(pks, k&0xFFFFFFFF)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(pks) != 8 {
		t.Fatalf("index scan found %d pks, want 8", len(pks))
	}
	for _, pk := range pks {
		if _, ok, _ := s.Get("emp", pk); !ok {
			t.Fatalf("pk %d from index missing in base table", pk)
		}
	}
	// Unknown index errors cleanly.
	if err := s.ExecIndex("emp", "nope", OpInsert, 1, nil); err == nil {
		t.Fatal("write to unknown index succeeded")
	}
}

func TestROPessimisticMode(t *testing.T) {
	cfg := testConfig()
	cfg.ROMode = btree.PessimisticS
	cfg.RONodes = 1
	c := launch(t, cfg)
	if _, err := c.RW.Engine.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	s := c.Proxy.Connect()
	defer s.Close()
	for k := uint64(0); k < 30; k++ {
		if err := s.Exec("t", OpPut, k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 30; k++ {
		if _, ok, err := s.Get("t", k); !ok || err != nil {
			t.Fatalf("plock get %d: %v %v", k, ok, err)
		}
	}
	ro := c.ROs[0]
	if st := ro.Engine.Pool().PL().Stats(); st.FastPath+st.SlowPath == 0 {
		t.Fatal("pessimistic RO took no PL latches")
	}
}
