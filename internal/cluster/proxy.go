package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"polardb/internal/engine"
	"polardb/internal/rdma"
	"polardb/internal/retry"
	"polardb/internal/types"
)

// Proxy is the stateless routing tier (§2.1, §3.5): it splits read and
// write traffic (writes to the RW, reads balanced across RO nodes), keeps
// client sessions alive across RW switches, and tracks per-session
// savepoints so transactions resume on the new RW after a planned switch
// instead of rolling back.
type Proxy struct {
	c *Cluster

	// gate: operations hold it shared; a switchover takes it exclusively,
	// which both drains in-flight statements and pauses new ones (the
	// paper's 100 ms quiesce).
	gate sync.RWMutex

	mu  sync.Mutex
	rw  *DBNode
	ros []*DBNode
	rr  atomic.Uint64

	sessMu   sync.Mutex
	sessions map[*Session]struct{}
}

// ErrTxnLost is returned to a session whose transaction died with an
// unplanned RW failure; the client must restart the transaction.
var ErrTxnLost = errors.New("cluster: transaction lost in unplanned failover; restart it")

func newProxy(c *Cluster) *Proxy {
	p := &Proxy{c: c, sessions: make(map[*Session]struct{})}
	p.setNodes(c.RW, c.ROs)
	return p
}

func (p *Proxy) setNodes(rw *DBNode, ros []*DBNode) {
	p.mu.Lock()
	p.rw = rw
	p.ros = append([]*DBNode(nil), ros...)
	p.mu.Unlock()
}

func (p *Proxy) rwNode() *DBNode {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rw
}

// pickReader balances reads across RO nodes, falling back to the RW.
func (p *Proxy) pickReader() *DBNode {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.ros) == 0 {
		return p.rw
	}
	return p.ros[p.rr.Add(1)%uint64(len(p.ros))]
}

// RWNodeKill crashes the current RW node (fault injection for tests and
// the failover demo).
func (p *Proxy) RWNodeKill() {
	if rw := p.rwNode(); rw != nil {
		rw.EP.Kill()
	}
}

// Connect opens a client session.
func (p *Proxy) Connect() *Session {
	s := &Session{p: p}
	p.sessMu.Lock()
	p.sessions[s] = struct{}{}
	p.sessMu.Unlock()
	return s
}

// Close releases the session.
func (s *Session) Close() {
	_ = s.Rollback()
	s.p.sessMu.Lock()
	delete(s.p.sessions, s)
	s.p.sessMu.Unlock()
}

// rebindAll updates every session after a switchover (gate held
// exclusively by the caller).
func (p *Proxy) rebindAll(adopted map[types.TrxID]*engine.Txn) {
	p.sessMu.Lock()
	defer p.sessMu.Unlock()
	for s := range p.sessions {
		s.rebindAfterSwitch(adopted)
	}
}

// Session is one client connection through the proxy. It survives RW
// switches: autocommit statements retry transparently; open transactions
// resume from their savepoint after a planned switch.
type Session struct {
	p  *Proxy
	mu sync.Mutex

	// txMu guards tx/trxID/txLost. It is a leaf lock: rebindAfterSwitch
	// mutates them from the failover path (which cannot take s.mu without
	// deadlocking against a session op blocked on the proxy gate), and
	// session ops peek at them before deciding whether to take the gate.
	txMu      sync.Mutex
	tx        *engine.Txn
	trxID     types.TrxID
	savepoint int // statements executed in the open transaction
	txLost    bool
}

// Savepoint returns the executed-statement count of the open transaction.
func (s *Session) Savepoint() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.savepoint
}

// retryWindow bounds transparent retries around a switchover.
const retryWindow = 10 * time.Second

// withRW runs fn against the RW engine with switchover gating + retry.
func (s *Session) withRW(fn func(e *engine.Engine, tbl func(string) (*engine.Table, error)) error) error {
	b := retry.NewBackoff(5*time.Millisecond, retryWindow)
	for {
		s.p.gate.RLock()
		node := s.p.rwNode()
		e := node.Engine
		err := fn(e, e.OpenTable)
		s.p.gate.RUnlock()
		if err == nil || !retryable(err) || !b.Sleep() {
			return err
		}
	}
}

func retryable(err error) bool {
	return errors.Is(err, engine.ErrClosed) || errors.Is(err, engine.ErrNotRW) ||
		errors.Is(err, rdma.ErrUnreachable) || errors.Is(err, rdma.ErrNoSuchNode)
}

// Begin opens a read-write transaction pinned to the RW node.
func (s *Session) Begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tx, _ := s.txOrErr(); tx != nil {
		return fmt.Errorf("cluster: transaction already open")
	}
	return s.withRW(func(e *engine.Engine, _ func(string) (*engine.Table, error)) error {
		tx, err := e.Begin()
		if err != nil {
			return err
		}
		s.txMu.Lock()
		s.tx = tx
		s.trxID = tx.ID()
		s.txLost = false
		s.txMu.Unlock()
		s.savepoint = 0
		return nil
	})
}

// txOrErr returns the open transaction, surfacing a lost-txn condition.
func (s *Session) txOrErr() (*engine.Txn, error) {
	s.txMu.Lock()
	defer s.txMu.Unlock()
	if s.txLost {
		return nil, ErrTxnLost
	}
	return s.tx, nil
}

// txOpen reports whether the session has (or has lost) an open
// transaction, i.e. whether the next statement belongs on the RW under
// the gate rather than the autocommit path. Callers re-check under the
// gate: a failover may rebind the session between peek and gate.
func (s *Session) txOpen() bool {
	s.txMu.Lock()
	defer s.txMu.Unlock()
	return s.tx != nil || s.txLost
}

// clearTx resets the transaction state (commit/rollback epilogue).
func (s *Session) clearTx() {
	s.txMu.Lock()
	s.tx = nil
	s.txLost = false
	s.txMu.Unlock()
	s.savepoint = 0
}

// Exec runs one write statement: inside the open transaction if any,
// otherwise autocommit (with transparent retry across switches).
func (s *Session) Exec(table string, op WriteOp, key uint64, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tx, err := s.txOrErr()
	if err != nil {
		return err
	}
	if tx != nil {
		s.p.gate.RLock()
		defer s.p.gate.RUnlock()
		tx, err = s.txOrErr() // the gate may have been held by a failover
		if err != nil {
			return err
		}
		if tx == nil {
			return ErrTxnLost
		}
		tbl, err := s.p.rwNode().Engine.OpenTable(table)
		if err != nil {
			return err
		}
		if err := applyWrite(tx, tbl, op, key, value); err != nil {
			return err
		}
		s.savepoint++ // statement boundary = savepoint (§3.5)
		return nil
	}
	return s.withRW(func(e *engine.Engine, open func(string) (*engine.Table, error)) error {
		tbl, err := open(table)
		if err != nil {
			return err
		}
		tx, err := e.Begin()
		if err != nil {
			return err
		}
		if err := applyWrite(tx, tbl, op, key, value); err != nil {
			_ = tx.Rollback()
			return err
		}
		return tx.Commit()
	})
}

// WriteOp enumerates session write statements.
type WriteOp int

// Write statement kinds.
const (
	OpInsert WriteOp = iota
	OpUpdate
	OpPut
	OpDelete
)

func applyWrite(tx *engine.Txn, tbl *engine.Table, op WriteOp, key uint64, value []byte) error {
	switch op {
	case OpInsert:
		return tx.Insert(tbl, key, value)
	case OpUpdate:
		return tx.Update(tbl, key, value)
	case OpPut:
		return tx.Put(tbl, key, value)
	case OpDelete:
		return tx.Delete(tbl, key)
	}
	return fmt.Errorf("cluster: unknown write op %d", op)
}

// ExecIndex runs a write statement against a secondary index of a table
// (the payload is typically the encoded primary key; index entries are
// maintained by the application inside its transactions).
func (s *Session) ExecIndex(table, index string, op WriteOp, key uint64, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	apply := func(tx *engine.Txn, e *engine.Engine) error {
		tbl, err := e.OpenTable(table)
		if err != nil {
			return err
		}
		ix, ok := tbl.Indexes[index]
		if !ok {
			return fmt.Errorf("cluster: no index %s on %s", index, table)
		}
		switch op {
		case OpDelete:
			return tx.DeleteIndex(ix, key)
		default:
			return tx.InsertIndex(ix, key, value)
		}
	}
	if s.txOpen() {
		s.p.gate.RLock()
		defer s.p.gate.RUnlock()
		tx, err := s.txOrErr()
		if err != nil {
			return err
		}
		if tx == nil {
			return ErrTxnLost
		}
		if err := apply(tx, s.p.rwNode().Engine); err != nil {
			return err
		}
		s.savepoint++
		return nil
	}
	return s.withRW(func(e *engine.Engine, _ func(string) (*engine.Table, error)) error {
		tx, err := e.Begin()
		if err != nil {
			return err
		}
		if err := apply(tx, e); err != nil {
			_ = tx.Rollback()
			return err
		}
		return tx.Commit()
	})
}

// ScanIndex streams visible index entries in [from, to) under the
// session's snapshot rules.
func (s *Session) ScanIndex(table, index string, from, to uint64, fn func(key uint64, val []byte) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	scan := func(tx *engine.Txn, e *engine.Engine) error {
		tbl, err := e.OpenTable(table)
		if err != nil {
			return err
		}
		ix, ok := tbl.Indexes[index]
		if !ok {
			return fmt.Errorf("cluster: no index %s on %s", index, table)
		}
		return tx.ScanTree(ix.Tree, from, to, fn)
	}
	if s.txOpen() {
		s.p.gate.RLock()
		defer s.p.gate.RUnlock()
		tx, err := s.txOrErr()
		if err != nil {
			return err
		}
		if tx == nil {
			return ErrTxnLost
		}
		return scan(tx, s.p.rwNode().Engine)
	}
	return s.readAuto(func(e *engine.Engine) error {
		ro, err := e.BeginRO()
		if err != nil {
			return err
		}
		return scan(ro, e)
	})
}

// Get reads a key: from the open transaction's snapshot if any, otherwise
// as an autocommit read routed to a read replica.
func (s *Session) Get(table string, key uint64) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.txOpen() {
		s.p.gate.RLock()
		defer s.p.gate.RUnlock()
		tx, err := s.txOrErr() // re-read: a failover may have rebound us
		if err != nil {
			return nil, false, err
		}
		if tx == nil {
			return nil, false, ErrTxnLost
		}
		tbl, err := s.p.rwNode().Engine.OpenTable(table)
		if err != nil {
			return nil, false, err
		}
		return tx.Get(tbl, key)
	}
	var val []byte
	var ok bool
	err := s.readAuto(func(e *engine.Engine) error {
		tbl, err := e.OpenTable(table)
		if err != nil {
			return err
		}
		ro, err := e.BeginRO()
		if err != nil {
			return err
		}
		val, ok, err = ro.Get(tbl, key)
		return err
	})
	return val, ok, err
}

// Scan streams visible rows in [from, to) through a read replica.
func (s *Session) Scan(table string, from, to uint64, fn func(key uint64, val []byte) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.txOpen() {
		s.p.gate.RLock()
		defer s.p.gate.RUnlock()
		tx, err := s.txOrErr()
		if err != nil {
			return err
		}
		if tx == nil {
			return ErrTxnLost
		}
		tbl, err := s.p.rwNode().Engine.OpenTable(table)
		if err != nil {
			return err
		}
		return tx.Scan(tbl, from, to, fn)
	}
	return s.readAuto(func(e *engine.Engine) error {
		tbl, err := e.OpenTable(table)
		if err != nil {
			return err
		}
		ro, err := e.BeginRO()
		if err != nil {
			return err
		}
		return ro.Scan(tbl, from, to, fn)
	})
}

// readAuto routes an autocommit read to a reader node with retry.
func (s *Session) readAuto(fn func(*engine.Engine) error) error {
	b := retry.NewBackoff(5*time.Millisecond, retryWindow)
	for {
		s.p.gate.RLock()
		node := s.p.pickReader()
		err := fn(node.Engine)
		s.p.gate.RUnlock()
		if err == nil {
			return err
		}
		if !retryable(err) && !errors.Is(err, engine.ErrStalePage) {
			return err
		}
		if !b.Sleep() {
			return err
		}
	}
}

// Commit commits the open transaction.
func (s *Session) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.p.gate.RLock()
	defer s.p.gate.RUnlock()
	tx, err := s.txOrErr()
	if err != nil {
		s.clearTx()
		return err
	}
	if tx == nil {
		return nil
	}
	defer s.clearTx()
	return tx.Commit()
}

// Rollback aborts the open transaction.
func (s *Session) Rollback() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.p.gate.RLock()
	defer s.p.gate.RUnlock()
	tx, err := s.txOrErr()
	if err != nil {
		s.clearTx()
		return nil // already gone
	}
	if tx == nil {
		return nil
	}
	defer s.clearTx()
	return tx.Rollback()
}

// rebindAfterSwitch updates the session after a switchover while the
// proxy gate is held exclusively. adopted maps trx ids to resumed
// transactions on the new RW (planned switches); nil means unplanned.
func (s *Session) rebindAfterSwitch(adopted map[types.TrxID]*engine.Txn) {
	// The gate excludes gated session ops, but ops peek at the tx state
	// before taking the gate (and re-check under it), so the mutation
	// must hold the leaf lock.
	s.txMu.Lock()
	defer s.txMu.Unlock()
	if s.tx == nil {
		return
	}
	if adopted != nil {
		if nt, ok := adopted[s.trxID]; ok {
			s.tx = nt // resume from the savepoint: prior statements live on
			return
		}
	}
	s.tx = nil
	s.txLost = true
}
