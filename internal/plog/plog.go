// Package plog implements the redo log: physiological log records grouped
// into mini-transactions (MTRs), and the in-memory log buffer on the RW
// node that assigns LSNs and hands flushed ranges to PolarFS log chunks.
//
// A record is a physical sub-page write: (page_id, offset, bytes). Replaying
// records in LSN order reconstructs any page byte-exactly, which is what
// page materialization offloading (§3.4) and parallel REDO recovery (§5.1)
// rely on.
package plog

import (
	"fmt"
	"sync"

	"polardb/internal/stat"
	"polardb/internal/types"
	"polardb/internal/wire"
)

// Record is a single redo log record: write Data at Off within Page.
// LSN is assigned when the record's MTR is appended to the log buffer.
type Record struct {
	LSN  types.LSN
	Page types.PageID
	Off  uint16
	Data []byte
}

// Marshal appends the record's wire encoding to w.
func (r *Record) Marshal(w *wire.Writer) {
	w.U64(uint64(r.LSN))
	w.U32(uint32(r.Page.Space))
	w.U32(uint32(r.Page.No))
	w.U16(r.Off)
	w.Bytes32(r.Data)
}

// Unmarshal decodes a record from rd.
func (r *Record) Unmarshal(rd *wire.Reader) {
	r.LSN = types.LSN(rd.U64())
	r.Page = types.PageID{Space: types.SpaceID(rd.U32()), No: types.PageNo(rd.U32())}
	r.Off = rd.U16()
	r.Data = rd.Bytes32()
}

// MarshalRecords encodes a batch of records.
func MarshalRecords(recs []Record) []byte {
	w := wire.NewWriter(32 * len(recs))
	w.U32(uint32(len(recs)))
	for i := range recs {
		recs[i].Marshal(w)
	}
	return w.Bytes()
}

// UnmarshalRecords decodes a batch of records.
func UnmarshalRecords(buf []byte) ([]Record, error) {
	rd := wire.NewReader(buf)
	n := int(rd.U32())
	if rd.Err() != nil {
		return nil, rd.Err()
	}
	recs := make([]Record, n)
	for i := range recs {
		recs[i].Unmarshal(rd)
	}
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("plog: decoding %d records: %w", n, err)
	}
	return recs, nil
}

// ApplyToPage replays the record onto a page buffer. The buffer must be
// types.PageSize bytes. Records with out-of-range extents are a corruption
// bug, reported as an error rather than a panic so recovery paths can
// surface them.
func (r *Record) ApplyToPage(page []byte) error {
	end := int(r.Off) + len(r.Data)
	if end > len(page) {
		return fmt.Errorf("plog: record lsn=%d page=%s extent [%d,%d) exceeds page size %d",
			r.LSN, r.Page, r.Off, end, len(page))
	}
	copy(page[r.Off:end], r.Data)
	return nil
}

// MTR is a mini-transaction: a group of redo records that must apply
// atomically (e.g. all pages of a B+tree split). It accumulates records
// while the engine holds page latches and is committed to the log buffer
// as one contiguous LSN range.
type MTR struct {
	recs  []Record
	pages map[types.PageID]struct{}
}

// NewMTR returns an empty mini-transaction.
func NewMTR() *MTR {
	return &MTR{pages: make(map[types.PageID]struct{})}
}

// LogWrite records a physical write of data at off within page. The data
// is copied; callers may reuse the slice.
func (m *MTR) LogWrite(page types.PageID, off uint16, data []byte) {
	d := make([]byte, len(data))
	copy(d, data)
	m.recs = append(m.recs, Record{Page: page, Off: off, Data: d})
	m.pages[page] = struct{}{}
}

// Pages returns the distinct pages modified by the MTR. These are the pages
// that must be invalidated (page_invalidate) before the MTR's redo is
// flushed to storage.
func (m *MTR) Pages() []types.PageID {
	out := make([]types.PageID, 0, len(m.pages))
	for p := range m.pages {
		out = append(out, p)
	}
	return out
}

// Records returns the accumulated records (without LSNs until committed).
func (m *MTR) Records() []Record { return m.recs }

// Empty reports whether the MTR logged nothing.
func (m *MTR) Empty() bool { return len(m.recs) == 0 }

// Buffer is the RW node's in-memory redo log buffer. Appending an MTR
// atomically assigns it a contiguous LSN range. A flusher drains the buffer
// to PolarFS log chunks and advances the durable LSN.
type Buffer struct {
	mu      sync.Mutex
	pending []Record
	nextLSN types.LSN

	flushedMu sync.Mutex
	flushed   types.LSN
	failed    bool
	flushCond *sync.Cond

	// Metrics are attached by the owning engine (AttachMetrics); nil
	// until then, so standalone buffers in tests stay dependency-free.
	metMTRs    *stat.Counter
	metRecords *stat.Counter
}

// NewBuffer creates a log buffer whose first record will get LSN start+1.
func NewBuffer(start types.LSN) *Buffer {
	b := &Buffer{nextLSN: start + 1, flushed: start}
	b.flushCond = sync.NewCond(&b.flushedMu)
	return b
}

// AttachMetrics registers the buffer's counters in r. Must be called
// before the buffer sees concurrent traffic (the engine does so at
// construction time).
func (b *Buffer) AttachMetrics(r *stat.Registry) {
	b.metMTRs = r.Counter("plog.append.mtrs")
	b.metRecords = r.Counter("plog.append.records")
}

// Append assigns LSNs to the MTR's records and queues them for flushing.
// It returns the LSN of the last record (the MTR's commit LSN).
func (b *Buffer) Append(m *MTR) types.LSN {
	if b.metMTRs != nil {
		b.metMTRs.Inc()
		b.metRecords.Add(uint64(len(m.recs)))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range m.recs {
		m.recs[i].LSN = b.nextLSN
		b.nextLSN++
	}
	b.pending = append(b.pending, m.recs...)
	return b.nextLSN - 1
}

// CurrentLSN returns the highest assigned LSN.
func (b *Buffer) CurrentLSN() types.LSN {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nextLSN - 1
}

// Drain removes and returns all pending records, for the flusher to persist.
func (b *Buffer) Drain() []Record {
	b.mu.Lock()
	defer b.mu.Unlock()
	recs := b.pending
	b.pending = nil
	return recs
}

// MarkFlushed advances the durable LSN and wakes waiters.
func (b *Buffer) MarkFlushed(lsn types.LSN) {
	b.flushedMu.Lock()
	if lsn > b.flushed {
		b.flushed = lsn
	}
	b.flushedMu.Unlock()
	b.flushCond.Broadcast()
}

// FlushedLSN returns the durable LSN.
func (b *Buffer) FlushedLSN() types.LSN {
	b.flushedMu.Lock()
	defer b.flushedMu.Unlock()
	return b.flushed
}

// WaitFlushed blocks until the durable LSN reaches lsn — the commit wait:
// a transaction is committed once its MTRs' redo is durable. It returns
// false if the buffer failed (node death) before lsn became durable.
func (b *Buffer) WaitFlushed(lsn types.LSN) bool {
	b.flushedMu.Lock()
	defer b.flushedMu.Unlock()
	for b.flushed < lsn && !b.failed {
		b.flushCond.Wait()
	}
	return b.flushed >= lsn
}

// Fail marks the buffer dead (the node lost its fabric connection): all
// current and future commit waiters return immediately with failure, so a
// crashed node cannot wedge clients that hold resources while committing.
func (b *Buffer) Fail() {
	b.flushedMu.Lock()
	b.failed = true
	b.flushedMu.Unlock()
	b.flushCond.Broadcast()
}

// Failed reports whether Fail was called.
func (b *Buffer) Failed() bool {
	b.flushedMu.Lock()
	defer b.flushedMu.Unlock()
	return b.failed
}
