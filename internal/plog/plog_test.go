package plog

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"polardb/internal/types"
)

func TestRecordMarshalRoundTrip(t *testing.T) {
	in := []Record{
		{LSN: 1, Page: types.PageID{Space: 3, No: 9}, Off: 100, Data: []byte("abc")},
		{LSN: 2, Page: types.PageID{Space: 1, No: 1}, Off: 0, Data: nil},
		{LSN: 3, Page: types.PageID{Space: 7, No: 2}, Off: 4000, Data: bytes.Repeat([]byte{0xFF}, 96)},
	}
	out, err := UnmarshalRecords(MarshalRecords(in))
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].LSN != in[i].LSN || out[i].Page != in[i].Page || out[i].Off != in[i].Off ||
			!bytes.Equal(out[i].Data, in[i].Data) {
			t.Fatalf("record %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	if _, err := UnmarshalRecords([]byte{5, 0, 0, 0, 1}); err == nil {
		t.Fatal("corrupt buffer decoded without error")
	}
}

func TestApplyToPage(t *testing.T) {
	page := make([]byte, types.PageSize)
	r := Record{Off: 10, Data: []byte("xyz")}
	if err := r.ApplyToPage(page); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if string(page[10:13]) != "xyz" {
		t.Fatalf("page content %q", page[10:13])
	}
	bad := Record{Off: types.PageSize - 1, Data: []byte("overflow")}
	if err := bad.ApplyToPage(page); err == nil {
		t.Fatal("out-of-range record applied without error")
	}
}

func TestMTRAccumulatesAndDedupsPages(t *testing.T) {
	m := NewMTR()
	if !m.Empty() {
		t.Fatal("new MTR not empty")
	}
	p1 := types.PageID{Space: 1, No: 1}
	p2 := types.PageID{Space: 1, No: 2}
	m.LogWrite(p1, 0, []byte{1})
	m.LogWrite(p1, 8, []byte{2})
	m.LogWrite(p2, 0, []byte{3})
	if m.Empty() || len(m.Records()) != 3 {
		t.Fatalf("records = %d, want 3", len(m.Records()))
	}
	pages := m.Pages()
	if len(pages) != 2 {
		t.Fatalf("distinct pages = %d, want 2", len(pages))
	}
}

func TestMTRCopiesData(t *testing.T) {
	m := NewMTR()
	buf := []byte{1, 2, 3}
	m.LogWrite(types.PageID{Space: 1, No: 1}, 0, buf)
	buf[0] = 99
	if m.Records()[0].Data[0] != 1 {
		t.Fatal("MTR aliased caller's buffer")
	}
}

func TestBufferAssignsContiguousLSNs(t *testing.T) {
	b := NewBuffer(0)
	m1, m2 := NewMTR(), NewMTR()
	p := types.PageID{Space: 1, No: 1}
	m1.LogWrite(p, 0, []byte{1})
	m1.LogWrite(p, 1, []byte{2})
	m2.LogWrite(p, 2, []byte{3})
	end1 := b.Append(m1)
	end2 := b.Append(m2)
	if end1 != 2 || end2 != 3 {
		t.Fatalf("commit LSNs = %d,%d; want 2,3", end1, end2)
	}
	recs := b.Drain()
	for i, r := range recs {
		if r.LSN != types.LSN(i+1) {
			t.Fatalf("rec %d lsn = %d", i, r.LSN)
		}
	}
	if got := b.Drain(); len(got) != 0 {
		t.Fatalf("second drain returned %d records", len(got))
	}
}

func TestBufferConcurrentAppendLSNsUnique(t *testing.T) {
	b := NewBuffer(100)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m := NewMTR()
				m.LogWrite(types.PageID{Space: 1, No: 1}, 0, []byte{0})
				b.Append(m)
			}
		}()
	}
	wg.Wait()
	recs := b.Drain()
	if len(recs) != workers*per {
		t.Fatalf("records = %d", len(recs))
	}
	seen := make(map[types.LSN]bool, len(recs))
	for _, r := range recs {
		if seen[r.LSN] {
			t.Fatalf("duplicate LSN %d", r.LSN)
		}
		if r.LSN <= 100 {
			t.Fatalf("LSN %d not after start", r.LSN)
		}
		seen[r.LSN] = true
	}
}

func TestWaitFlushed(t *testing.T) {
	b := NewBuffer(0)
	m := NewMTR()
	m.LogWrite(types.PageID{Space: 1, No: 1}, 0, []byte{1})
	lsn := b.Append(m)

	done := make(chan struct{})
	go func() {
		b.WaitFlushed(lsn)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("WaitFlushed returned before MarkFlushed")
	default:
	}
	b.MarkFlushed(lsn)
	<-done
	if b.FlushedLSN() != lsn {
		t.Fatalf("flushed = %d, want %d", b.FlushedLSN(), lsn)
	}
	// MarkFlushed never regresses.
	b.MarkFlushed(lsn - 1)
	if b.FlushedLSN() != lsn {
		t.Fatal("flushed LSN regressed")
	}
}

// Property: replaying a random sequence of records in order yields the same
// page as applying the writes directly.
func TestReplayEquivalenceProperty(t *testing.T) {
	prop := func(writes []struct {
		Off  uint16
		Data []byte
	}) bool {
		direct := make([]byte, types.PageSize)
		replayed := make([]byte, types.PageSize)
		var recs []Record
		for _, w := range writes {
			off := int(w.Off) % types.PageSize
			data := w.Data
			if len(data) > types.PageSize-off {
				data = data[:types.PageSize-off]
			}
			copy(direct[off:], data)
			recs = append(recs, Record{Page: types.PageID{Space: 1, No: 1}, Off: uint16(off), Data: data})
		}
		// Round-trip through the wire format, then replay.
		decoded, err := UnmarshalRecords(MarshalRecords(recs))
		if err != nil {
			return false
		}
		for i := range decoded {
			if err := decoded[i].ApplyToPage(replayed); err != nil {
				return false
			}
		}
		return bytes.Equal(direct, replayed)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
