package engine

import (
	"fmt"
	"time"

	"polardb/internal/plog"
	"polardb/internal/types"
)

// shipper is the RW node's redo pipeline worker (Figure 7): it drains the
// log buffer, persists the records on the PolarFS log chunk (advancing the
// durable LSN transactions commit-wait on), then distributes the records
// to the owning page chunks and advances the shipped watermark that gates
// dirty-page eviction.
func (e *Engine) shipper() {
	defer e.wg.Done()
	var pending []plog.Record
	for {
		recs := e.buf.Drain()
		pending = append(pending, recs...)
		if len(pending) == 0 {
			select {
			case <-e.closeCh:
				return
			case <-e.nudge:
			case <-time.After(e.cfg.ShipInterval):
			}
			continue
		}
		last := pending[len(pending)-1].LSN
		if !e.retry(func() error {
			_, err := e.pfs.AppendRedo(pending)
			return err
		}) {
			return
		}
		e.buf.MarkFlushed(last)
		e.met.flushBatch.Inc()
		e.met.flushRecs.Add(uint64(len(pending)))
		if !e.retry(func() error { return e.pfs.ShipRecords(pending, last) }) {
			return
		}
		e.setShipped(last)
		pending = pending[:0]
	}
}

// retry runs fn until it succeeds or the engine closes. Storage is
// 3-way replicated; transient unavailability (leader election) heals —
// but if this node's own endpoint died, nothing will: the buffer is
// failed so commit waiters unblock instead of wedging their callers.
func (e *Engine) retry(fn func() error) bool {
	for {
		if err := fn(); err == nil {
			return true
		}
		if e.ep.Down() {
			e.buf.Fail()
			return false
		}
		select {
		case <-e.closeCh:
			return false
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// checkpointer periodically syncs every partition's coverage to the
// shipped watermark and truncates redo below the cluster checkpoint,
// bounding both recovery work and log-chunk growth.
func (e *Engine) checkpointer() {
	defer e.wg.Done()
	for {
		select {
		case <-e.closeCh:
			return
		case <-time.After(e.cfg.CheckpointInterval):
		}
		e.shippedMu.Lock()
		w := e.shippedLSN
		e.shippedMu.Unlock()
		if w == 0 {
			continue
		}
		if err := e.pfs.AdvanceCoverage(w); err != nil {
			continue
		}
		cp, err := e.pfs.CheckpointLSN()
		if err != nil || cp == 0 {
			continue
		}
		//polarvet:allow errdrop truncation is best-effort housekeeping; a failure leaves extra redo that the next checkpoint tick retries
		_ = e.pfs.TruncateRedo(cp)
	}
}

// WaitAllShipped blocks until everything appended so far is shipped
// (planned handover, tests).
func (e *Engine) WaitAllShipped() {
	target := e.buf.CurrentLSN()
	e.nudgeShipper()
	e.waitShipped(target)
}

// DurableCommit waits until lsn is durable on the log chunks. It fails
// if the node dies before durability is reached.
func (e *Engine) DurableCommit(lsn types.LSN) error {
	e.nudgeShipper()
	if !e.buf.WaitFlushed(lsn) {
		return fmt.Errorf("%w: node failed before commit became durable", ErrClosed)
	}
	return nil
}
