package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"polardb/internal/btree"
	"polardb/internal/txn"
)

// TestCrossNodeConsistencyOracle runs random committed operations on the
// RW while checking, after each commit, that an RO snapshot agrees with a
// local oracle map — the cross-node "read after write should not miss any
// updates" guarantee of §3 (cache invalidation + CTS log).
func TestCrossNodeConsistencyOracle(t *testing.T) {
	h := newHarness(t, harnessOpts{poolPages: 1024, cachePages: 64})
	tbl, err := h.rw.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	ro := h.addRO(btree.Optimistic)
	roTbl := mustOpen(t, ro, "t")

	oracle := map[uint64][]byte{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		k := uint64(rng.Intn(100))
		switch rng.Intn(3) {
		case 0:
			v := []byte(fmt.Sprintf("v%d-%d", k, i))
			tx, _ := h.rw.Begin()
			if err := tx.Put(tbl, k, v); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			oracle[k] = v
		case 1:
			tx, _ := h.rw.Begin()
			err := tx.Delete(tbl, k)
			if _, had := oracle[k]; had {
				if err != nil {
					t.Fatalf("delete %d: %v", k, err)
				}
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
				delete(oracle, k)
			} else {
				_ = tx.Rollback()
			}
		case 2:
			// RO read-after-write: must match the oracle exactly.
			roTx, err := ro.BeginRO()
			if err != nil {
				t.Fatal(err)
			}
			v, ok, err := roTx.Get(roTbl, k)
			if err != nil {
				t.Fatalf("ro get %d: %v", k, err)
			}
			want, had := oracle[k]
			if ok != had || (had && !bytes.Equal(v, want)) {
				t.Fatalf("iteration %d key %d: RO saw (%q,%v), oracle (%q,%v)", i, k, v, ok, want, had)
			}
		}
	}
	// Final full comparison via RO scan.
	roTx, _ := ro.BeginRO()
	got := map[uint64][]byte{}
	if err := roTx.Scan(roTbl, 0, ^uint64(0), func(k uint64, v []byte) bool {
		got[k] = append([]byte(nil), v...)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(oracle) {
		t.Fatalf("RO scan rows = %d, oracle = %d", len(got), len(oracle))
	}
	for k, v := range oracle {
		if !bytes.Equal(got[k], v) {
			t.Fatalf("key %d: RO %q oracle %q", k, got[k], v)
		}
	}
}

// TestConcurrentRWWithROReaders runs writers and RO readers concurrently;
// RO readers must always see internally consistent rows (a value written
// entirely by one committed transaction) and never an error.
func TestConcurrentRWWithROReaders(t *testing.T) {
	h := newHarness(t, harnessOpts{poolPages: 2048, cachePages: 128})
	tbl, _ := h.rw.CreateTable("t")
	// Seed rows whose payload encodes a self-consistent generation.
	payload := func(k, gen uint64) []byte {
		half := fmt.Sprintf("key=%d;gen=%d;", k, gen)
		return []byte(half + half) // identical halves: torn reads detectable
	}
	for k := uint64(0); k < 50; k++ {
		mustCommitPut(t, h.rw, tbl, k, string(payload(k, 0)))
	}
	ro := h.addRO(btree.Optimistic)
	roTbl := mustOpen(t, ro, "t")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			gen := uint64(1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(rng.Intn(50))
				tx, err := h.rw.Begin()
				if err != nil {
					continue
				}
				if err := tx.Put(tbl, k, payload(k, gen)); err != nil {
					_ = tx.Rollback()
					continue
				}
				_ = tx.Commit()
				gen++
			}
		}(int64(w))
	}
	deadline := time.Now().Add(1500 * time.Millisecond)
	for time.Now().Before(deadline) {
		roTx, err := ro.BeginRO()
		if err != nil {
			t.Fatal(err)
		}
		k := uint64(rand.Intn(50))
		v, ok, err := roTx.Get(roTbl, k)
		if err != nil {
			t.Fatalf("ro get: %v", err)
		}
		if !ok {
			t.Fatalf("seeded key %d missing", k)
		}
		// Torn-read check: both halves of the payload must agree.
		half := len(v) / 2
		if !bytes.Equal(v[:half], v[half:]) {
			t.Fatalf("torn row on RO: %q", v)
		}
	}
	close(stop)
	wg.Wait()
}

func roGetTx(t *testing.T, tx *Txn, tbl *Table, key uint64) (string, bool) {
	t.Helper()
	v, ok, err := tx.Get(tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	return string(v), ok
}

// TestPurgeTombstones verifies delete-marked records are physically
// removed once no snapshot can see them, and never before.
func TestPurgeTombstones(t *testing.T) {
	h := newHarness(t, harnessOpts{})
	tbl, _ := h.rw.CreateTable("t")
	for k := uint64(0); k < 30; k++ {
		mustCommitPut(t, h.rw, tbl, k, "v")
	}
	// An old snapshot holds the horizon back.
	oldSnap, _ := h.rw.BeginRO()
	del, _ := h.rw.Begin()
	for k := uint64(0); k < 30; k += 2 {
		if err := del.Delete(tbl, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := del.Commit(); err != nil {
		t.Fatal(err)
	}
	waitBackfilled := func(k uint64) {
		deadline := time.Now().Add(2 * time.Second)
		for {
			raw, err := tbl.Primary.Get(k, btree.Local)
			if err != nil {
				t.Fatal(err)
			}
			rec, _ := txn.UnmarshalRecord(raw)
			if rec.CTS != 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Fatal("tombstone cts never backfilled")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitBackfilled(0)
	// While the old snapshot is open, its version chain must survive:
	// purge is held back by the read-view horizon.
	if purged, err := h.rw.PurgeTombstones(tbl); err != nil || purged != 0 {
		t.Fatalf("purge ran under an open snapshot: purged=%d err=%v", purged, err)
	}
	if got, ok := roGetTx(t, oldSnap, tbl, 0); !ok || got != "v" {
		t.Fatalf("old snapshot lost its version: %q %v", got, ok)
	}
	_ = oldSnap.Commit() // release the snapshot; the horizon advances
	purged, err := h.rw.PurgeTombstones(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if purged == 0 {
		t.Fatal("nothing purged")
	}
	// Purged keys are physically gone from the tree.
	if _, err := tbl.Primary.Get(0, btree.Local); err == nil {
		t.Fatal("tombstone still physically present")
	}
	// Live keys untouched.
	for k := uint64(1); k < 30; k += 2 {
		if got, ok := roGet(t, h.rw, tbl, k); !ok || got != "v" {
			t.Fatalf("live key %d damaged: %q %v", k, got, ok)
		}
	}
	// Deleted keys read as absent.
	if _, ok := roGet(t, h.rw, tbl, 2); ok {
		t.Fatal("deleted key visible after purge")
	}
}

// TestBeginBeforeBootstrap ensures a not-yet-bootstrapped RW refuses
// transactions instead of corrupting an empty volume.
func TestBeginBeforeBootstrap(t *testing.T) {
	h := newHarness(t, harnessOpts{})
	raw := h.newEngine(t, "rwx", Config{LocalCachePages: 64}, false, "")
	if _, err := raw.Begin(); err == nil {
		t.Fatal("Begin succeeded before Bootstrap/Recover")
	}
}

// TestSlabNodeFailureAtEngineLevel kills the slab node holding every
// cached page; reads must transparently fall back to storage and the
// system keeps serving (§5.2).
func TestSlabNodeFailureAtEngineLevel(t *testing.T) {
	h := newHarness(t, harnessOpts{poolPages: 512, cachePages: 64})
	tbl, _ := h.rw.CreateTable("t")
	for k := uint64(0); k < 200; k++ {
		mustCommitPut(t, h.rw, tbl, k, fmt.Sprintf("v%d", k))
	}
	h.rw.WaitAllShipped()
	// The single memory node ("mem0") is both home and slab node here; a
	// real deployment separates them. Simulate slab loss by having the
	// home drop all pages on mem0's slabs, as it would after detecting a
	// slab node failure.
	h.home.HandleSlabFailure("mem0")
	// Every read must still work (from local cache or storage).
	for k := uint64(0); k < 200; k += 11 {
		v, ok := roGet(t, h.rw, tbl, k)
		if !ok || v != fmt.Sprintf("v%d", k) {
			t.Fatalf("key %d after slab failure: %q %v", k, v, ok)
		}
	}
	// Writes continue too.
	mustCommitPut(t, h.rw, tbl, 999, "post-slab-failure")
	if v, ok := roGet(t, h.rw, tbl, 999); !ok || v != "post-slab-failure" {
		t.Fatalf("write after slab failure: %q %v", v, ok)
	}
}

// TestResizeLocalCacheLive shrinks and grows the local cache under
// traffic, verifying capacity takes effect and nothing is lost.
func TestResizeLocalCacheLive(t *testing.T) {
	h := newHarness(t, harnessOpts{cachePages: 256})
	tbl, _ := h.rw.CreateTable("t")
	for k := uint64(0); k < 300; k++ {
		mustCommitPut(t, h.rw, tbl, k, "v")
	}
	if err := h.rw.ResizeLocalCache(16); err != nil {
		t.Fatal(err)
	}
	if got := h.rw.Cache().Stats().Capacity; got != 16 {
		t.Fatalf("capacity = %d", got)
	}
	for k := uint64(0); k < 300; k += 13 {
		if _, ok := roGet(t, h.rw, tbl, k); !ok {
			t.Fatalf("key %d lost after shrink", k)
		}
	}
	if err := h.rw.ResizeLocalCache(512); err != nil {
		t.Fatal(err)
	}
	mustCommitPut(t, h.rw, tbl, 1000, "after-grow")
}
