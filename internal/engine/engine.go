// Package engine implements the PolarDB Serverless database engine that
// runs on RW and RO nodes: a record storage engine whose pages live in a
// three-tier hierarchy — node-local cache, shared remote memory pool, and
// PolarFS shared storage (§3).
//
// The engine is also the place where the paper's modification pipeline is
// enforced:
//
//	modify pages in local cache (under latches, logged into an MTR)
//	→ page_invalidate every modified page (§3.1.4)
//	→ append the MTR's redo to the log buffer
//	→ flusher persists redo to PolarFS log chunks (commit durability)
//	→ shipper sends records to page chunks (materialization, Figure 7)
//	→ only then may dirty pages be evicted anywhere in the hierarchy.
//
// Setting Deps.Pool to nil yields the classic shared-storage PolarDB
// baseline (private buffer pool, same storage); the benchmark harness uses
// that for the paper's PolarDB-vs-Serverless comparisons.
package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"polardb/internal/btree"
	"polardb/internal/cache"
	"polardb/internal/plog"
	"polardb/internal/polarfs"
	"polardb/internal/rdma"
	"polardb/internal/rmem"
	"polardb/internal/stat"
	"polardb/internal/txn"
	"polardb/internal/types"
)

// Reserved tablespaces.
const (
	// UndoSpace holds the transaction table (page 0) and undo records.
	UndoSpace types.SpaceID = 1
	// CatalogSpace holds the table catalog B+tree.
	CatalogSpace types.SpaceID = 2
	// FirstUserSpace is the first tablespace handed to user tables.
	FirstUserSpace types.SpaceID = 16
)

// Errors surfaced by the engine.
var (
	ErrNotRW       = errors.New("engine: operation requires the RW node")
	ErrClosed      = errors.New("engine: closed")
	ErrNoSuchTable = errors.New("engine: no such table")
	ErrTableExists = errors.New("engine: table already exists")
	ErrKeyExists   = errors.New("engine: key already exists")
	ErrKeyNotFound = errors.New("engine: key not found")
	ErrStalePage   = errors.New("engine: could not obtain a fresh page copy")
)

// Deps wires an engine to its substrates.
type Deps struct {
	EP   *rdma.Endpoint
	PFS  *polarfs.Client
	Pool *rmem.Pool // nil = no remote memory (shared-storage baseline)
}

// Config tunes an engine instance.
type Config struct {
	// ReadOnly marks an RO node.
	ReadOnly bool
	// RWNode is the current RW node id (needed by RO nodes for the CTS
	// region, read views and flush-page requests).
	RWNode rdma.NodeID
	// CTSRegionID is the RW node's CTS region (RO nodes).
	CTSRegionID uint32
	// CTSSlots sizes the CTS log.
	CTSSlots int
	// LocalCachePages sizes the node-local cache tier.
	LocalCachePages int
	// ROMode picks the RO traversal protocol: Optimistic (default,
	// §4.1) or PessimisticS (Figure 14's Plock).
	ROMode btree.TraverseMode
	// LockWait bounds row lock waits.
	LockWait time.Duration
	// ShipInterval is the redo flusher/shipper idle tick.
	ShipInterval time.Duration
	// CheckpointInterval drives coverage sync + redo truncation (0 = off).
	CheckpointInterval time.Duration
	// FlushPageTimeout bounds an RO node's eng.flushpage request to the
	// RW (asking it to write a stale page back to remote memory).
	FlushPageTimeout time.Duration
	// ViewTimeout bounds an RO node's read-view RPC to the RW at BeginRO.
	ViewTimeout time.Duration
}

func (c *Config) applyDefaults() {
	if c.LocalCachePages == 0 {
		c.LocalCachePages = 1024
	}
	if c.LockWait == 0 {
		c.LockWait = 2 * time.Second
	}
	if c.ShipInterval == 0 {
		c.ShipInterval = 500 * time.Microsecond
	}
	if c.CTSSlots == 0 {
		c.CTSSlots = txn.DefaultCTSSlots
	}
	if c.ROMode == 0 && c.ReadOnly {
		c.ROMode = btree.Optimistic
	}
	if c.FlushPageTimeout == 0 {
		c.FlushPageTimeout = 2 * time.Second
	}
	if c.ViewTimeout == 0 {
		c.ViewTimeout = 2 * time.Second
	}
}

// Engine is one database node's engine instance.
type Engine struct {
	cfg  Config
	ep   *rdma.Endpoint
	pfs  *polarfs.Client
	pool *rmem.Pool

	cache *cache.Cache

	// RW-only state.
	buf     *plog.Buffer
	cts     *txn.Service
	ctsReg  *rdma.Region
	locks   *txn.LockTable
	nextTrx atomic.Uint64

	// RO-only state.
	ctsCli *txn.Client

	activeMu sync.Mutex
	active   map[types.TrxID]*Txn

	// Read-view horizon tracking for purge: local read-only views, plus a
	// lease window covering views handed to RO nodes over RPC.
	roViewsMu sync.Mutex
	roViews   map[*Txn]types.Timestamp
	roLeases  []roLease

	slotMu    sync.Mutex
	slotOwner map[int]types.TrxID

	adoptedMu sync.Mutex
	adopted   map[types.TrxID]*Txn

	undoMu   sync.Mutex
	undoPage types.PageNo
	undoOff  uint16

	flightMu sync.Mutex
	flights  map[uint64]chan struct{}

	treesMu sync.Mutex
	trees   map[types.SpaceID]*btree.Tree

	tablesMu sync.Mutex
	tables   map[string]*Table

	shippedMu   sync.Mutex
	shippedLSN  types.LSN
	shippedCond *sync.Cond
	nudge       chan struct{}

	// mtrCond wakes flush-page waiters when a mini-transaction releases
	// its frames (see handleFlushPage and Mtr.release).
	mtrMu   sync.Mutex
	mtrCond *sync.Cond

	backfillCh chan backfillItem

	scanGuard atomic.Int32 // >0: storage misses skip remote-memory population

	closed  atomic.Bool
	closeCh chan struct{}
	wg      sync.WaitGroup

	stats EngineStats
	met   engineMetrics
}

// engineMetrics are the node registry's view of engine events: the
// three-tier page hierarchy, the §3.1.4 modification pipeline, and the
// §4.2/§3.2 cross-node protocols.
type engineMetrics struct {
	localHit    *stat.Counter // Fetch served from the local cache tier
	remoteRead  *stat.Counter // pages read from the remote memory tier
	storageRead *stat.Counter // pages read from PolarFS
	mtrCommit   *stat.Counter // non-empty mini-transactions committed
	txnCommit   *stat.Counter // user transactions committed
	txnAbort    *stat.Counter // user transactions rolled back
	flushServed *stat.Counter // RO-triggered write-backs served (RW)
	smoLatchX   *stat.Counter // global latch X acquisitions (SMOs)
	smoLatchS   *stat.Counter // global latch S acquisitions (RO Plock)
	flushBatch  *stat.Counter // redo batches persisted by the shipper
	flushRecs   *stat.Counter // redo records persisted by the shipper
}

func newEngineMetrics(r *stat.Registry) engineMetrics {
	return engineMetrics{
		localHit:    r.Counter("engine.page.local_hit"),
		remoteRead:  r.Counter("engine.page.remote_read"),
		storageRead: r.Counter("engine.page.storage_read"),
		mtrCommit:   r.Counter("engine.mtr.commit"),
		txnCommit:   r.Counter("engine.txn.commit"),
		txnAbort:    r.Counter("engine.txn.abort"),
		flushServed: r.Counter("engine.flush.served"),
		smoLatchX:   r.Counter("engine.smo.latch_x"),
		smoLatchS:   r.Counter("engine.smo.latch_s"),
		flushBatch:  r.Counter("engine.redo.flush.batches"),
		flushRecs:   r.Counter("engine.redo.flush.records"),
	}
}

// EngineStats counts engine-level events for the benchmark harness.
type EngineStats struct {
	Commits       atomic.Uint64
	Aborts        atomic.Uint64
	RemoteReads   atomic.Uint64 // pages fetched from remote memory
	StorageReads  atomic.Uint64 // pages fetched from PolarFS
	FlushRequests atomic.Uint64 // RO-triggered write-backs served
}

// NewRW creates the engine for the read-write node. Call Bootstrap (fresh
// volume) or Recover (takeover) before serving transactions.
func NewRW(deps Deps, cfg Config) (*Engine, error) {
	cfg.ReadOnly = false
	cfg.applyDefaults()
	e := newEngine(deps, cfg)
	e.ctsReg = deps.EP.RegisterRegion(txn.RegionSize(cfg.CTSSlots))
	e.cts = txn.NewService(e.ctsReg, cfg.CTSSlots)
	e.locks = txn.NewLockTable(cfg.LockWait)
	e.ep.RegisterHandler("eng.flushpage", e.handleFlushPage)
	e.ep.RegisterHandler(txn.ViewRPCMethod, e.handleViewRPC)
	return e, nil
}

// NewRO creates the engine for a read-only node attached to cfg.RWNode.
func NewRO(deps Deps, cfg Config) (*Engine, error) {
	cfg.ReadOnly = true
	cfg.applyDefaults()
	e := newEngine(deps, cfg)
	e.ctsCli = txn.NewClient(deps.EP, cfg.RWNode, cfg.CTSRegionID, cfg.CTSSlots)
	e.start()
	return e, nil
}

type roLease struct {
	ts      types.Timestamp
	expires time.Time
}

// roLeaseWindow is how long a view handed to an RO node holds back the
// purge horizon (RO transactions are expected to be shorter than this).
const roLeaseWindow = 10 * time.Second

func newEngine(deps Deps, cfg Config) *Engine {
	e := &Engine{
		cfg:        cfg,
		ep:         deps.EP,
		pfs:        deps.PFS,
		pool:       deps.Pool,
		flights:    make(map[uint64]chan struct{}),
		trees:      make(map[types.SpaceID]*btree.Tree),
		tables:     make(map[string]*Table),
		active:     make(map[types.TrxID]*Txn),
		roViews:    make(map[*Txn]types.Timestamp),
		slotOwner:  make(map[int]types.TrxID),
		nudge:      make(chan struct{}, 1),
		backfillCh: make(chan backfillItem, 4096),
		closeCh:    make(chan struct{}),
		met:        newEngineMetrics(deps.EP.Metrics()),
	}
	e.shippedCond = sync.NewCond(&e.shippedMu)
	e.mtrCond = sync.NewCond(&e.mtrMu)
	e.cache = cache.New(cfg.LocalCachePages, e.onEvict)
	if e.pool != nil {
		e.pool.OnInvalidate(func(p types.PageID) { e.cache.Invalidate(p) })
		e.pool.OnSlabFailure(func(pages []types.PageID) {
			for _, p := range pages {
				if f := e.cache.Get(p); f != nil {
					f.Remote = cache.RemoteInfo{}
					f.SetInvalid(true)
					f.Unpin()
				}
			}
		})
	}
	return e
}

// start launches background workers (RW: after bootstrap/recovery).
func (e *Engine) start() {
	if !e.cfg.ReadOnly {
		e.wg.Add(2)
		go e.shipper()
		go e.backfillWorker()
		if e.cfg.CheckpointInterval > 0 {
			e.wg.Add(1)
			go e.checkpointer()
		}
	}
}

// Close stops background workers. It does not flush state: use
// PlannedHandover for a clean shutdown.
func (e *Engine) Close() {
	if e.closed.Swap(true) {
		return
	}
	close(e.closeCh)
	e.wg.Wait()
}

// EP returns the node's fabric endpoint.
func (e *Engine) EP() *rdma.Endpoint { return e.ep }

// Cache returns the local cache (for stats).
func (e *Engine) Cache() *cache.Cache { return e.cache }

// Pool returns the remote memory client, or nil.
func (e *Engine) Pool() *rmem.Pool { return e.pool }

// Stats returns engine counters.
func (e *Engine) Stats() *EngineStats { return &e.stats }

// CTSRegionID returns the RW node's CTS region id (cluster wiring).
func (e *Engine) CTSRegionID() uint32 {
	if e.ctsReg == nil {
		return 0
	}
	return e.ctsReg.ID()
}

// FlushedLSN returns the durable redo LSN (RW).
func (e *Engine) FlushedLSN() types.LSN {
	if e.buf == nil {
		return 0
	}
	return e.buf.FlushedLSN()
}

// ResizeLocalCache changes the local cache tier's capacity live.
func (e *Engine) ResizeLocalCache(pages int) error { return e.cache.Resize(pages) }

// ScanGuard marks the start of a large scan: while any guard is active,
// pages loaded from storage are NOT promoted into the remote memory pool,
// so full-table scans do not pollute the shared cache (§3.1.3). Release
// the guard with the returned func.
func (e *Engine) ScanGuard() func() {
	e.scanGuard.Add(1)
	var once sync.Once
	return func() { once.Do(func() { e.scanGuard.Add(-1) }) }
}

// ---------------------------------------------------------------------------
// Page access (btree.Store implementation)

// Fetch returns a pinned frame with the page's current contents, filling
// the local cache from remote memory or storage on a miss.
//polarvet:fabric O(1) the page-fetch path is a bounded number of round trips (register, PIB probe, one-sided page read) regardless of pool size
func (e *Engine) Fetch(id types.PageID) (*cache.Frame, error) {
	for {
		if f := e.cache.Get(id); f != nil {
			if !f.Invalid() {
				e.met.localHit.Inc()
				return f, nil
			}
			if err := e.refreshFrame(f); err != nil {
				f.Unpin()
				return nil, err
			}
			return f, nil
		}
		// A detached dirty frame may still be writing back (its write-back
		// waits for redo shipping); loading from storage meanwhile would
		// resurrect a stale image and lose those writes. Wait it out.
		e.cache.WaitEvicting(id)
		e.flightMu.Lock()
		if ch, ok := e.flights[id.Key()]; ok {
			e.flightMu.Unlock()
			<-ch
			continue
		}
		ch := make(chan struct{})
		e.flights[id.Key()] = ch
		e.flightMu.Unlock()

		f, err := e.loadFrame(id)

		e.flightMu.Lock()
		delete(e.flights, id.Key())
		close(ch)
		e.flightMu.Unlock()
		if err != nil {
			return nil, err
		}
		return f, nil
	}
}

// Unpin releases a fetched frame.
func (e *Engine) Unpin(f *cache.Frame) { f.Unpin() }

// loadFrame fills a fresh frame through the memory hierarchy.
func (e *Engine) loadFrame(id types.PageID) (*cache.Frame, error) {
	f := &cache.Frame{ID: id, Data: make([]byte, types.PageSize)}
	fromRemote := false
	allocated := false
	guarded := e.scanGuard.Load() > 0
	if e.pool != nil {
		var res rmem.RegisterResult
		var err error
		if guarded {
			// Scan-pollution guard (§3.1.3): use the remote copy if one
			// exists, but never allocate one for scan traffic.
			res, err = e.pool.RegisterIfCached(id)
			if err == nil && !res.Exists {
				err = rmem.ErrOutOfMemory // storage-direct below, no pool refs
			}
		} else {
			res, err = e.pool.Register(id)
		}
		switch {
		case err == nil:
			f.Remote = cache.RemoteInfo{Registered: true, Data: res.Data, PL: res.PL, PIB: res.PIB}
			allocated = !res.Exists
			if res.Exists {
				if err := e.readRemoteFresh(f); err == nil {
					fromRemote = true
				} else if !errors.Is(err, ErrStalePage) {
					_ = e.pool.Unregister(id) //polarvet:allow errdrop unwinding a failed fill; the fetch error already propagates and a leaked ref is reclaimed by DropNodeRefs
					return nil, err
				}
			}
		case errors.Is(err, rmem.ErrOutOfMemory) || errors.Is(err, rmem.ErrMetaFull):
			// Pool full: operate storage-direct for this page.
		default:
			return nil, err
		}
	}
	if fromRemote {
		e.stats.RemoteReads.Add(1)
		e.met.remoteRead.Inc()
		f.NewestLSN = types.LSN(binary.LittleEndian.Uint64(f.Data[0:8]))
		f.ShippedLSN = f.NewestLSN
	} else {
		data, lsn, exists, err := e.pfs.GetPage(id, polarfs.MaxLSN)
		if err != nil {
			if f.Remote.Registered {
				_ = e.pool.Unregister(id) //polarvet:allow errdrop unwinding a failed fill; the fetch error already propagates and a leaked ref is reclaimed by DropNodeRefs
			}
			return nil, err
		}
		e.stats.StorageReads.Add(1)
		e.met.storageRead.Inc()
		if exists {
			copy(f.Data, data)
		}
		binary.LittleEndian.PutUint64(f.Data[0:8], uint64(lsn))
		f.NewestLSN = lsn
		f.ShippedLSN = lsn
		if f.Remote.Registered {
			// Populate the remote copy only when we allocated the remote
			// page (nobody else references it) or we are the RW (the sole
			// writer): an RO overwriting an existing remote page could
			// race the RW's invalidate/write-back and clear a PIB bit the
			// RW just set.
			if allocated || !e.cfg.ReadOnly {
				if err := e.pool.WritePage(f.Remote.Data, f.Data, f.Remote.PIB); err != nil {
					_ = e.pool.Unregister(id) //polarvet:allow errdrop demoting the page to storage-direct; the write failure is already handled by clearing Remote
					f.Remote = cache.RemoteInfo{}
				}
			}
		}
	}
	inserted, err := e.cache.Insert(f)
	if err != nil {
		if f.Remote.Registered {
			_ = e.pool.Unregister(id) //polarvet:allow errdrop unwinding a failed fill; the fetch error already propagates and a leaked ref is reclaimed by DropNodeRefs
		}
		return nil, err
	}
	if inserted != f && f.Remote.Registered {
		// Lost a racing fill; drop our duplicate registration reference.
		_ = e.pool.Unregister(id) //polarvet:allow errdrop dropping a duplicate ref after losing a racing fill; the winner's ref keeps the page alive
	}
	return inserted, nil
}

// readRemoteFresh reads the page from remote memory once its PIB bit is
// clear, asking the RW node to write back its newer local copy if needed.
func (e *Engine) readRemoteFresh(f *cache.Frame) error {
	for attempt := 0; attempt < 10; attempt++ {
		stale, err := e.pool.PIBStale(f.Remote.PIB)
		if err != nil {
			return err
		}
		if !stale {
			return e.pool.ReadPage(f.Remote.Data, f.Data)
		}
		if !e.cfg.ReadOnly {
			// We are the RW and do not hold the page locally: the stale
			// bit is a leftover (e.g. a racing registration by an RO that
			// has not populated data yet). Fall back to storage.
			return ErrStalePage
		}
		ok, err := e.requestRWFlush(f.ID)
		if err != nil || !ok {
			return ErrStalePage // RW does not hold it: storage is current
		}
	}
	return fmt.Errorf("%w: %s (PIB never cleared)", ErrStalePage, f.ID)
}

// requestRWFlush asks the RW node to write a page back to remote memory.
// ok=false means the RW has no local copy (storage is authoritative).
func (e *Engine) requestRWFlush(id types.PageID) (bool, error) {
	req := make([]byte, 8)
	binary.LittleEndian.PutUint32(req[0:], uint32(id.Space))
	binary.LittleEndian.PutUint32(req[4:], uint32(id.No))
	resp, err := e.ep.CallTimeout(e.cfg.RWNode, "eng.flushpage", req, e.cfg.FlushPageTimeout)
	if err != nil {
		return false, err
	}
	return len(resp) == 1 && resp[0] == 1, nil
}

// refreshFrame re-reads an invalidated local copy (RO path).
func (e *Engine) refreshFrame(f *cache.Frame) error {
	f.Latch.Lock()
	defer f.Latch.Unlock()
	if !f.Invalid() {
		return nil // refreshed by a concurrent reader
	}
	if !f.Remote.Registered && e.pool != nil {
		res, err := e.pool.Register(f.ID)
		if err == nil {
			f.Remote = cache.RemoteInfo{Registered: true, Data: res.Data, PL: res.PL, PIB: res.PIB}
		}
	}
	if f.Remote.Registered {
		if err := e.readRemoteFresh(f); err == nil {
			e.stats.RemoteReads.Add(1)
			e.met.remoteRead.Inc()
			f.NewestLSN = types.LSN(binary.LittleEndian.Uint64(f.Data[0:8]))
			f.ShippedLSN = f.NewestLSN
			f.SetInvalid(false)
			return nil
		} else if !errors.Is(err, ErrStalePage) {
			return err
		}
	}
	data, lsn, exists, err := e.pfs.GetPage(f.ID, polarfs.MaxLSN)
	if err != nil {
		return err
	}
	e.stats.StorageReads.Add(1)
	e.met.storageRead.Inc()
	if exists {
		copy(f.Data, data)
	} else {
		for i := range f.Data {
			f.Data[i] = 0
		}
	}
	binary.LittleEndian.PutUint64(f.Data[0:8], uint64(lsn))
	f.NewestLSN = lsn
	f.ShippedLSN = lsn
	f.SetInvalid(false)
	return nil
}

// onEvict implements the eviction policy: a locally-modified frame may
// only leave the cache once its redo is acknowledged by the page chunks
// (Figure 7 step 6); dirty frames are written back to remote memory first.
func (e *Engine) onEvict(f *cache.Frame) {
	if !e.cfg.ReadOnly && f.NewestLSN > f.ShippedLSN {
		e.waitShipped(f.NewestLSN)
		f.ShippedLSN = f.NewestLSN
	}
	if f.Dirty() && !e.cfg.ReadOnly && f.Remote.Registered {
		if err := e.pool.WritePage(f.Remote.Data, f.Data, f.Remote.PIB); err == nil {
			f.ClearDirty()
		}
	}
	if f.Remote.Registered && e.pool != nil {
		_ = e.pool.Unregister(f.ID) //polarvet:allow errdrop best-effort deref on eviction; an unreachable home node means recovery reclaims the refs wholesale
	}
}

// waitShipped blocks until the shipper watermark covers lsn.
func (e *Engine) waitShipped(lsn types.LSN) {
	e.shippedMu.Lock()
	for e.shippedLSN < lsn {
		e.shippedCond.Wait()
	}
	e.shippedMu.Unlock()
}

func (e *Engine) setShipped(lsn types.LSN) {
	e.shippedMu.Lock()
	if lsn > e.shippedLSN {
		e.shippedLSN = lsn
	}
	e.shippedMu.Unlock()
	e.shippedCond.Broadcast()
}

// ---------------------------------------------------------------------------
// Global latches & SMO clock (btree.Store implementation, continued)

// PLLockX takes the page's global latch exclusively (RDMA CAS fast path,
// home negotiation slow path). A no-op without remote memory (single-node
// baselines have no cross-node readers).
func (e *Engine) PLLockX(f *cache.Frame) error {
	if e.pool == nil || !f.Remote.Registered {
		return nil
	}
	e.met.smoLatchX.Inc()
	return e.pool.PL().LockX(f.ID, f.Remote.PL)
}

// PLUnlockX releases an SMO's latch participation; the latch itself stays
// sticky on this node until another node asks for it (§3.2).
func (e *Engine) PLUnlockX(f *cache.Frame) {
	if e.pool == nil || !f.Remote.Registered {
		return
	}
	_ = e.pool.PL().UnlockX(f.ID, true) //polarvet:allow errdrop latch release to a possibly-dead home node; ReleaseNodeLatches force-clears our latches on recovery
}

// PLLockS takes the global latch shared (RO pessimistic traversals).
func (e *Engine) PLLockS(f *cache.Frame) error {
	if e.pool == nil || !f.Remote.Registered {
		return nil
	}
	e.met.smoLatchS.Inc()
	return e.pool.PL().LockS(f.ID, f.Remote.PL)
}

// PLUnlockS releases a shared global latch.
func (e *Engine) PLUnlockS(f *cache.Frame) {
	if e.pool == nil || !f.Remote.Registered {
		return
	}
	_ = e.pool.PL().UnlockS(f.ID) //polarvet:allow errdrop latch release to a possibly-dead home node; ReleaseNodeLatches force-clears our latches on recovery
}

// SMOStamp returns the value SMOs stamp onto modified pages. It is
// derived from the redo LSN, which is monotone across crashes — any SMO
// that runs after a reader snapshots SMOClock gets a strictly greater
// stamp. (The paper uses a dedicated SMO counter; an LSN-based clock is
// the same mechanism with crash-safety for free.)
func (e *Engine) SMOStamp() uint64 {
	return uint64(e.buf.CurrentLSN()) + 1
}

// SMOClock returns the optimistic traversal snapshot: local LSN on the
// RW, the RW's published LSN via one-sided RDMA on RO nodes.
func (e *Engine) SMOClock() (uint64, error) {
	if !e.cfg.ReadOnly {
		return uint64(e.buf.CurrentLSN()), nil
	}
	lsn, err := e.ctsCli.ReadLSN()
	return uint64(lsn), err
}

// ReadOnly reports whether this engine may modify pages.
func (e *Engine) ReadOnly() bool { return e.cfg.ReadOnly }

var _ btree.Store = (*Engine)(nil)

// ---------------------------------------------------------------------------
// Mini-transactions

// Mtr is the engine's mini-transaction: a group of page writes applied
// atomically through the redo log.
type Mtr struct {
	e        *Engine
	m        *plog.MTR
	frames   map[uint64]*cache.Frame
	deferred []*cache.Frame // X-PL releases pending until post-invalidation
}

// BeginMtr opens a mini-transaction (RW only).
func (e *Engine) BeginMtr() *Mtr {
	return &Mtr{e: e, m: plog.NewMTR(), frames: make(map[uint64]*cache.Frame)}
}

// LogWrite applies data at off within the (exclusively latched) frame and
// logs it. Bytes [0,8) are the engine-owned page LSN and must not be
// logged.
func (mt *Mtr) LogWrite(f *cache.Frame, off int, data []byte) {
	if off < 8 {
		panic(fmt.Sprintf("engine: logged write into reserved header of %s (off %d)", f.ID, off))
	}
	copy(f.Data[off:], data)
	mt.m.LogWrite(f.ID, uint16(off), data)
	f.MarkDirty()
	if _, ok := mt.frames[f.ID.Key()]; !ok {
		f.Pin()
		// The mtr-pin (taken under this frame's exclusive latch) keeps
		// handleFlushPage from shipping these bytes to an RO node before
		// Commit invalidates the MTR's other pages.
		f.MtrPin()
		mt.frames[f.ID.Key()] = f
	}
}

// DeferPLUnlockX schedules the frame's global X latch release for after
// this MTR's invalidations (see btree.Mtr). The frame is pinned until then.
func (mt *Mtr) DeferPLUnlockX(f *cache.Frame) {
	f.Pin()
	mt.deferred = append(mt.deferred, f)
}

var _ btree.Mtr = (*Mtr)(nil)

// Commit runs the §3.1.4 pipeline: invalidate every modified page's other
// copies, then append the MTR's redo to the log buffer, stamp the frames'
// page LSNs, and release the pins. Returns the MTR's end LSN (0 if empty).
//polarvet:fabric O(n) invalidation is one batched RPC, but releasing the SMO's deferred global latches is one one-sided CAS per latched frame
func (mt *Mtr) Commit() (types.LSN, error) {
	if mt.m.Empty() {
		mt.release()
		return 0, nil
	}
	if mt.e.pool != nil {
		// One batched page_invalidate round trip for the whole MTR: the
		// home fans the list out once per distinct holder instead of once
		// per (page, holder) pair.
		if err := mt.e.pool.InvalidateBatch(mt.m.Pages()); err != nil {
			// Invalidation must succeed for coherency; a failure means
			// the home is gone and the node must stop modifying.
			mt.release()
			return 0, fmt.Errorf("engine: page_invalidate: %w", err)
		}
	}
	end := mt.e.buf.Append(mt.m)
	mt.e.met.mtrCommit.Inc()
	mt.e.cts.PublishLSN(end)
	for _, f := range mt.frames {
		f.Latch.Lock()
		if end > f.NewestLSN {
			binary.LittleEndian.PutUint64(f.Data[0:8], uint64(end))
			f.NewestLSN = end
		}
		f.Latch.Unlock()
	}
	mt.release()
	mt.e.nudgeShipper()
	return end, nil
}

func (mt *Mtr) release() {
	mt.e.mtrMu.Lock()
	for _, f := range mt.frames {
		f.MtrUnpin()
	}
	mt.e.mtrMu.Unlock()
	mt.e.mtrCond.Broadcast()
	for _, f := range mt.frames {
		f.Unpin()
	}
	mt.frames = make(map[uint64]*cache.Frame)
	// Now that every modified page is invalidated (or the MTR was empty),
	// the SMO's global latches may be released (sticky: they stay on this
	// node until another node asks).
	for _, f := range mt.deferred {
		if mt.e.pool != nil && f.Remote.Registered {
			_ = mt.e.pool.PL().UnlockX(f.ID, true) //polarvet:allow errdrop latch release to a possibly-dead home node; ReleaseNodeLatches force-clears our latches on recovery
		}
		f.Unpin()
	}
	mt.deferred = nil
}

func (e *Engine) nudgeShipper() {
	select {
	case e.nudge <- struct{}{}:
	default:
	}
}
