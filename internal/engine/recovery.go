package engine

import (
	"encoding/binary"
	"fmt"
	"os"
	"time"

	"polardb/internal/cache"
	"polardb/internal/plog"
	"polardb/internal/rdma"
	"polardb/internal/txn"
	"polardb/internal/types"
)

func (e *Engine) newBufferAt(start types.LSN) *plog.Buffer {
	b := plog.NewBuffer(start)
	b.AttachMetrics(e.ep.Metrics())
	return b
}

// Recover turns this engine into the serving RW after a failover (§5.1).
// oldRW is the failed node (for latch release); planned skips the steps a
// clean handover already performed. The cluster manager has already fenced
// the old RW (steps 1-2) before calling this.
//
// Steps (unplanned):
//
//	3-4. parallel REDO: collect the checkpoint from the page chunks, read
//	     redo from the log chunks and distribute it — the REDO phase runs
//	     concurrently on all page chunk nodes, not on this node.
//	5.   scan the remote memory pool and evict pages whose invalidation
//	     bit is set or whose version exceeds the durable redo tail.
//	6.   force-release every PL latch the old RW held.
//	7.   scan the undo header to rebuild the active transaction table.
//	8.   start serving.
//	9.   roll back unfinished transactions in the background.
func (e *Engine) Recover(oldRW rdma.NodeID, planned bool) error {
	if e.cfg.ReadOnly {
		return ErrNotRW
	}
	trace := func(string) {}
	if os.Getenv("POLARDB_TRACE_RECOVERY") != "" {
		t0 := time.Now()
		trace = func(step string) {
			fmt.Fprintf(os.Stderr, "recovery: %-24s +%8.1fms\n", step, time.Since(t0).Seconds()*1000)
		}
	}
	// Steps 3-4: parallel REDO on the storage fleet.
	_, tail, err := e.pfs.ParallelRedo()
	if err != nil {
		return fmt.Errorf("engine: parallel redo: %w", err)
	}
	e.buf = e.newBufferAt(tail)
	e.buf.MarkFlushed(tail)
	e.setShipped(tail)
	e.cts.PublishLSN(tail)
	trace("parallel redo")

	if e.pool != nil && !planned {
		// The crashed node's page references must not pin pages or stall
		// invalidation fan-outs.
		if oldRW != "" {
			_ = e.pool.DropNodeRefs(oldRW) //polarvet:allow errdrop best-effort purge of the dead node's refs; a failure leaves pins that only delay eviction, never correctness
		}
		// Step 5: purge remote-memory pages that are stale (PIB set) or
		// ahead of the durable redo (written back before their redo
		// flushed). Everything that survives is byte-consistent with
		// storage, so the hot working set stays warm.
		entries, err := e.pool.ScanRemote()
		if err != nil {
			return fmt.Errorf("engine: scanning remote memory: %w", err)
		}
		for _, en := range entries {
			if en.Stale {
				//polarvet:allow fabriccost recovery-only purge: runs once per RW failover, and each evicted page is a distinct home-side state change
				_ = e.pool.ForceEvict(en.Page) //polarvet:allow errdrop best-effort purge; a page that survives eviction is re-validated against storage on next fetch
				continue
			}
			var hdr [8]byte
			if err := e.ep.Read(en.Data, hdr[:]); err != nil {
				//polarvet:allow fabriccost recovery-only purge: runs once per RW failover, and each evicted page is a distinct home-side state change
				_ = e.pool.ForceEvict(en.Page) //polarvet:allow errdrop best-effort purge; a page that survives eviction is re-validated against storage on next fetch
				continue
			}
			if types.LSN(binary.LittleEndian.Uint64(hdr[:])) > tail {
				//polarvet:allow fabriccost recovery-only purge: runs once per RW failover, and each evicted page is a distinct home-side state change
				_ = e.pool.ForceEvict(en.Page) //polarvet:allow errdrop best-effort purge; a page that survives eviction is re-validated against storage on next fetch
			}
		}
		trace("pool scan + evict")
		// Step 6: release the crashed RW's global latches.
		if oldRW != "" {
			if err := e.pool.ReleaseNodeLatches(oldRW); err != nil {
				return fmt.Errorf("engine: releasing old RW latches: %w", err)
			}
		}
		trace("latch release")
	}

	// Step 7: rebuild transaction state from the undo header.
	hdrPage, err := e.Fetch(types.PageID{Space: UndoSpace, No: 0})
	if err != nil {
		return err
	}
	hdrPage.Latch.RLock()
	unfinished := txn.ScanUnfinished(hdrPage.Data)
	maxTrx := txn.MaxTrxID(hdrPage.Data)
	watermark := txn.CTSWatermark(hdrPage.Data)
	undoPg, undoOff := txn.UndoAlloc(hdrPage.Data)
	hdrPage.Latch.RUnlock()
	e.Unpin(hdrPage)

	e.nextTrx.Store(uint64(maxTrx))
	e.cts.SetCounter(watermark + 1)
	if undoPg == 0 {
		undoPg = 1
	}
	if undoOff < 8 {
		undoOff = 8
	}
	e.undoPage, e.undoOff = undoPg, undoOff

	// Unfinished transactions stay in the active set (invisible to every
	// read view) until their background rollback completes.
	slotByTrx := make(map[types.TrxID]int)
	hdr2, err := e.Fetch(types.PageID{Space: UndoSpace, No: 0})
	if err != nil {
		return err
	}
	hdr2.Latch.RLock()
	for i := 0; i < txn.SlotCount(); i++ {
		s := txn.UnmarshalSlot(hdr2.Data, i)
		if s.State == txn.SlotActive || s.State == txn.SlotAborting {
			slotByTrx[s.Trx] = i
		}
	}
	hdr2.Latch.RUnlock()
	e.Unpin(hdr2)

	e.activeMu.Lock()
	for _, u := range unfinished {
		e.active[u.Trx] = &Txn{e: e, id: u.Trx}
	}
	e.activeMu.Unlock()
	e.slotMu.Lock()
	for trx, slot := range slotByTrx {
		e.slotOwner[slot] = trx
	}
	e.slotMu.Unlock()

	trace("undo scan")
	// Step 8: serve.
	e.start()

	if planned {
		// Planned switch (§3.5): transaction state lives in shared memory
		// (undo chains, slot table), so in-flight transactions are adopted
		// by the new RW instead of being rolled back — the proxy resumes
		// them from their latest savepoint.
		return e.adoptUnfinished(unfinished, slotByTrx)
	}

	// Step 9: background rollback.
	if len(unfinished) > 0 {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for _, u := range unfinished {
				slot := slotByTrx[u.Trx]
				_ = e.rollbackChain(u.Trx, u.LastUndoPage, u.LastUndoOff, slot)
				e.activeMu.Lock()
				delete(e.active, u.Trx)
				e.activeMu.Unlock()
				e.releaseSlot(slot, u.Trx)
			}
		}()
	}
	return nil
}

// adoptUnfinished rebuilds live Txn handles for the unfinished
// transactions found at planned takeover: their undo chains are walked to
// re-acquire row locks and rebuild the touched-key set, and their CTS log
// slots are re-claimed as active. Adopted transactions get a fresh read
// view (their original snapshot died with the old node's memory).
func (e *Engine) adoptUnfinished(unfinished []txn.TxnSlot, slotByTrx map[types.TrxID]int) error {
	adopted := make(map[types.TrxID]*Txn, len(unfinished))
	for _, u := range unfinished {
		t := &Txn{e: e, id: u.Trx, slot: slotByTrx[u.Trx], lastPg: u.LastUndoPage, lastOff: u.LastUndoOff}
		// Walk the undo chain to rediscover what the txn touched.
		pg, off := u.LastUndoPage, u.LastUndoOff
		for pg != 0 {
			f, err := e.Fetch(types.PageID{Space: UndoSpace, No: pg}) //polarvet:allow verbdeadline undo chain walk is bounded by the dead transaction's write count, not a retry
			if err != nil {
				return err
			}
			f.Latch.RLock()
			ur, err := txn.UnmarshalUndo(f.Data, int(off))
			f.Latch.RUnlock()
			e.Unpin(f)
			if err != nil {
				return err
			}
			if err := e.locks.Lock(u.Trx, ur.Space, ur.Key); err != nil {
				return err
			}
			t.locks = append(t.locks, txn.LockRef{Space: ur.Space, Key: ur.Key})
			t.touched = append(t.touched, touchedKey{ur.Space, ur.Key})
			t.writes++
			pg, off = ur.PrevTxnPg, ur.PrevTxnOff
		}
		e.cts.BeginInLog(u.Trx)
		if uint64(u.Trx) > e.nextTrx.Load() {
			e.nextTrx.Store(uint64(u.Trx))
		}
		e.activeMu.Lock()
		readTS := e.cts.NextTS()
		active := e.activeListLocked()
		e.activeMu.Unlock()
		t.view = txn.NewReadView(readTS, u.Trx, active)
		adopted[u.Trx] = t
		e.activeMu.Lock()
		e.active[u.Trx] = t
		e.activeMu.Unlock()
	}
	e.adoptedMu.Lock()
	e.adopted = adopted
	e.adoptedMu.Unlock()
	return nil
}

// Adopted returns (and clears) the transactions adopted at planned
// takeover, keyed by transaction id, for the proxy to rebind to sessions.
func (e *Engine) Adopted() map[types.TrxID]*Txn {
	e.adoptedMu.Lock()
	defer e.adoptedMu.Unlock()
	m := e.adopted
	e.adopted = nil
	return m
}

// RecoverTraditional replays redo on this single node instead of using
// page materialization offloading — the monolithic-architecture baseline
// of Figure 9 ("w/o page mat."): every page touched since the last page
// flush (fromLSN; a traditional engine checkpoints minutes apart, so the
// benchmark passes 0 = full history) is read from storage and patched
// locally before service resumes. Returns the number of pages replayed —
// the serial REDO work the paper's design eliminates.
func (e *Engine) RecoverTraditional(oldRW rdma.NodeID, fromLSN types.LSN) (int, error) {
	if e.cfg.ReadOnly {
		return 0, ErrNotRW
	}
	cp := fromLSN
	tail, err := e.pfs.RedoTail()
	if err != nil {
		return 0, err
	}
	// Single-node REDO: group records by page, fetch each page's base
	// version from storage, apply the records here, ship the result back
	// (modelled by re-distributing the redo as in ParallelRedo but paying
	// the local replay cost).
	replayed := make(map[types.PageID][]plog.Record)
	after := cp
	for after < tail {
		recs, err := e.pfs.ReadRedo(after, 512) //polarvet:allow verbdeadline bounded by the redo tail snapshot: after advances every iteration and the loop breaks on an empty batch
		if err != nil {
			return 0, err
		}
		if len(recs) == 0 {
			break
		}
		for _, r := range recs {
			replayed[r.Page] = append(replayed[r.Page], r)
		}
		after = recs[len(recs)-1].LSN
	}
	buf := make([]byte, types.PageSize)
	for id, recs := range replayed {
		//polarvet:allow fabriccost ARIES replay fetches each distinct redo-touched page exactly once, and only during failover
		data, _, exists, err := e.pfs.GetPage(id, cp)
		if err != nil && exists {
			return 0, err
		}
		if exists {
			copy(buf, data)
		} else {
			for i := range buf {
				buf[i] = 0
			}
		}
		for _, r := range recs {
			if err := r.ApplyToPage(buf); err != nil {
				// A record that does not fit its page means the redo read
				// back from storage is corrupt; recovery must not continue.
				return 0, err
			}
		}
		if err := e.pfs.ShipRecords(recs, recs[len(recs)-1].LSN); err != nil {
			return 0, err
		}
	}
	if err := e.pfs.AdvanceCoverage(tail); err != nil {
		return 0, err
	}
	// Continue with the common tail of recovery (txn table etc.).
	if err := e.Recover(oldRW, false); err != nil {
		return 0, err
	}
	return len(replayed), nil
}

// PlannedHandover performs the old RW's clean shutdown (§5.1 "planned
// node down"): synchronize redo to the page chunks, write every dirty
// page back to remote memory, and release all PL latches, so the new RW
// can skip recovery steps 4-6.
func (e *Engine) PlannedHandover() error {
	if e.cfg.ReadOnly {
		return ErrNotRW
	}
	e.WaitAllShipped()
	e.cache.ForEach(func(f *cache.Frame) {
		if f.Dirty() && f.Remote.Registered {
			f.Latch.RLock()
			if err := e.pool.WritePage(f.Remote.Data, f.Data, f.Remote.PIB); err == nil {
				f.ClearDirty()
			}
			f.Latch.RUnlock()
		}
	})
	if e.pool != nil {
		e.pool.PL().ReleaseAll()
	}
	e.Close()
	return nil
}

// SwitchRW repoints an RO node at a new RW after failover: new CTS
// region, flushed table cache, and a cold-ish local cache (every cached
// page is revalidated against the recovered pool on next use).
func (e *Engine) SwitchRW(rw rdma.NodeID, ctsRegion uint32) {
	if !e.cfg.ReadOnly {
		return
	}
	e.cfg.RWNode = rw
	e.ctsCli.SetRW(rw, ctsRegion)
	e.cache.EvictAll()
	e.cache.ForEach(func(f *cache.Frame) { f.SetInvalid(true) })
	e.RefreshCatalog()
}
