package engine

import (
	"sort"
	"sync"

	"polardb/internal/btree"
)

// Batched Key PrePare (BKP, §4.2): given a batch of keys about to be
// accessed (e.g. the inner-table keys accumulated in a join buffer), a
// background task walks the index and pulls the covering pages from
// remote memory or storage into the local cache, hiding remote I/O
// latency behind the foreground's other work.

// bkpParallelism bounds concurrent background prefetch descents.
const bkpParallelism = 8

// Prefetch starts a BKP task over the tree for the given keys and returns
// immediately; Wait on the returned handle blocks until warm-up finishes.
// Keys are sorted and deduplicated, and each distinct *leaf* is fetched
// once: a descent reports the leaf's key coverage, and every remaining
// key within it is skipped.
func (e *Engine) Prefetch(tree *btree.Tree, keys []uint64) *PrefetchHandle {
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	h := &PrefetchHandle{}
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		mode := e.readMode()
		// Shard the sorted key range across workers: each shard walks its
		// keys sequentially (skipping keys covered by the leaf it just
		// fetched), and shards run in parallel so remote/storage latency
		// overlaps — the point of BKP.
		shards := bkpParallelism
		if shards > len(sorted) {
			shards = len(sorted)
		}
		if shards == 0 {
			return
		}
		per := (len(sorted) + shards - 1) / shards
		var inner sync.WaitGroup
		for s := 0; s < shards; s++ {
			lo := s * per
			hi := lo + per
			if hi > len(sorted) {
				hi = len(sorted)
			}
			if lo >= hi {
				break
			}
			inner.Add(1)
			go func(keys []uint64) {
				defer inner.Done()
				i := 0
				for i < len(keys) {
					k := keys[i]
					last, ok, err := tree.LeafCoverage(k, mode)
					if err != nil || !ok {
						last = k
					}
					i++
					for i < len(keys) && keys[i] <= last {
						i++
					}
				}
			}(sorted[lo:hi])
		}
		inner.Wait()
	}()
	return h
}

// PrefetchHandle tracks an in-flight BKP task.
type PrefetchHandle struct {
	wg sync.WaitGroup
}

// Wait blocks until the prefetch task completes.
func (h *PrefetchHandle) Wait() { h.wg.Wait() }
