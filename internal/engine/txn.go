package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"polardb/internal/btree"
	"polardb/internal/polarfs"
	"polardb/internal/txn"
	"polardb/internal/types"
)

// Txn is a transaction handle. Read-write transactions run on the RW node
// (2PL row locks + undo logging); read-only transactions run on any node
// against a snapshot-isolation read view (§3.3).
type Txn struct {
	e    *Engine
	id   types.TrxID // 0 for read-only
	view *txn.ReadView

	slot     int
	lastPg   types.PageNo
	lastOff  uint16
	locks    []txn.LockRef
	touched  []touchedKey
	writes   int
	finished bool
}

type touchedKey struct {
	space types.SpaceID
	key   uint64
}

type backfillItem struct {
	space types.SpaceID
	key   uint64
	trx   types.TrxID
	cts   types.Timestamp
}

// Begin starts a read-write transaction (RW node only).
func (e *Engine) Begin() (*Txn, error) {
	if e.cfg.ReadOnly {
		return nil, ErrNotRW
	}
	if e.buf == nil {
		return nil, errNotBootstrapped
	}
	id := types.TrxID(e.nextTrx.Add(1))
	if !e.cts.BeginInLog(id) {
		return nil, txn.ErrTooManyTxns
	}
	t := &Txn{e: e, id: id, slot: -1}
	e.activeMu.Lock()
	readTS := e.cts.NextTS()
	active := e.activeListLocked()
	e.active[id] = t
	e.activeMu.Unlock()
	t.view = txn.NewReadView(readTS, id, active)
	return t, nil
}

// BeginRO starts a read-only transaction: on the RW a local snapshot, on
// an RO node a read-view RPC to the RW (the per-record visibility checks
// then use one-sided CTS log reads only).
//polarvet:fabric O(1) at most one read-view RPC to the RW, independent of snapshot size
func (e *Engine) BeginRO() (*Txn, error) {
	if !e.cfg.ReadOnly {
		e.activeMu.Lock()
		readTS := e.cts.CurrentTS() + 1
		active := e.activeListLocked()
		e.activeMu.Unlock()
		t := &Txn{e: e, view: txn.NewReadView(readTS, 0, active)}
		e.roViewsMu.Lock()
		e.roViews[t] = readTS
		e.roViewsMu.Unlock()
		return t, nil
	}
	resp, err := e.ep.CallTimeout(e.cfg.RWNode, txn.ViewRPCMethod, nil, e.cfg.ViewTimeout)
	if err != nil {
		return nil, fmt.Errorf("engine: read view from RW: %w", err)
	}
	readTS, active, err := txn.UnmarshalView(resp)
	if err != nil {
		return nil, err
	}
	return &Txn{e: e, view: txn.NewReadView(readTS, 0, active)}, nil
}

// activeListLocked snapshots in-flight read-write transactions.
func (e *Engine) activeListLocked() []types.TrxID {
	out := make([]types.TrxID, 0, len(e.active))
	for id := range e.active {
		out = append(out, id)
	}
	return out
}

// ID returns the transaction id (0 for read-only transactions).
func (t *Txn) ID() types.TrxID { return t.id }

// lookupCTS resolves commit status: locally on the RW, one-sided on ROs.
//polarvet:fabric O(1) visibility checks ride one one-sided CTS slot read; an RPC here would put the RW's CPU on every RO read path
func (e *Engine) lookupCTS(trx types.TrxID) (types.Timestamp, bool, error) {
	if !e.cfg.ReadOnly {
		cts, known := e.cts.Lookup(trx)
		return cts, known, nil
	}
	return e.ctsCli.Lookup(trx)
}

// ---------------------------------------------------------------------------
// Reads

// Get returns the payload visible to the transaction's snapshot.
func (t *Txn) Get(tbl *Table, key uint64) ([]byte, bool, error) {
	return t.getTree(tbl.Primary, key)
}

// GetIndex reads from a secondary index tree under the same snapshot.
func (t *Txn) GetIndex(ix *Index, key uint64) ([]byte, bool, error) {
	return t.getTree(ix.Tree, key)
}

func (t *Txn) getTree(tree *btree.Tree, key uint64) ([]byte, bool, error) {
	raw, err := tree.Get(key, t.e.readMode())
	if errors.Is(err, btree.ErrKeyNotFound) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return t.resolveVersion(raw)
}

// resolveVersion walks a record's version chain until a visible version.
func (t *Txn) resolveVersion(raw []byte) ([]byte, bool, error) {
	rec, err := txn.UnmarshalRecord(raw)
	if err != nil {
		return nil, false, err
	}
	for depth := 0; depth < 1000; depth++ {
		vis, err := t.view.Judge(&rec, t.e.lookupCTS)
		if err != nil {
			return nil, false, err
		}
		if vis != txn.Invisible {
			if rec.Tombstone {
				return nil, false, nil
			}
			out := make([]byte, len(rec.Payload))
			copy(out, rec.Payload)
			return out, true, nil
		}
		if rec.UndoPage == 0 {
			return nil, false, nil // created after the snapshot
		}
		prev, prevOK, err := t.e.readUndoPrev(rec.UndoPage, rec.UndoOff)
		if err != nil {
			return nil, false, err
		}
		if !prevOK {
			return nil, false, nil // UndoInsert: record did not exist before
		}
		rec, err = txn.UnmarshalRecord(prev)
		if err != nil {
			return nil, false, err
		}
	}
	return nil, false, fmt.Errorf("engine: version chain too deep")
}

// readUndoPrev loads the previous version bytes from an undo record.
// ok=false means the undo record is an insert marker (no previous version).
func (e *Engine) readUndoPrev(pg types.PageNo, off uint16) ([]byte, bool, error) {
	f, err := e.Fetch(types.PageID{Space: UndoSpace, No: pg})
	if err != nil {
		return nil, false, err
	}
	f.Latch.RLock()
	u, err := txn.UnmarshalUndo(f.Data, int(off))
	if err == nil && u.Type != txn.UndoInsert && u.Type != txn.UndoUpdate && u.Type != txn.UndoDelete {
		// Forensics: compare this frame against the storage and remote
		// copies to find where the zeroed bytes came from.
		//polarvet:allow errdrop forensic probe on an already-failing path; the caller reports the original corruption error either way
		sData, sLSN, sExists, _ := e.pfs.GetPage(types.PageID{Space: UndoSpace, No: pg}, polarfs.MaxLSN)
		sNZ := false
		if sExists && int(off)+8 <= len(sData) {
			for _, b := range sData[off : off+8] {
				if b != 0 {
					sNZ = true
				}
			}
		}
		rNZ := false
		var rHdr uint64
		if f.Remote.Registered && e.pool != nil {
			buf := make([]byte, types.PageSize)
			if e.pool.ReadPage(f.Remote.Data, buf) == nil {
				rHdr = binary.LittleEndian.Uint64(buf[0:8])
				for _, b := range buf[off : off+8] {
					if b != 0 {
						rNZ = true
					}
				}
			}
		}
		err = fmt.Errorf("engine: undo %d/%d type=%d trx=%d pageLSN=%d newest=%d shipped=%d invalid=%v remote=%v storage[lsn=%d nz=%v] remoteCopy[hdr=%d nz=%v]: zeroed or torn undo record",
			pg, off, u.Type, u.Trx, binary.LittleEndian.Uint64(f.Data[0:8]), f.NewestLSN, f.ShippedLSN, f.Invalid(), f.Remote.Registered,
			sLSN, sNZ, rHdr, rNZ)
	}
	var prev []byte
	if err == nil && u.Type != txn.UndoInsert {
		prev = make([]byte, len(u.PrevBytes))
		copy(prev, u.PrevBytes)
	}
	isInsert := err == nil && u.Type == txn.UndoInsert
	f.Latch.RUnlock()
	e.Unpin(f)
	if err != nil {
		return nil, false, err
	}
	if isInsert {
		return nil, false, nil
	}
	return prev, true, nil
}

// Scan streams visible records with from <= key < to in key order.
func (t *Txn) Scan(tbl *Table, from, to uint64, fn func(key uint64, payload []byte) bool) error {
	return t.ScanTree(tbl.Primary, from, to, fn)
}

// ScanTree is Scan over an arbitrary index tree.
func (t *Txn) ScanTree(tree *btree.Tree, from, to uint64, fn func(key uint64, payload []byte) bool) error {
	var resolveErr error
	err := tree.Scan(from, to, t.e.readMode(), func(kv btree.KV) bool {
		payload, ok, err := t.resolveVersion(kv.Value)
		if err != nil {
			resolveErr = err
			return false
		}
		if !ok {
			return true
		}
		return fn(kv.Key, payload)
	})
	if err != nil {
		return err
	}
	return resolveErr
}

// ---------------------------------------------------------------------------
// Writes

// Insert adds a new row; ErrKeyExists if a visible version exists.
func (t *Txn) Insert(tbl *Table, key uint64, payload []byte) error {
	return t.writeTree(tbl.Primary, key, payload, opInsert)
}

// Update replaces an existing row; ErrKeyNotFound if absent.
func (t *Txn) Update(tbl *Table, key uint64, payload []byte) error {
	return t.writeTree(tbl.Primary, key, payload, opUpdate)
}

// Put inserts or replaces a row.
func (t *Txn) Put(tbl *Table, key uint64, payload []byte) error {
	return t.writeTree(tbl.Primary, key, payload, opPut)
}

// Delete removes a row (tombstone; older snapshots keep seeing it).
func (t *Txn) Delete(tbl *Table, key uint64) error {
	return t.writeTree(tbl.Primary, key, nil, opDelete)
}

// InsertIndex / DeleteIndex maintain a secondary index entry within the
// same transaction (the payload is typically the encoded primary key).
func (t *Txn) InsertIndex(ix *Index, key uint64, payload []byte) error {
	return t.writeTree(ix.Tree, key, payload, opPut)
}

// DeleteIndex tombstones a secondary index entry.
func (t *Txn) DeleteIndex(ix *Index, key uint64) error {
	return t.writeTree(ix.Tree, key, nil, opDelete)
}

type writeKind int

const (
	opInsert writeKind = iota
	opUpdate
	opPut
	opDelete
)

func (t *Txn) writeTree(tree *btree.Tree, key uint64, payload []byte, kind writeKind) error {
	if t.id == 0 {
		return ErrNotRW
	}
	if t.finished {
		return ErrClosed
	}
	e := t.e
	space := tree.Space()
	if err := e.locks.Lock(t.id, space, key); err != nil {
		return err
	}
	t.locks = append(t.locks, txn.LockRef{Space: space, Key: key})

	// Read the newest version (raw) to build the undo record.
	cur, err := tree.Get(key, btree.Local)
	exists := err == nil
	if err != nil && !errors.Is(err, btree.ErrKeyNotFound) {
		return err
	}
	var curRec txn.Record
	live := false
	if exists {
		curRec, err = txn.UnmarshalRecord(cur)
		if err != nil {
			return err
		}
		live = !curRec.Tombstone
	}
	switch kind {
	case opInsert:
		if live {
			return fmt.Errorf("%w: key %d", ErrKeyExists, key)
		}
	case opUpdate:
		if !live {
			return fmt.Errorf("%w: key %d", ErrKeyNotFound, key)
		}
	case opDelete:
		if !live {
			return fmt.Errorf("%w: key %d", ErrKeyNotFound, key)
		}
	}

	// Build the undo record.
	u := txn.UndoRec{
		Trx:        t.id,
		Space:      space,
		Key:        key,
		PrevTxnPg:  t.lastPg,
		PrevTxnOff: t.lastOff,
	}
	if exists {
		u.Type = txn.UndoUpdate
		if kind == opDelete {
			u.Type = txn.UndoDelete
		}
		u.PrevBytes = cur
	} else {
		u.Type = txn.UndoInsert
	}

	mt := e.BeginMtr()
	committed := false
	defer func() {
		if !committed {
			_, _ = mt.Commit() // applied page changes must still be logged
		}
	}()
	if t.slot < 0 {
		slot, err := e.claimSlot(mt, t.id)
		if err != nil {
			return err
		}
		t.slot = slot
	}
	undoPg, undoOff, err := e.appendUndo(mt, &u)
	if err != nil {
		return err
	}
	newRec := txn.Record{
		Trx:       t.id,
		UndoPage:  undoPg,
		UndoOff:   undoOff,
		Tombstone: kind == opDelete,
		Payload:   payload,
	}
	if err := tree.Put(mt, key, newRec.Marshal()); err != nil {
		return err
	}
	// Persist the rollback chain head in the slot (same MTR: atomic).
	if err := e.writeSlot(mt, t.slot, txn.TxnSlot{
		Trx: t.id, State: txn.SlotActive, LastUndoPage: undoPg, LastUndoOff: undoOff,
	}); err != nil {
		return err
	}
	if _, err := mt.Commit(); err != nil {
		committed = true
		return err
	}
	committed = true
	t.lastPg, t.lastOff = undoPg, undoOff
	t.writes++
	t.touched = append(t.touched, touchedKey{space, key})
	return nil
}

// Commit makes the transaction durable and visible.
func (t *Txn) Commit() error {
	if t.finished {
		return ErrClosed
	}
	t.finished = true
	e := t.e
	if t.id == 0 {
		e.dropROView(t)
		return nil // read-only
	}
	defer func() {
		e.activeMu.Lock()
		delete(e.active, t.id)
		e.activeMu.Unlock()
		e.locks.ReleaseAll(t.id, t.locks)
		if t.slot >= 0 {
			e.releaseSlot(t.slot, t.id)
		}
	}()
	if t.writes == 0 {
		e.cts.ClearSlot(t.id)
		e.stats.Commits.Add(1)
		e.met.txnCommit.Inc()
		return nil
	}
	ctsCommit := e.cts.NextTS()
	mt := e.BeginMtr()
	committed := false
	defer func() {
		if !committed {
			_, _ = mt.Commit()
		}
	}()
	if err := e.writeSlot(mt, t.slot, txn.TxnSlot{
		Trx: t.id, State: txn.SlotCommitted, LastUndoPage: t.lastPg, LastUndoOff: t.lastOff,
	}); err != nil {
		return err
	}
	// Persist the CTS watermark so recovery restarts timestamps above it.
	if err := e.writeHeaderField(mt, txn.CTSWatermarkOffset, txn.MarshalCTSWatermark(ctsCommit)); err != nil {
		return err
	}
	end, err := mt.Commit()
	committed = true
	if err != nil {
		return err
	}
	// Commit point: redo durable on the log chunks, then the commit
	// timestamp becomes visible through the CTS log.
	if err := e.DurableCommit(end); err != nil {
		// The node died before the commit became durable; recovery on the
		// new RW rolls this transaction back.
		e.stats.Aborts.Add(1)
		e.met.txnAbort.Inc()
		return err
	}
	e.cts.RecordCommit(t.id, ctsCommit)
	e.stats.Commits.Add(1)
	e.met.txnCommit.Inc()
	// Backfill cts_commit into the modified records asynchronously.
	for _, k := range t.touched {
		select {
		case e.backfillCh <- backfillItem{k.space, k.key, t.id, ctsCommit}:
		default: // backfill is best-effort; the CTS log remains authoritative
		}
	}
	return nil
}

// Rollback undoes every change and releases the transaction.
func (t *Txn) Rollback() error {
	if t.finished {
		return ErrClosed
	}
	t.finished = true
	e := t.e
	if t.id == 0 {
		e.dropROView(t)
		return nil
	}
	defer func() {
		e.activeMu.Lock()
		delete(e.active, t.id)
		e.activeMu.Unlock()
		e.locks.ReleaseAll(t.id, t.locks)
		if t.slot >= 0 {
			e.releaseSlot(t.slot, t.id)
		}
	}()
	err := e.rollbackChain(t.id, t.lastPg, t.lastOff, t.slot)
	e.cts.ClearSlot(t.id)
	e.stats.Aborts.Add(1)
	e.met.txnAbort.Inc()
	return err
}

// rollbackChain walks a transaction's undo chain newest-first, restoring
// previous versions, then frees the slot. Used by both explicit rollback
// and crash recovery (step 9 of §5.1).
func (e *Engine) rollbackChain(id types.TrxID, pg types.PageNo, off uint16, slot int) error {
	// The walk is bounded structurally: each undo record links strictly
	// to an older one, so the chain length is the number of writes the
	// transaction made, not a retry.
	for pg != 0 {
		f, err := e.Fetch(types.PageID{Space: UndoSpace, No: pg}) //polarvet:allow verbdeadline undo chain walk is bounded by the transaction's own write count, not a retry
		if err != nil {
			return err
		}
		f.Latch.RLock()
		u, err := txn.UnmarshalUndo(f.Data, int(off))
		var prevBytes []byte
		if err == nil {
			prevBytes = make([]byte, len(u.PrevBytes))
			copy(prevBytes, u.PrevBytes)
		}
		f.Latch.RUnlock()
		e.Unpin(f)
		if err != nil {
			return err
		}
		if u.Trx != id {
			return fmt.Errorf("engine: undo chain of %d reached record of %d", id, u.Trx)
		}
		if err := e.rollbackOne(&u, prevBytes); err != nil { //polarvet:allow verbdeadline undo chain walk is bounded by the transaction's own write count, not a retry
			return err
		}
		pg, off = u.PrevTxnPg, u.PrevTxnOff
	}
	if slot >= 0 {
		mt := e.BeginMtr()
		err := e.writeSlot(mt, slot, txn.TxnSlot{State: txn.SlotFree})
		if _, cerr := mt.Commit(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// rollbackOne restores the previous version for a single undo record
// under its own mini-transaction. The commit must happen on every path
// — an abandoned mtr would keep its pins and deferred PL latches
// forever — so error returns publish whatever was logged first.
func (e *Engine) rollbackOne(u *txn.UndoRec, prevBytes []byte) error {
	tree := e.tree(u.Space)
	mt := e.BeginMtr()
	committed := false
	defer func() {
		if !committed {
			_, _ = mt.Commit()
		}
	}()
	switch u.Type {
	case txn.UndoInsert:
		if err := tree.Delete(mt, u.Key); err != nil && !errors.Is(err, btree.ErrKeyNotFound) {
			return err
		}
	default: // update / delete: restore the previous record bytes
		if err := tree.Put(mt, u.Key, prevBytes); err != nil {
			return err
		}
	}
	committed = true
	_, err := mt.Commit()
	return err
}

// ---------------------------------------------------------------------------
// Undo allocation & transaction slots

// appendUndo writes an undo record into the undo space and returns its
// (page, offset). Append-only: offsets never move.
func (e *Engine) appendUndo(mt *Mtr, u *txn.UndoRec) (types.PageNo, uint16, error) {
	enc := u.Marshal()
	// Page fetches can cross the fabric (remote memory, then PolarFS), so
	// they happen with undoMu released; the lock covers only the cursor
	// reservation and the latched in-frame writes. If another appender
	// rolls the cursor onto a new page while we fetch, retry against it.
	hdr, err := e.Fetch(types.PageID{Space: UndoSpace, No: 0})
	if err != nil {
		return 0, 0, err
	}
	defer e.Unpin(hdr)
	e.undoMu.Lock()
	// Counted, not unbounded: each retry means a full undo page was
	// appended by others during one fetch; 16 in a row is pathological.
	for tries := 0; tries < 16; tries++ {
		if e.undoOff < 8 {
			e.undoOff = 8 // bytes [0,8) of every page hold the page LSN
		}
		if int(e.undoOff)+len(enc) > types.PageSize {
			e.undoPage++
			e.undoOff = 8
		}
		pg := e.undoPage
		e.undoMu.Unlock()
		f, err := e.Fetch(types.PageID{Space: UndoSpace, No: pg})
		if err != nil {
			return 0, 0, err
		}
		e.undoMu.Lock()
		if e.undoPage != pg || int(e.undoOff)+len(enc) > types.PageSize {
			e.undoMu.Unlock()
			e.Unpin(f)
			e.undoMu.Lock()
			continue
		}
		off := e.undoOff
		e.undoOff += uint16(len(enc))
		f.Latch.Lock()
		mt.LogWrite(f, int(off), enc)
		f.Latch.Unlock()
		// Persist the cursor so recovery resumes appending past everything.
		// Written under undoMu, so header cursor values are logged in
		// reservation order.
		hdr.Latch.Lock()
		mt.LogWrite(hdr, txn.UndoAllocOffset, txn.MarshalUndoAlloc(e.undoPage, e.undoOff))
		hdr.Latch.Unlock()
		e.undoMu.Unlock()
		e.Unpin(f)
		return pg, off, nil
	}
	e.undoMu.Unlock()
	return 0, 0, fmt.Errorf("engine: undo append cursor kept moving under fetch; giving up")
}

// claimSlot assigns a persistent transaction slot (first write).
func (e *Engine) claimSlot(mt *Mtr, id types.TrxID) (int, error) {
	e.slotMu.Lock()
	slot := -1
	for i := 0; i < txn.SlotCount(); i++ {
		if _, taken := e.slotOwner[i]; !taken {
			slot = i
			e.slotOwner[i] = id
			break
		}
	}
	e.slotMu.Unlock()
	if slot < 0 {
		return -1, txn.ErrTooManyTxns
	}
	return slot, nil
}

func (e *Engine) releaseSlot(slot int, id types.TrxID) {
	e.slotMu.Lock()
	if e.slotOwner[slot] == id {
		delete(e.slotOwner, slot)
	}
	e.slotMu.Unlock()
}

// writeSlot logs a transaction slot update on the undo header page.
func (e *Engine) writeSlot(mt *Mtr, slot int, s txn.TxnSlot) error {
	return e.writeHeaderField(mt, txn.SlotOffset(slot), s.Marshal())
}

// writeHeaderField logs a write at a fixed offset of the undo header page.
func (e *Engine) writeHeaderField(mt *Mtr, off int, data []byte) error {
	hdr, err := e.Fetch(types.PageID{Space: UndoSpace, No: 0})
	if err != nil {
		return err
	}
	hdr.Latch.Lock()
	mt.LogWrite(hdr, off, data)
	hdr.Latch.Unlock()
	e.Unpin(hdr)
	return nil
}

// backfillWorker asynchronously fills cts_commit into committed records
// (§3.3: immediate filling would cause a burst of random writes at commit
// time; readers use the CTS log until the backfill lands).
func (e *Engine) backfillWorker() {
	defer e.wg.Done()
	for {
		select {
		case <-e.closeCh:
			return
		case item := <-e.backfillCh:
			tree := e.tree(item.space)
			mt := e.BeginMtr()
			err := tree.PatchInPlace(mt, item.key, func(val []byte) (int, []byte, bool) {
				rec, err := txn.UnmarshalRecord(val)
				if err != nil || rec.Trx != item.trx || rec.CTS != 0 {
					return 0, nil, false
				}
				patch := make([]byte, 8)
				for i := 0; i < 8; i++ {
					patch[i] = byte(uint64(item.cts) >> (8 * i))
				}
				return txn.CTSFieldOffset, patch, true
			})
			// Commit on both outcomes: an abandoned mtr would keep its
			// pins forever. On a miss (key since moved/deleted) nothing
			// was logged and the CTS log still serves readers.
			_, _ = mt.Commit()
			_ = err
		}
	}
}

func (e *Engine) dropROView(t *Txn) {
	e.roViewsMu.Lock()
	delete(e.roViews, t)
	e.roViewsMu.Unlock()
}

// purgeHorizon computes the oldest timestamp any snapshot may still
// need: active read-write views, local read-only views, and a lease
// window for views handed to RO nodes.
func (e *Engine) purgeHorizon() types.Timestamp {
	e.activeMu.Lock()
	horizon := e.cts.CurrentTS() + 1
	for _, t := range e.active {
		if t.view != nil && t.view.ReadTS < horizon {
			horizon = t.view.ReadTS
		}
	}
	e.activeMu.Unlock()
	e.roViewsMu.Lock()
	for _, ts := range e.roViews {
		if ts < horizon {
			horizon = ts
		}
	}
	now := time.Now()
	live := e.roLeases[:0]
	for _, l := range e.roLeases {
		if now.Before(l.expires) {
			live = append(live, l)
			if l.ts < horizon {
				horizon = l.ts
			}
		}
	}
	e.roLeases = live
	e.roViewsMu.Unlock()
	return horizon
}

// noteROLease records a view handed to an RO node (purge-horizon lease).
func (e *Engine) noteROLease(ts types.Timestamp) {
	e.roViewsMu.Lock()
	e.roLeases = append(e.roLeases, roLease{ts: ts, expires: time.Now().Add(roLeaseWindow)})
	e.roViewsMu.Unlock()
}

// PurgeTombstones physically removes delete-marked records that are no
// longer visible to any possible snapshot: the tombstone's commit
// timestamp must be backfilled and below every active transaction's read
// view (InnoDB-style purge; the paper's engine inherits it from InnoDB).
// Returns the number of records purged. RW only; run it periodically or
// after bulk deletes.
func (e *Engine) PurgeTombstones(tbl *Table) (int, error) {
	if e.cfg.ReadOnly {
		return 0, ErrNotRW
	}
	// Horizon: no open snapshot (read-write, local read-only, or leased to
	// an RO node) may still need the deleted version.
	horizon := e.purgeHorizon()

	// Collect purgable keys first (scan without latching across the op),
	// then delete them one MTR at a time.
	var victims []uint64
	err := tbl.Primary.Scan(0, ^uint64(0), btree.Local, func(kv btree.KV) bool {
		rec, err := txn.UnmarshalRecord(kv.Value)
		if err != nil {
			return true
		}
		if rec.Tombstone && rec.CTS != 0 && rec.CTS < horizon {
			victims = append(victims, kv.Key)
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	purged := 0
	for _, k := range victims {
		// Re-check under the write lock: the key may have been reborn.
		if err := e.locks.Lock(types.TrxID(^uint64(0)), tbl.Space, k); err != nil {
			continue // contended; next purge pass gets it
		}
		raw, err := tbl.Primary.Get(k, btree.Local)
		if err == nil {
			if rec, derr := txn.UnmarshalRecord(raw); derr == nil &&
				rec.Tombstone && rec.CTS != 0 && rec.CTS < horizon {
				mt := e.BeginMtr()
				delErr := tbl.Primary.Delete(mt, k)
				// Commit releases the MTR's pins even when the delete failed.
				//polarvet:allow fabriccost each tombstone is purged in its own MTR because the row lock is re-checked per key; batching purges would hold row locks across the whole victim list
				if _, err := mt.Commit(); err == nil && delErr == nil {
					purged++
				}
			}
		}
		e.locks.ReleaseAll(types.TrxID(^uint64(0)), []txn.LockRef{{Space: tbl.Space, Key: k}})
	}
	return purged, nil
}

// ActiveTxnCount reports in-flight read-write transactions.
func (e *Engine) ActiveTxnCount() int {
	e.activeMu.Lock()
	defer e.activeMu.Unlock()
	return len(e.active)
}
