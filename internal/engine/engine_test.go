package engine

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"polardb/internal/btree"
	"polardb/internal/polarfs"
	"polardb/internal/rdma"
	"polardb/internal/rmem"
	"polardb/internal/txn"
)

// harness is a full in-process PolarDB Serverless cluster: three storage
// nodes, one memory node (home + slab), an RW engine and optional ROs.
type harness struct {
	t      *testing.T
	fabric *rdma.Fabric
	dep    *polarfs.Deployment
	home   *rmem.Home
	memCfg rmem.Config
	rw     *Engine
	ros    []*Engine
	nextRO int
}

type harnessOpts struct {
	noPool     bool
	poolPages  int
	cachePages int
	roMode     btree.TraverseMode
	pageChunks int
}

func newHarness(t *testing.T, o harnessOpts) *harness {
	t.Helper()
	if o.poolPages == 0 {
		o.poolPages = 512
	}
	if o.cachePages == 0 {
		o.cachePages = 256
	}
	if o.pageChunks == 0 {
		o.pageChunks = 2
	}
	h := &harness{t: t, fabric: rdma.NewFabric(rdma.TestConfig())}
	eps := []*rdma.Endpoint{
		h.fabric.MustAttach("st0"), h.fabric.MustAttach("st1"), h.fabric.MustAttach("st2"),
	}
	h.dep = polarfs.Deploy(polarfs.VolumeConfig{
		PageChunks:          o.pageChunks,
		MaterializeInterval: 5 * time.Millisecond,
	}, eps)
	t.Cleanup(h.dep.Close)

	if !o.noPool {
		h.memCfg = rmem.Config{
			Instance:          "pool",
			InvalidateTimeout: 300 * time.Millisecond,
			LatchTimeout:      3 * time.Second,
		}
		memEP := h.fabric.MustAttach("mem0")
		rmem.NewSlabNode(memEP, h.memCfg)
		h.home = rmem.NewHome(memEP, h.memCfg, "")
		t.Cleanup(h.home.Close)
		if _, err := h.home.AddSlab("mem0", o.poolPages); err != nil {
			t.Fatal(err)
		}
	}
	h.rw = h.newEngine(t, "rw", Config{LocalCachePages: o.cachePages}, false, "")
	if err := h.rw.Bootstrap(); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	_ = o.roMode
	return h
}

// newEngine builds an engine on a fresh endpoint.
func (h *harness) newEngine(t *testing.T, node rdma.NodeID, cfg Config, ro bool, rwNode rdma.NodeID) *Engine {
	t.Helper()
	ep := h.fabric.MustAttach(node)
	deps := Deps{EP: ep, PFS: polarfs.NewClient(ep, h.dep.Cfg, h.dep.Peers)}
	if h.home != nil {
		pool, err := rmem.NewPool(ep, h.memCfg, "mem0")
		if err != nil {
			t.Fatal(err)
		}
		deps.Pool = pool
	}
	var e *Engine
	var err error
	if ro {
		cfg.RWNode = rwNode
		e, err = NewRO(deps, cfg)
	} else {
		e, err = NewRW(deps, cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func (h *harness) addRO(mode btree.TraverseMode) *Engine {
	h.nextRO++
	name := rdma.NodeID(fmt.Sprintf("ro%d", h.nextRO))
	return h.newEngine(h.t, name, Config{
		LocalCachePages: 256,
		CTSRegionID:     h.rw.CTSRegionID(),
		ROMode:          mode,
	}, true, h.rw.EP().ID())
}

func mustCommitPut(t *testing.T, e *Engine, tbl *Table, key uint64, payload string) {
	t.Helper()
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(tbl, key, []byte(payload)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func roGet(t *testing.T, e *Engine, tbl *Table, key uint64) (string, bool) {
	t.Helper()
	tx, err := e.BeginRO()
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := tx.Get(tbl, key)
	if err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	return string(v), ok
}

func TestBasicCRUD(t *testing.T) {
	h := newHarness(t, harnessOpts{})
	tbl, err := h.rw.CreateTable("users")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := h.rw.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(tbl, 1, []byte("alice")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(tbl, 2, []byte("bob")); err != nil {
		t.Fatal(err)
	}
	// Own writes visible pre-commit.
	v, ok, err := tx.Get(tbl, 1)
	if err != nil || !ok || string(v) != "alice" {
		t.Fatalf("own read: %q %v %v", v, ok, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	if got, ok := roGet(t, h.rw, tbl, 1); !ok || got != "alice" {
		t.Fatalf("after commit: %q %v", got, ok)
	}
	// Update + delete.
	tx2, _ := h.rw.Begin()
	if err := tx2.Update(tbl, 1, []byte("alice2")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Delete(tbl, 2); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, ok := roGet(t, h.rw, tbl, 1); !ok || got != "alice2" {
		t.Fatalf("after update: %q %v", got, ok)
	}
	if _, ok := roGet(t, h.rw, tbl, 2); ok {
		t.Fatal("deleted key still visible")
	}
}

func TestInsertDuplicateAndUpdateMissing(t *testing.T) {
	h := newHarness(t, harnessOpts{})
	tbl, _ := h.rw.CreateTable("t")
	mustCommitPut(t, h.rw, tbl, 1, "x")
	tx, _ := h.rw.Begin()
	if err := tx.Insert(tbl, 1, []byte("dup")); !errors.Is(err, ErrKeyExists) {
		t.Fatalf("dup insert err = %v", err)
	}
	if err := tx.Update(tbl, 99, []byte("y")); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("update missing err = %v", err)
	}
	_ = tx.Rollback()
}

func TestSnapshotIsolation(t *testing.T) {
	h := newHarness(t, harnessOpts{})
	tbl, _ := h.rw.CreateTable("t")
	mustCommitPut(t, h.rw, tbl, 1, "v1")

	// Reader snapshots before the writer commits.
	reader, _ := h.rw.BeginRO()
	writer, _ := h.rw.Begin()
	if err := writer.Update(tbl, 1, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// Uncommitted write invisible to the reader.
	v, ok, err := reader.Get(tbl, 1)
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("read during write: %q %v %v", v, ok, err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	// Still v1 for the old snapshot (repeatable read via undo chain).
	v, ok, _ = reader.Get(tbl, 1)
	if !ok || string(v) != "v1" {
		t.Fatalf("snapshot broken: %q %v", v, ok)
	}
	_ = reader.Commit()
	// New snapshot sees v2.
	if got, _ := roGet(t, h.rw, tbl, 1); got != "v2" {
		t.Fatalf("new snapshot: %q", got)
	}
}

func TestRollbackRestores(t *testing.T) {
	h := newHarness(t, harnessOpts{})
	tbl, _ := h.rw.CreateTable("t")
	mustCommitPut(t, h.rw, tbl, 1, "keep")
	tx, _ := h.rw.Begin()
	if err := tx.Update(tbl, 1, []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(tbl, 2, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(tbl, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if got, ok := roGet(t, h.rw, tbl, 1); !ok || got != "keep" {
		t.Fatalf("after rollback: %q %v", got, ok)
	}
	if _, ok := roGet(t, h.rw, tbl, 2); ok {
		t.Fatal("rolled-back insert visible")
	}
}

func TestScanMVCC(t *testing.T) {
	h := newHarness(t, harnessOpts{})
	tbl, _ := h.rw.CreateTable("t")
	for k := uint64(1); k <= 20; k++ {
		mustCommitPut(t, h.rw, tbl, k, fmt.Sprintf("v%d", k))
	}
	// Delete the odd keys in one txn; scan mid-txn sees all from old view.
	reader, _ := h.rw.BeginRO()
	del, _ := h.rw.Begin()
	for k := uint64(1); k <= 20; k += 2 {
		if err := del.Delete(tbl, k); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	if err := reader.Scan(tbl, 0, ^uint64(0), func(k uint64, p []byte) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 20 {
		t.Fatalf("old snapshot scan = %d, want 20", count)
	}
	if err := del.Commit(); err != nil {
		t.Fatal(err)
	}
	newReader, _ := h.rw.BeginRO()
	count = 0
	if err := newReader.Scan(tbl, 0, ^uint64(0), func(uint64, []byte) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("new snapshot scan = %d, want 10", count)
	}
}

func TestLockConflictTimeout(t *testing.T) {
	h := newHarness(t, harnessOpts{})
	h.rw.locks = txn.NewLockTable(50 * time.Millisecond)
	tbl, _ := h.rw.CreateTable("t")
	mustCommitPut(t, h.rw, tbl, 1, "x")
	a, _ := h.rw.Begin()
	b, _ := h.rw.Begin()
	if err := a.Update(tbl, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := b.Update(tbl, 1, []byte("b")); !errors.Is(err, txn.ErrLockTimeout) {
		t.Fatalf("err = %v, want lock timeout", err)
	}
	_ = b.Rollback()
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if got, _ := roGet(t, h.rw, tbl, 1); got != "a" {
		t.Fatalf("winner = %q", got)
	}
}

func TestROSeesCommittedWrites(t *testing.T) {
	h := newHarness(t, harnessOpts{})
	tbl, _ := h.rw.CreateTable("t")
	mustCommitPut(t, h.rw, tbl, 1, "v1")

	ro := h.addRO(btree.Optimistic)
	roTbl, err := ro.OpenTable("t")
	if err != nil {
		t.Fatalf("RO open table: %v", err)
	}
	if got, ok := roGet(t, ro, roTbl, 1); !ok || got != "v1" {
		t.Fatalf("RO read: %q %v", got, ok)
	}
	// RW updates; cache invalidation must reach the RO's cached copy.
	mustCommitPut(t, h.rw, tbl, 1, "v2")
	if got, ok := roGet(t, ro, roTbl, 1); !ok || got != "v2" {
		t.Fatalf("RO read after invalidation: %q %v", got, ok)
	}
}

func TestROSeesFreshCommitBeforeBackfill(t *testing.T) {
	// Immediately after commit the record's cts field is still 0; the RO
	// must resolve visibility through a one-sided CTS log read.
	h := newHarness(t, harnessOpts{})
	tbl, _ := h.rw.CreateTable("t")
	ro := h.addRO(btree.Optimistic)
	roTbl, _ := ro.OpenTable("t")

	for i := uint64(1); i <= 50; i++ {
		mustCommitPut(t, h.rw, tbl, i, fmt.Sprintf("x%d", i))
		if got, ok := roGet(t, ro, roTbl, i); !ok || got != fmt.Sprintf("x%d", i) {
			t.Fatalf("RO read %d right after commit: %q %v", i, got, ok)
		}
	}
}

func TestROBothLockModes(t *testing.T) {
	for _, mode := range []btree.TraverseMode{btree.Optimistic, btree.PessimisticS} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			h := newHarness(t, harnessOpts{})
			tbl, _ := h.rw.CreateTable("t")
			for k := uint64(0); k < 200; k++ {
				mustCommitPut(t, h.rw, tbl, k, fmt.Sprintf("v%d", k))
			}
			ro := h.addRO(mode)
			roTbl, _ := ro.OpenTable("t")

			// Concurrent writer driving SMOs while the RO reads.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				k := uint64(1000)
				for {
					select {
					case <-stop:
						return
					default:
					}
					mustCommitPut(t, h.rw, tbl, k, "w")
					k++
				}
			}()
			for pass := 0; pass < 20; pass++ {
				for k := uint64(0); k < 200; k += 17 {
					if got, ok := roGet(t, ro, roTbl, k); !ok || got != fmt.Sprintf("v%d", k) {
						t.Errorf("RO %s read %d = %q,%v", mode, k, got, ok)
						close(stop)
						wg.Wait()
						return
					}
				}
			}
			close(stop)
			wg.Wait()
			if mode == btree.PessimisticS {
				if st := ro.Pool().PL().Stats(); st.FastPath+st.SlowPath == 0 {
					t.Fatal("pessimistic RO took no global latches")
				}
			}
		})
	}
}

func TestCacheEvictionPressure(t *testing.T) {
	// A local cache far smaller than the working set forces constant
	// swapping between local cache and remote memory.
	h := newHarness(t, harnessOpts{cachePages: 16, poolPages: 1024})
	tbl, _ := h.rw.CreateTable("t")
	const n = 500
	payload := bytes.Repeat([]byte("p"), 64)
	tx, _ := h.rw.Begin()
	for k := uint64(0); k < n; k++ {
		if err := tx.Insert(tbl, k, payload); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		if k%50 == 49 {
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			tx, _ = h.rw.Begin()
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < n; k++ {
		if got, ok := roGet(t, h.rw, tbl, k); !ok || got != string(payload) {
			t.Fatalf("readback %d: %v", k, ok)
		}
	}
	cs := h.rw.Cache().Stats()
	if cs.SwappedOut == 0 {
		t.Fatal("no eviction under pressure")
	}
	if h.rw.Stats().RemoteReads.Load() == 0 {
		t.Fatal("no remote memory reads under pressure")
	}
}

func TestNoPoolBaseline(t *testing.T) {
	// Shared-storage PolarDB baseline: no remote memory at all.
	h := newHarness(t, harnessOpts{noPool: true, cachePages: 32})
	tbl, _ := h.rw.CreateTable("t")
	for k := uint64(0); k < 200; k++ {
		mustCommitPut(t, h.rw, tbl, k, fmt.Sprintf("v%d", k))
	}
	for k := uint64(0); k < 200; k++ {
		if got, ok := roGet(t, h.rw, tbl, k); !ok || got != fmt.Sprintf("v%d", k) {
			t.Fatalf("baseline read %d: %q %v", k, got, ok)
		}
	}
	if h.rw.Stats().StorageReads.Load() == 0 {
		t.Fatal("baseline never read storage")
	}
}

func TestBackfillFillsCTS(t *testing.T) {
	h := newHarness(t, harnessOpts{})
	tbl, _ := h.rw.CreateTable("t")
	mustCommitPut(t, h.rw, tbl, 7, "x")
	deadline := time.Now().Add(2 * time.Second)
	for {
		raw, err := tbl.Primary.Get(7, btree.Local)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := txn.UnmarshalRecord(raw)
		if err != nil {
			t.Fatal(err)
		}
		if rec.CTS != 0 {
			break // backfilled
		}
		if time.Now().After(deadline) {
			t.Fatal("cts never backfilled")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestPrefetchWarmsLocalCache(t *testing.T) {
	h := newHarness(t, harnessOpts{cachePages: 64, poolPages: 2048})
	tbl, _ := h.rw.CreateTable("t")
	var keys []uint64
	tx, _ := h.rw.Begin()
	for k := uint64(0); k < 300; k++ {
		if err := tx.Insert(tbl, k, bytes.Repeat([]byte("z"), 100)); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
		if k%50 == 49 {
			_ = tx.Commit()
			tx, _ = h.rw.Begin()
		}
	}
	_ = tx.Commit()
	// Evict everything local, then prefetch and measure.
	h.rw.Cache().EvictAll()
	h.rw.Cache().ResetStats()
	h.rw.Prefetch(tbl.Primary, keys[:100]).Wait()
	missesAfterPrefetch := h.rw.Cache().Stats().Misses
	if missesAfterPrefetch == 0 {
		t.Fatal("prefetch fetched nothing")
	}
	// The prefetched keys now hit the local cache.
	before := h.rw.Cache().Stats()
	ro, _ := h.rw.BeginRO()
	for _, k := range keys[:100] {
		if _, ok, err := ro.Get(tbl, k); !ok || err != nil {
			t.Fatalf("get %d: %v %v", k, ok, err)
		}
	}
	after := h.rw.Cache().Stats()
	if after.Misses != before.Misses {
		t.Fatalf("reads after prefetch missed %d times", after.Misses-before.Misses)
	}
}

func TestSecondaryIndexMaintenance(t *testing.T) {
	h := newHarness(t, harnessOpts{})
	tbl, _ := h.rw.CreateTable("emp")
	ageIdx, err := h.rw.CreateIndex(tbl, "by_age")
	if err != nil {
		t.Fatal(err)
	}
	// Index key: age<<32 | pk. Value: pk bytes.
	tx, _ := h.rw.Begin()
	for pk := uint64(1); pk <= 30; pk++ {
		age := 20 + pk%10
		if err := tx.Insert(tbl, pk, []byte(fmt.Sprintf("emp-%d-age-%d", pk, age))); err != nil {
			t.Fatal(err)
		}
		if err := tx.InsertIndex(ageIdx, age<<32|pk, []byte{byte(pk)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Range scan ages [25,27) via index.
	ro, _ := h.rw.BeginRO()
	var pks []uint64
	if err := ro.ScanTree(ageIdx.Tree, 25<<32, 27<<32, func(k uint64, _ []byte) bool {
		pks = append(pks, k&0xFFFFFFFF)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(pks) != 6 {
		t.Fatalf("index scan found %d pks, want 6", len(pks))
	}
	for _, pk := range pks {
		if _, ok, _ := ro.Get(tbl, pk); !ok {
			t.Fatalf("pk %d from index not in base table", pk)
		}
	}
}

func TestOpenTableOnRO(t *testing.T) {
	h := newHarness(t, harnessOpts{})
	if _, err := h.rw.CreateTable("t1"); err != nil {
		t.Fatal(err)
	}
	ro := h.addRO(btree.Optimistic)
	if _, err := ro.OpenTable("t1"); err != nil {
		t.Fatalf("RO open: %v", err)
	}
	if _, err := ro.OpenTable("missing"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ro.CreateTable("nope"); !errors.Is(err, ErrNotRW) {
		t.Fatalf("RO create err = %v", err)
	}
}

func TestConcurrentTransactions(t *testing.T) {
	h := newHarness(t, harnessOpts{poolPages: 2048, cachePages: 512})
	tbl, _ := h.rw.CreateTable("t")
	const workers, per = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < per; i++ {
				tx, err := h.rw.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				k := base*1000 + i
				if err := tx.Insert(tbl, k, []byte(fmt.Sprintf("w%d", k))); err != nil {
					t.Errorf("insert %d: %v", k, err)
					_ = tx.Rollback()
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	ro, _ := h.rw.BeginRO()
	count := 0
	if err := ro.Scan(tbl, 0, ^uint64(0), func(uint64, []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != workers*per {
		t.Fatalf("count = %d, want %d", count, workers*per)
	}
}

func TestUnplannedRWFailover(t *testing.T) {
	h := newHarness(t, harnessOpts{poolPages: 1024})
	tbl, _ := h.rw.CreateTable("t")
	for k := uint64(0); k < 100; k++ {
		mustCommitPut(t, h.rw, tbl, k, fmt.Sprintf("v%d", k))
	}
	// Leave an uncommitted transaction hanging at crash time.
	hang, _ := h.rw.Begin()
	if err := hang.Update(tbl, 5, []byte("uncommitted")); err != nil {
		t.Fatal(err)
	}
	// Crash the RW.
	h.rw.EP().Kill()
	h.rw.Close()

	// Promote a new RW on a fresh endpoint (the CM's steps 1-2 are the
	// kill above; storage/home fencing is implicit — the dead node cannot
	// reach the fabric).
	newRW := h.newEngine(t, "rw2", Config{LocalCachePages: 256}, false, "")
	if err := newRW.Recover("rw", false); err != nil {
		t.Fatalf("recover: %v", err)
	}
	// Committed data survives.
	for k := uint64(0); k < 100; k += 7 {
		want := fmt.Sprintf("v%d", k)
		if got, ok := roGet(t, newRW, mustOpen(t, newRW, "t"), k); !ok || got != want {
			t.Fatalf("key %d after failover: %q %v", k, got, ok)
		}
	}
	// The uncommitted update was rolled back (immediately invisible, and
	// eventually physically restored).
	deadline := time.Now().Add(3 * time.Second)
	for {
		got, ok := roGet(t, newRW, mustOpen(t, newRW, "t"), 5)
		if ok && got == "v5" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("uncommitted update not rolled back: %q %v", got, ok)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// New RW serves new writes.
	tbl2 := mustOpen(t, newRW, "t")
	mustCommitPut(t, newRW, tbl2, 200, "after-failover")
	if got, ok := roGet(t, newRW, tbl2, 200); !ok || got != "after-failover" {
		t.Fatalf("post-failover write: %q %v", got, ok)
	}
}

func mustOpen(t *testing.T, e *Engine, name string) *Table {
	t.Helper()
	tbl, err := e.OpenTable(name)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestFailoverKeepsRemoteMemoryWarm(t *testing.T) {
	h := newHarness(t, harnessOpts{poolPages: 2048, cachePages: 512})
	tbl, _ := h.rw.CreateTable("t")
	for k := uint64(0); k < 300; k++ {
		mustCommitPut(t, h.rw, tbl, k, fmt.Sprintf("v%d", k))
	}
	// Flush dirty pages to remote memory (clean shutdown of the cache
	// path) then crash. Pages stay in the pool.
	h.rw.WaitAllShipped()
	h.rw.Cache().EvictAll()
	h.rw.EP().Kill()
	h.rw.Close()

	newRW := h.newEngine(t, "rw2", Config{LocalCachePages: 512}, false, "")
	if err := newRW.Recover("rw", false); err != nil {
		t.Fatal(err)
	}
	newRW.Stats().RemoteReads.Store(0)
	newRW.Stats().StorageReads.Store(0)
	tbl2 := mustOpen(t, newRW, "t")
	for k := uint64(0); k < 300; k += 3 {
		if _, ok := roGet(t, newRW, tbl2, k); !ok {
			t.Fatalf("key %d missing after failover", k)
		}
	}
	remote := newRW.Stats().RemoteReads.Load()
	storage := newRW.Stats().StorageReads.Load()
	if remote == 0 {
		t.Fatal("remote memory cold after failover (no remote reads)")
	}
	if storage > remote {
		t.Fatalf("storage reads (%d) exceed remote reads (%d): pool not warm", storage, remote)
	}
}

func TestPlannedHandover(t *testing.T) {
	h := newHarness(t, harnessOpts{poolPages: 1024})
	tbl, _ := h.rw.CreateTable("t")
	for k := uint64(0); k < 50; k++ {
		mustCommitPut(t, h.rw, tbl, k, fmt.Sprintf("v%d", k))
	}
	if err := h.rw.PlannedHandover(); err != nil {
		t.Fatal(err)
	}
	h.rw.EP().Kill()

	newRW := h.newEngine(t, "rw2", Config{LocalCachePages: 256}, false, "")
	if err := newRW.Recover("rw", true); err != nil {
		t.Fatal(err)
	}
	tbl2 := mustOpen(t, newRW, "t")
	for k := uint64(0); k < 50; k++ {
		if got, ok := roGet(t, newRW, tbl2, k); !ok || got != fmt.Sprintf("v%d", k) {
			t.Fatalf("key %d after handover: %q %v", k, got, ok)
		}
	}
	mustCommitPut(t, newRW, tbl2, 100, "post")
}

func TestROSwitchRWAfterFailover(t *testing.T) {
	h := newHarness(t, harnessOpts{poolPages: 1024})
	tbl, _ := h.rw.CreateTable("t")
	mustCommitPut(t, h.rw, tbl, 1, "v1")
	ro := h.addRO(btree.Optimistic)
	roTbl := mustOpen(t, ro, "t")
	if got, _ := roGet(t, ro, roTbl, 1); got != "v1" {
		t.Fatal("pre-failover RO read failed")
	}
	h.rw.EP().Kill()
	h.rw.Close()
	newRW := h.newEngine(t, "rw2", Config{LocalCachePages: 256}, false, "")
	if err := newRW.Recover("rw", false); err != nil {
		t.Fatal(err)
	}
	ro.SwitchRW("rw2", newRW.CTSRegionID())
	roTbl2 := mustOpen(t, ro, "t")
	if got, ok := roGet(t, ro, roTbl2, 1); !ok || got != "v1" {
		t.Fatalf("RO read after switch: %q %v", got, ok)
	}
	mustCommitPut(t, newRW, mustOpen(t, newRW, "t"), 2, "v2")
	if got, ok := roGet(t, ro, roTbl2, 2); !ok || got != "v2" {
		t.Fatalf("RO read of post-failover write: %q %v", got, ok)
	}
}

func TestScanGuardAvoidsPoolPollution(t *testing.T) {
	h := newHarness(t, harnessOpts{poolPages: 256, cachePages: 64})
	tbl, _ := h.rw.CreateTable("t")
	for k := uint64(0); k < 200; k++ {
		mustCommitPut(t, h.rw, tbl, k, string(bytes.Repeat([]byte("s"), 200)))
	}
	h.rw.WaitAllShipped()
	h.rw.Cache().EvictAll()
	// Force the pool empty so reloads are observable.
	if _, err := h.home.Shrink(1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.home.AddSlab("mem0", 256); err != nil {
		t.Fatal(err)
	}
	used := func() int { return h.home.Stats().UsedSlots }
	base := used()
	release := h.rw.ScanGuard()
	ro, _ := h.rw.BeginRO()
	n := 0
	if err := ro.Scan(tbl, 0, ^uint64(0), func(uint64, []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	release()
	if n != 200 {
		t.Fatalf("scan count = %d", n)
	}
	if grown := used() - base; grown > 8 {
		t.Fatalf("scan polluted the pool with %d pages", grown)
	}
}
