package engine

import (
	"errors"
	"fmt"

	"polardb/internal/btree"
	"polardb/internal/txn"
	"polardb/internal/types"
	"polardb/internal/wire"
)

// catalogMetaKey holds catalog-wide metadata (the space allocator).
const catalogMetaKey = 0

// Table is a user table: a clustered primary B+tree plus optional
// secondary indexes (each its own tablespace; entries map an index key to
// the primary key, maintained by the same transactions).
type Table struct {
	Name    string
	Space   types.SpaceID
	Primary *btree.Tree
	Indexes map[string]*Index
}

// Index is a secondary index on a table.
type Index struct {
	Name  string
	Space types.SpaceID
	Tree  *btree.Tree
}

// tree returns (creating lazily) the engine-bound tree for a space.
func (e *Engine) tree(space types.SpaceID) *btree.Tree {
	e.treesMu.Lock()
	defer e.treesMu.Unlock()
	t, ok := e.trees[space]
	if !ok {
		t = btree.Open(e, space)
		e.trees[space] = t
	}
	return t
}

func (e *Engine) catalogTree() *btree.Tree { return e.tree(CatalogSpace) }

// catalog value encoding
func marshalTableDef(t *Table) []byte {
	w := wire.NewWriter(64)
	w.String(t.Name)
	w.U32(uint32(t.Space))
	w.U16(uint16(len(t.Indexes)))
	for _, ix := range t.Indexes {
		w.String(ix.Name)
		w.U32(uint32(ix.Space))
	}
	return w.Bytes()
}

func (e *Engine) unmarshalTableDef(buf []byte) (*Table, error) {
	rd := wire.NewReader(buf)
	t := &Table{
		Name:    rd.String(),
		Space:   types.SpaceID(rd.U32()),
		Indexes: make(map[string]*Index),
	}
	n := int(rd.U16())
	for i := 0; i < n; i++ {
		ix := &Index{Name: rd.String(), Space: types.SpaceID(rd.U32())}
		ix.Tree = e.tree(ix.Space)
		t.Indexes[ix.Name] = ix
	}
	if err := rd.Err(); err != nil {
		return nil, err
	}
	t.Primary = e.tree(t.Space)
	return t, nil
}

func marshalCatalogMeta(nextSpace types.SpaceID) []byte {
	w := wire.NewWriter(8)
	w.U32(uint32(nextSpace))
	return w.Bytes()
}

// readMode picks the traversal mode for engine-internal reads.
func (e *Engine) readMode() btree.TraverseMode {
	if e.cfg.ReadOnly {
		return e.cfg.ROMode
	}
	return btree.Local
}

// allocSpace hands out the next tablespace id (DDL, under ddl lock).
func (e *Engine) allocSpace(mt *Mtr) (types.SpaceID, error) {
	cat := e.catalogTree()
	raw, err := cat.Get(catalogMetaKey, btree.Local)
	if err != nil {
		return 0, fmt.Errorf("engine: catalog meta: %w", err)
	}
	rd := wire.NewReader(raw)
	next := types.SpaceID(rd.U32())
	if err := rd.Err(); err != nil {
		return 0, err
	}
	if err := cat.Put(mt, catalogMetaKey, marshalCatalogMeta(next+1)); err != nil {
		return 0, err
	}
	return next, nil
}

// CreateTable creates a table with a clustered primary index (RW only).
func (e *Engine) CreateTable(name string) (*Table, error) {
	if e.cfg.ReadOnly {
		return nil, ErrNotRW
	}
	if t, err := e.OpenTable(name); err == nil && t != nil {
		return nil, fmt.Errorf("%w: %s", ErrTableExists, name)
	}
	mt := e.BeginMtr()
	committed := false
	defer func() {
		if !committed {
			_, _ = mt.Commit()
		}
	}()
	space, err := e.allocSpace(mt)
	if err != nil {
		return nil, err
	}
	if _, err := btree.Create(e, mt, space); err != nil {
		return nil, err
	}
	t := &Table{Name: name, Space: space, Indexes: make(map[string]*Index)}
	if err := e.catalogTree().Put(mt, uint64(space), marshalTableDef(t)); err != nil {
		return nil, err
	}
	if _, err := mt.Commit(); err != nil {
		committed = true
		return nil, err
	}
	committed = true
	t.Primary = e.tree(space)
	e.cacheTable(t)
	return t, nil
}

// CreateIndex adds a secondary index to a table (RW only). The index tree
// starts empty; callers backfill it if the table has data.
func (e *Engine) CreateIndex(table *Table, name string) (*Index, error) {
	if e.cfg.ReadOnly {
		return nil, ErrNotRW
	}
	if _, ok := table.Indexes[name]; ok {
		return nil, fmt.Errorf("%w: index %s", ErrTableExists, name)
	}
	mt := e.BeginMtr()
	committed := false
	defer func() {
		if !committed {
			_, _ = mt.Commit()
		}
	}()
	space, err := e.allocSpace(mt)
	if err != nil {
		return nil, err
	}
	if _, err := btree.Create(e, mt, space); err != nil {
		return nil, err
	}
	ix := &Index{Name: name, Space: space, Tree: e.tree(space)}
	table.Indexes[name] = ix
	if err := e.catalogTree().Put(mt, uint64(table.Space), marshalTableDef(table)); err != nil {
		delete(table.Indexes, name)
		return nil, err
	}
	if _, err := mt.Commit(); err != nil {
		committed = true
		delete(table.Indexes, name)
		return nil, err
	}
	committed = true
	return ix, nil
}

// OpenTable finds a table by name (any node).
func (e *Engine) OpenTable(name string) (*Table, error) {
	if t := e.cachedTable(name); t != nil {
		return t, nil
	}
	var found *Table
	var scanErr error
	err := e.catalogTree().Scan(1, ^uint64(0), e.readMode(), func(kv btree.KV) bool {
		t, err := e.unmarshalTableDef(kv.Value)
		if err != nil {
			scanErr = err
			return false
		}
		if t.Name == name {
			found = t
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if scanErr != nil {
		return nil, scanErr
	}
	if found == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, name)
	}
	e.cacheTable(found)
	return found, nil
}

func (e *Engine) cacheTable(t *Table) {
	e.tablesMu.Lock()
	defer e.tablesMu.Unlock()
	e.tables[t.Name] = t
}

func (e *Engine) cachedTable(name string) *Table {
	e.tablesMu.Lock()
	defer e.tablesMu.Unlock()
	return e.tables[name]
}

// RefreshCatalog drops the table cache (RO nodes after DDL on the RW).
func (e *Engine) RefreshCatalog() {
	e.tablesMu.Lock()
	defer e.tablesMu.Unlock()
	e.tables = make(map[string]*Table)
}

// Bootstrap initializes a fresh volume: catalog tree, catalog meta, undo
// header. Must run exactly once per volume, on the first RW node, before
// any transaction.
func (e *Engine) Bootstrap() error {
	if e.cfg.ReadOnly {
		return ErrNotRW
	}
	e.buf = e.newBufferAt(0)
	mt := e.BeginMtr()
	committed := false
	defer func() {
		if !committed {
			// Publish whatever was logged before the failure so the
			// mini-transaction's pins and deferred PL latches drop.
			_, _ = mt.Commit()
		}
	}()
	if _, err := btree.Create(e, mt, CatalogSpace); err != nil {
		return err
	}
	if err := e.catalogTree().Put(mt, catalogMetaKey, marshalCatalogMeta(FirstUserSpace)); err != nil {
		return err
	}
	// Touch the undo header page so it exists with a zeroed slot table.
	hdr, err := e.Fetch(types.PageID{Space: UndoSpace, No: 0})
	if err != nil {
		return err
	}
	hdr.Latch.Lock()
	mt.LogWrite(hdr, txn.UndoAllocOffset, txn.MarshalUndoAlloc(1, 8))
	hdr.Latch.Unlock()
	e.Unpin(hdr)
	committed = true
	end, err := mt.Commit()
	if err != nil {
		return err
	}
	e.undoPage, e.undoOff = 1, 8
	e.nextTrx.Store(1)
	e.start()
	return e.DurableCommit(end)
}

var errNotBootstrapped = errors.New("engine: volume not bootstrapped")
