package engine

import (
	"encoding/binary"

	"polardb/internal/rdma"
	"polardb/internal/txn"
	"polardb/internal/types"
)

// handleFlushPage serves an RO node's request to write a page this RW
// holds dirty back to remote memory (so the RO can read a fresh copy).
// Replies 1 if the page was written back, 0 if this node has no local
// copy (storage is then authoritative).
func (e *Engine) handleFlushPage(from rdma.NodeID, req []byte) ([]byte, error) {
	if len(req) < 8 {
		return nil, txn.ErrBadRecord
	}
	id := types.PageID{
		Space: types.SpaceID(binary.LittleEndian.Uint32(req[0:])),
		No:    types.PageNo(binary.LittleEndian.Uint32(req[4:])),
	}
	f := e.cache.Get(id)
	if f == nil {
		// If the page is mid-eviction its write-back is in flight; once it
		// finishes, the remote copy is fresh and the caller can use it.
		e.cache.WaitEvicting(id)
		return []byte{0}, nil
	}
	defer f.Unpin()
	if !f.Remote.Registered {
		return []byte{0}, nil
	}
	e.stats.FlushRequests.Add(1)
	e.met.flushServed.Inc()
	// A frame modified by a still-open mini-transaction must not be
	// shipped: its bytes may reference the MTR's other pages (e.g. a data
	// row pointing at a new undo record) whose remote copies are not yet
	// invalidated, so the caller could assemble a torn view (§3.1.4,
	// invalidate-then-publish). Wait for the MTR to release. The check
	// runs under the frame latch: LogWrite both applies bytes and takes
	// the mtr-pin while holding it exclusively, so a clear pin count
	// means no uncommitted bytes can be in the copy below.
	for {
		f.Latch.RLock()
		if !f.MtrPinned() {
			break
		}
		f.Latch.RUnlock()
		e.mtrMu.Lock()
		for f.MtrPinned() {
			e.mtrCond.Wait()
		}
		e.mtrMu.Unlock()
	}
	err := e.pool.WritePage(f.Remote.Data, f.Data, f.Remote.PIB)
	f.Latch.RUnlock()
	if err != nil {
		return nil, err
	}
	f.ClearDirty()
	return []byte{1}, nil
}

// handleViewRPC serves read-view snapshots to RO nodes: the current
// timestamp plus the in-flight transaction list, taken atomically under
// the active-transaction lock.
func (e *Engine) handleViewRPC(from rdma.NodeID, req []byte) ([]byte, error) {
	e.activeMu.Lock()
	readTS := e.cts.CurrentTS() + 1
	active := e.activeListLocked()
	e.activeMu.Unlock()
	e.noteROLease(readTS)
	return txn.MarshalView(readTS, active), nil
}
