package engine

import (
	"bytes"
	"sort"
	"sync"
	"testing"

	"polardb/internal/txn"
	"polardb/internal/types"
)

// TestAppendUndoConcurrentCursor is the regression test for the undo
// append restructure: reservations fetch the target undo page with no
// engine lock held, so the cursor can move between the reservation and
// the write. Concurrent appenders must still produce non-overlapping
// records, and the header-page cursor must end up past the furthest
// record. (The old code held undoMu across the Fetch — a fabric round
// trip — serializing every writer behind simulated network latency.)
func TestAppendUndoConcurrentCursor(t *testing.T) {
	h := newHarness(t, harnessOpts{})
	e := h.rw

	const workers = 6
	const perWorker = 25
	// Large enough that the cursor rolls undo pages many times mid-test.
	payload := bytes.Repeat([]byte{0x5A}, types.PageSize/8)

	type ref struct {
		pg  types.PageNo
		off uint16
		n   int
	}
	refs := make([][]ref, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				u := txn.UndoRec{
					Trx:       types.TrxID(1000 + w),
					Space:     1,
					Key:       uint64(w*perWorker + i),
					Type:      txn.UndoUpdate,
					PrevBytes: payload,
				}
				mt := e.BeginMtr()
				pg, off, err := e.appendUndo(mt, &u)
				if err != nil {
					t.Errorf("worker %d: appendUndo: %v", w, err)
					_, _ = mt.Commit()
					return
				}
				if _, err := mt.Commit(); err != nil {
					t.Errorf("worker %d: mtr commit: %v", w, err)
					return
				}
				refs[w] = append(refs[w], ref{pg, off, u.EncodedSize()})
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	var all []ref
	for _, rs := range refs {
		all = append(all, rs...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].pg != all[j].pg {
			return all[i].pg < all[j].pg
		}
		return all[i].off < all[j].off
	})
	for i := 1; i < len(all); i++ {
		a, b := all[i-1], all[i]
		if a.pg == b.pg && int(a.off)+a.n > int(b.off) {
			t.Errorf("undo records overlap: %d/%d+%d vs %d/%d", a.pg, a.off, a.n, b.pg, b.off)
		}
	}

	hdr, err := e.Fetch(types.PageID{Space: UndoSpace, No: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Unpin(hdr)
	cpg, coff := txn.UndoAlloc(hdr.Data)
	last := all[len(all)-1]
	if cpg < last.pg || (cpg == last.pg && int(coff) < int(last.off)+last.n) {
		t.Errorf("header cursor %d/%d is behind the furthest undo record %d/%d+%d",
			cpg, coff, last.pg, last.off, last.n)
	}
}
