// Package types holds the small identifier types shared by every layer of
// the system: page identifiers, log sequence numbers, transaction ids and
// commit timestamps.
package types

import "fmt"

// PageSize is the size of a database page in bytes. The paper uses 16 KB
// InnoDB pages; we scale down to 4 KB so that MB-scale benchmark datasets
// still span thousands of pages and exercise eviction.
const PageSize = 4096

// SpaceID identifies a tablespace (one B+tree index or undo segment group).
type SpaceID uint32

// PageNo is a page's number within its space.
type PageNo uint32

// PageID globally identifies a page as (space, page_no), matching the
// paper's librmem interface.
type PageID struct {
	Space SpaceID
	No    PageNo
}

func (p PageID) String() string { return fmt.Sprintf("%d:%d", p.Space, p.No) }

// Key packs the PageID into a uint64 for use as a map key or hash input.
func (p PageID) Key() uint64 { return uint64(p.Space)<<32 | uint64(p.No) }

// PageIDFromKey reverses Key.
func PageIDFromKey(k uint64) PageID {
	return PageID{Space: SpaceID(k >> 32), No: PageNo(k)}
}

// LSN is a log sequence number. It totally orders redo log records; a
// page's version is the LSN of the last record applied to it.
type LSN uint64

// TrxID identifies a read-write transaction.
type TrxID uint64

// Timestamp is a commit/read timestamp allocated by the CTS sequence.
type Timestamp uint64

// NodeKind distinguishes the roles nodes play in the cluster.
type NodeKind int

const (
	// KindRW is the single read-write database node.
	KindRW NodeKind = iota
	// KindRO is a read-only database node.
	KindRO
	// KindProxy is a stateless routing node.
	KindProxy
	// KindMemory is a slab (or home) node in the remote memory pool.
	KindMemory
	// KindStorage is a PolarFS storage node.
	KindStorage
)

func (k NodeKind) String() string {
	switch k {
	case KindRW:
		return "rw"
	case KindRO:
		return "ro"
	case KindProxy:
		return "proxy"
	case KindMemory:
		return "memory"
	case KindStorage:
		return "storage"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}
