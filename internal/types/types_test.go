package types

import (
	"testing"
	"testing/quick"
)

func TestPageIDKeyRoundTrip(t *testing.T) {
	prop := func(space uint32, no uint32) bool {
		p := PageID{Space: SpaceID(space), No: PageNo(no)}
		return PageIDFromKey(p.Key()) == p
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPageIDKeyUnique(t *testing.T) {
	a := PageID{Space: 1, No: 2}
	b := PageID{Space: 2, No: 1}
	if a.Key() == b.Key() {
		t.Fatal("distinct page ids share a key")
	}
	if a.String() == "" || a.String() == b.String() {
		t.Fatal("String() not distinguishing")
	}
}

func TestNodeKindString(t *testing.T) {
	kinds := []NodeKind{KindRW, KindRO, KindProxy, KindMemory, KindStorage, NodeKind(99)}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("NodeKind(%d).String() = %q (empty or duplicate)", int(k), s)
		}
		seen[s] = true
	}
}
