package txn

import (
	"polardb/internal/types"
)

// Visibility is a read view's judgement of one record version.
type Visibility int

const (
	// Invisible: this version is too new (or uncommitted); walk the undo
	// chain to an older version.
	Invisible Visibility = iota
	// Visible: this version is what the snapshot sees.
	Visible
	// VisibleOwn: the reading transaction's own uncommitted write.
	VisibleOwn
)

// CTSLookup resolves a transaction id to (cts_commit, known). known=false
// means the CTS log slot was reused by a newer transaction — the id is
// older than everything in the log.
type CTSLookup func(types.TrxID) (types.Timestamp, bool, error)

// ReadView is a snapshot-isolation read view: everything committed with
// cts_commit < ReadTS is visible; the transactions in Active (in flight
// when the view was created, including crash-recovery rollbacks in
// progress) are not, regardless of timestamps.
type ReadView struct {
	ReadTS types.Timestamp
	OwnTrx types.TrxID // 0 for read-only transactions
	Active map[types.TrxID]bool
}

// NewReadView builds a view from a snapshot taken under the txn table lock.
func NewReadView(readTS types.Timestamp, own types.TrxID, active []types.TrxID) *ReadView {
	v := &ReadView{ReadTS: readTS, OwnTrx: own, Active: make(map[types.TrxID]bool, len(active))}
	for _, t := range active {
		if t != own {
			v.Active[t] = true
		}
	}
	return v
}

// Judge decides a record version's visibility. lookup consults the CTS
// log when the record's cts has not been backfilled yet (one-sided RDMA
// read on RO nodes).
func (v *ReadView) Judge(rec *Record, lookup CTSLookup) (Visibility, error) {
	if rec.Trx == v.OwnTrx && v.OwnTrx != 0 {
		return VisibleOwn, nil
	}
	if v.Active[rec.Trx] {
		return Invisible, nil
	}
	if rec.CTS != 0 {
		if rec.CTS < v.ReadTS {
			return Visible, nil
		}
		return Invisible, nil
	}
	// cts not yet backfilled: consult the CTS log.
	cts, known, err := lookup(rec.Trx)
	if err != nil {
		return Invisible, err
	}
	if !known {
		// The slot was reused: rec.Trx is older than every transaction in
		// the log. It is not in Active (checked above), so it finished
		// before this view began; an aborted transaction would have been
		// rolled back (its record restored), so it committed — and its
		// commit preceded the view's creation, hence cts < ReadTS.
		return Visible, nil
	}
	if cts == 0 {
		return Invisible, nil // still uncommitted
	}
	if cts < v.ReadTS {
		return Visible, nil
	}
	return Invisible, nil
}
