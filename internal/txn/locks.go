package txn

import (
	"container/list"
	"sync"
	"time"

	"polardb/internal/types"
)

// LockTable is the RW node's in-memory row lock table. Writes take
// exclusive row locks (2PL for writers; readers never lock — snapshot
// isolation). The table is volatile: after an RW crash, recovery rolls
// back every active transaction, so no lock state needs to survive.
type LockTable struct {
	mu   sync.Mutex
	rows map[lockKey]*rowLock
	wait time.Duration
}

type lockKey struct {
	space types.SpaceID
	key   uint64
}

type rowLock struct {
	owner   types.TrxID
	depth   int        // re-entrant count for the owner
	waiters *list.List // of chan struct{}
}

// NewLockTable creates a lock table with the given wait timeout.
func NewLockTable(wait time.Duration) *LockTable {
	if wait == 0 {
		wait = time.Second
	}
	return &LockTable{rows: make(map[lockKey]*rowLock), wait: wait}
}

// Lock acquires the exclusive row lock for (space, key), blocking up to
// the wait timeout. Re-entrant for the owning transaction. A timeout
// returns ErrLockTimeout; the caller aborts the transaction (simple
// deadlock resolution by timeout, as in InnoDB's innodb_lock_wait_timeout).
func (t *LockTable) Lock(trx types.TrxID, space types.SpaceID, key uint64) error {
	k := lockKey{space, key}
	deadline := time.Now().Add(t.wait)
	for {
		t.mu.Lock()
		rl, ok := t.rows[k]
		if !ok {
			t.rows[k] = &rowLock{owner: trx, depth: 1, waiters: list.New()}
			t.mu.Unlock()
			return nil
		}
		if rl.owner == trx {
			rl.depth++
			t.mu.Unlock()
			return nil
		}
		ch := make(chan struct{})
		elem := rl.waiters.PushBack(ch)
		t.mu.Unlock()

		select {
		case <-ch:
			// Woken: the lock was handed over or freed; retry.
		case <-time.After(time.Until(deadline)):
			t.mu.Lock()
			// The wake may have raced the timeout; if we were woken the
			// channel is closed and we should retry rather than fail.
			select {
			case <-ch:
				t.mu.Unlock()
				continue
			default:
			}
			if rl2, ok := t.rows[k]; ok && rl2 == rl {
				rl.waiters.Remove(elem)
			}
			t.mu.Unlock()
			return ErrLockTimeout
		}
	}
}

// ReleaseAll frees every lock held by trx (commit/rollback releases all
// 2PL locks at once; re-entrant depth is irrelevant at transaction end).
func (t *LockTable) ReleaseAll(trx types.TrxID, held []LockRef) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, h := range held {
		k := lockKey{h.Space, h.Key}
		rl, ok := t.rows[k]
		if !ok || rl.owner != trx {
			continue
		}
		delete(t.rows, k)
		for e := rl.waiters.Front(); e != nil; e = e.Next() {
			close(e.Value.(chan struct{}))
		}
	}
}

// LockRef names a held lock, tracked by the transaction.
type LockRef struct {
	Space types.SpaceID
	Key   uint64
}

// Held reports the number of locked rows (tests / introspection).
func (t *LockTable) Held() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.rows)
}
