package txn

import (
	"sync"

	"polardb/internal/rdma"
	"polardb/internal/stat"
	"polardb/internal/types"
	"polardb/internal/wire"
)

// CTS region layout on the RW node. The whole region is registered with
// the RDMA NIC so RO nodes can read timestamps and look up the CTS log
// with one-sided verbs, never consuming RW CPU (§3.3).
//
//	word 0: CTS counter (fetch-and-add)
//	word 1: published redo LSN (the SMO clock for optimistic traversals)
//	word 2: min active trx id (advisory; see ReadView)
//	16-byte slots from ctsLogBase: CTS log — (trxID, cts_commit) of the
//	most recent read-write transactions, indexed by trxID % slots.
const (
	ctsCounterOff = 0
	ctsLSNOff     = 8
	ctsMinActOff  = 16
	ctsLogBase    = 64
)

// DefaultCTSSlots is the default CTS log capacity (the paper keeps the
// last ~1,000,000 transactions; we scale down with the rest).
const DefaultCTSSlots = 1 << 14

// RegionSize returns the byte size of a CTS region with the given slots.
func RegionSize(slots int) int { return ctsLogBase + slots*16 }

// Service is the RW-node side of the CTS sequence and log.
type Service struct {
	region *rdma.Region
	slots  int
	mu     sync.Mutex // serializes slot writes (seqlock-free simulation)
}

// NewService wraps an RDMA-registered region (of RegionSize bytes). The
// counter starts at 1 so timestamp 0 means "unset".
func NewService(region *rdma.Region, slots int) *Service {
	if slots == 0 {
		slots = DefaultCTSSlots
	}
	s := &Service{region: region, slots: slots}
	region.MustStore64Local(ctsCounterOff, 1)
	return s
}

// Slots returns the CTS log capacity.
func (s *Service) Slots() int { return s.slots }

// NextTS allocates a new monotonic timestamp (cts_read / cts_commit).
func (s *Service) NextTS() types.Timestamp {
	v, err := s.region.FetchAdd64Local(ctsCounterOff, 1)
	if err != nil {
		panic("txn: cts region misconfigured: " + err.Error())
	}
	return types.Timestamp(v + 1)
}

// SetCounter forces the sequence to continue from ts (recovery restores
// the persisted high watermark so new timestamps exceed every old one).
func (s *Service) SetCounter(ts types.Timestamp) {
	s.region.MustStore64Local(ctsCounterOff, uint64(ts))
}

// CurrentTS returns the latest allocated timestamp without advancing.
func (s *Service) CurrentTS() types.Timestamp {
	v := s.region.MustLoad64Local(ctsCounterOff)
	return types.Timestamp(v)
}

// PublishLSN exposes the redo LSN to RO nodes (SMO clock, §4.1).
func (s *Service) PublishLSN(lsn types.LSN) {
	s.region.MustStore64Local(ctsLSNOff, uint64(lsn))
}

// PublishedLSN reads back the published LSN locally.
func (s *Service) PublishedLSN() types.LSN {
	v := s.region.MustLoad64Local(ctsLSNOff)
	return types.LSN(v)
}

// SetMinActive publishes the oldest active transaction id.
func (s *Service) SetMinActive(trx types.TrxID) {
	s.region.MustStore64Local(ctsMinActOff, uint64(trx))
}

func (s *Service) slotOff(trx types.TrxID) uint64 {
	return uint64(ctsLogBase) + (uint64(trx)%uint64(s.slots))*16
}

// BeginInLog claims the transaction's CTS log slot with cts 0 (active).
// Returns false if the slot is still owned by a different *uncommitted*
// transaction — callers treat that as too many in-flight transactions.
func (s *Service) BeginInLog(trx types.TrxID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	off := s.slotOff(trx)
	var cur [16]byte
	s.region.MustReadLocal(off, cur[:])
	curTrx := types.TrxID(getU64(cur[0:]))
	curCTS := getU64(cur[8:])
	if curTrx != 0 && curTrx != trx && curCTS == 0 {
		return false
	}
	var buf [16]byte
	putU64(buf[0:], uint64(trx))
	s.region.MustWriteLocal(off, buf[:])
	return true
}

// RecordCommit publishes the transaction's commit timestamp in the log.
func (s *Service) RecordCommit(trx types.TrxID, cts types.Timestamp) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf [16]byte
	putU64(buf[0:], uint64(trx))
	putU64(buf[8:], uint64(cts))
	s.region.MustWriteLocal(s.slotOff(trx), buf[:])
}

// ClearSlot marks an aborted transaction's slot free (after rollback).
func (s *Service) ClearSlot(trx types.TrxID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	off := s.slotOff(trx)
	var cur [16]byte
	s.region.MustReadLocal(off, cur[:])
	if types.TrxID(getU64(cur[0:])) == trx {
		var zero [16]byte
		s.region.MustWriteLocal(off, zero[:])
	}
}

// Lookup resolves a transaction's commit status from the local CTS log.
func (s *Service) Lookup(trx types.TrxID) (cts types.Timestamp, known bool) {
	var buf [16]byte
	s.region.MustReadLocal(s.slotOff(trx), buf[:])
	return decodeSlot(trx, buf[:])
}

func decodeSlot(trx types.TrxID, buf []byte) (types.Timestamp, bool) {
	if types.TrxID(getU64(buf[0:])) != trx {
		return 0, false // slot reused by a newer transaction
	}
	return types.Timestamp(getU64(buf[8:])), true
}

// Client is the RO-node view of the CTS region, using one-sided RDMA.
type Client struct {
	ep     *rdma.Endpoint
	rw     rdma.NodeID
	region uint32
	slots  int
	met    ctsMetrics
}

// ctsMetrics count the one-sided CTS accesses an RO issues (§3.3: all
// timestamp traffic bypasses the RW CPU).
type ctsMetrics struct {
	readTS  *stat.Counter // cts_read fetches of the counter word
	nextTS  *stat.Counter // remote FETCH_ADD timestamp allocations
	readLSN *stat.Counter // SMO-clock (published LSN) reads
	lookup  *stat.Counter // CTS log slot reads (commit-status checks)
}

// NewClient builds a CTS client addressing the RW node's CTS region.
func NewClient(ep *rdma.Endpoint, rw rdma.NodeID, region uint32, slots int) *Client {
	if slots == 0 {
		slots = DefaultCTSSlots
	}
	r := ep.Metrics()
	return &Client{ep: ep, rw: rw, region: region, slots: slots, met: ctsMetrics{
		readTS:  r.Counter("txn.cts.read_ts.ops"),
		nextTS:  r.Counter("txn.cts.next_ts.ops"),
		readLSN: r.Counter("txn.cts.read_lsn.ops"),
		lookup:  r.Counter("txn.cts.lookup.ops"),
	}}
}

// SetRW repoints the client after an RW failover.
func (c *Client) SetRW(rw rdma.NodeID, region uint32) {
	c.rw = rw
	c.region = region
}

func (c *Client) addr(off uint64) rdma.Addr {
	return rdma.Addr{Node: c.rw, Region: c.region, Off: off}
}

// ReadTS reads the current timestamp (a read-only transaction's cts_read)
// with a single one-sided read.
func (c *Client) ReadTS() (types.Timestamp, error) {
	c.met.readTS.Inc()
	v, err := c.ep.Load64(c.addr(ctsCounterOff))
	return types.Timestamp(v), err
}

// NextTS allocates a timestamp remotely via RDMA fetch-and-add (used when
// an RO coordinates a cross-node operation needing a unique timestamp).
func (c *Client) NextTS() (types.Timestamp, error) {
	c.met.nextTS.Inc()
	v, err := c.ep.FetchAdd64(c.addr(ctsCounterOff), 1)
	return types.Timestamp(v + 1), err
}

// ReadLSN reads the published redo LSN (SMO clock) one-sided.
func (c *Client) ReadLSN() (types.LSN, error) {
	c.met.readLSN.Inc()
	v, err := c.ep.Load64(c.addr(ctsLSNOff))
	return types.LSN(v), err
}

// Lookup resolves a transaction's commit status by reading its CTS log
// slot with one one-sided RDMA read — no RW CPU involved.
func (c *Client) Lookup(trx types.TrxID) (cts types.Timestamp, known bool, err error) {
	c.met.lookup.Inc()
	var buf [16]byte
	off := uint64(ctsLogBase) + (uint64(trx)%uint64(c.slots))*16
	if err := c.ep.Read(c.addr(off), buf[:]); err != nil {
		return 0, false, err
	}
	cts, known = decodeSlot(trx, buf[:])
	return cts, known, nil
}

// ViewRPCMethod is the RPC the RW node serves for read-view snapshots.
const ViewRPCMethod = "cts.view"

// MarshalView encodes a read-view snapshot for the view RPC.
func MarshalView(readTS types.Timestamp, active []types.TrxID) []byte {
	w := wire.NewWriter(16 + 8*len(active))
	w.U64(uint64(readTS))
	w.U32(uint32(len(active)))
	for _, t := range active {
		w.U64(uint64(t))
	}
	return w.Bytes()
}

// UnmarshalView decodes a read-view snapshot.
func UnmarshalView(buf []byte) (types.Timestamp, []types.TrxID, error) {
	rd := wire.NewReader(buf)
	ts := types.Timestamp(rd.U64())
	n := int(rd.U32())
	active := make([]types.TrxID, n)
	for i := range active {
		active[i] = types.TrxID(rd.U64())
	}
	return ts, active, rd.Err()
}
