// Package txn provides the transaction substrate of the engine (§3.3):
// MVCC record and undo-record encodings, the CTS timestamp sequence with
// its RDMA-readable CTS log, snapshot-isolation read views, and the RW
// node's row lock table.
//
// Version storage follows InnoDB: the B+tree holds only the newest version
// of each record; older versions are reconstructed from undo records.
// Undo records live in ordinary pages, so they flow through the same redo
// / remote-memory / storage pipeline as data pages and are readable by RO
// nodes — which is what lets read-only transactions run against shared
// memory without replaying logs.
package txn

import (
	"errors"
	"fmt"

	"polardb/internal/types"
)

// Errors returned by the transaction layer.
var (
	ErrLockTimeout   = errors.New("txn: row lock wait timeout")
	ErrTooManyTxns   = errors.New("txn: transaction slot table full")
	ErrBadRecord     = errors.New("txn: malformed record")
	ErrWriteConflict = errors.New("txn: write conflict")
)

// RecordHeaderSize is the fixed prefix of every record value in an index.
const RecordHeaderSize = 8 + 8 + 4 + 2 + 1

// Record is a versioned row as stored in a B+tree leaf: MVCC header plus
// user payload. The header's Trx/CTS drive visibility; UndoPage/UndoOff
// point at the undo record holding the previous version.
type Record struct {
	Trx       types.TrxID
	CTS       types.Timestamp // 0 = not yet backfilled; consult the CTS log
	UndoPage  types.PageNo    // 0 = no previous version
	UndoOff   uint16
	Tombstone bool // delete-marked: invisible at-or-after the deleting txn
	Payload   []byte
}

// Marshal encodes the record into a value suitable for a B+tree leaf.
func (r *Record) Marshal() []byte {
	buf := make([]byte, RecordHeaderSize+len(r.Payload))
	putU64(buf[0:], uint64(r.Trx))
	putU64(buf[8:], uint64(r.CTS))
	putU32(buf[16:], uint32(r.UndoPage))
	putU16(buf[20:], r.UndoOff)
	if r.Tombstone {
		buf[22] = 1
	}
	copy(buf[RecordHeaderSize:], r.Payload)
	return buf
}

// UnmarshalRecord decodes a leaf value. The payload aliases buf.
func UnmarshalRecord(buf []byte) (Record, error) {
	if len(buf) < RecordHeaderSize {
		return Record{}, fmt.Errorf("%w: %d bytes", ErrBadRecord, len(buf))
	}
	return Record{
		Trx:       types.TrxID(getU64(buf[0:])),
		CTS:       types.Timestamp(getU64(buf[8:])),
		UndoPage:  types.PageNo(getU32(buf[16:])),
		UndoOff:   getU16(buf[20:]),
		Tombstone: buf[22] == 1,
		Payload:   buf[RecordHeaderSize:],
	}, nil
}

// SetCTS overwrites the CTS field inside an encoded record in place —
// used by the asynchronous commit-timestamp backfill, which patches just
// these 8 bytes through a logged page write.
func SetCTS(buf []byte, cts types.Timestamp) {
	putU64(buf[8:], uint64(cts))
}

// CTSFieldOffset is the byte offset of the CTS field within an encoded
// record (the backfill logs exactly these 8 bytes).
const CTSFieldOffset = 8

// UndoType classifies undo records.
type UndoType uint8

// Undo record types.
const (
	UndoUpdate UndoType = 1 // previous version exists and is restored
	UndoInsert UndoType = 2 // record did not exist before
	UndoDelete UndoType = 3 // record existed; delete wrote a tombstone
)

// UndoRec is one entry in the undo log. PrevBytes holds the complete
// previous record value (header + payload), so version chains continue
// through it; for UndoInsert it is empty.
type UndoRec struct {
	Trx        types.TrxID
	Space      types.SpaceID // index tablespace the change applies to
	Key        uint64
	Type       UndoType
	PrevTxnPg  types.PageNo // previous undo of the same txn (rollback chain)
	PrevTxnOff uint16
	PrevBytes  []byte
}

// undoHeaderSize is the fixed prefix of an encoded undo record.
const undoHeaderSize = 8 + 4 + 8 + 1 + 4 + 2 + 2

// EncodedSize returns the full encoded length.
func (u *UndoRec) EncodedSize() int { return undoHeaderSize + len(u.PrevBytes) }

// Marshal encodes the undo record.
func (u *UndoRec) Marshal() []byte {
	buf := make([]byte, u.EncodedSize())
	putU64(buf[0:], uint64(u.Trx))
	putU32(buf[8:], uint32(u.Space))
	putU64(buf[12:], u.Key)
	buf[20] = byte(u.Type)
	putU32(buf[21:], uint32(u.PrevTxnPg))
	putU16(buf[25:], u.PrevTxnOff)
	putU16(buf[27:], uint16(len(u.PrevBytes)))
	copy(buf[undoHeaderSize:], u.PrevBytes)
	return buf
}

// UnmarshalUndo decodes an undo record from a page at the given offset.
func UnmarshalUndo(page []byte, off int) (UndoRec, error) {
	if off+undoHeaderSize > len(page) {
		return UndoRec{}, fmt.Errorf("%w: undo header at %d", ErrBadRecord, off)
	}
	u := UndoRec{
		Trx:        types.TrxID(getU64(page[off:])),
		Space:      types.SpaceID(getU32(page[off+8:])),
		Key:        getU64(page[off+12:]),
		Type:       UndoType(page[off+20]),
		PrevTxnPg:  types.PageNo(getU32(page[off+21:])),
		PrevTxnOff: getU16(page[off+25:]),
	}
	n := int(getU16(page[off+27:]))
	if off+undoHeaderSize+n > len(page) {
		return UndoRec{}, fmt.Errorf("%w: undo body at %d len %d", ErrBadRecord, off, n)
	}
	u.PrevBytes = page[off+undoHeaderSize : off+undoHeaderSize+n]
	return u, nil
}

func putU16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }
func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}
func getU16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }
func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func getU64(b []byte) uint64 { return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32 }
