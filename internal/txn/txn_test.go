package txn

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"polardb/internal/rdma"
	"polardb/internal/types"
)

func TestRecordRoundTrip(t *testing.T) {
	in := Record{
		Trx:       42,
		CTS:       7,
		UndoPage:  9,
		UndoOff:   1234,
		Tombstone: true,
		Payload:   []byte("hello"),
	}
	out, err := UnmarshalRecord(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out.Trx != in.Trx || out.CTS != in.CTS || out.UndoPage != in.UndoPage ||
		out.UndoOff != in.UndoOff || out.Tombstone != in.Tombstone ||
		!bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip: %+v", out)
	}
}

func TestRecordTooShort(t *testing.T) {
	if _, err := UnmarshalRecord(make([]byte, 3)); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("err = %v", err)
	}
}

func TestSetCTSInPlace(t *testing.T) {
	r := Record{Trx: 1, Payload: []byte("x")}
	buf := r.Marshal()
	SetCTS(buf, 99)
	out, _ := UnmarshalRecord(buf)
	if out.CTS != 99 {
		t.Fatalf("cts = %d", out.CTS)
	}
}

func TestUndoRoundTrip(t *testing.T) {
	in := UndoRec{
		Trx:        5,
		Space:      3,
		Key:        777,
		Type:       UndoUpdate,
		PrevTxnPg:  2,
		PrevTxnOff: 96,
		PrevBytes:  []byte("previous version bytes"),
	}
	page := make([]byte, types.PageSize)
	enc := in.Marshal()
	copy(page[100:], enc)
	out, err := UnmarshalUndo(page, 100)
	if err != nil {
		t.Fatal(err)
	}
	if out.Trx != in.Trx || out.Space != in.Space || out.Key != in.Key ||
		out.Type != in.Type || out.PrevTxnPg != in.PrevTxnPg ||
		out.PrevTxnOff != in.PrevTxnOff || !bytes.Equal(out.PrevBytes, in.PrevBytes) {
		t.Fatalf("round trip: %+v", out)
	}
	if in.EncodedSize() != len(enc) {
		t.Fatalf("EncodedSize %d != %d", in.EncodedSize(), len(enc))
	}
}

func TestUndoCorrupt(t *testing.T) {
	page := make([]byte, 64)
	if _, err := UnmarshalUndo(page, 60); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("err = %v", err)
	}
}

// Property: record and undo encodings round-trip arbitrary payloads.
func TestEncodingProperty(t *testing.T) {
	prop := func(trx, cts uint64, pg uint32, off uint16, tomb bool, payload []byte) bool {
		r := Record{
			Trx: types.TrxID(trx), CTS: types.Timestamp(cts),
			UndoPage: types.PageNo(pg), UndoOff: off, Tombstone: tomb, Payload: payload,
		}
		out, err := UnmarshalRecord(r.Marshal())
		return err == nil && out.Trx == r.Trx && out.CTS == r.CTS &&
			out.Tombstone == tomb && bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func newCTSPair(t *testing.T) (*Service, *Client) {
	t.Helper()
	f := rdma.NewFabric(rdma.TestConfig())
	rw := f.MustAttach("rw")
	ro := f.MustAttach("ro")
	region := rw.RegisterRegion(RegionSize(64))
	svc := NewService(region, 64)
	cli := NewClient(ro, "rw", region.ID(), 64)
	return svc, cli
}

func TestCTSMonotonic(t *testing.T) {
	svc, cli := newCTSPair(t)
	a := svc.NextTS()
	b := svc.NextTS()
	if b <= a {
		t.Fatalf("timestamps not monotonic: %d then %d", a, b)
	}
	remote, err := cli.ReadTS()
	if err != nil {
		t.Fatal(err)
	}
	if remote != b {
		t.Fatalf("remote read = %d, want %d", remote, b)
	}
	c, err := cli.NextTS()
	if err != nil || c != b+1 {
		t.Fatalf("remote FAA = %d, %v", c, err)
	}
	if svc.CurrentTS() != c {
		t.Fatalf("current = %d, want %d", svc.CurrentTS(), c)
	}
}

func TestCTSConcurrentUnique(t *testing.T) {
	svc, _ := newCTSPair(t)
	const workers, per = 8, 200
	ch := make(chan types.Timestamp, workers*per)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				ch <- svc.NextTS()
			}
		}()
	}
	wg.Wait()
	close(ch)
	seen := map[types.Timestamp]bool{}
	for ts := range ch {
		if seen[ts] {
			t.Fatalf("duplicate timestamp %d", ts)
		}
		seen[ts] = true
	}
}

func TestCTSLogLifecycle(t *testing.T) {
	svc, cli := newCTSPair(t)
	trx := types.TrxID(7)
	if !svc.BeginInLog(trx) {
		t.Fatal("begin rejected")
	}
	// Active: known, cts 0 — locally and via one-sided remote read.
	if cts, known := svc.Lookup(trx); !known || cts != 0 {
		t.Fatalf("active lookup = %d,%v", cts, known)
	}
	if cts, known, err := cli.Lookup(trx); err != nil || !known || cts != 0 {
		t.Fatalf("remote active lookup = %d,%v,%v", cts, known, err)
	}
	svc.RecordCommit(trx, 55)
	if cts, known, err := cli.Lookup(trx); err != nil || !known || cts != 55 {
		t.Fatalf("remote committed lookup = %d,%v,%v", cts, known, err)
	}
	// Slot reuse by a colliding id (7 + 64): unknown for the old trx.
	if !svc.BeginInLog(trx + 64) {
		t.Fatal("reuse of committed slot rejected")
	}
	if _, known := svc.Lookup(trx); known {
		t.Fatal("stale trx still known after slot reuse")
	}
	// An uncommitted holder blocks colliding begins.
	if svc.BeginInLog(trx + 128) {
		t.Fatal("begin over an active colliding slot succeeded")
	}
}

func TestCTSClearSlot(t *testing.T) {
	svc, _ := newCTSPair(t)
	svc.BeginInLog(3)
	svc.ClearSlot(3)
	if !svc.BeginInLog(3 + 64) {
		t.Fatal("slot not reusable after clear")
	}
	// Clearing someone else's slot is a no-op.
	svc.ClearSlot(3)
	if cts, known := svc.Lookup(3 + 64); !known || cts != 0 {
		t.Fatalf("lookup after foreign clear: %d,%v", cts, known)
	}
}

func TestPublishLSN(t *testing.T) {
	svc, cli := newCTSPair(t)
	svc.PublishLSN(12345)
	v, err := cli.ReadLSN()
	if err != nil || v != 12345 {
		t.Fatalf("read lsn = %d, %v", v, err)
	}
	if svc.PublishedLSN() != 12345 {
		t.Fatal("local published lsn mismatch")
	}
}

func judgeWith(t *testing.T, v *ReadView, rec Record, svc *Service) Visibility {
	t.Helper()
	vis, err := v.Judge(&rec, func(trx types.TrxID) (types.Timestamp, bool, error) {
		cts, known := svc.Lookup(trx)
		return cts, known, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return vis
}

func TestVisibilityRules(t *testing.T) {
	svc, _ := newCTSPair(t)
	view := NewReadView(100, 50, []types.TrxID{60, 50})

	// Own write always visible.
	if v := judgeWith(t, view, Record{Trx: 50}, svc); v != VisibleOwn {
		t.Fatalf("own = %v", v)
	}
	// Active at view creation: invisible even with a (later) commit ts.
	if v := judgeWith(t, view, Record{Trx: 60, CTS: 40}, svc); v != Invisible {
		t.Fatalf("active = %v", v)
	}
	// Backfilled cts below / above readTS.
	if v := judgeWith(t, view, Record{Trx: 10, CTS: 99}, svc); v != Visible {
		t.Fatalf("cts 99 = %v", v)
	}
	if v := judgeWith(t, view, Record{Trx: 10, CTS: 100}, svc); v != Invisible {
		t.Fatalf("cts 100 = %v", v)
	}
	// Unfilled cts, CTS log committed below readTS.
	svc.BeginInLog(20)
	svc.RecordCommit(20, 70)
	if v := judgeWith(t, view, Record{Trx: 20}, svc); v != Visible {
		t.Fatalf("log committed = %v", v)
	}
	// Unfilled cts, CTS log says still running.
	svc.BeginInLog(21)
	if v := judgeWith(t, view, Record{Trx: 21}, svc); v != Invisible {
		t.Fatalf("log active = %v", v)
	}
	// Unfilled cts, slot evicted (ancient committed txn): visible.
	if v := judgeWith(t, view, Record{Trx: 5}, svc); v != Visible {
		t.Fatalf("evicted = %v", v)
	}
}

func TestLockTableBasic(t *testing.T) {
	lt := NewLockTable(100 * time.Millisecond)
	if err := lt.Lock(1, 1, 10); err != nil {
		t.Fatal(err)
	}
	// Re-entrant.
	if err := lt.Lock(1, 1, 10); err != nil {
		t.Fatal(err)
	}
	// Contender times out.
	if err := lt.Lock(2, 1, 10); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("err = %v", err)
	}
	lt.ReleaseAll(1, []LockRef{{1, 10}})
	if err := lt.Lock(2, 1, 10); err != nil {
		t.Fatalf("after release: %v", err)
	}
	lt.ReleaseAll(2, []LockRef{{1, 10}})
	if lt.Held() != 0 {
		t.Fatalf("held = %d", lt.Held())
	}
}

func TestLockHandoffWakesWaiter(t *testing.T) {
	lt := NewLockTable(2 * time.Second)
	if err := lt.Lock(1, 1, 5); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- lt.Lock(2, 1, 5) }()
	time.Sleep(20 * time.Millisecond)
	lt.ReleaseAll(1, []LockRef{{1, 5}})
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("waiter: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not woken")
	}
}

func TestLockDifferentKeysIndependent(t *testing.T) {
	lt := NewLockTable(50 * time.Millisecond)
	if err := lt.Lock(1, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := lt.Lock(2, 1, 6); err != nil {
		t.Fatal(err)
	}
	if err := lt.Lock(2, 2, 5); err != nil { // same key, other space
		t.Fatal(err)
	}
}

func TestLockContentionStress(t *testing.T) {
	lt := NewLockTable(5 * time.Second)
	var counter int
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(trx types.TrxID) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := lt.Lock(trx, 1, 1); err != nil {
					t.Errorf("lock: %v", err)
					return
				}
				counter++ // protected by the row lock
				lt.ReleaseAll(trx, []LockRef{{1, 1}})
			}
		}(types.TrxID(w + 1))
	}
	wg.Wait()
	if counter != 800 {
		t.Fatalf("counter = %d (row lock did not exclude)", counter)
	}
}

func TestTxnSlotRoundTrip(t *testing.T) {
	page := make([]byte, types.PageSize)
	s := TxnSlot{Trx: 99, State: SlotActive, LastUndoPage: 7, LastUndoOff: 321}
	copy(page[SlotOffset(3):], s.Marshal())
	out := UnmarshalSlot(page, 3)
	if out != s {
		t.Fatalf("round trip: %+v", out)
	}
	unfinished := ScanUnfinished(page)
	if len(unfinished) != 1 || unfinished[0].Trx != 99 {
		t.Fatalf("unfinished = %+v", unfinished)
	}
	if MaxTrxID(page) != 99 {
		t.Fatalf("max trx = %d", MaxTrxID(page))
	}
	// Committed slots are not "unfinished".
	s.State = SlotCommitted
	copy(page[SlotOffset(3):], s.Marshal())
	if got := ScanUnfinished(page); len(got) != 0 {
		t.Fatalf("committed counted as unfinished: %+v", got)
	}
}

func TestUndoAllocCursor(t *testing.T) {
	page := make([]byte, types.PageSize)
	copy(page[UndoAllocOffset:], MarshalUndoAlloc(5, 1000))
	pg, off := UndoAlloc(page)
	if pg != 5 || off != 1000 {
		t.Fatalf("cursor = %d,%d", pg, off)
	}
}

func TestSlotCountSane(t *testing.T) {
	if SlotCount() < 100 {
		t.Fatalf("slot count = %d, too small", SlotCount())
	}
	if SlotOffset(SlotCount()-1)+slotBytes > types.PageSize {
		t.Fatal("last slot exceeds page")
	}
}
