package txn

import (
	"polardb/internal/types"
)

// Persistent transaction slot table, stored in page 0 of the undo
// tablespace. Recovery "scans the undo header to construct the state of
// all active transactions" (§5.1 step 7) — that header is this page.
//
// Page 0 layout:
//
//	 0..8   page LSN (engine-maintained)
//	 8..12  next undo page to append into
//	12..16  next free offset within that page
//	16..24  CTS high watermark (highest commit timestamp ever issued;
//	        recovery restarts the CTS sequence above it)
//	24..    transaction slots, 24 bytes each
//
// Undo data pages start at page 1 of the undo space and are filled
// append-only; each undo record's in-page offset is stable, so (page,off)
// pointers in record headers and rollback chains stay valid forever.

// Transaction slot states.
const (
	SlotFree      = 0
	SlotActive    = 1
	SlotCommitted = 2
	SlotAborting  = 3
)

const (
	undoAllocPageOff = 8
	undoAllocOffOff  = 12
	ctsWatermarkOff  = 16
	slotBase         = 24
	slotBytes        = 24
)

// CTSWatermarkOffset is the header-page offset of the CTS high watermark.
const CTSWatermarkOffset = ctsWatermarkOff

// MarshalCTSWatermark encodes the watermark for a logged header write.
func MarshalCTSWatermark(cts types.Timestamp) []byte {
	buf := make([]byte, 8)
	putU64(buf, uint64(cts))
	return buf
}

// CTSWatermark reads the persisted watermark from the header page.
func CTSWatermark(page []byte) types.Timestamp {
	return types.Timestamp(getU64(page[ctsWatermarkOff:]))
}

// SlotCount is the number of transaction slots in the header page — the
// maximum number of concurrently open read-write transactions.
func SlotCount() int { return (types.PageSize - slotBase) / slotBytes }

// SlotOffset returns the byte offset of slot i within the header page.
func SlotOffset(i int) int { return slotBase + i*slotBytes }

// TxnSlot is one persistent transaction table entry.
type TxnSlot struct {
	Trx          types.TrxID
	State        uint8
	LastUndoPage types.PageNo
	LastUndoOff  uint16
}

// Marshal encodes the slot (slotBytes long).
func (s *TxnSlot) Marshal() []byte {
	buf := make([]byte, slotBytes)
	putU64(buf[0:], uint64(s.Trx))
	buf[8] = s.State
	putU16(buf[10:], s.LastUndoOff)
	putU32(buf[12:], uint32(s.LastUndoPage))
	return buf
}

// UnmarshalSlot decodes slot i from the header page.
func UnmarshalSlot(page []byte, i int) TxnSlot {
	off := SlotOffset(i)
	return TxnSlot{
		Trx:          types.TrxID(getU64(page[off:])),
		State:        page[off+8],
		LastUndoOff:  getU16(page[off+10:]),
		LastUndoPage: types.PageNo(getU32(page[off+12:])),
	}
}

// ScanUnfinished returns every slot holding an active or aborting
// transaction — the set recovery must roll back.
func ScanUnfinished(page []byte) []TxnSlot {
	var out []TxnSlot
	for i := 0; i < SlotCount(); i++ {
		s := UnmarshalSlot(page, i)
		if s.State == SlotActive || s.State == SlotAborting {
			out = append(out, s)
		}
	}
	return out
}

// MaxTrxID returns the highest transaction id recorded in any slot, used
// by recovery to restart the trx id sequence above everything persisted.
func MaxTrxID(page []byte) types.TrxID {
	var max types.TrxID
	for i := 0; i < SlotCount(); i++ {
		if s := UnmarshalSlot(page, i); s.Trx > max {
			max = s.Trx
		}
	}
	return max
}

// UndoAlloc reads the undo append cursor from the header page.
func UndoAlloc(page []byte) (types.PageNo, uint16) {
	return types.PageNo(getU32(page[undoAllocPageOff:])), uint16(getU32(page[undoAllocOffOff:]))
}

// MarshalUndoAlloc encodes the undo append cursor; callers log it at
// offset UndoAllocOffset within the header page.
func MarshalUndoAlloc(page types.PageNo, off uint16) []byte {
	buf := make([]byte, 8)
	putU32(buf[0:], uint32(page))
	putU32(buf[4:], uint32(off))
	return buf
}

// UndoAllocOffset is the header-page offset of the undo append cursor.
const UndoAllocOffset = undoAllocPageOff
