package polardb_test

import (
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"

	"polardb/internal/lint"
	"polardb/pkg/polar"
)

// metricName matches the repo's metric naming scheme: at least three
// lowercase dot-separated segments (rdma.read.ops, txn.cts.lookup.ops).
// Filenames and package paths mentioned in prose have at most one dot,
// so backticked code spans in the Observability section that match this
// pattern are exactly the documented metric names.
var metricName = regexp.MustCompile("`([a-z][a-z0-9_]*(?:\\.[a-z0-9_]+){2,})`")

// TestObservabilityDocDrift pins DESIGN.md's "Observability" table to
// the metrics the code actually registers: launch a full deployment
// (RW + RO + memory + storage + proxy + CM, so every component
// constructs its handles), take the union of registered names across
// nodes, and require it to equal the set documented in DESIGN.md. A
// metric added in code must be documented; a documented metric must
// still exist.
func TestObservabilityDocDrift(t *testing.T) {
	doc, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	begin := strings.Index(text, "## Observability")
	if begin < 0 {
		t.Fatal("DESIGN.md has no \"## Observability\" section")
	}
	end := strings.Index(text[begin+1:], "\n## ")
	if end < 0 {
		end = len(text)
	} else {
		end += begin + 1
	}
	section := text[begin:end]

	documented := map[string]bool{}
	for _, m := range metricName.FindAllStringSubmatch(section, -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no metric names found in DESIGN.md's Observability section")
	}

	db, err := polar.Open(polar.Options{
		ReadReplicas:    1,
		MemorySlabs:     2,
		LocalCachePages: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Handles are registered eagerly at construction, so no traffic is
	// needed for the full inventory to be visible.
	registered := db.Metrics().Names()
	if len(registered) == 0 {
		t.Fatal("deployment registered no metrics")
	}

	regSet := map[string]bool{}
	for _, n := range registered {
		regSet[n] = true
		if !documented[n] {
			t.Errorf("metric %q is registered but missing from DESIGN.md's Observability table", n)
		}
	}
	var stale []string
	for n := range documented {
		if !regSet[n] {
			stale = append(stale, n)
		}
	}
	sort.Strings(stale)
	for _, n := range stale {
		t.Errorf("DESIGN.md's Observability table lists %q, which no component registers", n)
	}
}

// lockClassRow matches one row of DESIGN.md's lock-class table: the
// backticked class name and the fabric-tolerant cell.
var lockClassRow = regexp.MustCompile("(?m)^\\| `([^`]+)` \\| ([^|]*)\\|")

// TestLockClassesDocDrift pins DESIGN.md's "Lock classes and global
// acquisition order" table to the lockorder analyzer: the documented
// class set must equal the classes discovered from the module, and the
// ✓ (fabric-tolerant) markers must equal the analyzer's fabricTolerant
// table. A new mutex field must be documented (and argued tolerant or
// not); a class removed from the code must leave the table.
func TestLockClassesDocDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo analysis skipped in -short mode")
	}
	doc, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	begin := strings.Index(text, "<!-- lockclasses:begin -->")
	end := strings.Index(text, "<!-- lockclasses:end -->")
	if begin < 0 || end < begin {
		t.Fatal("DESIGN.md has no <!-- lockclasses:begin/end --> table")
	}
	section := text[begin:end]

	documented := map[string]bool{} // class -> fabric-tolerant
	for _, m := range lockClassRow.FindAllStringSubmatch(section, -1) {
		if m[1] == "class" {
			continue // header row
		}
		documented[m[1]] = strings.Contains(m[2], "✓")
	}
	if len(documented) == 0 {
		t.Fatal("no lock classes found in DESIGN.md's table")
	}

	mod, err := lint.LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	g, err := lint.BuildLockGraph(mod, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{}
	for _, c := range g.Classes {
		known[c] = true
		tol, ok := documented[c]
		if !ok {
			t.Errorf("lock class %q exists in the module but is missing from DESIGN.md's table", c)
			continue
		}
		if _, isTol := g.FabricTolerant[c]; isTol != tol {
			t.Errorf("lock class %q: DESIGN.md marks fabric-tolerant=%v, analyzer says %v", c, tol, isTol)
		}
	}
	var stale []string
	for c := range documented {
		if !known[c] {
			stale = append(stale, c)
		}
	}
	sort.Strings(stale)
	for _, c := range stale {
		t.Errorf("DESIGN.md's lock-class table lists %q, which the analyzer no longer discovers", c)
	}
}

// fabricBudgetRow matches one row of DESIGN.md's fabric-budget table:
// the backticked function name and the backticked budget level.
var fabricBudgetRow = regexp.MustCompile("(?m)^\\| `([^`]+)` \\| `([^`]+)` \\|")

// TestFabricBudgetsDocDrift pins DESIGN.md's "Declared fabric budgets"
// table to the fabriccost analyzer: the documented (function, budget)
// pairs must equal the //polarvet:fabric directives discovered in the
// module. A budget added or retuned in code must be reflected here; a
// removed directive must leave the table.
func TestFabricBudgetsDocDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo analysis skipped in -short mode")
	}
	doc, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	begin := strings.Index(text, "<!-- fabricbudgets:begin -->")
	end := strings.Index(text, "<!-- fabricbudgets:end -->")
	if begin < 0 || end < begin {
		t.Fatal("DESIGN.md has no <!-- fabricbudgets:begin/end --> table")
	}
	section := text[begin:end]

	documented := map[string]string{} // function -> budget level
	for _, m := range fabricBudgetRow.FindAllStringSubmatch(section, -1) {
		documented[m[1]] = m[2]
	}
	if len(documented) == 0 {
		t.Fatal("no fabric budgets found in DESIGN.md's table")
	}

	mod, err := lint.LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := lint.BuildFabricReport(mod, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	declared := map[string]string{}
	for _, f := range rep.Functions {
		if f.Budget != "" {
			declared[f.Function] = f.Budget
		}
	}
	for fn, level := range declared {
		doc, ok := documented[fn]
		if !ok {
			t.Errorf("%s declares //polarvet:fabric %s but is missing from DESIGN.md's fabric-budget table", fn, level)
			continue
		}
		if doc != level {
			t.Errorf("%s: DESIGN.md documents budget %s, code declares %s", fn, doc, level)
		}
	}
	var stale []string
	for fn := range documented {
		if _, ok := declared[fn]; !ok {
			stale = append(stale, fn)
		}
	}
	sort.Strings(stale)
	for _, fn := range stale {
		t.Errorf("DESIGN.md's fabric-budget table lists %q, which declares no //polarvet:fabric directive", fn)
	}
}
