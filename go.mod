module polardb

go 1.22
