// Package polar is the public API of the PolarDB Serverless
// reproduction: a cloud-native database for disaggregated data centers
// (Cao et al., SIGMOD 2021) built from scratch in Go.
//
// Open launches a complete simulated deployment in-process — PolarFS
// storage nodes replicated with ParallelRaft, a remote memory pool with
// RDMA-style one-sided access, one RW and N RO database nodes, a proxy
// and a cluster manager — and returns a handle for sessions, DDL, scaling
// and failover:
//
//	db, err := polar.Open(polar.Options{ReadReplicas: 2})
//	defer db.Close()
//	db.CreateTable("users")
//	s := db.Session()
//	s.Exec("users", polar.OpPut, 1, []byte("alice"))
//	v, ok, _ := s.Get("users", 1)
//
// Every resource pool scales independently at runtime: GrowMemory /
// ShrinkMemory resize the shared buffer pool, ResizeLocalCaches resizes
// the compute tier's caches, AddReadReplica attaches nodes, and
// SwitchOver migrates the RW with open transactions resuming from their
// savepoints.
package polar

import (
	"time"

	"polardb/internal/btree"
	"polardb/internal/cluster"
	"polardb/internal/rdma"
	"polardb/internal/stat"
)

// Session is a client connection through the proxy tier. Autocommit
// statements retry transparently across RW switches; open transactions
// resume from their savepoint after a planned switch.
type Session = cluster.Session

// WriteOp selects a write statement kind for Session.Exec.
type WriteOp = cluster.WriteOp

// Write statement kinds.
const (
	OpInsert = cluster.OpInsert
	OpUpdate = cluster.OpUpdate
	OpPut    = cluster.OpPut
	OpDelete = cluster.OpDelete
)

// ErrTxnLost is returned by a session whose transaction died with an
// unplanned RW failure.
var ErrTxnLost = cluster.ErrTxnLost

// ROLockMode selects the read replicas' global-latch protocol.
type ROLockMode int

const (
	// Optimistic (default): traversals take no global latches and
	// validate SMO stamps, retrying on conflict (§4.1 of the paper).
	Optimistic ROLockMode = iota
	// Pessimistic: traversals S-latch every page via RDMA CAS.
	Pessimistic
)

// Options configures a deployment. The zero value is a working
// single-replica cluster with simulated network latency disabled.
type Options struct {
	// SimulateLatency enables the RDMA fabric's latency model (remote
	// memory ~2µs, RPC ~5µs, storage ~100µs class). Benchmarks enable it;
	// functional tests leave it off.
	SimulateLatency bool

	// ReadReplicas is the number of RO nodes.
	ReadReplicas int

	// LocalCachePages sizes each database node's local cache tier
	// (default 256 pages = 1 MiB).
	LocalCachePages int

	// MemorySlabs / SlabPages size the remote memory pool (default
	// 2 slabs x 256 pages = 2 MiB).
	MemorySlabs int
	SlabPages   int

	// NoRemoteMemory disables the shared memory pool entirely — the
	// shared-storage ("PolarDB classic") configuration the paper compares
	// against.
	NoRemoteMemory bool

	// ROLockMode selects Optimistic (default) or Pessimistic RO latching.
	ROLockMode ROLockMode

	// HeartbeatInterval tunes RW failure detection (default 20ms; the
	// production system uses 1s).
	HeartbeatInterval time.Duration

	// SlaveHome replicates the memory pool's home-node metadata.
	SlaveHome bool
}

// DB is a running deployment.
type DB struct {
	c *cluster.Cluster
}

// Open launches a deployment.
func Open(opts Options) (*DB, error) {
	cfg := cluster.Config{
		RONodes:           opts.ReadReplicas,
		LocalCachePages:   opts.LocalCachePages,
		MemorySlabs:       opts.MemorySlabs,
		SlabPages:         opts.SlabPages,
		NoRemoteMemory:    opts.NoRemoteMemory,
		HeartbeatInterval: opts.HeartbeatInterval,
		SlaveHome:         opts.SlaveHome,
	}
	if opts.SimulateLatency {
		cfg.Fabric = rdma.DefaultConfig()
	} else {
		cfg.Fabric = rdma.TestConfig()
	}
	if opts.ROLockMode == Pessimistic {
		cfg.ROMode = btree.PessimisticS
	} else {
		cfg.ROMode = btree.Optimistic
	}
	c, err := cluster.Launch(cfg)
	if err != nil {
		return nil, err
	}
	return &DB{c: c}, nil
}

// Close shuts the deployment down.
func (db *DB) Close() { db.c.Close() }

// Cluster exposes the underlying cluster for advanced control (node
// handles, engines, fabric statistics).
func (db *DB) Cluster() *cluster.Cluster { return db.c }

// Session opens a client session through the proxy.
func (db *DB) Session() *Session { return db.c.Proxy.Connect() }

// CreateTable creates a table with a clustered primary index.
func (db *DB) CreateTable(name string) error {
	_, err := db.c.RW.Engine.CreateTable(name)
	return err
}

// CreateIndex adds a secondary index to a table. Entries are maintained
// by the application within its transactions (see Session.Exec on the
// index's name — an index is itself a key-ordered tree).
func (db *DB) CreateIndex(table, index string) error {
	tbl, err := db.c.RW.Engine.OpenTable(table)
	if err != nil {
		return err
	}
	_, err = db.c.RW.Engine.CreateIndex(tbl, index)
	return err
}

// GrowMemory adds n slabs to the remote memory pool; returns the new
// capacity in pages.
func (db *DB) GrowMemory(n int) (int, error) { return db.c.GrowMemory(n) }

// ShrinkMemory shrinks the pool to at most targetPages.
func (db *DB) ShrinkMemory(targetPages int) (int, error) { return db.c.ShrinkMemory(targetPages) }

// MemoryPages returns the pool capacity in pages.
func (db *DB) MemoryPages() int { return db.c.Home.TotalSlots() }

// ResizeLocalCaches resizes every database node's local cache tier.
func (db *DB) ResizeLocalCaches(pages int) error { return db.c.ResizeLocalCaches(pages) }

// AddReadReplica attaches a new RO node.
func (db *DB) AddReadReplica() error {
	_, err := db.c.AddRO()
	return err
}

// SwitchOver performs a planned RW migration: sessions pause briefly and
// open transactions resume on the new RW from their savepoints (§3.5).
func (db *DB) SwitchOver() error { return db.c.CM.SwitchOver() }

// Failover simulates an unplanned RW crash plus CM-driven recovery.
func (db *DB) Failover() error {
	db.c.Proxy.RWNodeKill()
	return db.c.CM.Failover(false)
}

// Stats summarizes the deployment.
type Stats struct {
	MemoryPages     int
	MemoryUsed      int
	LocalCachePages int
	Commits         uint64
	Aborts          uint64
	RemoteReads     uint64
	StorageReads    uint64
}

// Metrics returns the deployment's per-node metric registries: every
// fabric verb, remote-memory, storage and engine event each node
// recorded (see internal/stat and DESIGN.md "Observability").
func (db *DB) Metrics() *stat.NodeSet { return db.c.Fabric.Metrics() }

// Stats returns a snapshot of deployment counters.
func (db *DB) Stats() Stats {
	var s Stats
	if db.c.Home != nil {
		hs := db.c.Home.Stats()
		s.MemoryPages = hs.TotalSlots
		s.MemoryUsed = hs.UsedSlots
	}
	es := db.c.RW.Engine.Stats()
	s.Commits = es.Commits.Load()
	s.Aborts = es.Aborts.Load()
	s.RemoteReads = es.RemoteReads.Load()
	s.StorageReads = es.StorageReads.Load()
	s.LocalCachePages = db.c.RW.Engine.Cache().Stats().Capacity
	return s
}
