package polar

import (
	"fmt"
	"testing"
	"time"
)

func TestPublicAPIQuickstart(t *testing.T) {
	db, err := Open(Options{ReadReplicas: 1, HeartbeatInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable("users"); err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	defer s.Close()
	if err := s.Exec("users", OpPut, 1, []byte("alice")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("users", 1)
	if err != nil || !ok || string(v) != "alice" {
		t.Fatalf("get: %q %v %v", v, ok, err)
	}
	// Transactions.
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(10); k < 20; k++ {
		if err := s.Exec("users", OpInsert, k, []byte(fmt.Sprintf("u%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := s.Scan("users", 0, 100, func(uint64, []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 11 {
		t.Fatalf("scan = %d, want 11", n)
	}
	st := db.Stats()
	if st.Commits == 0 || st.MemoryPages == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPublicAPIScaling(t *testing.T) {
	db, err := Open(Options{HeartbeatInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	base := db.MemoryPages()
	grown, err := db.GrowMemory(1)
	if err != nil || grown <= base {
		t.Fatalf("grow: %d -> %d, %v", base, grown, err)
	}
	if _, err := db.ShrinkMemory(base); err != nil {
		t.Fatal(err)
	}
	if err := db.ResizeLocalCaches(128); err != nil {
		t.Fatal(err)
	}
	if err := db.AddReadReplica(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPISwitchOver(t *testing.T) {
	db, err := Open(Options{ReadReplicas: 1, HeartbeatInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	s := db.Session()
	defer s.Close()
	if err := s.Exec("t", OpPut, 1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.SwitchOver(); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("t", 1)
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("after switchover: %q %v %v", v, ok, err)
	}
}
